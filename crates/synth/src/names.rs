//! Name pools and unique-name generation.

use rand::Rng;

/// First-name pool (mix of conventional US names, matching the kind of
/// names in the paper's running example).
pub const FIRST_NAMES: &[&str] = &[
    "Alice",
    "Robert",
    "Christine",
    "William",
    "Elizabeth",
    "James",
    "Michael",
    "Thomas",
    "Anthony",
    "Katherine",
    "Alexander",
    "Daniel",
    "David",
    "Edward",
    "Joseph",
    "Margaret",
    "Samuel",
    "Steven",
    "Susan",
    "Patricia",
    "Andrew",
    "Nicholas",
    "Matthew",
    "Gregory",
    "Jennifer",
    "Rebecca",
    "Victoria",
    "Richard",
    "Sarah",
    "Laura",
    "Kevin",
    "Brian",
    "Angela",
    "Melissa",
    "George",
    "Frank",
    "Helen",
    "Carol",
    "Dennis",
    "Diane",
    "Raymond",
    "Janet",
    "Walter",
    "Gloria",
    "Harold",
    "Teresa",
    "Eugene",
    "Judith",
    "Priya",
    "Wei",
    "Hiroshi",
    "Fatima",
    "Chen",
    "Ravi",
    "Ingrid",
    "Pablo",
];

/// Surname pool.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
    "Green",
    "Adams",
    "Nelson",
    "Baker",
    "Hall",
    "Rivera",
    "Campbell",
    "Mitchell",
    "Carter",
    "Roberts",
    "Ganta",
    "Acharya",
    "Patel",
    "Kumar",
    "Chen",
    "Tanaka",
    "Kowalski",
    "Petrov",
    "Silva",
    "Costa",
    "Haddad",
];

/// Generates `n` distinct `"First Last"` names. When `n` exceeds the number
/// of unique pool combinations, a numeric disambiguator is appended.
pub fn unique_names<R: Rng>(rng: &mut R, n: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(n);
    let mut seen = std::collections::HashSet::with_capacity(n);
    let capacity = FIRST_NAMES.len() * LAST_NAMES.len();
    let mut counter = 0usize;
    while out.len() < n {
        let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
        let name = if out.len() < capacity {
            format!("{first} {last}")
        } else {
            counter += 1;
            format!("{first} {last} {counter}")
        };
        if seen.insert(name.clone()) {
            out.push(name);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn names_are_unique() {
        let mut rng = rng_from_seed(11);
        let names = unique_names(&mut rng, 500);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn names_have_first_and_last() {
        let mut rng = rng_from_seed(11);
        for name in unique_names(&mut rng, 50) {
            assert!(name.split_whitespace().count() >= 2, "{name}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = unique_names(&mut rng_from_seed(5), 100);
        let b = unique_names(&mut rng_from_seed(5), 100);
        assert_eq!(a, b);
    }

    #[test]
    fn overflow_beyond_pool_capacity_still_unique() {
        let mut rng = rng_from_seed(1);
        let n = FIRST_NAMES.len() * LAST_NAMES.len() + 50;
        let names = unique_names(&mut rng, n);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), n);
    }
}
