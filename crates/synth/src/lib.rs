//! # fred-synth — synthetic population and dataset generators
//!
//! The paper's experiments use a private university's faculty salary data
//! and hand-harvested web pages; neither is available. This crate generates
//! the substitution described in `DESIGN.md`: a seeded ground-truth
//! population ([`person::PersonProfile`]) from which both the sensitive
//! enterprise tables ([`faculty`], [`customer`]) and the web corpus
//! (`fred-web`) are derived, preserving the QI↔sensitive and
//! auxiliary↔sensitive correlations the attack exploits.
//!
//! ## Example
//!
//! ```
//! use fred_synth::{generate_population, PopulationConfig, faculty_table, FacultyConfig};
//!
//! let people = generate_population(&PopulationConfig::faculty(100, 42));
//! let table = faculty_table(&people, &FacultyConfig::default());
//! assert_eq!(table.len(), 100);
//! assert_eq!(table.schema().sensitive_indices().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod customer;
pub mod faculty;
pub mod hospital;
pub mod names;
pub mod person;
pub mod rng;

pub use customer::{
    customer_schema, customer_table, paper_table_ii, paper_table_iv, CustomerConfig,
};
pub use faculty::{faculty_schema, faculty_table, score_names, FacultyConfig};
pub use hospital::{hospital_schema, hospital_table, HospitalConfig};
pub use names::{unique_names, FIRST_NAMES, LAST_NAMES};
pub use person::{generate_population, PersonProfile, PopulationConfig, Seniority};
pub use rng::rng_from_seed;
