//! The faculty dataset: our analog of the paper's experimental data.
//!
//! "The sensitive data (P) is collected from a real-life enterprise (a
//! public university) and contains salary information and performance
//! review numbers of the employees (faculty). The employee Salary is the
//! sensitive attribute while the performance review numbers are the
//! non-sensitive attributes." (paper Section VI-A)
//!
//! We derive review scores from the ground-truth income with calibrated
//! noise, so the quasi-identifiers carry real but imperfect signal about
//! the sensitive attribute — the property the attack exploits.

use crate::person::PersonProfile;
use crate::rng::{normal, rng_from_seed};
use fred_data::{Schema, Table, Value};

/// Configuration for review-score generation.
#[derive(Debug, Clone)]
pub struct FacultyConfig {
    /// Number of review-score attributes (the paper uses several
    /// performance numbers; we default to 3).
    pub n_scores: usize,
    /// Correlation strength: standard deviation of the noise added to the
    /// income-derived score signal, on the 1-10 score scale.
    pub score_noise: f64,
    /// RNG seed for the score noise.
    pub seed: u64,
}

impl Default for FacultyConfig {
    fn default() -> Self {
        FacultyConfig {
            n_scores: 3,
            score_noise: 1.2,
            seed: 0xFAC,
        }
    }
}

/// Names of the review-score attributes.
pub fn score_names(n: usize) -> Vec<String> {
    (1..=n).map(|i| format!("Review{i}")).collect()
}

/// Builds the faculty schema: `Name | Review1..ReviewN | Salary`.
pub fn faculty_schema(n_scores: usize) -> Schema {
    let mut b = Schema::builder().identifier("Name");
    for name in score_names(n_scores) {
        b = b.quasi_numeric(name);
    }
    b.sensitive_numeric("Salary")
        .build()
        .expect("static schema is valid")
}

/// Builds the faculty table from a population.
///
/// Each review score is `1 + 9 * income_percentile + noise`, clamped to
/// `[1, 10]`: the score carries income signal with per-attribute noise.
pub fn faculty_table(people: &[PersonProfile], config: &FacultyConfig) -> Table {
    let mut rng = rng_from_seed(config.seed);
    // Income percentile within this population.
    let mut sorted: Vec<f64> = people.iter().map(|p| p.income).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let percentile = |x: f64| -> f64 {
        let below = sorted.partition_point(|&v| v < x);
        below as f64 / sorted.len().max(1) as f64
    };

    let mut table = Table::new(faculty_schema(config.n_scores));
    for p in people {
        let base = 1.0 + 9.0 * percentile(p.income);
        let mut row = Vec::with_capacity(config.n_scores + 2);
        row.push(Value::Text(p.name.clone()));
        for _ in 0..config.n_scores {
            let score = (base + normal(&mut rng, 0.0, config.score_noise)).clamp(1.0, 10.0);
            // Review numbers are reported to one decimal place.
            row.push(Value::Float((score * 10.0).round() / 10.0));
        }
        row.push(Value::Float(p.income.round()));
        table.push_row(row).expect("row matches faculty schema");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::{generate_population, PopulationConfig};
    use fred_data::pearson;

    fn population() -> Vec<PersonProfile> {
        generate_population(&PopulationConfig::faculty(400, 21))
    }

    #[test]
    fn schema_shape() {
        let s = faculty_schema(3);
        assert_eq!(s.len(), 5);
        assert_eq!(s.identifier_indices(), vec![0]);
        assert_eq!(s.quasi_identifier_indices(), vec![1, 2, 3]);
        assert_eq!(s.sensitive_indices(), vec![4]);
    }

    #[test]
    fn table_matches_population() {
        let people = population();
        let t = faculty_table(&people, &FacultyConfig::default());
        assert_eq!(t.len(), people.len());
        for (row, p) in t.rows().iter().zip(&people) {
            assert_eq!(row[0].as_str(), Some(p.name.as_str()));
            assert_eq!(row[4].as_f64(), Some(p.income.round()));
        }
    }

    #[test]
    fn scores_live_on_one_to_ten_scale() {
        let t = faculty_table(&population(), &FacultyConfig::default());
        for c in 1..=3 {
            for v in t.column(c) {
                let x = v.as_f64().unwrap();
                assert!((1.0..=10.0).contains(&x), "score {x} out of scale");
            }
        }
    }

    #[test]
    fn scores_correlate_with_salary() {
        let t = faculty_table(&population(), &FacultyConfig::default());
        let salary = t.numeric_column(4).unwrap();
        for c in 1..=3 {
            let scores = t.numeric_column(c).unwrap();
            let r = pearson(&scores, &salary).unwrap();
            assert!(r > 0.6, "Review{c} correlation {r} too weak");
        }
    }

    #[test]
    fn noise_decorrelates_when_large() {
        let people = population();
        let noisy = faculty_table(
            &people,
            &FacultyConfig {
                score_noise: 50.0,
                ..FacultyConfig::default()
            },
        );
        let salary = noisy.numeric_column(4).unwrap();
        let scores = noisy.numeric_column(1).unwrap();
        let r = pearson(&scores, &salary).unwrap();
        assert!(r.abs() < 0.4, "huge noise should wash out signal, r={r}");
    }

    #[test]
    fn deterministic_given_seed() {
        let people = population();
        let a = faculty_table(&people, &FacultyConfig::default());
        let b = faculty_table(&people, &FacultyConfig::default());
        assert_eq!(a, b);
    }
}
