//! The ground-truth population shared by the enterprise table and the web
//! corpus.
//!
//! The paper's experiment pairs a private faculty table with the same
//! people's public web pages. Our substitution generates one
//! [`PersonProfile`] per individual — seniority, employer, title, property
//! holdings, income, web presence — and derives *both* the sensitive table
//! (`crate::faculty`, `crate::customer`) and the web corpus (`fred-web`)
//! from it, so the attack faces a consistent world.

use crate::names::unique_names;
use crate::rng::{coin, normal, rng_from_seed, truncated_normal};
use rand::Rng;

/// Seniority band of an individual; the dominant driver of income.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Seniority {
    /// Entry level (assistant, analyst).
    Junior,
    /// Mid-career (associate, manager).
    Mid,
    /// Senior (full professor, director).
    Senior,
    /// Executive (chair, VP, CEO).
    Executive,
}

impl Seniority {
    /// All bands in ascending order.
    pub const ALL: [Seniority; 4] = [
        Seniority::Junior,
        Seniority::Mid,
        Seniority::Senior,
        Seniority::Executive,
    ];

    /// Numeric level 1..=4 (used as a fuzzy-input scale).
    pub fn level(&self) -> u8 {
        match self {
            Seniority::Junior => 1,
            Seniority::Mid => 2,
            Seniority::Senior => 3,
            Seniority::Executive => 4,
        }
    }

    /// Academic job title for this band.
    pub fn faculty_title(&self) -> &'static str {
        match self {
            Seniority::Junior => "Assistant Professor",
            Seniority::Mid => "Associate Professor",
            Seniority::Senior => "Professor",
            Seniority::Executive => "Department Chair",
        }
    }

    /// Industry job title for this band.
    pub fn industry_title(&self) -> &'static str {
        match self {
            Seniority::Junior => "Analyst",
            Seniority::Mid => "Manager",
            Seniority::Senior => "Director",
            Seniority::Executive => "CEO",
        }
    }
}

/// Ground truth for one individual.
#[derive(Debug, Clone, PartialEq)]
pub struct PersonProfile {
    /// Stable index within the population.
    pub id: usize,
    /// Full name as it appears in the enterprise database.
    pub name: String,
    /// Seniority band.
    pub seniority: Seniority,
    /// Employer name.
    pub employer: String,
    /// Job title (consistent with seniority).
    pub title: String,
    /// Assessed property holdings in square feet (paper Table IV uses this
    /// unit; correlated with income).
    pub property_sqft: f64,
    /// Annual income in dollars — the sensitive attribute.
    pub income: f64,
    /// Whether the person has any web presence (pages to harvest).
    pub has_web_presence: bool,
}

/// Configuration for population generation.
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of individuals.
    pub size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Mixing proportions of the four seniority bands (normalized
    /// internally).
    pub seniority_mix: [f64; 4],
    /// Mean income per band, ascending.
    pub income_means: [f64; 4],
    /// Income standard deviation per band.
    pub income_stds: [f64; 4],
    /// Hard income floor/ceiling (the paper's `[$40k, $160k]`-style range).
    pub income_range: (f64, f64),
    /// Probability an individual has web presence.
    pub web_presence_rate: f64,
    /// Employer pool.
    pub employers: Vec<String>,
    /// Use academic titles (faculty) instead of industry titles.
    pub academic: bool,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            size: 500,
            seed: 0xF12ED,
            seniority_mix: [0.35, 0.3, 0.25, 0.1],
            income_means: [55_000.0, 75_000.0, 100_000.0, 135_000.0],
            income_stds: [7_000.0, 9_000.0, 12_000.0, 15_000.0],
            income_range: (40_000.0, 160_000.0),
            web_presence_rate: 0.9,
            employers: [
                "Penn State University",
                "Deutsche Bank",
                "Verizon",
                "Microsoft",
                "NYU",
                "General Electric",
                "Acme Analytics",
                "Keystone Insurance",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect(),
            academic: false,
        }
    }
}

impl PopulationConfig {
    /// Faculty-flavoured defaults (single academic employer, academic
    /// titles) matching the paper's experimental dataset.
    pub fn faculty(size: usize, seed: u64) -> Self {
        PopulationConfig {
            size,
            seed,
            employers: vec!["Penn State University".to_string()],
            academic: true,
            ..PopulationConfig::default()
        }
    }
}

/// Generates the population.
pub fn generate_population(config: &PopulationConfig) -> Vec<PersonProfile> {
    let mut rng = rng_from_seed(config.seed);
    let names = unique_names(&mut rng, config.size);
    let total_mix: f64 = config.seniority_mix.iter().sum();
    let mut people = Vec::with_capacity(config.size);
    for (id, name) in names.into_iter().enumerate() {
        // Sample a seniority band from the mixing proportions.
        let mut draw = rng.gen::<f64>() * total_mix;
        let mut band = Seniority::Junior;
        for (i, s) in Seniority::ALL.iter().enumerate() {
            if draw < config.seniority_mix[i] {
                band = *s;
                break;
            }
            draw -= config.seniority_mix[i];
        }
        let bi = (band.level() - 1) as usize;
        let income = truncated_normal(
            &mut rng,
            config.income_means[bi],
            config.income_stds[bi],
            config.income_range.0,
            config.income_range.1,
        );
        // Property holdings scale with income: ~sqft = income/25 +/- noise.
        let property_sqft = (income / 25.0 + normal(&mut rng, 0.0, 400.0)).max(300.0);
        let employer = crate::rng::choice(&mut rng, &config.employers).clone();
        let title = if config.academic {
            band.faculty_title()
        } else {
            band.industry_title()
        };
        people.push(PersonProfile {
            id,
            name,
            seniority: band,
            employer,
            title: title.to_string(),
            property_sqft,
            income,
            has_web_presence: coin(&mut rng, config.web_presence_rate),
        });
    }
    people
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_is_reproducible() {
        let cfg = PopulationConfig::default();
        let a = generate_population(&cfg);
        let b = generate_population(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.size);
    }

    #[test]
    fn incomes_respect_range() {
        let cfg = PopulationConfig::default();
        for p in generate_population(&cfg) {
            assert!(p.income >= cfg.income_range.0 && p.income <= cfg.income_range.1);
            assert!(p.property_sqft >= 300.0);
        }
    }

    #[test]
    fn income_increases_with_seniority_on_average() {
        let cfg = PopulationConfig {
            size: 2000,
            ..PopulationConfig::default()
        };
        let people = generate_population(&cfg);
        let mean_for = |s: Seniority| {
            let xs: Vec<f64> = people
                .iter()
                .filter(|p| p.seniority == s)
                .map(|p| p.income)
                .collect();
            xs.iter().sum::<f64>() / xs.len() as f64
        };
        let means: Vec<f64> = Seniority::ALL.iter().map(|&s| mean_for(s)).collect();
        for w in means.windows(2) {
            assert!(w[0] < w[1], "income means not increasing: {means:?}");
        }
    }

    #[test]
    fn property_correlates_with_income() {
        let cfg = PopulationConfig {
            size: 2000,
            ..PopulationConfig::default()
        };
        let people = generate_population(&cfg);
        let incomes: Vec<f64> = people.iter().map(|p| p.income).collect();
        let props: Vec<f64> = people.iter().map(|p| p.property_sqft).collect();
        let n = incomes.len() as f64;
        let mi = incomes.iter().sum::<f64>() / n;
        let mp = props.iter().sum::<f64>() / n;
        let cov: f64 = incomes
            .iter()
            .zip(&props)
            .map(|(&i, &p)| (i - mi) * (p - mp))
            .sum::<f64>();
        let vi: f64 = incomes.iter().map(|&i| (i - mi) * (i - mi)).sum();
        let vp: f64 = props.iter().map(|&p| (p - mp) * (p - mp)).sum();
        let r = cov / (vi.sqrt() * vp.sqrt());
        assert!(r > 0.7, "correlation too weak: {r}");
    }

    #[test]
    fn web_presence_rate_is_honoured() {
        let cfg = PopulationConfig {
            size: 2000,
            web_presence_rate: 0.5,
            ..PopulationConfig::default()
        };
        let people = generate_population(&cfg);
        let rate = people.iter().filter(|p| p.has_web_presence).count() as f64 / 2000.0;
        assert!((rate - 0.5).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn faculty_config_uses_academic_titles() {
        let cfg = PopulationConfig::faculty(50, 9);
        let people = generate_population(&cfg);
        assert!(people.iter().all(|p| p.employer == "Penn State University"));
        assert!(people
            .iter()
            .all(|p| p.title.contains("Professor") || p.title.contains("Chair")));
    }

    #[test]
    fn titles_match_seniority() {
        let cfg = PopulationConfig::default();
        for p in generate_population(&cfg) {
            assert_eq!(p.title, p.seniority.industry_title());
        }
    }
}
