//! Seeded randomness helpers shared by all generators.
//!
//! Every generator in the workspace takes an explicit `u64` seed and derives
//! a [`rand::rngs::StdRng`] from it, so datasets, corpora and experiments
//! are bit-reproducible across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a standard-normal variate via Box-Muller (rand's distributions
/// crate is not part of the offline set, so we roll the transform).
pub fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    // Guard u1 away from zero so ln() stays finite.
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mu, sigma)`.
pub fn normal<R: Rng>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    mu + sigma * standard_normal(rng)
}

/// Samples `N(mu, sigma)` truncated to `[lo, hi]` by resampling (falls back
/// to clamping after 32 attempts so the call always terminates).
pub fn truncated_normal<R: Rng>(rng: &mut R, mu: f64, sigma: f64, lo: f64, hi: f64) -> f64 {
    for _ in 0..32 {
        let x = normal(rng, mu, sigma);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    normal(rng, mu, sigma).clamp(lo, hi)
}

/// Uniformly picks an element of a non-empty slice.
pub fn choice<'a, T, R: Rng>(rng: &mut R, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

/// Bernoulli draw.
pub fn coin<R: Rng>(rng: &mut R, p: f64) -> bool {
    rng.gen::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_reproducible() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = rng_from_seed(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = rng_from_seed(1);
        for _ in 0..1000 {
            let x = truncated_normal(&mut rng, 0.0, 5.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn choice_and_coin() {
        let mut rng = rng_from_seed(3);
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(choice(&mut rng, &items)));
        }
        let heads = (0..10_000).filter(|_| coin(&mut rng, 0.25)).count();
        assert!((heads as f64 / 10_000.0 - 0.25).abs() < 0.03);
    }
}
