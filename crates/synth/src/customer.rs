//! Enterprise customer data: the paper's running example (Table II) and a
//! scalable generator of the same shape.

use crate::person::PersonProfile;
use crate::rng::{normal, rng_from_seed};
use fred_data::{Schema, Table, Value};

/// Builds the customer schema:
/// `Name | InvstVol, InvstAmt, Valuation | Income`.
pub fn customer_schema() -> Schema {
    Schema::builder()
        .identifier("Name")
        .quasi_numeric("InvstVol")
        .quasi_numeric("InvstAmt")
        .quasi_numeric("Valuation")
        .sensitive_numeric("Income")
        .build()
        .expect("static schema is valid")
}

/// The paper's Table II, verbatim.
pub fn paper_table_ii() -> Table {
    let rows = [
        ("Alice", 8.0, 7.0, 4.0, 91_250.0),
        ("Bob", 5.0, 4.0, 4.0, 74_340.0),
        ("Christine", 4.0, 5.0, 5.0, 75_123.0),
        ("Robert", 9.0, 8.0, 9.0, 98_230.0),
    ];
    Table::with_rows(
        customer_schema(),
        rows.iter()
            .map(|&(n, v, a, val, inc)| {
                vec![
                    Value::Text(n.into()),
                    Value::Float(v),
                    Value::Float(a),
                    Value::Float(val),
                    Value::Float(inc),
                ]
            })
            .collect(),
    )
    .expect("static rows match schema")
}

/// The auxiliary data the paper's adversary collects (Table IV, verbatim):
/// `(name, employment, property holdings sqft)`.
pub fn paper_table_iv() -> Vec<(&'static str, &'static str, f64)> {
    vec![
        ("Alice", "CEO, Deutsche Bank", 3560.0),
        ("Bob", "Manager, Verizon", 1200.0),
        ("Christine", "Assistant, NYU", 720.0),
        ("Robert", "CEO, Microsoft", 5430.0),
    ]
}

/// Configuration for the scalable customer generator.
#[derive(Debug, Clone)]
pub struct CustomerConfig {
    /// Noise (1-10 scale) added to the income-derived investment indices.
    pub index_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CustomerConfig {
    fn default() -> Self {
        CustomerConfig {
            index_noise: 1.0,
            seed: 0xC057,
        }
    }
}

/// Builds a customer table of the Table II shape from a population: the
/// investment indices are noisy functions of income (wealthier customers
/// trade more), the valuation blends them.
pub fn customer_table(people: &[PersonProfile], config: &CustomerConfig) -> Table {
    let mut rng = rng_from_seed(config.seed);
    let (lo, hi) = people
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.income), hi.max(p.income))
        });
    let span = (hi - lo).max(1.0);
    let mut table = Table::new(customer_schema());
    for p in people {
        let z = (p.income - lo) / span; // 0..1
        let base = 1.0 + 9.0 * z;
        let vol = (base + normal(&mut rng, 0.0, config.index_noise)).clamp(1.0, 10.0);
        let amt = (base + normal(&mut rng, 0.0, config.index_noise)).clamp(1.0, 10.0);
        let valuation =
            ((vol + amt) / 2.0 + normal(&mut rng, 0.0, config.index_noise / 2.0)).clamp(1.0, 10.0);
        table
            .push_row(vec![
                Value::Text(p.name.clone()),
                Value::Float(vol.round()),
                Value::Float(amt.round()),
                Value::Float(valuation.round()),
                Value::Float(p.income.round()),
            ])
            .expect("row matches customer schema");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::person::{generate_population, PopulationConfig};
    use fred_data::pearson;

    #[test]
    fn paper_table_ii_is_verbatim() {
        let t = paper_table_ii();
        assert_eq!(t.len(), 4);
        assert_eq!(t.row(3).unwrap()[0].as_str(), Some("Robert"));
        assert_eq!(t.row(3).unwrap()[4].as_f64(), Some(98_230.0));
        assert_eq!(t.row(0).unwrap()[1].as_f64(), Some(8.0));
        let ascii = t.to_ascii();
        assert!(ascii.contains("Christine"));
    }

    #[test]
    fn paper_table_iv_matches() {
        let aux = paper_table_iv();
        assert_eq!(aux.len(), 4);
        assert_eq!(aux[3].1, "CEO, Microsoft");
        assert_eq!(aux[3].2, 5430.0);
    }

    #[test]
    fn generated_indices_on_scale_and_correlated() {
        let people = generate_population(&PopulationConfig::default());
        let t = customer_table(&people, &CustomerConfig::default());
        assert_eq!(t.len(), people.len());
        let income = t.numeric_column(4).unwrap();
        for c in 1..=3 {
            let idx = t.numeric_column(c).unwrap();
            for &x in &idx {
                assert!((1.0..=10.0).contains(&x));
            }
            let r = pearson(&idx, &income).unwrap();
            assert!(r > 0.6, "col {c} correlation {r}");
        }
    }

    #[test]
    fn deterministic() {
        let people = generate_population(&PopulationConfig::default());
        let a = customer_table(&people, &CustomerConfig::default());
        let b = customer_table(&people, &CustomerConfig::default());
        assert_eq!(a, b);
    }
}
