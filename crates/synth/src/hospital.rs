//! A patient dataset in the mould of the paper's Table I: categorical
//! sensitive attribute (Condition), demographic quasi-identifiers.
//!
//! The running example's Table I is the classic k-anonymity setting; this
//! generator scales it up so the categorical privacy checkers
//! (l-diversity, t-closeness) have a realistic workload, and so the
//! workspace exercises categorical releases end to end.

use crate::names::unique_names;
use crate::rng::{choice, rng_from_seed};
use fred_data::{Schema, Table, Value};
use rand::Rng;

/// Diagnosis pool with rough prevalence weights.
const CONDITIONS: &[(&str, f64)] = &[
    ("Flu", 0.30),
    ("Hypertension", 0.20),
    ("Diabetes", 0.15),
    ("Asthma", 0.12),
    ("Cancer", 0.08),
    ("Meningitis", 0.05),
    ("Hepatitis", 0.05),
    ("AIDS", 0.05),
];

/// Nationality pool (mirrors Table I's attribute).
const NATIONALITIES: &[&str] = &[
    "American",
    "Russian",
    "Japanese",
    "Indian",
    "German",
    "Brazilian",
    "Chinese",
    "Nigerian",
];

/// Configuration for the patient generator.
#[derive(Debug, Clone)]
pub struct HospitalConfig {
    /// Number of patients.
    pub size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Zip codes are drawn from `zip_base .. zip_base + zip_spread`.
    pub zip_base: i64,
    /// Number of distinct zip codes.
    pub zip_spread: i64,
}

impl Default for HospitalConfig {
    fn default() -> Self {
        HospitalConfig {
            size: 200,
            seed: 0x405,
            zip_base: 13000,
            zip_spread: 80,
        }
    }
}

/// Builds the patient schema:
/// `Name | Zipcode, Age, Nationality | Condition`.
pub fn hospital_schema() -> Schema {
    Schema::builder()
        .identifier("Name")
        .quasi_int("Zipcode")
        .quasi_int("Age")
        .quasi_categorical("Nationality")
        .sensitive_categorical("Condition")
        .build()
        .expect("static schema is valid")
}

/// Generates the patient table. Age correlates weakly with condition
/// severity (older patients skew toward the chronic diagnoses), giving the
/// privacy checkers a non-uniform joint distribution to detect.
pub fn hospital_table(config: &HospitalConfig) -> Table {
    let mut rng = rng_from_seed(config.seed);
    let names = unique_names(&mut rng, config.size);
    let total_weight: f64 = CONDITIONS.iter().map(|&(_, w)| w).sum();
    let mut table = Table::new(hospital_schema());
    for name in names {
        let zip = config.zip_base + rng.gen_range(0..config.zip_spread.max(1));
        // Draw a condition, then an age consistent with it.
        let mut draw = rng.gen::<f64>() * total_weight;
        let mut condition = CONDITIONS[0].0;
        let mut cond_idx = 0usize;
        for (i, &(c, w)) in CONDITIONS.iter().enumerate() {
            if draw < w {
                condition = c;
                cond_idx = i;
                break;
            }
            draw -= w;
        }
        // Chronic/severe conditions (later in the list) skew older.
        let age_lo = 18 + (cond_idx as i64) * 4;
        let age_hi = 60 + (cond_idx as i64) * 4;
        let age = rng.gen_range(age_lo..=age_hi);
        table
            .push_row(vec![
                Value::Text(name),
                Value::Int(zip),
                Value::Int(age),
                Value::Categorical(choice(&mut rng, NATIONALITIES).to_string()),
                Value::Categorical(condition.to_owned()),
            ])
            .expect("row matches hospital schema");
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_table_i_roles() {
        let s = hospital_schema();
        assert_eq!(s.identifier_indices(), vec![0]);
        assert_eq!(s.quasi_identifier_indices(), vec![1, 2, 3]);
        assert_eq!(s.sensitive_indices(), vec![4]);
    }

    #[test]
    fn generated_values_are_plausible() {
        let t = hospital_table(&HospitalConfig::default());
        assert_eq!(t.len(), 200);
        for row in t.rows() {
            let zip = row[1].as_f64().unwrap() as i64;
            assert!((13000..13080).contains(&zip));
            let age = row[2].as_f64().unwrap();
            assert!((18.0..=100.0).contains(&age));
            let cond = row[4].as_str().unwrap();
            assert!(CONDITIONS.iter().any(|&(c, _)| c == cond));
        }
    }

    #[test]
    fn prevalence_roughly_matches_weights() {
        let t = hospital_table(&HospitalConfig {
            size: 4000,
            ..Default::default()
        });
        let flu = t.column(4).filter(|v| v.as_str() == Some("Flu")).count() as f64 / 4000.0;
        assert!((flu - 0.30).abs() < 0.04, "flu prevalence {flu}");
        let aids = t.column(4).filter(|v| v.as_str() == Some("AIDS")).count() as f64 / 4000.0;
        assert!((aids - 0.05).abs() < 0.02, "aids prevalence {aids}");
    }

    #[test]
    fn deterministic() {
        let a = hospital_table(&HospitalConfig::default());
        let b = hospital_table(&HospitalConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn chronic_conditions_skew_older() {
        let t = hospital_table(&HospitalConfig {
            size: 4000,
            ..Default::default()
        });
        let mean_age = |cond: &str| {
            let ages: Vec<f64> = t
                .rows()
                .iter()
                .filter(|r| r[4].as_str() == Some(cond))
                .map(|r| r[2].as_f64().unwrap())
                .collect();
            ages.iter().sum::<f64>() / ages.len() as f64
        };
        assert!(mean_age("AIDS") > mean_age("Flu") + 5.0);
    }
}
