//! Structured tracing and metrics for the reproduction pipeline.
//!
//! This crate is the one observability surface every other layer reports
//! into: spans for stage boundaries, monotonic counters for work items
//! (rows linked, cache hits, faults injected, checkpoint commits), events
//! for point-in-time markers, and fixed-bucket duration histograms. It is
//! deliberately zero-dependency (the rayon *shim* is the only import, for
//! worker attribution) and hand-rolls its JSON like the rest of the
//! workspace, so `fred_recover::json::parse` can read every byte it
//! writes.
//!
//! Design constraints, in order:
//!
//! 1. **Deterministic structure.** Span IDs hash (parent-id, name,
//!    child-sequence) — never wall-clock, never RNG — so the span *tree*
//!    of a deterministic run is bit-identical run to run and
//!    [`Trace::structural_digest`] can be pinned in `BENCH_sweep.json`.
//!    In deterministic mode every duration field is zeroed at the source,
//!    matching how `quick_bench --deterministic` zeroes stage walls.
//! 2. **Near-zero cost when off.** Every entry point checks one relaxed
//!    atomic and returns before touching the mutex. The bench suite
//!    measures this path (one million probe calls) and `compare.rs`
//!    holds it under a committed ceiling.
//! 3. **Single-writer spans, multi-writer counters.** Spans are opened
//!    and closed on the orchestration thread only (the stage runner is
//!    sequential); counters and histograms may be bumped from any rayon
//!    worker and are attributed per-worker via
//!    [`rayon::current_worker_id`], then merged at drain time.
//!
//! Lifecycle: [`enable`] resets the collector, instrumented code calls
//! [`span`] / [`counter`] / [`event`] / [`observe_ms`], and [`drain`]
//! returns the finished [`Trace`] and switches collection back off.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// FNV-1a 64-bit, same constants as `fred_recover::fnv1a64` (this crate
/// sits below `recover` in the dependency order, so it carries its own
/// copy rather than importing one).
const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a64(bytes: &[u8], mut state: u64) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Upper bounds (milliseconds, inclusive) of the first
/// [`HIST_BUCKETS`]` - 1` histogram buckets; the last bucket is
/// unbounded. Powers of two so bucket choice is stable across platforms.
pub const HIST_BOUNDS_MS: [f64; 15] = [
    0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0,
];

/// Number of histogram buckets ([`HIST_BOUNDS_MS`] plus one overflow).
pub const HIST_BUCKETS: usize = HIST_BOUNDS_MS.len() + 1;

/// One completed span: a named interval with deterministic identity and
/// its children in open order.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanNode {
    /// Deterministic ID: FNV-1a over (parent id LE, name bytes, seq LE).
    pub id: u64,
    /// Stage or scope name, e.g. `"mdav_k5"`.
    pub name: String,
    /// Zero-based index among the parent's children.
    pub seq: u64,
    /// Start offset from `enable()` in ms; `0.0` in deterministic mode.
    pub start_ms: f64,
    /// Duration in ms; `0.0` in deterministic mode.
    pub wall_ms: f64,
    /// Point events recorded while this span was innermost.
    pub events: Vec<String>,
    /// Child spans, in the order they were opened.
    pub children: Vec<SpanNode>,
}

/// A fixed-bucket duration histogram (see [`HIST_BOUNDS_MS`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Total number of observations.
    pub count: u64,
    /// Sum of observed values in ms; `0.0` in deterministic mode.
    pub sum_ms: f64,
    /// Observation counts per bucket.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            count: 0,
            sum_ms: 0.0,
            buckets: [0; HIST_BUCKETS],
        }
    }

    fn observe(&mut self, ms: f64) {
        let idx = HIST_BOUNDS_MS
            .iter()
            .position(|&b| ms <= b)
            .unwrap_or(HIST_BUCKETS - 1);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ms += ms;
    }
}

/// The merged result of one enable→drain window.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Whether the window ran in deterministic mode (durations zeroed).
    pub deterministic: bool,
    /// Completed top-level spans in open order.
    pub spans: Vec<SpanNode>,
    /// Counter totals merged across all threads, by name.
    pub counters: BTreeMap<String, u64>,
    /// Counter totals attributed to individual pool workers. Worker
    /// attribution depends on thread count and scheduling, so this
    /// section is informational and never gated.
    pub worker_counters: BTreeMap<usize, BTreeMap<String, u64>>,
    /// Duration histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Total spans opened in the window (including unclosed ones forced
    /// shut at drain).
    pub spans_total: u64,
    /// Total events recorded in the window.
    pub events_total: u64,
}

struct Frame {
    node: SpanNode,
    started: Instant,
    next_child_seq: u64,
}

struct Inner {
    deterministic: bool,
    epoch: Instant,
    roots: Vec<SpanNode>,
    next_root_seq: u64,
    stack: Vec<Frame>,
    counters: BTreeMap<String, u64>,
    worker_counters: BTreeMap<usize, BTreeMap<String, u64>>,
    histograms: BTreeMap<String, Histogram>,
    spans_total: u64,
    events_total: u64,
}

impl Inner {
    fn fresh(deterministic: bool) -> Self {
        Inner {
            deterministic,
            epoch: Instant::now(),
            roots: Vec::new(),
            next_root_seq: 0,
            stack: Vec::new(),
            counters: BTreeMap::new(),
            worker_counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            spans_total: 0,
            events_total: 0,
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn collector() -> &'static Mutex<Inner> {
    static COLLECTOR: OnceLock<Mutex<Inner>> = OnceLock::new();
    COLLECTOR.get_or_init(|| Mutex::new(Inner::fresh(false)))
}

fn lock() -> std::sync::MutexGuard<'static, Inner> {
    // Survive poisoning: the tolerant harvest path catches worker panics,
    // and a panic between lock and unlock must not wedge observability
    // for the rest of the process.
    collector().lock().unwrap_or_else(|e| e.into_inner())
}

/// Switches collection on, discarding any previous window. In
/// deterministic mode every duration (span walls, span starts, histogram
/// sums and bucket choice) is zeroed at the source so the drained trace
/// is bit-identical across runs.
pub fn enable(deterministic: bool) {
    *lock() = Inner::fresh(deterministic);
    ENABLED.store(true, Ordering::Release);
}

/// Switches collection off without draining. Open spans and recorded
/// data stay in the collector and survive a later re-[`enable`]-free
/// [`drain`]; instrumentation calls while disabled are no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether instrumentation calls currently record anything.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Computes the deterministic span ID for (parent, name, seq).
pub fn span_id(parent_id: u64, name: &str, seq: u64) -> u64 {
    let mut h = fnv1a64(&parent_id.to_le_bytes(), FNV_BASIS);
    h = fnv1a64(name.as_bytes(), h);
    fnv1a64(&seq.to_le_bytes(), h)
}

/// Opens a span; it closes when the returned guard drops. Spans must be
/// opened and closed on the single orchestration thread (guards are
/// intentionally `!Send` and nest strictly).
#[must_use = "the span closes when this guard drops"]
pub fn span(name: &str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard {
            id: 0,
            active: false,
            _not_send: std::marker::PhantomData,
        };
    }
    let mut inner = lock();
    let (parent_id, seq) = match inner.stack.last_mut() {
        Some(frame) => {
            let seq = frame.next_child_seq;
            frame.next_child_seq += 1;
            (frame.node.id, seq)
        }
        None => {
            let seq = inner.next_root_seq;
            inner.next_root_seq += 1;
            (0, seq)
        }
    };
    let id = span_id(parent_id, name, seq);
    let start_ms = if inner.deterministic {
        0.0
    } else {
        inner.epoch.elapsed().as_secs_f64() * 1e3
    };
    inner.stack.push(Frame {
        node: SpanNode {
            id,
            name: name.to_string(),
            seq,
            start_ms,
            wall_ms: 0.0,
            events: Vec::new(),
            children: Vec::new(),
        },
        started: Instant::now(),
        next_child_seq: 0,
    });
    inner.spans_total += 1;
    SpanGuard {
        id,
        active: true,
        _not_send: std::marker::PhantomData,
    }
}

/// Closes its span on drop. `!Send`: spans belong to the orchestration
/// thread.
pub struct SpanGuard {
    id: u64,
    active: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let mut inner = lock();
        // Only pop if this guard's span is still the innermost open one;
        // an intervening enable() reset orphans older guards harmlessly.
        if inner.stack.last().map(|f| f.node.id) != Some(self.id) {
            return;
        }
        let frame = inner.stack.pop().expect("checked non-empty");
        let mut node = frame.node;
        if !inner.deterministic {
            node.wall_ms = frame.started.elapsed().as_secs_f64() * 1e3;
        }
        match inner.stack.last_mut() {
            Some(parent) => parent.node.children.push(node),
            None => inner.roots.push(node),
        }
    }
}

/// Adds `delta` to the named monotonic counter. Thread-safe; when called
/// on a rayon-shim pool worker the delta is also attributed to that
/// worker's own section of the trace.
pub fn counter(name: &str, delta: u64) {
    if !is_enabled() || delta == 0 {
        return;
    }
    let worker = rayon::current_worker_id();
    let mut inner = lock();
    *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    // Merged totals are a pure function of the workload; which pool
    // worker processed which chunk is not. Deterministic windows omit
    // the per-worker split so the drained trace stays bit-identical
    // across runs on any core count.
    if inner.deterministic {
        return;
    }
    if let Some(w) = worker {
        *inner
            .worker_counters
            .entry(w)
            .or_default()
            .entry(name.to_string())
            .or_insert(0) += delta;
    }
}

/// Records a point event on the innermost open span (dropped with a
/// trace-level tally if no span is open).
pub fn event(name: &str) {
    if !is_enabled() {
        return;
    }
    let mut inner = lock();
    inner.events_total += 1;
    if let Some(frame) = inner.stack.last_mut() {
        frame.node.events.push(name.to_string());
    }
}

/// Records one duration observation into the named fixed-bucket
/// histogram. In deterministic mode the observation is counted but its
/// value is zeroed, keeping bucket placement reproducible.
pub fn observe_ms(name: &str, ms: f64) {
    if !is_enabled() {
        return;
    }
    let mut inner = lock();
    let ms = if inner.deterministic { 0.0 } else { ms };
    inner
        .histograms
        .entry(name.to_string())
        .or_insert_with(Histogram::new)
        .observe(ms);
}

/// Ends the window: switches collection off, force-closes any spans
/// still open (in stack order, zero wall in deterministic mode), and
/// returns the merged [`Trace`]. The collector is left empty.
pub fn drain() -> Trace {
    ENABLED.store(false, Ordering::Release);
    let mut inner = lock();
    while let Some(frame) = inner.stack.pop() {
        let mut node = frame.node;
        if !inner.deterministic {
            node.wall_ms = frame.started.elapsed().as_secs_f64() * 1e3;
        }
        match inner.stack.last_mut() {
            Some(parent) => parent.node.children.push(node),
            None => inner.roots.push(node),
        }
    }
    let done = std::mem::replace(&mut *inner, Inner::fresh(false));
    Trace {
        deterministic: done.deterministic,
        spans: done.roots,
        counters: done.counters,
        worker_counters: done.worker_counters,
        histograms: done.histograms,
        spans_total: done.spans_total,
        events_total: done.events_total,
    }
}

impl Trace {
    /// Merged total for one counter (0 if never bumped).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// A 16-hex-digit digest of the span tree's *structure* — depth,
    /// name, and sequence of every span in DFS order, never any
    /// duration — identical across reruns of a deterministic pipeline.
    pub fn structural_digest(&self) -> String {
        fn walk(node: &SpanNode, depth: u64, state: u64) -> u64 {
            let mut h = fnv1a64(&depth.to_le_bytes(), state);
            h = fnv1a64(node.name.as_bytes(), h);
            h = fnv1a64(&node.seq.to_le_bytes(), h);
            for child in &node.children {
                h = walk(child, depth + 1, h);
            }
            h
        }
        let mut state = FNV_BASIS;
        for root in &self.spans {
            state = walk(root, 0, state);
        }
        format!("{state:016x}")
    }

    /// Canonical JSON, parseable by `fred_recover::json::parse`. Span
    /// IDs are 16-hex strings (u64 does not fit an f64 exactly).
    pub fn to_json(&self) -> String {
        fn write_span(out: &mut String, node: &SpanNode, indent: usize) {
            let pad = "  ".repeat(indent);
            out.push_str(&format!(
                "{pad}{{\"id\": \"{:016x}\", \"name\": \"{}\", \"seq\": {}, \"start_ms\": {:.3}, \"wall_ms\": {:.3}, \"events\": [",
                node.id,
                escape(&node.name),
                node.seq,
                node.start_ms,
                node.wall_ms,
            ));
            for (i, e) in node.events.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\"", escape(e)));
            }
            out.push_str("], \"children\": [");
            if node.children.is_empty() {
                out.push_str("]}");
            } else {
                out.push('\n');
                for (i, child) in node.children.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    write_span(out, child, indent + 1);
                }
                out.push_str(&format!("\n{pad}]}}"));
            }
        }

        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"deterministic\": {},\n  \"spans_total\": {},\n  \"events_total\": {},\n  \"span_tree_digest\": \"{}\",\n",
            self.deterministic,
            self.spans_total,
            self.events_total,
            self.structural_digest(),
        ));
        out.push_str("  \"spans\": [");
        if !self.spans.is_empty() {
            out.push('\n');
            for (i, root) in self.spans.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                write_span(&mut out, root, 2);
            }
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"counters\": [");
        if !self.counters.is_empty() {
            out.push('\n');
            let rows: Vec<String> = self
                .counters
                .iter()
                .map(|(k, v)| format!("    {{\"counter\": \"{}\", \"value\": {v}}}", escape(k)))
                .collect();
            out.push_str(&rows.join(",\n"));
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"workers\": [");
        if !self.worker_counters.is_empty() {
            out.push('\n');
            let rows: Vec<String> = self
                .worker_counters
                .iter()
                .map(|(w, counters)| {
                    let inner: Vec<String> = counters
                        .iter()
                        .map(|(k, v)| {
                            format!("      {{\"counter\": \"{}\", \"value\": {v}}}", escape(k))
                        })
                        .collect();
                    format!(
                        "    {{\"worker\": {w}, \"counters\": [\n{}\n    ]}}",
                        inner.join(",\n")
                    )
                })
                .collect();
            out.push_str(&rows.join(",\n"));
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"histograms\": [");
        if !self.histograms.is_empty() {
            out.push('\n');
            let rows: Vec<String> = self
                .histograms
                .iter()
                .map(|(k, h)| {
                    let buckets: Vec<String> =
                        h.buckets.iter().map(|b| b.to_string()).collect();
                    format!(
                        "    {{\"name\": \"{}\", \"count\": {}, \"sum_ms\": {:.3}, \"buckets\": [{}]}}",
                        escape(k),
                        h.count,
                        h.sum_ms,
                        buckets.join(", ")
                    )
                })
                .collect();
            out.push_str(&rows.join(",\n"));
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// The span tree as a chrome://tracing / Perfetto-compatible JSON
    /// array of complete (`"ph": "X"`) events, timestamps in µs.
    pub fn to_chrome_json(&self) -> String {
        fn walk(out: &mut Vec<String>, node: &SpanNode) {
            out.push(format!(
                "{{\"name\": \"{}\", \"ph\": \"X\", \"ts\": {:.1}, \"dur\": {:.1}, \"pid\": 1, \"tid\": 1}}",
                escape(&node.name),
                node.start_ms * 1e3,
                node.wall_ms * 1e3,
            ));
            for child in &node.children {
                walk(out, child);
            }
        }
        let mut rows = Vec::new();
        for root in &self.spans {
            walk(&mut rows, root);
        }
        format!("[\n{}\n]\n", rows.join(",\n"))
    }
}

/// Escapes a string for hand-rolled JSON output (same rules as
/// `fred_recover::json::escape`, copied to keep this crate at the bottom
/// of the dependency order).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// The collector is process-global; serialize tests that enable it.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_calls_record_nothing() {
        let _g = guard();
        disable();
        counter("x", 5);
        event("e");
        observe_ms("h", 1.0);
        {
            let _s = span("root");
        }
        enable(true);
        let t = drain();
        assert_eq!(t.spans_total, 0);
        assert_eq!(t.events_total, 0);
        assert!(t.counters.is_empty());
        assert!(t.histograms.is_empty());
    }

    #[test]
    fn span_ids_and_digest_are_deterministic() {
        let _g = guard();
        let run = || {
            enable(true);
            {
                let _root = span("pipeline");
                {
                    let _a = span("stage_a");
                    event("mark");
                }
                let _b = span("stage_b");
            }
            drain()
        };
        let t1 = run();
        let t2 = run();
        assert_eq!(t1, t2, "deterministic traces must be bit-identical");
        assert_eq!(t1.spans_total, 3);
        assert_eq!(t1.spans.len(), 1);
        let root = &t1.spans[0];
        assert_eq!(root.id, span_id(0, "pipeline", 0));
        assert_eq!(root.children[0].id, span_id(root.id, "stage_a", 0));
        assert_eq!(root.children[1].id, span_id(root.id, "stage_b", 1));
        assert_eq!(root.children[0].events, vec!["mark".to_string()]);
        assert_eq!(root.wall_ms, 0.0, "deterministic walls are zeroed");
        assert_eq!(t1.structural_digest().len(), 16);
        // A different structure produces a different digest.
        enable(true);
        {
            let _root = span("pipeline");
            let _a = span("stage_a");
        }
        let t3 = drain();
        assert_ne!(t1.structural_digest(), t3.structural_digest());
    }

    #[test]
    fn counters_merge_and_attribute_to_workers() {
        let _g = guard();
        enable(true);
        counter("rows", 3);
        counter("rows", 4);
        counter("zero", 0);
        use rayon::prelude::*;
        let per: Vec<u64> = vec![1u64, 2, 3, 4]
            .into_par_iter()
            .map(|x| {
                counter("rows", x);
                x
            })
            .collect();
        assert_eq!(per, vec![1, 2, 3, 4]);
        let t = drain();
        assert_eq!(t.counter_total("rows"), 17);
        assert_eq!(t.counter_total("zero"), 0);
        assert!(!t.counters.contains_key("zero"), "zero deltas drop out");
        let worker_sum: u64 = t
            .worker_counters
            .values()
            .filter_map(|c| c.get("rows"))
            .sum();
        if rayon::current_num_threads() > 1 {
            assert_eq!(worker_sum, 10, "pool-side deltas attribute to workers");
        } else {
            assert_eq!(worker_sum, 0, "single-core runs never enter the pool");
        }
    }

    #[test]
    fn histograms_bucket_and_deterministic_mode_zeroes() {
        let _g = guard();
        enable(false);
        observe_ms("lat", 0.1);
        observe_ms("lat", 3.0);
        observe_ms("lat", 1e9);
        let t = drain();
        let h = &t.histograms["lat"];
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[4], 1); // 3.0 ms -> (2, 4]
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1);
        assert!(h.sum_ms > 0.0);

        enable(true);
        observe_ms("lat", 3.0);
        let t = drain();
        let h = &t.histograms["lat"];
        assert_eq!((h.count, h.sum_ms), (1, 0.0));
        assert_eq!(h.buckets[0], 1, "deterministic observations hit bucket 0");
    }

    #[test]
    fn drain_force_closes_open_spans() {
        let _g = guard();
        enable(true);
        let s = span("never_closed");
        let t = drain();
        assert_eq!(t.spans.len(), 1);
        assert_eq!(t.spans[0].name, "never_closed");
        drop(s); // guard outlives the drain; dropping it is a no-op
        assert!(!is_enabled());
    }

    #[test]
    fn json_exports_are_well_formed() {
        let _g = guard();
        enable(true);
        {
            let _root = span("pipeline");
            let _child = span("stage \"quoted\"");
            counter("c.one", 2);
            event("ev");
        }
        observe_ms("lat", 1.0);
        let t = drain();
        let json = t.to_json();
        assert!(json.contains("\"span_tree_digest\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("{\"counter\": \"c.one\", \"value\": 2}"));
        assert!(json.ends_with("}\n"));
        let chrome = t.to_chrome_json();
        assert!(chrome.starts_with("[\n"));
        assert!(chrome.contains("\"ph\": \"X\""));
        assert_eq!(chrome.matches("\"ph\"").count(), 2);
    }
}
