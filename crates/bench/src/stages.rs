//! Canonical stage names, shared by every layer that speaks them.
//!
//! Three places used to spell these strings independently — `perf.rs`
//! (the emitter), `ckpt.rs` (the checkpoint interner) and `compare.rs`
//! (the gate) — so a typo in one drifted silently until compare time.
//! This module is now the single source: the timed-stage roster, the
//! checkpoint/runner stage names, and the span names the observability
//! layer pins in its structural digest.

/// Quick-world timed stages, in emission order.
pub const WORLD_BUILD: &str = "world_build";
/// MDAV at the tracked k.
pub const MDAV_K5: &str = "mdav_k5";
/// Per-level anonymization across the whole k sweep.
pub const ANONYMIZE_ALL_LEVELS: &str = "anonymize_all_levels";
/// The shared auxiliary harvest.
pub const HARVEST_AUXILIARY: &str = "harvest_auxiliary";
/// The interpreted per-row estimate path.
pub const ESTIMATE_NAIVE_PER_ROW: &str = "estimate_naive_per_row";
/// The compiled batch/parallel estimate path.
pub const ESTIMATE_BATCH_PARALLEL: &str = "estimate_batch_parallel";
/// The full sweep end-to-end.
pub const SWEEP_END_TO_END: &str = "sweep_end_to_end";
/// The multi-release composition attack.
pub const COMPOSITION_SWEEP: &str = "composition_sweep";
/// The defense-policy sweep next to it.
pub const COMPOSITION_DEFENSE: &str = "composition_defense";
/// The hypothesis-testing evaluation (ROC / TPR@low-FPR / empirical ε).
pub const EVAL_SWEEP: &str = "eval_sweep";
/// The fault-injection sweep.
pub const ROBUSTNESS_SWEEP: &str = "robustness_sweep";

/// Large-world timed stages, in emission order.
pub const WORLD_BUILD_LARGE: &str = "world_build_large";
/// MDAV at the tracked k on the large world.
pub const MDAV_K5_LARGE: &str = "mdav_k5_large";
/// Chunked release streaming.
pub const RELEASE_STREAM_LARGE: &str = "release_stream_large";
/// The parallel harvest.
pub const HARVEST_PARALLEL_LARGE: &str = "harvest_parallel_large";
/// The same cached path pinned to one thread.
pub const HARVEST_SINGLE_THREAD_LARGE: &str = "harvest_single_thread_large";
/// The uncached sequential reference (sampled by default).
pub const HARVEST_SEQUENTIAL_LARGE: &str = "harvest_sequential_large";
/// The full-table sequential reference (`--exhaustive`).
pub const HARVEST_EXHAUSTIVE_LARGE: &str = "harvest_exhaustive_large";
/// Streamed estimates over the chunked release.
pub const ESTIMATE_STREAM_LARGE: &str = "estimate_stream_large";
/// The composition attack on the large world.
pub const COMPOSITION_LARGE: &str = "composition_large";

/// Sharded 100k-world timed stages (`repro --quick --size 100000`), in
/// emission order.
pub const WORLD_BUILD_100K: &str = "world_build_100k";
/// Hierarchical (per-leaf) MDAV at the tracked k over the full world.
pub const MDAV_HIER_100K: &str = "mdav_hier_100k";
/// The shard-partitioned harvest over the full world.
pub const HARVEST_SHARDED_100K: &str = "harvest_sharded_100k";
/// The unsharded parallel harvest reference at the same size.
pub const HARVEST_UNSHARDED_100K: &str = "harvest_unsharded_100k";
/// The per-shard streaming intersection over a full-size scenario.
pub const INTERSECT_SHARDED_100K: &str = "intersect_sharded_100k";
/// The seeded-subsample equivalence pass (sharded-vs-unsharded MDAV and
/// intersection digest pairs).
pub const EQUIVALENCE_100K: &str = "equivalence_100k";

/// Every timed stage name a baseline may carry, quick then large, in
/// emission order. `ckpt.rs` interns parsed names against this roster (a
/// checkpoint naming a stage outside it is corrupt or stale) and
/// `compare.rs` treats membership as the timing-stage namespace.
pub const TIMING_ROSTER: &[&str] = &[
    WORLD_BUILD,
    MDAV_K5,
    ANONYMIZE_ALL_LEVELS,
    HARVEST_AUXILIARY,
    ESTIMATE_NAIVE_PER_ROW,
    ESTIMATE_BATCH_PARALLEL,
    SWEEP_END_TO_END,
    COMPOSITION_SWEEP,
    COMPOSITION_DEFENSE,
    EVAL_SWEEP,
    ROBUSTNESS_SWEEP,
    WORLD_BUILD_LARGE,
    MDAV_K5_LARGE,
    RELEASE_STREAM_LARGE,
    HARVEST_PARALLEL_LARGE,
    HARVEST_SINGLE_THREAD_LARGE,
    HARVEST_SEQUENTIAL_LARGE,
    HARVEST_EXHAUSTIVE_LARGE,
    ESTIMATE_STREAM_LARGE,
    COMPOSITION_LARGE,
    WORLD_BUILD_100K,
    MDAV_HIER_100K,
    HARVEST_SHARDED_100K,
    HARVEST_UNSHARDED_100K,
    INTERSECT_SHARDED_100K,
    EQUIVALENCE_100K,
];

/// Checkpoint/runner stage names: the boundaries [`fred_recover`]'s
/// stage runner commits, retries and resumes at, and the span names the
/// observability profile groups self-time under. A checkpoint file is
/// named `<stage>.ckpt.json` after one of these.
pub mod runner {
    /// World generation (anchor).
    pub const WORLD_BUILD: &str = "world_build";
    /// MDAV + per-level anonymization (anchor).
    pub const MDAV: &str = "mdav";
    /// The auxiliary harvest (anchor).
    pub const HARVEST: &str = "harvest";
    /// The naive/batch estimate comparison.
    pub const ESTIMATES: &str = "estimates";
    /// The full sweep.
    pub const SWEEP: &str = "sweep";
    /// The composition attack.
    pub const COMPOSITION: &str = "composition";
    /// The defense-policy sweep.
    pub const DEFENSE: &str = "defense";
    /// The hypothesis-testing evaluation.
    pub const EVAL: &str = "eval";
    /// The fault-injection sweep.
    pub const ROBUSTNESS: &str = "robustness";
    /// The large-world block.
    pub const LARGE: &str = "large";
    /// The sharded 100k-world block.
    pub const LARGE_100K: &str = "large_100k";

    /// All runner stages in execution order.
    pub const ROSTER: &[&str] = &[
        WORLD_BUILD,
        MDAV,
        HARVEST,
        ESTIMATES,
        SWEEP,
        COMPOSITION,
        DEFENSE,
        EVAL,
        ROBUSTNESS,
        LARGE,
        LARGE_100K,
    ];
}

/// Root span of the whole quick-bench run in the observability trace.
pub const SPAN_ROOT: &str = "quick_bench";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosters_are_duplicate_free() {
        for roster in [TIMING_ROSTER, runner::ROSTER] {
            for (i, a) in roster.iter().enumerate() {
                assert!(!roster[i + 1..].contains(a), "duplicate stage name {a}");
            }
        }
    }
}
