//! # fred-bench — experiment harness
//!
//! Shared workload builders and experiment runners used by both the
//! `repro` binary (which prints every table and figure of the paper) and
//! the Criterion benches (which time the same regeneration code paths).
//!
//! Experiment index (see `DESIGN.md` / `EXPERIMENTS.md`):
//!
//! | id | paper artifact | runner |
//! |----|----------------|--------|
//! | T1-T4 | Tables I-IV (running example) | [`tables::render_all`] |
//! | F2 | Figure 2 fuzzy system | [`tables::figure2_demo`] |
//! | F4 | `(P∘P′)` vs k | [`figures::figure_sweep`] |
//! | F5 | `(P∘P̂)` vs k | [`figures::figure_sweep`] |
//! | F6 | gain `G` vs k | [`figures::figure_sweep`] |
//! | F7 | utility `U_k` vs k | [`figures::figure_sweep`] |
//! | F8 | `H` vs k, `k_opt` | [`figures::figure8`] |
//! | A1-A4 | ablations | [`ablations`] |

#![warn(missing_docs)]

pub mod ablations;
pub mod ckpt;
pub mod compare;
pub mod figures;
pub mod perf;
pub mod stages;
pub mod tables;
pub mod world;

pub use world::{faculty_world, World, WorldConfig};
