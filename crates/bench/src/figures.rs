//! Figure regeneration: the parameter sweeps behind paper Figures 4-8.

use fred_anon::{Mdav, QiStyle};
use fred_attack::{FuzzyFusion, FuzzyFusionConfig, HarvestConfig, MidpointEstimator};
use fred_core::{
    fred_anonymize, sweep, FredParams, FredResult, FredWeights, SweepConfig, SweepReport,
    Thresholds,
};

use crate::world::World;

/// The k range the paper sweeps (Figures 4-7 plot k = 2..16).
pub const PAPER_K_MIN: usize = 2;
/// Upper end of the paper's sweep.
pub const PAPER_K_MAX: usize = 16;

/// Runs the joint sweep that generates Figures 4, 5, 6 and 7:
/// for each k — `(P∘P′)` (before fusion, Fig 4), `(P∘P̂)` (after fusion,
/// Fig 5), information gain `G` (Fig 6) and utility `U_k` (Fig 7).
///
/// The paper's Figure 4 baseline is k-invariant (its axis repeats one
/// value), which matches a pre-fusion adversary whose best guess is the
/// centre of the publicly-known salary range: [`MidpointEstimator`].
pub fn figure_sweep(world: &World) -> SweepReport {
    figure_sweep_with_range(world, PAPER_K_MIN, PAPER_K_MAX)
}

/// [`figure_sweep`] with an explicit k range (used by benches at reduced
/// scale).
pub fn figure_sweep_with_range(world: &World, k_min: usize, k_max: usize) -> SweepReport {
    let before = MidpointEstimator::default();
    let after = FuzzyFusion::new(FuzzyFusionConfig::default()).expect("default config valid");
    sweep(
        &world.table,
        &world.web,
        &Mdav::new(),
        &before,
        &after,
        &SweepConfig {
            k_min,
            k_max,
            style: QiStyle::Range,
            harvest: HarvestConfig::default(),
            chunk_rows: None,
        },
    )
    .expect("sweep over a well-formed world cannot fail")
}

/// Figure 8: the weighted objective `H` over the feasible window and the
/// optimal `k`.
///
/// The paper sets `Tp = 3.075e8` and `Tu = 0.0018` "based on experimental
/// observations", yielding the solution space k = 7..14 on their data. We
/// derive the analogous thresholds from our own sweep: `Tp` is the
/// protection reached at `window.0`, `Tu` the utility at `window.1`, which
/// reproduces the same kind of interior feasible window.
pub fn figure8(world: &World, window: (usize, usize)) -> (FredResult, Thresholds) {
    let report = figure_sweep_with_range(world, PAPER_K_MIN, window.1 + 2);
    let tp = report
        .row_for(window.0)
        .map(|r| r.dissim_after)
        .expect("window start inside sweep");
    let tu = report
        .row_for(window.1)
        .map(|r| r.utility)
        .expect("window end inside sweep");
    let thresholds = Thresholds::new(tp, tu);
    let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).expect("default config valid");
    let result = fred_anonymize(
        &world.table,
        &world.web,
        &Mdav::new(),
        &fusion,
        &FredParams {
            thresholds,
            weights: FredWeights::default(),
            k_min: PAPER_K_MIN,
            k_max: window.1 + 2,
            style: QiStyle::Range,
            harvest: HarvestConfig::default(),
        },
    )
    .expect("paper-style window is feasible");
    (result, thresholds)
}

/// Renders a numeric series as a rough ASCII plot (one row per k), so the
/// repro harness output can be eyeballed against the paper's figures.
pub fn ascii_plot(title: &str, ks: &[usize], ys: &[f64]) -> String {
    let lo = ys.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let width = 48usize;
    let mut out = format!("{title}\n");
    for (&k, &y) in ks.iter().zip(ys) {
        let frac = if hi > lo { (y - lo) / (hi - lo) } else { 0.5 };
        let bar = (frac * width as f64).round() as usize;
        out.push_str(&format!(
            "  k={k:<3} {:>12.4e} |{}\n",
            y,
            "*".repeat(bar.max(1))
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{faculty_world, WorldConfig};

    fn small_world() -> World {
        faculty_world(&WorldConfig {
            size: 80,
            ..WorldConfig::default()
        })
    }

    #[test]
    fn figure_sweep_shapes_hold() {
        let world = small_world();
        let report = figure_sweep_with_range(&world, 2, 12);
        let before = report.before_series();
        let after = report.after_series();
        let gain = report.gain_series();
        // Fig 4 vs 5: fusion strictly helps at every k.
        for (b, a) in before.iter().zip(&after) {
            assert!(a < b, "after {a} !< before {b}");
        }
        // Fig 6: positive gain everywhere.
        assert!(gain.iter().all(|&g| g > 0.0));
        // Fig 6 trend: gain at the high-k end below gain at the low-k end.
        assert!(
            gain.last().unwrap() < gain.first().unwrap(),
            "gain should trend down: {gain:?}"
        );
        // Fig 5 trend: after-fusion dissimilarity rises with k.
        assert!(after.last().unwrap() > after.first().unwrap());
    }

    #[test]
    fn figure8_finds_interior_optimum() {
        // The paper's window (k = 7..14) is carved by thresholds chosen
        // "based on experimental observations" on its dataset; the exact
        // window is noise-sensitive, so this assertion runs on the
        // canonical default world (the headline experiment), where the
        // derived thresholds reproduce the interior-optimum structure.
        let world = faculty_world(&WorldConfig::default());
        let (result, thresholds) = figure8(&world, (7, 14));
        assert!(
            result.k_opt >= 7 && result.k_opt <= 14,
            "k_opt {}",
            result.k_opt
        );
        // The solution space respects the derived thresholds.
        for c in result.solution_space() {
            assert!(c.protection >= thresholds.tp);
            assert!(c.utility >= thresholds.tu);
        }
    }

    #[test]
    fn ascii_plot_renders_all_rows() {
        let s = ascii_plot("t", &[2, 3], &[1.0, 2.0]);
        assert_eq!(s.lines().count(), 3);
        assert!(s.contains("k=2"));
    }
}
