//! The reproduction harness: regenerates every table and figure of
//! "On Breaching Enterprise Data Privacy Through Adversarial Information
//! Fusion" (ICDE 2008) and prints the same rows/series the paper reports.
//!
//! Usage:
//!   repro                 # everything
//!   repro --tables        # Tables I-IV + Figure 2 walk-through
//!   repro --fig 4         # one figure (4, 5, 6, 7 or 8)
//!   repro --ablations     # the extension ablations (A1-A6)
//!   repro --compose       # the multi-release composition attack sweep
//!   repro --compose --defend all   # + the defense policies side by side
//!   repro --quick         # reduced timed sweep -> BENCH_sweep.json
//!   repro --quick --compose  # + composition stages (quick world and,
//!                            # with the large stage enabled, the 10k-row
//!                            # composition_large block) and the gated
//!                            # hypothesis-testing eval block (ROC AUC,
//!                            # TPR@FPR=1e-3, empirical epsilon per
//!                            # (k, R, defense) cell) in BENCH_sweep.json
//!   repro --quick --compose --defend all  # + the composition_defense block
//!                                         # and one defended eval cell per
//!                                         # policy at the stage (k, R)
//!   repro --quick --exhaustive  # + the full-table harvest reference next
//!                               # to the seeded 512-row sample
//!   repro --quick --faults 0.1  # + the fault-injection robustness sweep
//!                               # (robustness block in BENCH_sweep.json)
//!   repro --quick --checkpoint-dir ckpt  # commit a checksummed artifact at
//!                                        # every stage boundary (deterministic
//!                                        # mode -> BENCH_sweep.ckpt.json)
//!   repro --quick --checkpoint-dir ckpt --resume  # restart from the last
//!                                                 # valid checkpoint; the JSON
//!                                                 # is bit-identical to an
//!                                                 # uninterrupted run
//!   repro --quick --trace trace.json  # + the span/counter trace (canonical
//!                                     # JSON) and trace.json.chrome.json
//!                                     # for chrome://tracing / Perfetto
//!   repro --quick --out perf.json
//!   repro --size 240 --seed 2008
//!
//! `FRED_HALT_AFTER=<stage>` makes a checkpointed run exit with code 86
//! right after that stage's checkpoint commits — the deterministic
//! kill-point the resume tests and the CI smoke job use.

use fred_bench::compare::compare_baselines;
use fred_bench::figures::{ascii_plot, figure8, figure_sweep};
use fred_bench::perf::{quick_bench, QuickBenchOptions};
use fred_bench::tables::{figure2_demo, render_all};
use fred_bench::{ablations, faculty_world, WorldConfig};
use fred_composition::DefensePolicy;

/// Default large-world size for `--quick` (override with `--large-size N`,
/// disable with `--large-size 0`).
const DEFAULT_LARGE_SIZE: usize = 10_000;

/// `--size` requests at or above this row count run the sharded
/// `large_100k` stage instead of blowing up the quick sweep's quadratic
/// estimate references.
const SHARDED_SIZE_THRESHOLD: usize = 20_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = WorldConfig::default();
    let mut want_tables = false;
    let mut want_ablations = false;
    let mut want_compose = false;
    let mut want_quick = false;
    let mut want_exhaustive = false;
    let mut faults: Option<f64> = None;
    let mut defend: Option<Vec<DefensePolicy>> = None;
    let mut out_given = false;
    let mut out_path = String::from("BENCH_sweep.json");
    let mut large_size = DEFAULT_LARGE_SIZE;
    let mut checkpoint_dir: Option<String> = None;
    let mut resume = false;
    let mut compare_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut figs: Vec<u32> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tables" => want_tables = true,
            "--ablations" => want_ablations = true,
            "--compose" => want_compose = true,
            "--quick" => want_quick = true,
            "--exhaustive" => want_exhaustive = true,
            "--faults" => {
                i += 1;
                let rate: f64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--faults needs a rate in 0.0..=1.0"));
                if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                    usage("--faults needs a rate in 0.0..=1.0");
                }
                faults = Some(rate);
            }
            "--defend" => {
                i += 1;
                let which = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--defend needs a policy (or `all`)"));
                defend = Some(parse_defend(&which));
            }
            "--out" => {
                i += 1;
                out_given = true;
                out_path = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| usage("--out needs a path"));
            }
            "--large-size" => {
                i += 1;
                large_size = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--large-size needs an integer (0 disables)"));
            }
            "--checkpoint-dir" => {
                i += 1;
                checkpoint_dir = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--checkpoint-dir needs a path")),
                );
            }
            "--resume" => resume = true,
            "--trace" => {
                i += 1;
                trace_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--trace needs an output path")),
                );
            }
            "--compare" => {
                i += 1;
                compare_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--compare needs a baseline path")),
                );
            }
            "--fig" => {
                i += 1;
                figs.push(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--fig needs a number in 4..=8")),
                );
            }
            "--size" => {
                i += 1;
                config.size = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--size needs an integer"));
            }
            "--seed" => {
                i += 1;
                config.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    if (out_given
        || compare_path.is_some()
        || large_size != DEFAULT_LARGE_SIZE
        || want_exhaustive
        || faults.is_some()
        || checkpoint_dir.is_some()
        || resume
        || trace_path.is_some())
        && !want_quick
    {
        usage(
            "--out/--compare/--large-size/--exhaustive/--faults/--checkpoint-dir/--resume/--trace \
             only apply together with --quick",
        );
    }
    if resume && checkpoint_dir.is_none() {
        usage("--resume requires --checkpoint-dir (nothing to resume from)");
    }
    if defend.is_some() && !want_compose {
        usage("--defend only applies together with --compose");
    }
    if want_quick {
        if checkpoint_dir.is_some() && !out_given {
            // A checkpointed run is deterministic (zeroed timings): don't
            // let it silently replace the committed timing baseline.
            out_path = String::from("BENCH_sweep.ckpt.json");
            println!(
                "note: checkpointed runs zero all timings; writing to {out_path} \
                 (use --out to override)"
            );
        }
        let large = if large_size == 0 {
            None
        } else {
            Some(large_size)
        };
        // `--size 100000`-scale requests route to the sharded block: the
        // quick sweep's estimate references are quadratic in the world
        // size, so the sweep keeps its default world and the big number
        // drives the shard-partitioned pipeline instead.
        let sharded_size = if config.size >= SHARDED_SIZE_THRESHOLD {
            let size = config.size;
            config.size = WorldConfig::default().size;
            println!(
                "note: --size {size} >= {SHARDED_SIZE_THRESHOLD} runs the sharded large_100k \
                 stage; the quick sweep keeps its default {}-record world",
                config.size
            );
            Some(size)
        } else {
            None
        };
        run_quick(
            &config,
            &out_path,
            compare_path.as_deref(),
            trace_path.as_deref(),
            &QuickBenchOptions {
                large_size: large,
                sharded_size,
                compose: want_compose,
                defend,
                exhaustive: want_exhaustive,
                faults,
                checkpoint_dir: checkpoint_dir.map(std::path::PathBuf::from),
                resume,
                halt_after: std::env::var("FRED_HALT_AFTER").ok(),
                // Every quick run self-profiles: the baseline's `profile`
                // block is part of what `--compare` gates.
                profile: true,
            },
        );
        return;
    }
    let all = !want_tables && !want_ablations && !want_compose && figs.is_empty();

    if want_tables || all {
        print_tables();
    }
    if all {
        figs = vec![4, 5, 6, 7, 8];
    }
    if !figs.is_empty() {
        print_figures(&config, &figs);
    }
    if want_ablations || all {
        print_ablations(&config);
    }
    if want_compose || all {
        print_composition(&config, defend.as_deref());
    }
}

/// Parses the `--defend` argument: a policy name or `all`.
fn parse_defend(which: &str) -> Vec<DefensePolicy> {
    let k = fred_bench::perf::STAGE_K;
    match which {
        "all" => DefensePolicy::default_set(k),
        "coordinated-seeds" => vec![DefensePolicy::CoordinatedSeeds],
        "overlap-cap" => vec![DefensePolicy::OverlapCap {
            max_shared_fraction: 0.9,
        }],
        "calibrated-widen" => vec![DefensePolicy::CalibratedWiden { target_k: k }],
        other => usage(&format!(
            "unknown defense `{other}` (use all, coordinated-seeds, overlap-cap or \
             calibrated-widen)"
        )),
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: repro [--tables] [--fig N]... [--ablations] [--compose] \
         [--defend POLICY] [--quick] [--exhaustive] [--faults RATE] \
         [--checkpoint-dir PATH] [--resume] [--trace PATH] \
         [--out PATH] [--large-size N] [--compare BASELINE] [--size N] [--seed N]\n\
         regenerates the paper's tables (I-IV) and figures (4-8);\n\
         --compose runs the multi-release composition attack sweep\n\
         (with --quick: records the composition stage in the baseline,\n\
         plus the composition_large stage at the large-world size when\n\
         the large stage is enabled);\n\
         --defend sweeps composition defenses next to the attack\n\
         (all, coordinated-seeds, overlap-cap, calibrated-widen; with\n\
         --quick: records the composition_defense block in the baseline);\n\
         --quick runs a reduced timed sweep plus a large-world stage\n\
         (default 10000 rows; --large-size 0 disables) and writes a\n\
         machine-readable perf baseline (default BENCH_sweep.json);\n\
         --size N with --quick sizes the sweep world; N >= 20000 instead\n\
         runs the shard-partitioned pipeline at N rows (the large_100k\n\
         block: hierarchical MDAV, per-shard harvest + intersection,\n\
         digest-pinned to the unsharded references) while the sweep\n\
         keeps its default world;\n\
         --exhaustive additionally runs the full-table harvest reference\n\
         (harvest_exhaustive_large) next to the seeded 512-row sample;\n\
         --faults re-runs harvest + composition under seeded corruption at\n\
         rates 0, RATE/2 and RATE through the fault-tolerant pipeline (plus\n\
         a targeted worst-case row), records the gated robustness block,\n\
         and injects transient stage failures at RATE into the retry\n\
         protocol (the recovery block);\n\
         --checkpoint-dir commits a checksummed artifact at every stage\n\
         boundary (deterministic mode: all timings zeroed; default output\n\
         moves to BENCH_sweep.ckpt.json);\n\
         --resume restarts from the last valid checkpoint in that\n\
         directory — the resulting JSON is bit-identical to an\n\
         uninterrupted run of the same configuration;\n\
         --compare gates the fresh run against a committed baseline and\n\
         exits non-zero on a perf regression;\n\
         --trace additionally writes the run's span/counter trace as\n\
         canonical JSON to PATH plus a chrome://tracing events file to\n\
         PATH.chrome.json (open via ui.perfetto.dev or chrome://tracing)"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// `--quick`: the reduced timed sweep, printed and persisted as JSON.
fn run_quick(
    config: &WorldConfig,
    out_path: &str,
    compare: Option<&str>,
    trace_path: Option<&str>,
    options: &QuickBenchOptions,
) {
    if config.size < 2 {
        usage("--quick needs --size >= 2 (the sweep starts at k = 2)");
    }
    if options.compose {
        // The composition stage k-anonymizes a core of overlap * size
        // rows; derive the bound from the stage's actual parameters so
        // this guard cannot drift out of sync with them.
        let overlap = fred_composition::CompositionSweepConfig::default().overlap;
        let min_size = (2..)
            .find(|&n| (n as f64 * overlap).round() as usize >= fred_bench::perf::STAGE_K)
            .expect("some size satisfies the core bound");
        if config.size < min_size {
            usage(&format!(
                "--quick --compose needs --size >= {min_size} (the composition core must hold \
                 k = {} rows)",
                fred_bench::perf::STAGE_K
            ));
        }
    }
    println!("======================================================================");
    println!(
        " Quick perf sweep: {} records, seed {}",
        config.size, config.seed
    );
    println!("======================================================================");
    // Load the comparison baseline BEFORE any write: when `--out` (or its
    // default) points at the same file as `--compare`, writing first would
    // silently diff the fresh run against itself.
    let committed = compare.map(
        |baseline_path| match std::fs::read_to_string(baseline_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: could not read baseline {baseline_path}: {e}");
                std::process::exit(1);
            }
        },
    );
    let bench = quick_bench(config, 2, 10, 3, options);
    print!("{}", bench.to_ascii());
    let fresh_json = bench.to_json();
    if let Some(trace_path) = trace_path {
        write_trace(&bench, trace_path);
    }
    let clobbers_baseline = compare.is_some_and(|baseline_path| {
        let canon = |p: &str| std::fs::canonicalize(p).unwrap_or_else(|_| p.into());
        canon(baseline_path) == canon(out_path)
    });
    if clobbers_baseline {
        // A gate run must not replace the baseline it is gating against;
        // regenerating the baseline is a deliberate act (`--out`, no
        // `--compare`).
        println!("  fresh baseline NOT written: {out_path} is the baseline under comparison");
    } else {
        if let Err(e) = std::fs::write(out_path, &fresh_json) {
            eprintln!("error: could not write {out_path}: {e}");
            std::process::exit(1);
        }
        println!("  baseline written to {out_path}");
    }
    if let (Some(baseline_path), Some(committed)) = (compare, committed) {
        let report = compare_baselines(&committed, &fresh_json);
        for note in &report.notes {
            println!("  compare: {note}");
        }
        if report.violations.is_empty() {
            println!("  compare: no perf regression versus {baseline_path}");
        } else {
            for v in &report.violations {
                eprintln!("  REGRESSION: {v}");
            }
            std::process::exit(1);
        }
    }
}

/// `--trace`: persists the drained span/counter trace as canonical JSON
/// plus a `chrome://tracing` events file, after validating both that the
/// canonical parser round-trips it and that the digest embedded in the
/// baseline's `profile` block matches the tree being written.
fn write_trace(bench: &fred_bench::perf::QuickBench, trace_path: &str) {
    let trace = bench
        .trace
        .as_ref()
        .expect("--quick runs always collect a trace");
    let trace_json = trace.to_json();
    if fred_recover::json::parse(&trace_json).is_none() {
        eprintln!("error: trace JSON failed self-validation (canonical parser rejected it)");
        std::process::exit(1);
    }
    let profile = bench
        .profile
        .as_ref()
        .expect("--quick runs always distill a profile");
    if profile.span_tree_digest != trace.structural_digest() {
        eprintln!(
            "error: trace digest {} disagrees with the profile block's {}",
            trace.structural_digest(),
            profile.span_tree_digest
        );
        std::process::exit(1);
    }
    let chrome_path = format!("{trace_path}.chrome.json");
    for (path, payload) in [
        (trace_path, trace_json),
        (&chrome_path[..], trace.to_chrome_json()),
    ] {
        if let Err(e) = std::fs::write(path, payload) {
            eprintln!("error: could not write {path}: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "  trace written to {trace_path} ({} spans, {} events; chrome-tracing view: {chrome_path})",
        trace.spans_total, trace.events_total
    );
}

fn print_tables() {
    println!("======================================================================");
    println!(" Running example: Tables I-IV (paper Section I)");
    println!("======================================================================");
    println!("{}", render_all());
    let (estimate, truth) = figure2_demo();
    println!("== Figure 2 walk-through: fusing Robert's release row with his web profile ==");
    println!("  paper: adversary concludes ~ $95,000 (true salary $98,230)");
    println!("  ours : fused estimate      $ {estimate:.0} (true salary $ {truth:.0})");
    println!();
}

fn print_figures(config: &WorldConfig, figs: &[u32]) {
    println!("======================================================================");
    println!(
        " Evaluation world: {} faculty, seed {} (paper Section VI-A)",
        config.size, config.seed
    );
    println!("======================================================================");
    let world = faculty_world(config);
    let report = figure_sweep(&world);
    println!("{}", report.to_ascii());
    let ks = report.ks();
    for &fig in figs {
        match fig {
            4 => println!(
                "{}",
                ascii_plot(
                    "Figure 4 — before information fusion (P o P'): flat in k",
                    &ks,
                    &report.before_series()
                )
            ),
            5 => println!(
                "{}",
                ascii_plot(
                    "Figure 5 — after information fusion (P o P^): below Fig 4, rising in k",
                    &ks,
                    &report.after_series()
                )
            ),
            6 => println!(
                "{}",
                ascii_plot(
                    "Figure 6 — information gain G: positive, trending down in k",
                    &ks,
                    &report.gain_series()
                )
            ),
            7 => println!(
                "{}",
                ascii_plot(
                    "Figure 7 — utility U_k = 1/C_DM(k): decreasing in k",
                    &ks,
                    &report.utility_series()
                )
            ),
            8 => {
                let (result, thresholds) = figure8(&world, (7, 14));
                println!("Figure 8 — weighted objective H over the feasible window");
                println!(
                    "  thresholds: Tp = {:.4e} (paper: 3.075e8), Tu = {:.4e} (paper: 0.0018)",
                    thresholds.tp, thresholds.tu
                );
                let space = result.solution_space();
                let ks: Vec<usize> = space.iter().map(|c| c.k).collect();
                let hs: Vec<f64> = space.iter().map(|c| c.h.unwrap_or(0.0)).collect();
                println!("{}", ascii_plot("  H over the solution space", &ks, &hs));
                println!(
                    "  k_opt = {} with H = {:.4} (paper reports k = 12 on its dataset)",
                    result.k_opt, result.h_opt
                );
                println!();
            }
            other => eprintln!("no figure {other}; the paper's evaluation has figures 4-8"),
        }
    }
}

fn print_composition(config: &WorldConfig, defend: Option<&[DefensePolicy]>) {
    use fred_attack::{FuzzyFusion, FuzzyFusionConfig};
    use fred_composition::{composition_sweep, defense_sweep, CompositionSweepConfig};

    println!("======================================================================");
    println!(" Composition: several independently k-anonymized releases, one core");
    println!(" (Ganta, Kasiviswanathan & Smith; extension beyond the paper)");
    println!("======================================================================");
    let world = faculty_world(config);
    let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).expect("default config valid");
    let sweep_config = CompositionSweepConfig {
        ks: vec![3, 5, 8],
        releases: vec![1, 2, 3, 4],
        ..CompositionSweepConfig::default()
    };
    match composition_sweep(
        &world.table,
        &world.web,
        &fred_anon::Mdav::new(),
        &fusion,
        &sweep_config,
    ) {
        Ok(report) => {
            println!("{}", report.to_ascii());
            println!(
                "  reading: every added release shrinks each target's candidate set and\n\
                 \x20 feasible sensitive range — k-anonymity does not compose."
            );
            println!();
        }
        Err(e) => eprintln!("composition sweep failed: {e}"),
    }
    if let Some(policies) = defend {
        println!("== Defenses: coordinated releases against the same adversary ==");
        let defense_config = CompositionSweepConfig {
            ks: vec![fred_bench::perf::STAGE_K],
            releases: vec![1, 2, 3],
            ..CompositionSweepConfig::default()
        };
        match defense_sweep(
            &world.table,
            &world.web,
            &fred_anon::Mdav::new(),
            &fusion,
            &defense_config,
            policies,
        ) {
            Ok(report) => {
                println!("{}", report.to_ascii());
                println!(
                    "  reading: coordination removes the independence the attack feeds on —\n\
                     \x20 residual gain stays below the undefended column, at the listed\n\
                     \x20 utility cost in published sensitive-range width."
                );
                println!();
            }
            Err(e) => eprintln!("defense sweep failed: {e}"),
        }
    }
}

fn print_ablations(config: &WorldConfig) {
    println!("======================================================================");
    println!(" Ablations (extensions beyond the paper; DESIGN.md section 5)");
    println!("======================================================================");
    let world = faculty_world(config);

    println!("-- A1: Basic_Anonymization swapped (post-fusion dissimilarity per k) --");
    for series in ablations::anonymizer_ablation(&world, 2, 12) {
        let after = series.report.after_series();
        let ks = series.report.ks();
        let cells: Vec<String> = ks
            .iter()
            .zip(&after)
            .map(|(k, a)| format!("k{k}:{a:.3e}"))
            .collect();
        println!("  {:<12} {}", series.label, cells.join("  "));
    }

    println!("-- A2: adversary strength (mean post-fusion dissimilarity, k=2..12) --");
    for series in ablations::fusion_ablation(&world, 2, 12) {
        let after = series.report.after_series();
        let mean = after.iter().sum::<f64>() / after.len() as f64;
        println!("  {:<20} {mean:.4e}", series.label);
    }

    println!("-- A3: web name noise vs attack (k = 6) --");
    for (scale, dissim, cov) in ablations::noise_ablation(config, 6, &[0.0, 0.5, 1.0, 2.0, 4.0]) {
        println!("  noise x{scale:<4} dissim_after = {dissim:.4e}  aux coverage = {cov:.2}");
    }

    println!("-- A4: web presence vs attack (k = 6) --");
    for (rate, dissim, cov) in ablations::coverage_ablation(config, 6, &[0.2, 0.4, 0.6, 0.8, 1.0]) {
        println!("  presence {rate:<4} dissim_after = {dissim:.4e}  aux coverage = {cov:.2}");
    }

    println!("-- A5: publisher preference W1 (protection weight) vs chosen k_opt --");
    for (w1, k_opt) in ablations::weight_ablation(&world, 14, &[0.0, 0.25, 0.5, 0.75, 1.0]) {
        println!("  W1 = {w1:<5} -> k_opt = {k_opt}");
    }

    println!("-- A6: beyond k-anonymity on the patient dataset (full-domain generalization) --");
    println!("   (note how worst-case diversity does NOT improve with k — the");
    println!("    l-diversity critique of k-anonymity, reference [4] of the paper)");
    println!("  k    distinct-l   entropy-l   t-closeness");
    for (k, d, e, c) in ablations::diversity_ablation(&[2, 4, 8, 16]) {
        println!("  {k:<4} {d:<12} {e:<11.2} {c:.3}");
    }
}
