//! Regeneration of the paper's Tables I-IV and the Figure 2 demo.

use fred_anon::{build_release, Anonymizer, Partition, QiStyle};
use fred_data::{Schema, Table, Value};
use fred_synth::{paper_table_ii, paper_table_iv};

/// Paper Table I: the toy sensitive database with attribute roles.
pub fn table_i() -> Table {
    let schema = Schema::builder()
        .identifier("Name")
        .identifier("SSN")
        .quasi_int("Zipcode")
        .quasi_int("Age")
        .quasi_categorical("Nationality")
        .sensitive_categorical("Condition")
        .build()
        .expect("static schema");
    let rows = [
        ("Alice", "111-111-1111", 13053, 28, "Russian", "AIDS"),
        ("Bob", "222-222-2222", 13068, 29, "American", "Flu"),
        ("Christine", "333-333-3333", 13068, 21, "Japanese", "Cancer"),
        (
            "Robert",
            "444-444-4444",
            13053,
            23,
            "American",
            "Meningitis",
        ),
    ];
    Table::with_rows(
        schema,
        rows.iter()
            .map(|&(n, s, z, a, nat, c)| {
                vec![
                    Value::Text(n.into()),
                    Value::Text(s.into()),
                    Value::Int(z),
                    Value::Int(a),
                    Value::Categorical(nat.into()),
                    Value::Categorical(c.into()),
                ]
            })
            .collect(),
    )
    .expect("static rows")
}

/// Paper Table III: the 2-anonymized release of Table II.
///
/// The paper's partition groups {Alice, Robert} (high investors) and
/// {Bob, Christine}; MDAV at k=2 recovers exactly that grouping, and the
/// published ranges match the paper's `[5-10]`/`[1-5]` presentation up to
/// the tightness of the covering interval.
pub fn table_iii() -> Table {
    let table = paper_table_ii();
    let partition = fred_anon::Mdav::new()
        .partition(&table, 2)
        .expect("4-row table supports k=2");
    build_release(&table, &partition, 2, QiStyle::Range)
        .expect("release of static table")
        .table
}

/// The paper's exact Table III grouping, for comparison with what MDAV
/// chooses: {Alice, Robert} vs {Bob, Christine}.
pub fn paper_partition() -> Partition {
    Partition::new(vec![vec![0, 3], vec![1, 2]], 4).expect("static partition")
}

/// Renders paper Table IV (the adversary's harvested auxiliary data).
pub fn table_iv_ascii() -> String {
    let mut out = String::from("Name       Employment            Property Holdings\n");
    out.push_str(&"-".repeat(52));
    out.push('\n');
    for (name, emp, prop) in paper_table_iv() {
        out.push_str(&format!("{name:<10} {emp:<21} {prop:>6.0}\n"));
    }
    out
}

/// Renders all four tables for the repro harness.
pub fn render_all() -> String {
    let mut out = String::new();
    out.push_str("== Table I: sensitive database (attribute roles) ==\n");
    out.push_str(&table_i().to_ascii());
    out.push_str("\n== Table II: enterprise customer data ==\n");
    out.push_str(&paper_table_ii().to_ascii());
    out.push_str("\n== Table III: 2-anonymized release (names retained, income suppressed) ==\n");
    out.push_str(&table_iii().to_ascii());
    out.push_str("\n== Table IV: auxiliary data collected by the adversary ==\n");
    out.push_str(&table_iv_ascii());
    out
}

/// The Figure 2 walk-through: the paper's worked example — Robert's
/// valuation is in the top band and his web profile says "CEO, Microsoft,
/// 5430 sq ft", so the fused estimate should land in the upper income
/// region (the paper concludes ≈ $95,000 against a true $98,230).
///
/// Returns `(estimate, truth)` for Robert.
pub fn figure2_demo() -> (f64, f64) {
    use fred_attack::{FusionSystem, FuzzyFusion, FuzzyFusionConfig};
    use fred_web::AuxRecord;

    let release = table_iii();
    let truth = paper_table_ii().numeric_column(4).expect("income column");
    // Harvested aux records mirroring Table IV.
    let aux: Vec<Option<AuxRecord>> = paper_table_iv()
        .into_iter()
        .map(|(name, emp, prop)| {
            let title = emp.split(',').next().unwrap_or("").trim().to_owned();
            Some(AuxRecord {
                page_id: 0,
                name: name.to_owned(),
                seniority_level: fred_web::title_seniority(&title),
                title: Some(title),
                employer: emp.split(',').nth(1).map(|s| s.trim().to_owned()),
                property_sqft: Some(prop),
            })
        })
        .collect();
    let fusion = FuzzyFusion::new(FuzzyFusionConfig {
        income_range: (40_000.0, 100_000.0), // the paper's example range
        property_range: (500.0, 6_000.0),
        ..FuzzyFusionConfig::default()
    })
    .expect("valid config");
    let estimates = fusion.estimate(&release, &aux).expect("fusion runs");
    (estimates[3], truth[3]) // Robert is row 3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_shape() {
        let t = table_i();
        assert_eq!(t.len(), 4);
        assert_eq!(t.schema().identifier_indices().len(), 2);
        assert_eq!(t.schema().quasi_identifier_indices().len(), 3);
        assert!(t.to_ascii().contains("Meningitis"));
    }

    #[test]
    fn table_iii_matches_paper_grouping() {
        let release = table_iii();
        // Income suppressed.
        assert!(release.column(4).all(|v| v.is_missing()));
        // Names retained.
        assert_eq!(
            release.identifier_strings(),
            vec!["Alice", "Bob", "Christine", "Robert"]
        );
        // MDAV groups Alice with Robert (rows 0 and 3) like the paper.
        let classes = fred_anon::classes_from_release(&release).unwrap();
        let class_of = classes.class_of_rows();
        assert_eq!(class_of[0], class_of[3], "Alice and Robert together");
        assert_eq!(class_of[1], class_of[2], "Bob and Christine together");
    }

    #[test]
    fn figure2_demo_reproduces_the_papers_conclusion() {
        let (estimate, truth) = figure2_demo();
        assert_eq!(truth, 98_230.0);
        // The paper's adversary concludes ~$95,000 from the same evidence;
        // our fused estimate must land in the same upper region, clearly
        // above the range midpoint of $70,000.
        assert!(
            estimate > 80_000.0,
            "Robert's fused estimate {estimate} should be in the high band"
        );
        let error = (estimate - truth).abs();
        assert!(error < 20_000.0, "estimate {estimate} too far from {truth}");
    }

    #[test]
    fn table_iv_rendering() {
        let s = table_iv_ascii();
        assert!(s.contains("CEO, Microsoft"));
        assert!(s.contains("5430"));
    }

    #[test]
    fn render_all_contains_every_table() {
        let s = render_all();
        for needle in ["Table I", "Table II", "Table III", "Table IV", "[", "-"] {
            assert!(s.contains(needle), "missing {needle}");
        }
    }
}
