//! The `--quick` performance harness behind `repro --quick`: times every
//! stage of the sweep-and-attack pipeline at reduced scale and emits a
//! machine-readable `BENCH_sweep.json` baseline so perf changes across
//! PRs are diffable.
//!
//! The headline number is `speedup_batch_vs_naive`: the same releases and
//! auxiliary records pushed through [`FuzzyFusion::estimate`] (compiled
//! rulebase, parallel rows, reusable scratch) versus
//! [`FuzzyFusion::estimate_interpreted`] (per-row string/`HashMap`
//! lookups). The two paths return bit-identical estimates — the harness
//! asserts it — so the ratio is pure overhead, not changed work.
//!
//! With [`QuickBenchOptions::checkpoint_dir`] set the whole pipeline runs
//! under `fred-recover`'s [`StageRunner`]: every stage boundary commits a
//! checksummed artifact, `resume` restarts from the last valid
//! checkpoint, and all wall-clock fields are zeroed (deterministic mode),
//! so a killed-and-resumed run renders `BENCH_sweep.json` bit-identical
//! to an uninterrupted run of the same seed.

use std::path::PathBuf;
use std::time::Instant;

use fred_anon::{build_release, Anonymizer, HierarchicalMdav, Mdav, Partition, QiStyle, Release};
use fred_attack::{
    harvest_auxiliary, harvest_auxiliary_reference_sampled, harvest_auxiliary_sequential,
    harvest_auxiliary_sharded, harvest_auxiliary_sharded_tolerant, harvest_precision, FusionSystem,
    FuzzyFusion, FuzzyFusionConfig, Harvest, HarvestConfig, MidpointEstimator,
};
use fred_composition::{
    compose_attack, compose_attack_tolerant, composition_sweep, defense_sweep, generate_scenario,
    intersect_releases, intersect_releases_sharded, CompositionConfig, CompositionOutcome,
    CompositionSweepConfig, DefensePolicy, ScenarioConfig, Source, TargetIntersection,
};
use fred_core::{sweep, SweepConfig};
use fred_data::{ShardPlan, Table};
use fred_faults::{FaultPlan, TargetedCorruption};
use fred_recover::{RetryPolicy, StageRunner};
use fred_web::{corrupt_pages, SearchEngine, ShardedSearchEngine};

use crate::ckpt::{
    digest_bits, digest_harvest, digest_world, intern_stage_name, Digest, EstimatesArtifact,
    StageAnchor, SweepArtifact,
};
use crate::stages::{self as sn, runner as rstage};
use crate::world::{faculty_world, World, WorldConfig};

/// Anonymization level used by the dedicated MDAV/harvest/composition
/// stages (matches the `mdav_k5` target the ROADMAP tracks). Public so
/// the `repro` CLI can derive argument bounds from it instead of
/// duplicating the constant.
pub const STAGE_K: usize = 5;

/// Row-chunk size for the streaming-release stage.
const STREAM_CHUNK_ROWS: usize = 1024;

/// Rows the sampled exhaustive harvest reference pins per run (the
/// equality assert behind `harvest_sequential_large`); the full-table
/// reference runs under `repro --quick --exhaustive`. The sample is
/// seeded from the world seed, so each committed baseline pins a fixed
/// subset but different seeds roam the whole release over time.
pub const REFERENCE_SAMPLE_ROWS: usize = 512;

/// Rows in the seeded subsample the `large_100k` equivalence pass pins
/// its sharded-vs-unsharded MDAV and intersection digest pairs on. The
/// unsharded references are superlinear (MDAV) or O(classes x rows)
/// in memory (full-width intersection bitsets), so running them at the
/// full 100k size would defeat the block's flat-memory claim; the
/// sharded paths additionally run at full size under their own stages.
pub const EQUIVALENCE_SAMPLE_ROWS: usize = 2048;

/// Targets the full-size sharded intersection stage extracts candidates
/// for (a seeded sample of the scenario core — per-target cost is flat,
/// so a sample times the per-shard machinery without an O(core) tail).
pub const INTERSECT_TARGET_SAMPLE: usize = 512;

/// Shards the robustness sweep partitions its harvest into: small and
/// fixed so the `shard_loss` fault class has coarse, countable victims
/// at quick-world scale.
pub const ROBUSTNESS_SHARDS: usize = 4;

/// One shard's accounting row inside the `large_100k` block: its
/// contiguous master-row range and the corpus pages its postings own.
/// The compare gate checks exactly `shards` rows covering `size` rows
/// and all pages — a vanished shard row is a lost shard, not a rounding
/// artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardBenchRow {
    /// Shard index (dense, ascending).
    pub shard: usize,
    /// Master rows in this shard's contiguous range.
    pub rows: usize,
    /// Corpus pages owned by this shard's postings.
    pub pages: usize,
    /// True when [`ShardPlan::for_size`] saturated at its 64-shard
    /// ceiling for this world — the shard count is a floor, not the
    /// one-shard-per-12.5k-rows rate a reader would otherwise infer
    /// (a 1M-row plan still says 64).
    pub capped: bool,
}

/// The sharded 100k block (`repro --quick --size 100000`): the
/// shard-partitioned pipeline — hierarchical MDAV, per-shard harvest,
/// per-shard streaming intersection — timed at full size with every
/// sharded path digest-pinned against its unsharded reference, plus the
/// peak resident set the flat-memory claim is gated on.
#[derive(Debug, Clone, PartialEq)]
pub struct Large100kBench {
    /// World row count.
    pub size: usize,
    /// Shards the [`ShardPlan`] derived for this size.
    pub shards: usize,
    /// Worker threads available when this block's numbers were taken.
    pub cores: usize,
    /// Rows in the seeded equivalence subsample.
    pub sample_rows: usize,
    /// Peak resident set size of the process in MiB (`VmHWM`), `0.0` in
    /// deterministic mode or where `/proc` is unavailable.
    pub peak_rss_mb: f64,
    /// Per-stage timings in pipeline order.
    pub stages: Vec<StageTiming>,
    /// Per-shard accounting, ascending in `shard`.
    pub shard_rows: Vec<ShardBenchRow>,
    /// Digest of the sharded harvest at full size.
    pub harvest_digest_sharded: u64,
    /// Digest of the unsharded parallel harvest at full size (gated
    /// equal to the sharded one).
    pub harvest_digest_unsharded: u64,
    /// Digest of the optimized hierarchical MDAV partition over the
    /// equivalence subsample.
    pub mdav_digest_sharded: u64,
    /// Digest of the reference hierarchical MDAV partition over the same
    /// subsample and leaf split (gated equal).
    pub mdav_digest_unsharded: u64,
    /// Digest of the per-shard streaming intersection over the subsample
    /// scenario.
    pub intersect_digest_sharded: u64,
    /// Digest of the full-width parallel intersection over the same
    /// scenario (gated equal).
    pub intersect_digest_unsharded: u64,
}

/// Wall-clock + throughput of one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTiming {
    /// Stage identifier (stable across PRs; used as the JSON key).
    pub name: &'static str,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Rows (records × levels where applicable) processed.
    pub rows: usize,
}

impl StageTiming {
    /// Rows per second, `0.0` when the stage was too fast to resolve.
    pub fn rows_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.rows as f64 / (self.wall_ms / 1e3)
    }
}

/// The large-world add-on: the same hot stages timed at enterprise scale
/// (defaults to 10 000 rows), where superlinear behavior cannot hide.
#[derive(Debug, Clone)]
pub struct LargeBench {
    /// Large-world row count.
    pub size: usize,
    /// Worker threads available when *this* block's numbers were taken.
    /// Recorded alongside the stages (not only in the top-level config)
    /// so a gate evaluated on a heterogeneous runner keys the large-world
    /// checks off the cores that actually ran them.
    pub cores: usize,
    /// Per-stage timings in pipeline order.
    pub stages: Vec<StageTiming>,
    /// Single-threaded fast-path harvest wall-clock over parallel
    /// fast-path wall-clock. Both runs use the identical cached+pruned
    /// classification, so the ratio isolates what the worker threads buy
    /// (scales with cores; ~1 on a single-core machine — the algorithmic
    /// gains cancel out of it by construction).
    pub speedup_harvest_parallel_vs_single: f64,
    /// The composition attack swept at enterprise scale (`repro --quick
    /// --compose` with the large stage enabled): the `R` per-source MDAV
    /// runs fan out across the worker pool and the releases stream
    /// through the intersection engine at `size` rows.
    pub composition: Option<CompositionBench>,
}

/// One `(releases)` cell of the composition stage.
#[derive(Debug, Clone)]
pub struct CompositionBenchRow {
    /// Number of composed releases.
    pub releases: usize,
    /// Per-record disclosure gain versus one release (sensitive-range
    /// width eliminated; strictly increasing in `releases` is the gate).
    pub disclosure_gain: f64,
    /// Mean effective anonymity after composition.
    pub mean_candidates: f64,
    /// Estimate-side gain versus one release.
    pub estimate_gain: f64,
}

/// The `--compose` add-on: the composition attack swept over release
/// counts at the tracked `k`.
#[derive(Debug, Clone)]
pub struct CompositionBench {
    /// Anonymization level every curator applied.
    pub k: usize,
    /// Shared-core fraction of the scenario.
    pub overlap: f64,
    /// Wall-clock of the whole composition sweep.
    pub wall_ms: f64,
    /// Per-release-count measurements, ascending in `releases`.
    pub rows: Vec<CompositionBenchRow>,
}

/// One `(policy, releases)` cell of the defense stage.
#[derive(Debug, Clone)]
pub struct DefenseBenchRow {
    /// Stable policy label ([`DefensePolicy::label`]).
    pub policy: String,
    /// Number of composed releases.
    pub releases: usize,
    /// Disclosure gain the composition still achieves under the policy
    /// (gated strictly below `undefended_gain` at the top release
    /// count).
    pub residual_gain: f64,
    /// The undefended sweep's gain at the same release count.
    pub undefended_gain: f64,
    /// Mean effective anonymity under the defense (gated `>= k` for
    /// `calibrated_widen_*` rows).
    pub mean_candidates: f64,
    /// Widening price: defended-minus-undefended single-release implied
    /// sensitive width.
    pub utility_cost: f64,
}

/// The `--defend` add-on: every policy swept over release counts at the
/// tracked `k`, next to the undefended gain.
#[derive(Debug, Clone)]
pub struct DefenseBench {
    /// Anonymization level every curator applied.
    pub k: usize,
    /// Shared-core fraction of the scenario.
    pub overlap: f64,
    /// Wall-clock of the whole defense sweep (including its undefended
    /// reference run).
    pub wall_ms: f64,
    /// Per-policy, per-release-count measurements (policy-major,
    /// ascending in `releases`).
    pub rows: Vec<DefenseBenchRow>,
}

/// One `(k, releases, defense)` cell of the hypothesis-testing
/// evaluation: the composition attack's output rescored as a binary
/// classifier over core targets versus matched decoys.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalCellRow {
    /// Anonymization level every curator applied in this cell.
    pub k: usize,
    /// Number of composed releases the adversary observed.
    pub releases: usize,
    /// `"none"` for the undefended scenario, else the
    /// [`DefensePolicy::label`] the curators coordinated under.
    pub defense: String,
    /// Core targets scored (the positive class).
    pub targets: usize,
    /// Matched decoys scored through the identical path (the negative
    /// class).
    pub decoys: usize,
    /// Trapezoidal area under the ROC curve (gated within
    /// `[0.5 - slack, 1.0]`).
    pub auc: f64,
    /// TPR at FPR ≤ 10⁻³ ([`fred_eval::LOW_FPR`]).
    pub tpr_at_fpr3: f64,
    /// Empirical ε: max over thresholds of `ln((1−FNR)/FPR)` with the
    /// +1/2 Laplace correction — always finite (gated non-increasing in
    /// `k`, and defended ≤ undefended at matching `(k, R)`).
    pub epsilon: f64,
}

/// The hypothesis-testing evaluation stage (`repro --quick --compose`):
/// every `(k, R)` cell of [`EVAL_KS`] × [`EVAL_RELEASES`] scored
/// undefended, plus one defended cell per `--defend` policy at the
/// tracked `k` and top `R`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalBench {
    /// Wall-clock of the whole evaluation stage.
    pub wall_ms: f64,
    /// Per-cell metrics: undefended cells first (ascending `k`, then
    /// `releases`), then one row per defense policy.
    pub rows: Vec<EvalCellRow>,
}

/// One fault-rate cell of the robustness sweep.
#[derive(Debug, Clone)]
pub struct RobustnessBenchRow {
    /// Per-fault injection probability every [`FaultPlan`] knob was set
    /// to for this cell (`0.0` is the passthrough reference row). For the
    /// `targeted` row this is the *budget*: the fraction of records the
    /// pointed corruption was allowed to hit.
    pub fault_rate: f64,
    /// How the corruption was aimed: `"uniform"` (every site rolls the
    /// seeded rate independently) or `"targeted"` (the worst-case plan —
    /// exactly the highest-disclosure-gain records from the strict run).
    pub mode: &'static str,
    /// Harvest precision against ground truth over the corrupted corpus.
    pub harvest_precision: f64,
    /// Fraction of release rows with harvested auxiliary evidence.
    pub harvest_coverage: f64,
    /// Per-record composition disclosure gain under the same faults.
    pub composition_gain: f64,
    /// Damaged pages the tolerant extractors rejected.
    pub pages_rejected: usize,
    /// Release/harvest rows dropped by injection and skipped over.
    pub rows_skipped: usize,
    /// Corrupted cells imputed back to the uninformative prior.
    pub fields_imputed: usize,
    /// Worker panics contained by the fault-tolerant pool entry point.
    pub workers_restarted: usize,
    /// Harvest shards lost wholesale and degraded around (the surviving
    /// shards still answer; coverage shrinks instead of failing).
    pub shards_lost: usize,
}

/// The `--faults` add-on: the harvest + composition attack re-run under
/// seeded fault injection at increasing corruption rates, recording how
/// gracefully the measured signal degrades.
#[derive(Debug, Clone)]
pub struct RobustnessBench {
    /// The top corruption rate swept (the CLI's `--faults` argument).
    pub max_rate: f64,
    /// Seed of the [`FaultPlan`] (derived from the world seed, so the
    /// committed baseline pins one reproducible fault pattern).
    pub seed: u64,
    /// Wall-clock of the whole robustness sweep.
    pub wall_ms: f64,
    /// Per-rate measurements, ascending in `fault_rate`, starting at the
    /// gated `0.0` passthrough row. When faults are enabled the last row
    /// is the `targeted` worst-case plan at the top budget.
    pub rows: Vec<RobustnessBenchRow>,
}

/// Disabled-path probe calls the overhead stage times: the committed
/// ceiling in `compare.rs` holds this measurement (as a percentage of
/// the large block's wall) under [`crate::compare::MAX_OBS_OVERHEAD_PCT`].
pub const OVERHEAD_PROBE_CALLS: u64 = 1_000_000;

/// One runner stage's slice of the observability profile: the stage
/// span's self-time (wall minus child spans) and its subtree size.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileStageRow {
    /// Runner stage name (see [`crate::stages::runner`]).
    pub stage: String,
    /// Span wall minus the wall of its child spans, ms (`0.0` in
    /// deterministic mode).
    pub self_ms: f64,
    /// Spans in this stage's subtree (including itself).
    pub spans: usize,
}

/// One duration histogram surfaced in the `profile` block: the
/// fixed-bucket distribution a [`fred_obs::observe_ms`] site recorded
/// (e.g. per-name harvest latency under `harvest.name_ms`).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileHistRow {
    /// Histogram name (the `observe_ms` site).
    pub name: String,
    /// Total observations — reconciled against the site's companion
    /// counter (`harvest.name_ms` vs `harvest.names`) both in-run by the
    /// compare gate and in `tests/obs_reconcile.rs`.
    pub count: u64,
    /// Sum of observed values in ms.
    pub sum_ms: f64,
    /// Observation counts per bucket ([`fred_obs::HIST_BOUNDS_MS`]
    /// upper bounds plus one overflow bucket).
    pub buckets: Vec<u64>,
}

/// The `profile` block: the drained [`fred_obs`] trace distilled into
/// the gated shape — span-tree structure pin, per-stage self-time,
/// counter totals, and the measured cost of *disabled* tracing.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileBench {
    /// True when the trace was taken in deterministic mode: every
    /// duration below is zeroed and the counter rows are omitted
    /// (checkpoint-resumed stages skip their compute closures, so
    /// runtime counters are not a function of the configuration).
    pub deterministic: bool,
    /// Total spans opened during the run.
    pub spans_total: u64,
    /// Total events recorded during the run.
    pub events_total: u64,
    /// [`fred_obs::Trace::structural_digest`] of the span tree — a pure
    /// function of the enabled stages, pinned committed-vs-fresh.
    pub span_tree_digest: String,
    /// Calls made by the disabled-tracing overhead probe.
    pub overhead_probe_calls: u64,
    /// Wall-clock of the probe loop, ms (`0.0` in deterministic mode).
    pub overhead_wall_ms: f64,
    /// Probe wall as a percentage of the large block's total stage wall
    /// (`0.0` when deterministic or without a large block) — the number
    /// the `< MAX_OBS_OVERHEAD_PCT` gate holds.
    pub overhead_pct_of_large: f64,
    /// Per-runner-stage rows in execution order.
    pub stages: Vec<ProfileStageRow>,
    /// Merged counter totals by name (empty in deterministic mode).
    pub counters: Vec<(String, u64)>,
    /// Duration histograms by name (empty in deterministic mode, like
    /// the counters: resumed stages skip their compute closures, so
    /// observation counts are not a pure function of the
    /// configuration).
    pub hists: Vec<ProfileHistRow>,
}

/// One stage's recovery ledger: how the [`StageRunner`] obtained it.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryBenchRow {
    /// Checkpoint stage name (the runner's roster, not the timing one).
    pub stage: String,
    /// Attempts made when the artifact was *computed* (1 = first try).
    /// Restored from the checkpoint envelope on resume, so the block is
    /// invariant under kill-and-resume.
    pub attempts: usize,
    /// Retries burned (`attempts - 1`).
    pub retries: usize,
    /// Total deterministic backoff slept before success, in ms.
    pub backoff_ms: f64,
}

/// The self-healing ledger: what the retry/checkpoint protocol did
/// during the run. Emitted whenever faults are enabled or a checkpoint
/// store is attached; the retry trace is a pure function of
/// `(seed, transient_rate, policy)`, which the compare gate pins.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryBench {
    /// Seed of the runner's [`FaultPlan`] (world seed folded with
    /// [`RECOVERY_SEED_SALT`]).
    pub seed: u64,
    /// Injected transient-failure probability per `(stage, attempt)`.
    pub transient_rate: f64,
    /// Attempts the [`RetryPolicy`] allowed per stage.
    pub max_attempts: usize,
    /// Retries burned across all stages.
    pub retries_total: usize,
    /// Checkpoint files quarantined for failing integrity checks.
    /// Runtime-only (never serialized): it reflects the *history* of the
    /// store, not the configuration, and would break resume bit-identity.
    pub quarantined_total: usize,
    /// Panics that escaped the retry protocol — always 0 in a bench that
    /// returned at all; serialized as the gate's witness.
    pub escaped_panics: usize,
    /// Per-stage ledgers in execution order.
    pub rows: Vec<RecoveryBenchRow>,
    /// True when at least one stage loaded from a checkpoint.
    /// Runtime-only (never serialized), shown in the ASCII summary.
    pub resumed: bool,
}

/// The quick-bench result.
#[derive(Debug, Clone)]
pub struct QuickBench {
    /// World/sweep parameters the numbers were taken at.
    pub size: usize,
    /// World seed.
    pub seed: u64,
    /// Worker threads available when the numbers were taken (parallel
    /// speedups are only meaningful relative to this).
    pub cores: usize,
    /// Swept anonymization levels.
    pub k_range: (usize, usize),
    /// Per-stage timings in pipeline order.
    pub stages: Vec<StageTiming>,
    /// Naive per-row estimate wall-clock over batch wall-clock.
    pub speedup_batch_vs_naive: f64,
    /// The large-world stage, when enabled.
    pub large: Option<LargeBench>,
    /// The sharded 100k block, when enabled (`repro --quick --size
    /// 100000`).
    pub large_100k: Option<Large100kBench>,
    /// The composition stage, when enabled (`repro --quick --compose`).
    pub composition: Option<CompositionBench>,
    /// The defense stage, when enabled (`repro --quick --compose
    /// --defend ...`).
    pub composition_defense: Option<DefenseBench>,
    /// The hypothesis-testing evaluation, when enabled (`repro --quick
    /// --compose`; defended cells with `--defend` too).
    pub eval: Option<EvalBench>,
    /// The fault-injection stage, when enabled (`repro --quick
    /// --faults <rate>`).
    pub robustness: Option<RobustnessBench>,
    /// True when the run was taken under a checkpoint store: every
    /// wall-clock field is zeroed so the JSON is a pure function of the
    /// configuration (the resume bit-identity contract). Timing gates do
    /// not apply to such a baseline.
    pub deterministic: bool,
    /// The self-healing ledger, when faults or a checkpoint store were
    /// enabled.
    pub recovery: Option<RecoveryBench>,
    /// The observability profile, when tracing was enabled
    /// ([`QuickBenchOptions::profile`]).
    pub profile: Option<ProfileBench>,
    /// The full drained trace behind the profile block (`repro --trace`
    /// serializes it; never part of `to_json`).
    pub trace: Option<fred_obs::Trace>,
}

/// Optional add-ons of [`quick_bench`] beyond the core timed sweep.
#[derive(Debug, Clone, Default)]
pub struct QuickBenchOptions {
    /// Re-time the hot stages on a world of this many rows.
    pub large_size: Option<usize>,
    /// Run the shard-partitioned pipeline on a world of this many rows
    /// (the `large_100k` block; `repro --quick --size N` routes here for
    /// `N >= 20000`).
    pub sharded_size: Option<usize>,
    /// Run the composition stage(s).
    pub compose: bool,
    /// Run the defense stage over these policies (requires `compose`).
    pub defend: Option<Vec<DefensePolicy>>,
    /// Run the harvest reference exhaustively over the whole large
    /// release instead of the seeded [`REFERENCE_SAMPLE_ROWS`] sample.
    pub exhaustive: bool,
    /// Run the fault-injection sweep up to this corruption rate. Also
    /// sets the [`StageRunner`]'s transient-stage-failure rate, so the
    /// retry protocol itself is exercised at the same budget.
    pub faults: Option<f64>,
    /// Commit a checksummed artifact at every stage boundary into this
    /// directory and zero all wall-clock fields (deterministic mode).
    pub checkpoint_dir: Option<PathBuf>,
    /// Load valid checkpoints instead of recomputing (requires
    /// `checkpoint_dir`; ignored without one).
    pub resume: bool,
    /// Exit with [`fred_recover::HALT_EXIT_CODE`] right after this
    /// stage's checkpoint commits — the deterministic kill-point for the
    /// resume tests and the CI smoke job. Only honored with a store.
    pub halt_after: Option<String>,
    /// Collect the observability trace: spans around every runner stage,
    /// the pipeline's counters, and the disabled-path overhead probe,
    /// distilled into the gated `profile` block. Off by default — the
    /// collector is process-global, so concurrent `quick_bench` calls
    /// (as in the test suite) must not both enable it.
    pub profile: bool,
}

impl QuickBench {
    /// Renders the machine-readable baseline (hand-rolled JSON — the
    /// workspace builds offline, without serde).
    pub fn to_json(&self) -> String {
        let render_stages = |stages: &[StageTiming], indent: &str| -> String {
            let mut out = String::new();
            for (i, s) in stages.iter().enumerate() {
                out.push_str(&format!(
                    "{indent}{{ \"name\": \"{}\", \"wall_ms\": {:.3}, \"rows\": {}, \"rows_per_sec\": {:.1} }}{}\n",
                    s.name,
                    s.wall_ms,
                    s.rows,
                    s.rows_per_sec(),
                    if i + 1 < stages.len() { "," } else { "" }
                ));
            }
            out
        };
        let render_composition = |comp: &CompositionBench, key: &str, indent: &str| -> String {
            let mut out = format!("{indent}\"{key}\": {{\n");
            out.push_str(&format!(
                "{indent}  \"k\": {}, \"overlap\": {:.2}, \"wall_ms\": {:.3},\n",
                comp.k, comp.overlap, comp.wall_ms
            ));
            out.push_str(&format!("{indent}  \"rows\": [\n"));
            for (i, row) in comp.rows.iter().enumerate() {
                out.push_str(&format!(
                    "{indent}    {{ \"releases\": {}, \"disclosure_gain\": {:.1}, \"mean_candidates\": {:.2}, \"estimate_gain\": {:.1} }}{}\n",
                    row.releases,
                    row.disclosure_gain,
                    row.mean_candidates,
                    row.estimate_gain,
                    if i + 1 < comp.rows.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!("{indent}  ]\n{indent}}}"));
            out
        };
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"config\": {{ \"size\": {}, \"seed\": {}, \"k_min\": {}, \"k_max\": {}, \"cores\": {}, \"deterministic\": {} }},\n",
            self.size, self.seed, self.k_range.0, self.k_range.1, self.cores, self.deterministic
        ));
        out.push_str("  \"stages\": [\n");
        out.push_str(&render_stages(&self.stages, "    "));
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"speedup_batch_vs_naive\": {:.2}",
            self.speedup_batch_vs_naive
        ));
        if let Some(large) = &self.large {
            out.push_str(",\n  \"large\": {\n");
            out.push_str(&format!("    \"size\": {},\n", large.size));
            out.push_str(&format!("    \"cores\": {},\n", large.cores));
            out.push_str("    \"stages\": [\n");
            out.push_str(&render_stages(&large.stages, "      "));
            out.push_str("    ],\n");
            out.push_str(&format!(
                "    \"speedup_harvest_parallel_vs_single\": {:.2}",
                large.speedup_harvest_parallel_vs_single
            ));
            if let Some(comp) = &large.composition {
                out.push_str(",\n");
                out.push_str(&render_composition(comp, "composition_large", "    "));
            }
            out.push_str("\n  }");
        }
        if let Some(big) = &self.large_100k {
            out.push_str(",\n  \"large_100k\": {\n");
            out.push_str(&format!("    \"size\": {},\n", big.size));
            out.push_str(&format!("    \"shards\": {},\n", big.shards));
            out.push_str(&format!("    \"cores\": {},\n", big.cores));
            out.push_str(&format!("    \"sample_rows\": {},\n", big.sample_rows));
            out.push_str(&format!("    \"peak_rss_mb\": {:.1},\n", big.peak_rss_mb));
            out.push_str("    \"stages\": [\n");
            out.push_str(&render_stages(&big.stages, "      "));
            out.push_str("    ],\n    \"shard_rows\": [\n");
            for (i, row) in big.shard_rows.iter().enumerate() {
                out.push_str(&format!(
                    "      {{ \"shard\": {}, \"rows\": {}, \"pages\": {}, \"capped\": {} }}{}\n",
                    row.shard,
                    row.rows,
                    row.pages,
                    row.capped,
                    if i + 1 < big.shard_rows.len() {
                        ","
                    } else {
                        ""
                    }
                ));
            }
            out.push_str("    ],\n");
            out.push_str(&format!(
                "    \"digests\": {{ \"harvest_sharded\": \"{:016x}\", \"harvest_unsharded\": \"{:016x}\", \"mdav_sharded\": \"{:016x}\", \"mdav_unsharded\": \"{:016x}\", \"intersect_sharded\": \"{:016x}\", \"intersect_unsharded\": \"{:016x}\" }}\n",
                big.harvest_digest_sharded,
                big.harvest_digest_unsharded,
                big.mdav_digest_sharded,
                big.mdav_digest_unsharded,
                big.intersect_digest_sharded,
                big.intersect_digest_unsharded
            ));
            out.push_str("  }");
        }
        if let Some(comp) = &self.composition {
            out.push_str(",\n");
            out.push_str(&render_composition(comp, "composition", "  "));
        }
        if let Some(defense) = &self.composition_defense {
            out.push_str(",\n  \"composition_defense\": {\n");
            out.push_str(&format!(
                "    \"k\": {}, \"overlap\": {:.2}, \"wall_ms\": {:.3},\n",
                defense.k, defense.overlap, defense.wall_ms
            ));
            out.push_str("    \"rows\": [\n");
            for (i, row) in defense.rows.iter().enumerate() {
                out.push_str(&format!(
                    "      {{ \"policy\": \"{}\", \"releases\": {}, \"residual_gain\": {:.1}, \"undefended_gain\": {:.1}, \"mean_candidates\": {:.2}, \"utility_cost\": {:.1} }}{}\n",
                    row.policy,
                    row.releases,
                    row.residual_gain,
                    row.undefended_gain,
                    row.mean_candidates,
                    row.utility_cost,
                    if i + 1 < defense.rows.len() { "," } else { "" }
                ));
            }
            out.push_str("    ]\n  }");
        }
        if let Some(eval) = &self.eval {
            out.push_str(",\n  \"eval\": {\n");
            out.push_str(&format!("    \"wall_ms\": {:.3},\n", eval.wall_ms));
            out.push_str("    \"rows\": [\n");
            for (i, row) in eval.rows.iter().enumerate() {
                out.push_str(&format!(
                    "      {{ \"k\": {}, \"releases\": {}, \"defense\": \"{}\", \"targets\": {}, \"decoys\": {}, \"auc\": {:.4}, \"tpr_at_fpr3\": {:.4}, \"epsilon\": {:.4} }}{}\n",
                    row.k,
                    row.releases,
                    row.defense,
                    row.targets,
                    row.decoys,
                    row.auc,
                    row.tpr_at_fpr3,
                    row.epsilon,
                    if i + 1 < eval.rows.len() { "," } else { "" }
                ));
            }
            out.push_str("    ]\n  }");
        }
        if let Some(rob) = &self.robustness {
            out.push_str(",\n  \"robustness\": {\n");
            out.push_str(&format!(
                "    \"max_rate\": {:.3}, \"seed\": {}, \"wall_ms\": {:.3},\n",
                rob.max_rate, rob.seed, rob.wall_ms
            ));
            out.push_str("    \"rows\": [\n");
            for (i, row) in rob.rows.iter().enumerate() {
                out.push_str(&format!(
                    "      {{ \"fault_rate\": {:.3}, \"mode\": \"{}\", \"harvest_precision\": {:.4}, \"harvest_coverage\": {:.4}, \"composition_gain\": {:.1}, \"pages_rejected\": {}, \"rows_skipped\": {}, \"fields_imputed\": {}, \"workers_restarted\": {}, \"shards_lost\": {} }}{}\n",
                    row.fault_rate,
                    row.mode,
                    row.harvest_precision,
                    row.harvest_coverage,
                    row.composition_gain,
                    row.pages_rejected,
                    row.rows_skipped,
                    row.fields_imputed,
                    row.workers_restarted,
                    row.shards_lost,
                    if i + 1 < rob.rows.len() { "," } else { "" }
                ));
            }
            out.push_str("    ]\n  }");
        }
        if let Some(rec) = &self.recovery {
            out.push_str(",\n  \"recovery\": {\n");
            out.push_str(&format!(
                "    \"seed\": {}, \"transient_rate\": {:.3}, \"max_attempts\": {}, \"retries_total\": {}, \"escaped_panics\": {},\n",
                rec.seed, rec.transient_rate, rec.max_attempts, rec.retries_total, rec.escaped_panics
            ));
            out.push_str("    \"rows\": [\n");
            for (i, row) in rec.rows.iter().enumerate() {
                out.push_str(&format!(
                    "      {{ \"stage\": \"{}\", \"attempts\": {}, \"retries\": {}, \"backoff_ms\": {:.3} }}{}\n",
                    row.stage,
                    row.attempts,
                    row.retries,
                    row.backoff_ms,
                    if i + 1 < rec.rows.len() { "," } else { "" }
                ));
            }
            out.push_str("    ]\n  }");
        }
        if let Some(prof) = &self.profile {
            out.push_str(",\n  \"profile\": {\n");
            out.push_str(&format!(
                "    \"deterministic\": {}, \"spans_total\": {}, \"events_total\": {}, \"span_tree_digest\": \"{}\",\n",
                prof.deterministic, prof.spans_total, prof.events_total, prof.span_tree_digest
            ));
            out.push_str(&format!(
                "    \"overhead\": {{ \"probe_calls\": {}, \"wall_ms\": {:.3}, \"pct_of_large\": {:.3} }},\n",
                prof.overhead_probe_calls, prof.overhead_wall_ms, prof.overhead_pct_of_large
            ));
            out.push_str("    \"stages\": [\n");
            for (i, row) in prof.stages.iter().enumerate() {
                out.push_str(&format!(
                    "      {{ \"stage\": \"{}\", \"self_ms\": {:.3}, \"spans\": {} }}{}\n",
                    row.stage,
                    row.self_ms,
                    row.spans,
                    if i + 1 < prof.stages.len() { "," } else { "" }
                ));
            }
            out.push_str("    ],\n    \"counters\": [\n");
            for (i, (name, value)) in prof.counters.iter().enumerate() {
                out.push_str(&format!(
                    "      {{ \"counter\": \"{name}\", \"value\": {value} }}{}\n",
                    if i + 1 < prof.counters.len() { "," } else { "" }
                ));
            }
            out.push_str("    ],\n    \"hists\": [\n");
            for (i, row) in prof.hists.iter().enumerate() {
                let buckets = row
                    .buckets
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                out.push_str(&format!(
                    "      {{ \"hist\": \"{}\", \"count\": {}, \"sum_ms\": {:.3}, \"buckets\": [{}] }}{}\n",
                    row.name,
                    row.count,
                    row.sum_ms,
                    buckets,
                    if i + 1 < prof.hists.len() { "," } else { "" }
                ));
            }
            out.push_str("    ]\n  }");
        }
        out.push('\n');
        out.push_str("}\n");
        out
    }

    /// One-screen human summary for the terminal.
    pub fn to_ascii(&self) -> String {
        let mut out = format!(
            "quick bench — {} records, seed {}, k = {}..={}\n",
            self.size, self.seed, self.k_range.0, self.k_range.1
        );
        out.push_str("  stage                        wall (ms)      rows    rows/sec\n");
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<26} {:>10.2} {:>9} {:>11.0}\n",
                s.name,
                s.wall_ms,
                s.rows,
                s.rows_per_sec()
            ));
        }
        out.push_str(&format!(
            "  batch/parallel estimate is {:.1}x the naive per-row path\n",
            self.speedup_batch_vs_naive
        ));
        let render_composition = |out: &mut String, comp: &CompositionBench, label: &str| {
            out.push_str(&format!(
                "  {label} — k = {}, overlap {:.2} ({:.2} ms):\n",
                comp.k, comp.overlap, comp.wall_ms
            ));
            for row in &comp.rows {
                out.push_str(&format!(
                    "    R = {}: disclosure gain $ {:>8.0}   mean candidates {:>6.2}   estimate gain {:>10.3e}\n",
                    row.releases, row.disclosure_gain, row.mean_candidates, row.estimate_gain
                ));
            }
        };
        if let Some(large) = &self.large {
            out.push_str(&format!(
                "  large world — {} records ({} core{}):\n",
                large.size,
                large.cores,
                if large.cores == 1 { "" } else { "s" }
            ));
            for s in &large.stages {
                out.push_str(&format!(
                    "  {:<26} {:>10.2} {:>9} {:>11.0}\n",
                    s.name,
                    s.wall_ms,
                    s.rows,
                    s.rows_per_sec()
                ));
            }
            out.push_str(&format!(
                "  parallel harvest is {:.1}x the single-threaded fast path\n",
                large.speedup_harvest_parallel_vs_single
            ));
            if let Some(comp) = &large.composition {
                render_composition(&mut out, comp, "composition (large world)");
            }
        }
        if let Some(big) = &self.large_100k {
            out.push_str(&format!(
                "  sharded world — {} records across {} shard{}{} ({} core{}), peak rss {:.1} MiB:\n",
                big.size,
                big.shards,
                if big.shards == 1 { "" } else { "s" },
                if big.shard_rows.iter().any(|r| r.capped) {
                    " (CAPPED at the plan ceiling)"
                } else {
                    ""
                },
                big.cores,
                if big.cores == 1 { "" } else { "s" },
                big.peak_rss_mb
            ));
            for s in &big.stages {
                out.push_str(&format!(
                    "  {:<26} {:>10.2} {:>9} {:>11.0}\n",
                    s.name,
                    s.wall_ms,
                    s.rows,
                    s.rows_per_sec()
                ));
            }
            out.push_str(&format!(
                "  sharded paths digest-pinned to unsharded references (sample {} rows): harvest {}, mdav {}, intersect {}\n",
                big.sample_rows,
                if big.harvest_digest_sharded == big.harvest_digest_unsharded { "ok" } else { "MISMATCH" },
                if big.mdav_digest_sharded == big.mdav_digest_unsharded { "ok" } else { "MISMATCH" },
                if big.intersect_digest_sharded == big.intersect_digest_unsharded { "ok" } else { "MISMATCH" },
            ));
        }
        if let Some(comp) = &self.composition {
            render_composition(&mut out, comp, "composition");
        }
        if let Some(defense) = &self.composition_defense {
            out.push_str(&format!(
                "  defenses — k = {}, overlap {:.2} ({:.2} ms):\n",
                defense.k, defense.overlap, defense.wall_ms
            ));
            for row in &defense.rows {
                out.push_str(&format!(
                    "    {:<22} R = {}: residual $ {:>8.0} vs undefended $ {:>8.0}   candidates {:>6.2}   utility cost $ {:>8.0}\n",
                    row.policy,
                    row.releases,
                    row.residual_gain,
                    row.undefended_gain,
                    row.mean_candidates,
                    row.utility_cost
                ));
            }
        }
        if let Some(eval) = &self.eval {
            out.push_str(&format!(
                "  hypothesis test — {} cells ({:.2} ms):\n",
                eval.rows.len(),
                eval.wall_ms
            ));
            for row in &eval.rows {
                out.push_str(&format!(
                    "    k = {} R = {} {:<22} auc {:.3}   tpr@1e-3 {:.3}   eps {:.2}   ({} targets vs {} decoys)\n",
                    row.k,
                    row.releases,
                    row.defense,
                    row.auc,
                    row.tpr_at_fpr3,
                    row.epsilon,
                    row.targets,
                    row.decoys
                ));
            }
        }
        if let Some(rob) = &self.robustness {
            out.push_str(&format!(
                "  robustness — faults up to {:.0}% ({:.2} ms):\n",
                rob.max_rate * 100.0,
                rob.wall_ms
            ));
            for row in &rob.rows {
                out.push_str(&format!(
                    "    rate {:>5.1}% ({:<8}): precision {:.3}   coverage {:.3}   composition gain $ {:>8.0}   survived {:>4} defects\n",
                    row.fault_rate * 100.0,
                    row.mode,
                    row.harvest_precision,
                    row.harvest_coverage,
                    row.composition_gain,
                    row.pages_rejected
                        + row.rows_skipped
                        + row.fields_imputed
                        + row.workers_restarted
                        + row.shards_lost
                ));
            }
        }
        if let Some(rec) = &self.recovery {
            out.push_str(&format!(
                "  recovery — transient rate {:.0}%, {} attempts max{}:\n",
                rec.transient_rate * 100.0,
                rec.max_attempts,
                if rec.resumed {
                    " (resumed from checkpoints)"
                } else {
                    ""
                }
            ));
            out.push_str(&format!(
                "    retries {}   quarantined {}   escaped panics {}\n",
                rec.retries_total, rec.quarantined_total, rec.escaped_panics
            ));
            for row in &rec.rows {
                out.push_str(&format!(
                    "    {:<14} attempts {}   retries {}   backoff {:>8.3} ms\n",
                    row.stage, row.attempts, row.retries, row.backoff_ms
                ));
            }
        }
        if let Some(prof) = &self.profile {
            out.push_str(&format!(
                "  profile — {} spans (tree {}), {} counters; disabled-tracing probe {:.3} ms / {} calls ({:.2}% of large)\n",
                prof.spans_total,
                prof.span_tree_digest,
                prof.counters.len(),
                prof.overhead_wall_ms,
                prof.overhead_probe_calls,
                prof.overhead_pct_of_large
            ));
            for row in &prof.stages {
                out.push_str(&format!(
                    "    {:<14} self {:>10.2} ms\n",
                    row.stage, row.self_ms
                ));
            }
            for row in &prof.hists {
                out.push_str(&format!(
                    "    hist {:<20} {:>8} obs   sum {:>10.2} ms   mean {:>8.3} ms\n",
                    row.name,
                    row.count,
                    row.sum_ms,
                    if row.count > 0 {
                        row.sum_ms / row.count as f64
                    } else {
                        0.0
                    }
                ));
            }
        }
        out
    }
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1e3)
}

/// Runs `f` under an observability span — the stage-boundary wrapper
/// [`quick_bench`] puts around every runner stage. Free when tracing is
/// off.
fn spanned<T>(name: &str, f: impl FnOnce() -> T) -> T {
    let _span = fred_obs::span(name);
    f()
}

/// Runs the reduced sweep-and-attack pipeline with per-stage timing.
///
/// `repeats` controls how many times the two estimate paths run over the
/// full release set (median-free but averaged), keeping the comparison
/// stable at quick scale. [`QuickBenchOptions::large_size`] additionally
/// times the hot stages (world build, MDAV, parallel + sampled-reference
/// harvest, release streaming, streamed estimates) on a world of that
/// many rows. [`QuickBenchOptions::compose`] appends the composition
/// stage: the multi-release intersection attack swept over `R = 1..=3`
/// at the tracked `k`, whose per-record disclosure gain the compare gate
/// requires to be strictly increasing;
/// [`QuickBenchOptions::defend`] additionally sweeps the given defense
/// policies next to it (the `composition_defense` block, gated for
/// residual gain strictly below the undefended gain).
///
/// Every stage runs under a [`StageRunner`]: transient failures (real
/// panics or injected ones at the `--faults` rate) are retried with
/// seeded backoff, and with [`QuickBenchOptions::checkpoint_dir`] set
/// each boundary commits a checksummed artifact. The cheap upstream
/// stages (world, MDAV, harvest) are *anchors* — always recomputed and
/// cross-checked against their stored digests, so a stale checkpoint
/// directory is detected before any expensive stage trusts it.
pub fn quick_bench(
    config: &WorldConfig,
    k_min: usize,
    k_max: usize,
    repeats: usize,
    options: &QuickBenchOptions,
) -> QuickBench {
    let repeats = repeats.max(1);
    let compose = options.compose;
    let det = options.checkpoint_dir.is_some();
    // Deterministic mode zeroes every wall-clock at the source, so the
    // artifacts (and the JSON rendered from them) are pure functions of
    // the configuration — the resume bit-identity contract.
    let t = |wall: f64| if det { 0.0 } else { wall };

    // Observability: spans wrap each runner stage *outside* its compute
    // closure, so the span tree has the same shape whether a stage is
    // computed fresh or satisfied from a checkpoint — one structural
    // digest pins fresh, deterministic and resumed runs alike.
    if options.profile {
        fred_obs::enable(det);
    }
    let root_span = fred_obs::span(sn::SPAN_ROOT);

    let faults_rate = options.faults.map_or(0.0, |r| {
        if r.is_finite() {
            r.clamp(0.0, 1.0)
        } else {
            0.0
        }
    });
    let runner_plan = FaultPlan {
        stage_transient: faults_rate,
        ..FaultPlan::uniform(config.seed ^ RECOVERY_SEED_SALT, 0.0)
    };
    let mut runner = StageRunner::new(
        runner_plan,
        RetryPolicy::default(),
        config_fingerprint(config, k_min, k_max, repeats, options),
    );
    if let Some(dir) = &options.checkpoint_dir {
        runner = runner.with_store(dir.clone(), options.resume);
    }
    runner.halt_after = options.halt_after.clone();

    let mut stages = Vec::new();

    // Stage 1: world generation (anchor: recomputed + digest-checked).
    let mut world_slot: Option<World> = None;
    let anchor = spanned(rstage::WORLD_BUILD, || {
        runner.run_verified(rstage::WORLD_BUILD, || {
            let (world, wall) = time_ms(|| faculty_world(config));
            let rows = world.table.len();
            let content_hash = digest_world(&world);
            world_slot = Some(world);
            StageAnchor {
                label: rstage::WORLD_BUILD.to_string(),
                rows,
                content_hash,
                timings: vec![(sn::WORLD_BUILD.to_string(), t(wall), rows)],
            }
        })
    });
    push_anchor_timings(&mut stages, &anchor);
    let world = world_slot.expect("world anchor always computes");

    // Stage 2: MDAV at the tracked level (the ROADMAP's `mdav_k5`) plus
    // per-level anonymization, as one anchor whose digest folds every
    // level's class assignment.
    let anonymizer = Mdav::new();
    let stage_k = STAGE_K.min(world.table.len());
    let k_max = k_max.min(world.table.len());
    assert!(
        k_min <= k_max,
        "quick bench needs a world with at least {k_min} records to sweep \
         k = {k_min}..; got {} (raise --size)",
        world.table.len()
    );
    let ks: Vec<usize> = (k_min..=k_max).collect();
    let mut releases_slot: Option<Vec<Release>> = None;
    let anchor = spanned(rstage::MDAV, || {
        runner.run_verified(rstage::MDAV, || {
            let (_, mdav_wall) = time_ms(|| {
                anonymizer
                    .partition(&world.table, stage_k)
                    .expect("quick-bench world partitions cleanly")
            });
            let (pairs, anon_wall) = time_ms(|| {
                ks.iter()
                    .map(|&k| {
                        let partition = anonymizer
                            .partition(&world.table, k)
                            .expect("quick-bench world partitions cleanly");
                        let release = build_release(&world.table, &partition, k, QiStyle::Range)
                            .expect("release builds from a valid partition");
                        (partition, release)
                    })
                    .collect::<Vec<_>>()
            });
            let mut digest = Digest::new();
            digest.u64(stage_k as u64);
            for (partition, _) in &pairs {
                for class in partition.class_of_rows() {
                    digest.u64(class as u64);
                }
            }
            releases_slot = Some(pairs.into_iter().map(|(_, release)| release).collect());
            StageAnchor {
                label: rstage::MDAV.to_string(),
                rows: world.table.len(),
                content_hash: digest.finish(),
                timings: vec![
                    (sn::MDAV_K5.to_string(), t(mdav_wall), world.table.len()),
                    (
                        sn::ANONYMIZE_ALL_LEVELS.to_string(),
                        t(anon_wall),
                        world.table.len() * ks.len(),
                    ),
                ],
            }
        })
    });
    push_anchor_timings(&mut stages, &anchor);
    let releases = releases_slot.expect("mdav anchor always computes");

    // Stage 3: auxiliary harvest (shared across levels, like the sweep).
    let mut harvest_slot: Option<Harvest> = None;
    let anchor = spanned(rstage::HARVEST, || {
        runner.run_verified(rstage::HARVEST, || {
            let (harvest, wall) = time_ms(|| {
                harvest_auxiliary(&releases[0].table, &world.web, &HarvestConfig::default())
                    .expect("harvest over a generated corpus cannot fail")
            });
            let content_hash = digest_harvest(&harvest);
            harvest_slot = Some(harvest);
            StageAnchor {
                label: rstage::HARVEST.to_string(),
                rows: world.table.len(),
                content_hash,
                timings: vec![(
                    sn::HARVEST_AUXILIARY.to_string(),
                    t(wall),
                    world.table.len(),
                )],
            }
        })
    });
    push_anchor_timings(&mut stages, &anchor);
    let harvest = harvest_slot.expect("harvest anchor always computes");

    // Stages 4+5: the measured comparison — identical inputs through the
    // naive interpreted path and the compiled batch/parallel path.
    let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).expect("default config valid");
    let estimate_rows = world.table.len() * ks.len() * repeats;
    let estimates = spanned(rstage::ESTIMATES, || {
        runner.run(rstage::ESTIMATES, || {
            let (naive, naive_wall) = time_ms(|| run_naive(&fusion, &releases, &harvest, repeats));
            let (batch, batch_wall) = time_ms(|| run_batch(&fusion, &releases, &harvest, repeats));
            assert_eq!(
                naive, batch,
                "batch path must be bit-identical to the naive path"
            );
            EstimatesArtifact {
                naive_ms: t(naive_wall),
                batch_ms: t(batch_wall),
                rows: estimate_rows,
                speedup: if det || batch_wall <= 0.0 {
                    0.0
                } else {
                    naive_wall / batch_wall
                },
                estimate_hash: digest_bits(&naive),
            }
        })
    });
    stages.push(StageTiming {
        name: sn::ESTIMATE_NAIVE_PER_ROW,
        wall_ms: estimates.naive_ms,
        rows: estimates.rows,
    });
    stages.push(StageTiming {
        name: sn::ESTIMATE_BATCH_PARALLEL,
        wall_ms: estimates.batch_ms,
        rows: estimates.rows,
    });

    // Stage 6: the full parallel sweep end-to-end (what figures 4-7 run).
    let before = MidpointEstimator::default();
    let sweep_stage = spanned(rstage::SWEEP, || {
        runner.run(rstage::SWEEP, || {
            let (_, wall) = time_ms(|| {
                sweep(
                    &world.table,
                    &world.web,
                    &anonymizer,
                    &before,
                    &fusion,
                    &SweepConfig {
                        k_min,
                        k_max,
                        ..SweepConfig::default()
                    },
                )
                .expect("quick-bench sweep succeeds")
            });
            SweepArtifact {
                wall_ms: t(wall),
                rows: world.table.len() * ks.len(),
            }
        })
    });
    stages.push(StageTiming {
        name: sn::SWEEP_END_TO_END,
        wall_ms: sweep_stage.wall_ms,
        rows: sweep_stage.rows,
    });

    // Stage 7 (optional): the composition attack at the tracked k.
    let composition = compose.then(|| {
        spanned(rstage::COMPOSITION, || {
            runner.run(rstage::COMPOSITION, || {
                let mut comp = composition_bench(&world);
                comp.wall_ms = t(comp.wall_ms);
                comp
            })
        })
    });
    if let Some(comp) = &composition {
        stages.push(StageTiming {
            name: sn::COMPOSITION_SWEEP,
            wall_ms: comp.wall_ms,
            rows: world.table.len() * comp.rows.len(),
        });
    }

    // Stage 8 (optional): the defense policies against the same attack.
    let composition_defense = match (&options.defend, compose) {
        (Some(policies), true) => {
            let bench = spanned(rstage::DEFENSE, || {
                runner.run(rstage::DEFENSE, || {
                    let mut bench = defense_bench(&world, policies);
                    bench.wall_ms = t(bench.wall_ms);
                    bench
                })
            });
            stages.push(StageTiming {
                name: sn::COMPOSITION_DEFENSE,
                wall_ms: bench.wall_ms,
                rows: world.table.len() * bench.rows.len(),
            });
            Some(bench)
        }
        _ => None,
    };

    // Stage 9 (optional): the hypothesis-testing evaluation — the same
    // scenarios the composition stages attack, rescored as a binary
    // classifier (core targets vs matched decoys) per (k, R, defense)
    // cell.
    let eval = compose.then(|| {
        spanned(rstage::EVAL, || {
            runner.run(rstage::EVAL, || {
                let mut bench = eval_bench(&world, options.defend.as_deref());
                bench.wall_ms = t(bench.wall_ms);
                bench
            })
        })
    });
    if let Some(eval) = &eval {
        stages.push(StageTiming {
            name: sn::EVAL_SWEEP,
            wall_ms: eval.wall_ms,
            rows: eval.rows.iter().map(|r| r.targets + r.decoys).sum(),
        });
    }

    // Stage 10 (optional): the fault-injection sweep.
    let robustness = options.faults.map(|rate| {
        let bench = spanned(rstage::ROBUSTNESS, || {
            runner.run(rstage::ROBUSTNESS, || {
                let mut bench = robustness_bench(config, &world, rate);
                bench.wall_ms = t(bench.wall_ms);
                bench
            })
        });
        stages.push(StageTiming {
            name: sn::ROBUSTNESS_SWEEP,
            wall_ms: bench.wall_ms,
            rows: world.table.len() * bench.rows.len(),
        });
        bench
    });

    // Stage 11 (optional — by far the most expensive of the core
    // pipeline, so a killed run resumes past everything else): the
    // large-world block.
    let large = options.large_size.map(|size| {
        spanned(rstage::LARGE, || {
            runner.run(rstage::LARGE, || {
                let mut bench = large_bench(config, size, compose, options.exhaustive);
                if det {
                    for stage in &mut bench.stages {
                        stage.wall_ms = 0.0;
                    }
                    bench.speedup_harvest_parallel_vs_single = 0.0;
                    if let Some(comp) = &mut bench.composition {
                        comp.wall_ms = 0.0;
                    }
                }
                bench
            })
        })
    });

    // Stage 12 (optional, last): the shard-partitioned pipeline at
    // `--size` scale, every sharded path digest-pinned in-process
    // against its unsharded reference.
    let large_100k = options.sharded_size.map(|size| {
        spanned(rstage::LARGE_100K, || {
            runner.run(rstage::LARGE_100K, || {
                let mut bench = large_100k_bench(config, size);
                if det {
                    for stage in &mut bench.stages {
                        stage.wall_ms = 0.0;
                    }
                    bench.peak_rss_mb = 0.0;
                }
                bench
            })
        })
    });

    // Close the root span, stop collecting, then measure the *disabled*
    // fast path — the cost every uninstrumented run pays. `disable()`
    // keeps the collected window and `drain()` works on a disabled
    // collector, so the probe itself records nothing.
    drop(root_span);
    let (profile, trace) = if options.profile {
        fred_obs::disable();
        let probe_start = std::time::Instant::now();
        for _ in 0..OVERHEAD_PROBE_CALLS {
            fred_obs::counter(
                std::hint::black_box("obs.overhead_probe"),
                std::hint::black_box(1),
            );
        }
        let probe_wall = probe_start.elapsed().as_secs_f64() * 1e3;
        let trace = fred_obs::drain();
        let large_wall: f64 = large
            .as_ref()
            .map(|l| l.stages.iter().map(|s| s.wall_ms).sum())
            .unwrap_or(0.0);
        let profile = distill_profile(&trace, probe_wall, large_wall, det);
        (Some(profile), Some(trace))
    } else {
        (None, None)
    };

    let recovery = (options.faults.is_some() || det).then(|| RecoveryBench {
        seed: config.seed ^ RECOVERY_SEED_SALT,
        transient_rate: faults_rate,
        max_attempts: runner.policy.max_attempts,
        retries_total: runner.retries_total(),
        quarantined_total: runner.quarantined_total(),
        escaped_panics: 0,
        rows: runner
            .reports()
            .iter()
            .map(|r| RecoveryBenchRow {
                stage: r.stage.clone(),
                attempts: r.attempts,
                retries: r.retries,
                backoff_ms: r.backoff_ms,
            })
            .collect(),
        resumed: runner.resumed(),
    });

    QuickBench {
        size: world.table.len(),
        seed: config.seed,
        // The *effective* worker width (honors RAYON_NUM_THREADS), not
        // raw available_parallelism: the >=4-core harvest-speedup gate
        // keys off this, and an overridden pool must not trip it.
        cores: rayon::current_num_threads(),
        k_range: (k_min, k_max),
        stages,
        speedup_batch_vs_naive: estimates.speedup,
        large,
        large_100k,
        composition,
        composition_defense,
        eval,
        robustness,
        deterministic: det,
        recovery,
        profile,
        trace,
    }
}

/// Distills a drained trace into the gated `profile` block: per-stage
/// self-time under the [`crate::stages::SPAN_ROOT`] span, the structural
/// digest, and the disabled-path overhead expressed against the large
/// block's wall. Counter rows are dropped in deterministic mode —
/// checkpoint-resumed stages skip their compute closures, so runtime
/// counters are not a pure function of the configuration.
fn distill_profile(
    trace: &fred_obs::Trace,
    probe_wall_ms: f64,
    large_wall_ms: f64,
    det: bool,
) -> ProfileBench {
    fn subtree(node: &fred_obs::SpanNode) -> usize {
        1 + node.children.iter().map(subtree).sum::<usize>()
    }
    let stages = trace
        .spans
        .iter()
        .filter(|root| root.name == crate::stages::SPAN_ROOT)
        .flat_map(|root| root.children.iter())
        .map(|stage| {
            let child_wall: f64 = stage.children.iter().map(|c| c.wall_ms).sum();
            ProfileStageRow {
                stage: stage.name.clone(),
                self_ms: (stage.wall_ms - child_wall).max(0.0),
                spans: subtree(stage),
            }
        })
        .collect();
    let pct = if det || large_wall_ms <= 0.0 {
        0.0
    } else {
        probe_wall_ms / large_wall_ms * 100.0
    };
    ProfileBench {
        deterministic: det,
        spans_total: trace.spans_total,
        events_total: trace.events_total,
        span_tree_digest: trace.structural_digest(),
        overhead_probe_calls: OVERHEAD_PROBE_CALLS,
        overhead_wall_ms: if det { 0.0 } else { probe_wall_ms },
        overhead_pct_of_large: pct,
        stages,
        counters: if det {
            Vec::new()
        } else {
            trace
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect()
        },
        hists: if det {
            Vec::new()
        } else {
            trace
                .histograms
                .iter()
                .map(|(name, h)| ProfileHistRow {
                    name: name.clone(),
                    count: h.count,
                    sum_ms: h.sum_ms,
                    buckets: h.buckets.to_vec(),
                })
                .collect()
        },
    }
}

/// XOR-folded into the world seed to derive the [`StageRunner`]'s fault
/// plan seed — decorrelated from the robustness sweep's
/// [`FAULT_SEED_SALT`] stream, so retry decisions and corpus corruption
/// never alias.
pub const RECOVERY_SEED_SALT: u64 = 0x5EC0;

/// Hashes the full run configuration into the checkpoint fingerprint: a
/// checkpoint written under any other configuration is stale. Store
/// location, resume flag and halt hook are deliberately excluded — they
/// vary between the runs a resume is supposed to bridge.
fn config_fingerprint(
    config: &WorldConfig,
    k_min: usize,
    k_max: usize,
    repeats: usize,
    options: &QuickBenchOptions,
) -> u64 {
    let mut d = Digest::new();
    d.u64(config.size as u64);
    d.u64(config.seed);
    d.u64(config.web_presence_rate.to_bits());
    d.u64(config.name_noise.to_bits());
    d.u64(config.score_noise.to_bits());
    d.u64(k_min as u64);
    d.u64(k_max as u64);
    d.u64(repeats as u64);
    d.u64(options.compose as u64);
    match &options.defend {
        None => d.u64(0),
        Some(policies) => {
            d.u64(1 + policies.len() as u64);
            for policy in policies {
                d.str(&policy.label());
            }
        }
    }
    d.u64(options.large_size.map_or(u64::MAX, |s| s as u64));
    d.u64(options.sharded_size.map_or(u64::MAX, |s| s as u64));
    d.u64(options.exhaustive as u64);
    d.u64(options.faults.map_or(u64::MAX, |r| r.to_bits()));
    d.finish()
}

/// Copies an anchor's timing rows into the bench's stage list,
/// re-interning the stage names into the `&'static str` roster.
fn push_anchor_timings(stages: &mut Vec<StageTiming>, anchor: &StageAnchor) {
    for (name, wall_ms, rows) in &anchor.timings {
        stages.push(StageTiming {
            name: intern_stage_name(name).expect("anchor timing names are in the stage roster"),
            wall_ms: *wall_ms,
            rows: *rows,
        });
    }
}

/// XOR-folded into the world seed to derive the fault-plan seed, so the
/// injected corruption pattern is reproducible from the baseline's
/// `config.seed` but decorrelated from every other seeded stream.
const FAULT_SEED_SALT: u64 = 0xFA17;

/// Shared inputs of one robustness cell.
struct RobustnessCtx<'a> {
    world: &'a World,
    fusion: &'a FuzzyFusion,
    release: &'a Table,
    ids: &'a [usize],
    harvest_config: &'a HarvestConfig,
    compose_config: &'a CompositionConfig,
    /// Harvest shard layout: each cell rebuilds its corrupted engine,
    /// then partitions it under this fixed plan so the `shard_loss`
    /// fault class has stable victims across rates.
    shard_plan: ShardPlan,
}

/// Runs the fault-injection sweep: the corpus, harvest and composition
/// attack re-run under a seeded [`FaultPlan`] at rates `0`, `rate/2` and
/// `rate`, through the tolerant skip-and-count pipeline — then once more
/// under the *targeted* plan: the same corruption budget aimed exactly at
/// the records the strict run disclosed hardest (worst case, not average
/// case). The `0.0` row is asserted bit-identical to the strict pipeline
/// in-process (the same passthrough property the compare gate later pins
/// against the committed baseline), every recorded metric is asserted
/// finite, and worker panics are contained by [`rayon::silence_panics`]
/// — a panic escaping the sweep *is* a robustness failure.
fn robustness_bench(config: &WorldConfig, world: &World, rate: f64) -> RobustnessBench {
    let rate = if rate.is_finite() {
        rate.clamp(0.0, 1.0)
    } else {
        0.0
    };
    let mut rates = vec![0.0];
    if rate > 0.0 {
        rates.push(rate / 2.0);
        rates.push(rate);
    }
    rates.dedup();

    let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).expect("default config valid");
    let release = world.table.suppress_sensitive();
    let ids: Vec<usize> = world.people.iter().map(|p| p.id).collect();
    let harvest_config = HarvestConfig::default();
    let compose_config = CompositionConfig {
        scenario: ScenarioConfig {
            releases: 3,
            k: STAGE_K.min(world.table.len()),
            ..ScenarioConfig::default()
        },
        ..CompositionConfig::default()
    };
    let ctx = RobustnessCtx {
        world,
        fusion: &fusion,
        release: &release,
        ids: &ids,
        harvest_config: &harvest_config,
        compose_config: &compose_config,
        shard_plan: ShardPlan::new(ROBUSTNESS_SHARDS, config.seed),
    };

    let (rows, wall) = time_ms(|| {
        let mut rows = Vec::new();
        let mut strict_outcome: Option<CompositionOutcome> = None;
        for &r in &rates {
            let plan = FaultPlan::uniform(config.seed ^ FAULT_SEED_SALT, r);
            let (row, outcome) = robustness_row(&ctx, &plan, r, "uniform", r == 0.0);
            if r == 0.0 {
                strict_outcome = Some(outcome);
            }
            rows.push(row);
        }
        if rate > 0.0 {
            let strict = strict_outcome
                .as_ref()
                .expect("the zero-rate row always runs first");
            let targets = select_targets(world, strict, rate);
            let plan = FaultPlan {
                targeted: Some(targets),
                ..FaultPlan::uniform(config.seed ^ FAULT_SEED_SALT, 0.0)
            };
            let (row, _) = robustness_row(&ctx, &plan, rate, "targeted", false);
            rows.push(row);
        }
        rows
    });
    RobustnessBench {
        max_rate: rate,
        seed: config.seed ^ FAULT_SEED_SALT,
        wall_ms: wall,
        rows,
    }
}

/// One robustness cell: corrupt the corpus under `plan`, harvest and
/// compose tolerantly, count the damage. With `check_strict` set the
/// result is asserted bit-identical to the strict pipeline (only valid
/// for passthrough plans).
fn robustness_row(
    ctx: &RobustnessCtx,
    plan: &FaultPlan,
    rate_label: f64,
    mode: &'static str,
    check_strict: bool,
) -> (RobustnessBenchRow, CompositionOutcome) {
    let (pages, page_deg) = corrupt_pages(ctx.world.web.pages().to_vec(), plan);
    let engine = SearchEngine::build(pages);
    let sharded = ShardedSearchEngine::build(&engine, ctx.shard_plan);
    let (harvest, harvest_deg) = rayon::silence_panics(|| {
        harvest_auxiliary_sharded_tolerant(ctx.release, &sharded, ctx.harvest_config, plan)
    })
    .expect("tolerant harvest never fails on injected faults");
    let precision = harvest_precision(&harvest, &engine, ctx.ids)
        .expect("harvest rows align with the world population");
    let (outcome, compose_deg) = rayon::silence_panics(|| {
        compose_attack_tolerant(
            &ctx.world.table,
            &engine,
            &Mdav::new(),
            ctx.fusion,
            ctx.compose_config,
            plan,
        )
    })
    .expect("tolerant composition never fails on injected faults");
    let mut deg = page_deg;
    deg.merge(&harvest_deg);
    deg.merge(&compose_deg);
    if check_strict {
        // The passthrough gate, checked at the source: the zero-rate row
        // *is* the strict pipeline.
        assert!(deg.is_clean(), "zero-rate plan must stay clean: {deg:?}");
        let strict = harvest_auxiliary(ctx.release, &engine, ctx.harvest_config)
            .expect("harvest over a generated corpus cannot fail");
        assert_eq!(
            harvest, strict,
            "zero-rate tolerant harvest must be bit-identical to the strict path"
        );
        let strict_outcome = compose_attack(
            &ctx.world.table,
            &engine,
            &Mdav::new(),
            ctx.fusion,
            ctx.compose_config,
        )
        .expect("composition over the quick world succeeds");
        assert_eq!(
            outcome, strict_outcome,
            "zero-rate tolerant composition must be bit-identical to the strict path"
        );
    }
    let row = RobustnessBenchRow {
        fault_rate: rate_label,
        mode,
        harvest_precision: precision,
        harvest_coverage: harvest.coverage(),
        composition_gain: outcome.disclosure_gain,
        pages_rejected: deg.pages_rejected,
        rows_skipped: deg.rows_skipped,
        fields_imputed: deg.fields_imputed,
        workers_restarted: deg.workers_restarted,
        shards_lost: deg.shards_lost,
    };
    assert!(
        row.harvest_precision.is_finite()
            && row.harvest_coverage.is_finite()
            && row.composition_gain.is_finite(),
        "robustness row at rate {rate_label} ({mode}) carries a non-finite value: {row:?}"
    );
    (row, outcome)
}

/// Builds the worst-case corruption plan from a strict run: the records
/// are ranked by realized disclosure gain (baseline minus composed
/// sensitive-range width, ties broken by row for determinism) and the
/// top `ceil(rate * n)` get their release rows dropped and their web
/// pages tombstoned — an adversary spending the same budget where the
/// attack (equivalently, the honest analyst's signal) is strongest.
fn select_targets(world: &World, strict: &CompositionOutcome, rate: f64) -> TargetedCorruption {
    let mut ranked: Vec<(f64, usize)> = strict
        .records
        .iter()
        .map(|r| {
            (
                r.baseline_income_width - r.feasible_income_width,
                r.master_row,
            )
        })
        .collect();
    ranked.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    let budget = ((rate * ranked.len() as f64).ceil() as usize)
        .min(ranked.len())
        .max(1);
    let rows: Vec<usize> = ranked.iter().take(budget).map(|&(_, row)| row).collect();
    let mut pages = Vec::new();
    for &row in &rows {
        let person = world.people[row].id;
        for page in world.web.pages() {
            if page.person_id == Some(person) {
                pages.push(page.id);
            }
        }
    }
    TargetedCorruption::new(pages, rows)
}

/// Runs the defense sweep (every policy over `R = 1..=3` at the tracked
/// `k`, next to the undefended reference) and extracts the gated rows.
/// Every recorded value is asserted finite — the same NaN-poisoning
/// guard the attack stage carries.
fn defense_bench(world: &crate::world::World, policies: &[DefensePolicy]) -> DefenseBench {
    let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).expect("default config valid");
    let config = CompositionSweepConfig {
        ks: vec![STAGE_K.min(world.table.len())],
        releases: vec![1, 2, 3],
        ..CompositionSweepConfig::default()
    };
    let (report, wall) = time_ms(|| {
        defense_sweep(
            &world.table,
            &world.web,
            &Mdav::new(),
            &fusion,
            &config,
            policies,
        )
        .expect("defense sweep over the quick world succeeds")
    });
    let rows: Vec<DefenseBenchRow> = report
        .rows()
        .iter()
        .map(|r| DefenseBenchRow {
            policy: r.policy.clone(),
            releases: r.releases,
            residual_gain: r.residual_gain,
            undefended_gain: r.undefended_gain,
            mean_candidates: r.mean_candidates,
            utility_cost: r.utility_cost,
        })
        .collect();
    for row in &rows {
        assert!(
            row.residual_gain.is_finite()
                && row.undefended_gain.is_finite()
                && row.mean_candidates.is_finite()
                && row.utility_cost.is_finite(),
            "defense row `{}` at R = {} carries a non-finite value: {row:?}",
            row.policy,
            row.releases
        );
    }
    DefenseBench {
        k: config.ks[0],
        overlap: config.overlap,
        wall_ms: wall,
        rows,
    }
}

/// Anonymization levels the hypothesis-testing evaluation sweeps — two
/// distinct ks so the "ε non-increasing in k" gate compares real cells
/// within one run instead of holding vacuously over a single level.
pub const EVAL_KS: [usize; 2] = [2, STAGE_K];

/// Release counts every undefended evaluation cell is scored at.
pub const EVAL_RELEASES: [usize; 2] = [2, 3];

/// The decoy pool for one scenario: every master row outside the
/// target core. Which of them actually count as negatives is decided
/// per cell, after intersection — see [`eval_cell`].
fn eval_decoys(n: usize, targets: &[usize]) -> Vec<usize> {
    let in_core: std::collections::HashSet<usize> = targets.iter().copied().collect();
    (0..n).filter(|row| !in_core.contains(row)).collect()
}

/// Scores one `(sources, targets, decoys)` cell: both populations run
/// through the intersection engine in a single call (so the scoring
/// path cannot drift between them), then split and handed to the
/// threshold sweep.
///
/// Decoy rows that turn out to be present in *every* scored release are
/// dropped before the sweep: such a row is a member of the fused
/// release population, so its "not in the core" label is ground-truth
/// noise, not a measure of attacker power — at low `k` it intersects
/// exactly as sharply as a real target and no score can tell them
/// apart. Excluding it is the membership-inference convention of
/// evaluating only on cleanly-labelled in/out populations, and it is
/// what makes the committed ε genuinely non-increasing in `k` instead
/// of tie-noise.
fn eval_cell(
    sources: &[Source],
    targets: &[usize],
    decoys: &[usize],
    n_master: usize,
) -> fred_eval::EvalReport {
    let mut rows: Vec<usize> = Vec::with_capacity(targets.len() + decoys.len());
    rows.extend_from_slice(targets);
    rows.extend_from_slice(decoys);
    let inters = intersect_releases(sources, &rows, n_master, STREAM_CHUNK_ROWS)
        .expect("intersection over generated sources cannot fail");
    let (target_rows, decoy_rows) = inters.split_at(targets.len());
    let eligible: Vec<TargetIntersection> = decoy_rows
        .iter()
        .filter(|d| d.sources_seen < sources.len())
        .cloned()
        .collect();
    fred_eval::evaluate_intersections(target_rows, &eligible, n_master)
        .expect("eval populations are non-empty with finite scores")
}

/// Runs the hypothesis-testing evaluation on a world: every undefended
/// `(k, R)` cell of [`EVAL_KS`] × [`EVAL_RELEASES`] (ks clamped to the
/// world and deduplicated) scores the scenario's target core against a
/// matched decoy population, sweeps the decision threshold, and records
/// ROC-derived AUC, TPR@FPR=10⁻³ and empirical ε; with `--defend` one
/// extra cell per policy runs at the tracked `k` and top `R`. Each k's
/// lower-R cells score a *prefix* of the same source list, so the only
/// variable across a row group is how much the adversary has seen.
/// Every value is asserted finite — a NaN would sail through the
/// comparison gates (every NaN comparison is false) and disarm them
/// silently.
fn eval_bench(world: &crate::world::World, policies: Option<&[DefensePolicy]>) -> EvalBench {
    let table = &world.table;
    let n = table.len();
    let anonymizer = Mdav::new();
    let base = ScenarioConfig::default();
    let max_r = *EVAL_RELEASES.iter().max().expect("release list non-empty");
    let stage_k = STAGE_K.min(n);
    let mut ks: Vec<usize> = EVAL_KS.iter().map(|&k| k.min(stage_k)).collect();
    ks.sort_unstable();
    ks.dedup();
    let (rows, wall_ms) = time_ms(|| {
        let mut rows: Vec<EvalCellRow> = Vec::new();
        for &k in &ks {
            let config = ScenarioConfig {
                releases: max_r,
                k,
                ..base.clone()
            };
            let scenario = generate_scenario(table, &anonymizer, &config)
                .expect("eval scenario generates over the quick world");
            let decoys = eval_decoys(n, &scenario.targets);
            for &releases in &EVAL_RELEASES {
                let releases = releases.min(scenario.sources.len());
                let report =
                    eval_cell(&scenario.sources[..releases], &scenario.targets, &decoys, n);
                fred_obs::counter("eval.cells", 1);
                fred_obs::counter("eval.scored_rows", (report.targets + report.decoys) as u64);
                rows.push(EvalCellRow {
                    k,
                    releases,
                    defense: "none".to_owned(),
                    targets: report.targets,
                    decoys: report.decoys,
                    auc: report.auc,
                    tpr_at_fpr3: report.tpr_at_low_fpr,
                    epsilon: report.epsilon,
                });
            }
        }
        if let Some(policies) = policies {
            for policy in policies {
                // Defended cells regenerate the full scenario under the
                // policy and score all sources (no prefix slicing:
                // CalibratedWiden calibrates against the whole release
                // set, so a sliced view would misstate the defense).
                let config = ScenarioConfig {
                    releases: max_r,
                    k: stage_k,
                    defense: Some(policy.clone()),
                    ..base.clone()
                };
                let scenario = generate_scenario(table, &anonymizer, &config)
                    .expect("defended eval scenario generates over the quick world");
                let decoys = eval_decoys(n, &scenario.targets);
                let report = eval_cell(&scenario.sources, &scenario.targets, &decoys, n);
                fred_obs::counter("eval.cells", 1);
                fred_obs::counter("eval.scored_rows", (report.targets + report.decoys) as u64);
                rows.push(EvalCellRow {
                    k: stage_k,
                    releases: max_r,
                    defense: policy.label(),
                    targets: report.targets,
                    decoys: report.decoys,
                    auc: report.auc,
                    tpr_at_fpr3: report.tpr_at_low_fpr,
                    epsilon: report.epsilon,
                });
            }
        }
        rows
    });
    for row in &rows {
        assert!(
            row.auc.is_finite() && row.tpr_at_fpr3.is_finite() && row.epsilon.is_finite(),
            "eval cell k = {} R = {} `{}` carries a non-finite value: {row:?}",
            row.k,
            row.releases,
            row.defense
        );
    }
    EvalBench { wall_ms, rows }
}

/// Runs the composition sweep (`R = 1..=3` at the tracked k) on a world
/// and extracts the gated series. Every recorded value is asserted
/// finite: a NaN here would vanish from the line-oriented baseline
/// parser and silently dodge the monotonicity gate.
fn composition_bench(world: &crate::world::World) -> CompositionBench {
    let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).expect("default config valid");
    let config = CompositionSweepConfig {
        ks: vec![STAGE_K.min(world.table.len())],
        releases: vec![1, 2, 3],
        ..CompositionSweepConfig::default()
    };
    let (report, wall) = time_ms(|| {
        composition_sweep(&world.table, &world.web, &Mdav::new(), &fusion, &config)
            .expect("composition sweep over the quick world succeeds")
    });
    let rows: Vec<CompositionBenchRow> = report
        .rows()
        .iter()
        .map(|r| CompositionBenchRow {
            releases: r.releases,
            disclosure_gain: r.disclosure_gain,
            mean_candidates: r.mean_candidates,
            estimate_gain: r.estimate_gain,
        })
        .collect();
    for row in &rows {
        assert!(
            row.disclosure_gain.is_finite()
                && row.mean_candidates.is_finite()
                && row.estimate_gain.is_finite(),
            "composition row at R = {} carries a non-finite value: {row:?}",
            row.releases
        );
    }
    CompositionBench {
        k: config.ks[0],
        overlap: config.overlap,
        wall_ms: wall,
        rows,
    }
}

/// Times the hot stages on a large world: this is where the near-linear
/// MDAV, the batched/parallel harvest and the streaming release iterator
/// earn their keep, and where a superlinear regression shows up as a
/// wall-clock cliff rather than noise. With `compose` set (and a world
/// big enough to hold a `STAGE_K`-anonymizable core) the composition
/// attack runs at this scale too: `R` independent per-source MDAV runs
/// fanned across the worker pool, releases streamed through the
/// intersection engine, gains gated like the quick-world stage.
///
/// The exhaustive-reference stage (`harvest_sequential_large`) runs over
/// a seeded [`REFERENCE_SAMPLE_ROWS`]-row sample unless `exhaustive` is
/// set: harvesting is per-name independent and the sampled reference is
/// property-pinned against the full one, so the equality assert keeps
/// its teeth while the stage drops from the bench's single largest cost
/// (~1.2 s at 10 000 rows) to a few tens of milliseconds.
fn large_bench(config: &WorldConfig, size: usize, compose: bool, exhaustive: bool) -> LargeBench {
    let mut stages = Vec::new();
    let large_config = WorldConfig {
        size,
        ..config.clone()
    };

    let (world, wall) = time_ms(|| faculty_world(&large_config));
    stages.push(StageTiming {
        name: sn::WORLD_BUILD_LARGE,
        wall_ms: wall,
        rows: world.table.len(),
    });

    let anonymizer = Mdav::new();
    let stage_k = STAGE_K.min(world.table.len());
    let (partition, wall) = time_ms(|| {
        anonymizer
            .partition(&world.table, stage_k)
            .expect("large world partitions cleanly")
    });
    stages.push(StageTiming {
        name: sn::MDAV_K5_LARGE,
        wall_ms: wall,
        rows: world.table.len(),
    });

    // Stream the release instead of materializing it: peak memory stays
    // one chunk regardless of world size.
    let (streamed_rows, wall) = time_ms(|| {
        Release::chunks(&world.table, &partition, QiStyle::Range, STREAM_CHUNK_ROWS)
            .map(|chunk| chunk.expect("chunk builds from a valid partition").len())
            .sum::<usize>()
    });
    assert_eq!(streamed_rows, world.table.len());
    stages.push(StageTiming {
        name: sn::RELEASE_STREAM_LARGE,
        wall_ms: wall,
        rows: streamed_rows,
    });

    let release = build_release(&world.table, &partition, stage_k, QiStyle::Range)
        .expect("release builds from a valid partition");
    let harvest_config = HarvestConfig::default();
    let (harvest_par, par_wall) = time_ms(|| {
        harvest_auxiliary(&release.table, &world.web, &harvest_config)
            .expect("harvest over a generated corpus cannot fail")
    });
    stages.push(StageTiming {
        name: sn::HARVEST_PARALLEL_LARGE,
        wall_ms: par_wall,
        rows: world.table.len(),
    });

    // The same cached fast path pinned to one thread: the parallelism
    // ratio's denominator. Timing the *exhaustive* reference here
    // instead would fold the algorithmic speedup (top-k search, score
    // floor, agreement memo) into the ratio and let a runner that lost
    // all thread fan-out still clear the >= 4-core gate on caching
    // alone.
    let (harvest_single, single_wall) = time_ms(|| {
        fred_attack::harvest_auxiliary_single_threaded(&release.table, &world.web, &harvest_config)
            .expect("harvest over a generated corpus cannot fail")
    });
    stages.push(StageTiming {
        name: sn::HARVEST_SINGLE_THREAD_LARGE,
        wall_ms: single_wall,
        rows: world.table.len(),
    });

    // The sampled reference always runs under the stable stage name, so
    // baselines stay comparable across modes; --exhaustive *adds* the
    // full-table reference as its own stage instead of silently swapping
    // the workload behind `harvest_sequential_large` (which would trip —
    // or disarm — the 3x stage-ratio gate whenever the two sides of a
    // compare were taken in different modes).
    let (sampled, seq_wall) = time_ms(|| {
        harvest_auxiliary_reference_sampled(
            &release.table,
            &world.web,
            &harvest_config,
            REFERENCE_SAMPLE_ROWS,
            config.seed,
        )
        .expect("harvest over a generated corpus cannot fail")
    });
    let (sample_rows, harvest_ref) = sampled;
    stages.push(StageTiming {
        name: sn::HARVEST_SEQUENTIAL_LARGE,
        wall_ms: seq_wall,
        rows: sample_rows.len(),
    });
    for (i, &row) in sample_rows.iter().enumerate() {
        assert_eq!(
            harvest_ref.records[i], harvest_par.records[row],
            "parallel harvest diverged from the sampled reference at row {row}"
        );
        assert_eq!(
            harvest_ref.linked[i], harvest_par.linked[row],
            "parallel harvest links diverged from the sampled reference at row {row}"
        );
    }
    if exhaustive {
        let (harvest_seq, ex_wall) = time_ms(|| {
            harvest_auxiliary_sequential(&release.table, &world.web, &harvest_config)
                .expect("harvest over a generated corpus cannot fail")
        });
        stages.push(StageTiming {
            name: sn::HARVEST_EXHAUSTIVE_LARGE,
            wall_ms: ex_wall,
            rows: world.table.len(),
        });
        assert_eq!(
            harvest_par, harvest_seq,
            "parallel harvest must be record-for-record identical to the reference"
        );
    }
    assert_eq!(
        harvest_par, harvest_single,
        "single-threaded fast path must be record-for-record identical to the parallel one"
    );

    // The batch/parallel estimator driven through the streaming release —
    // the `SweepConfig::chunk_rows` path at enterprise scale: each chunk
    // pairs with its aligned slice of harvest records, so peak memory
    // stays one chunk while every row flows through
    // `FuzzyFusion::estimate`.
    let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).expect("default config valid");
    let (estimated_rows, wall) = time_ms(|| {
        let mut lo = 0usize;
        for chunk in Release::chunks(&world.table, &partition, QiStyle::Range, STREAM_CHUNK_ROWS) {
            let chunk = chunk.expect("chunk builds from a valid partition");
            let hi = lo + chunk.len();
            let est = fusion
                .estimate(&chunk, &harvest_par.records[lo..hi])
                .expect("estimate succeeds");
            debug_assert_eq!(est.len(), chunk.len());
            lo = hi;
        }
        lo
    });
    assert_eq!(estimated_rows, world.table.len());
    stages.push(StageTiming {
        name: sn::ESTIMATE_STREAM_LARGE,
        wall_ms: wall,
        rows: estimated_rows,
    });

    // The composition attack at enterprise scale. Skipped (not failed)
    // when the world cannot hold a STAGE_K-anonymizable core — the same
    // feasibility bound the repro CLI derives for the quick stage.
    let overlap = CompositionSweepConfig::default().overlap;
    let core_rows = (world.table.len() as f64 * overlap).round() as usize;
    let composition = (compose && core_rows >= STAGE_K).then(|| {
        let comp = composition_bench(&world);
        stages.push(StageTiming {
            name: sn::COMPOSITION_LARGE,
            wall_ms: comp.wall_ms,
            rows: world.table.len() * comp.rows.len(),
        });
        comp
    });

    LargeBench {
        size: world.table.len(),
        cores: rayon::current_num_threads(),
        stages,
        speedup_harvest_parallel_vs_single: if par_wall > 0.0 {
            single_wall / par_wall
        } else {
            0.0
        },
        composition,
    }
}

/// Peak resident set size of this process in MiB, read from
/// `/proc/self/status` (`VmHWM`). `0.0` where `/proc` is unavailable —
/// the compare gate treats a zero ceiling measurement as "not taken"
/// rather than as a regression.
fn peak_rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kb / 1024.0;
        }
    }
    0.0
}

/// Content digest of a partition's per-row class assignment.
fn digest_partition(partition: &Partition) -> u64 {
    let mut d = Digest::new();
    for class in partition.class_of_rows() {
        d.u64(class as u64);
    }
    d.finish()
}

/// Content digest of an intersection result: candidates, feasible boxes
/// and centroid hints, folded through each target's canonical `Debug`
/// form (floats render shortest-round-trip, so equal digests mean
/// bit-equal results).
fn digest_intersections(targets: &[TargetIntersection]) -> u64 {
    let mut d = Digest::new();
    for t in targets {
        d.str(&format!("{t:?}"));
    }
    d.finish()
}

/// Seeded index sample without replacement (SplitMix64-driven partial
/// Fisher-Yates), returned ascending.
fn sample_indices(n: usize, take: usize, seed: u64) -> Vec<usize> {
    let take = take.min(n);
    let mut rows: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in 0..take {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let j = i + (z as usize) % (n - i);
        rows.swap(i, j);
    }
    rows.truncate(take);
    rows.sort_unstable();
    rows
}

/// XOR salts decorrelating the block's two seeded samples from each
/// other and from every other seeded stream in the pipeline.
const EQUIVALENCE_SAMPLE_SALT: u64 = 0x5A3D;
const INTERSECT_TARGET_SALT: u64 = 0x7A46;

/// Times the shard-partitioned pipeline at `--size` scale — the
/// `large_100k` block. The hot paths are re-expressed shard-by-shard so
/// peak memory stays flat in the row count: the harvest queries
/// per-shard postings, MDAV recurses into bounded leaves, and the
/// intersection engine rebuilds its candidate bitsets per contiguous
/// row range instead of at full master width. Every sharded path is
/// pinned against its unsharded reference in-process: the harvest pair
/// at full size (both paths are near-linear), the MDAV and intersection
/// pairs on a seeded [`EQUIVALENCE_SAMPLE_ROWS`] subsample — their
/// references are superlinear in time (per-class farthest scans over
/// one flat pool) or memory (full-width per-class bitsets), so running
/// them at 100k would defeat the very claim this block gates.
fn large_100k_bench(config: &WorldConfig, size: usize) -> Large100kBench {
    let mut stages = Vec::new();
    let world_config = WorldConfig {
        size,
        ..config.clone()
    };
    let (world, wall) = time_ms(|| faculty_world(&world_config));
    let n = world.table.len();
    stages.push(StageTiming {
        name: sn::WORLD_BUILD_100K,
        wall_ms: wall,
        rows: n,
    });

    let plan = ShardPlan::for_size(n, config.seed);
    let stage_k = STAGE_K.min(n);
    let hier = HierarchicalMdav::new(plan);

    let (partition, wall) = time_ms(|| {
        hier.partition(&world.table, stage_k)
            .expect("sharded world partitions cleanly")
    });
    stages.push(StageTiming {
        name: sn::MDAV_HIER_100K,
        wall_ms: wall,
        rows: n,
    });

    let release = build_release(&world.table, &partition, stage_k, QiStyle::Range)
        .expect("release builds from a valid partition");
    let harvest_config = HarvestConfig::default();
    let sharded_engine = ShardedSearchEngine::build(&world.web, plan);
    // A capped plan holds more rows per shard than the derivation rate
    // suggests; the accounting rows must say so or a 1M-row run reads
    // 64 shards as "one per 12.5k rows".
    let capped = ShardPlan::for_size_saturated(n);
    if capped {
        fred_obs::counter("shard.plan_capped", 1);
        eprintln!(
            "note: shard plan saturated at {} shards for {} rows ({} rows/shard)",
            plan.shards(),
            n,
            n / plan.shards()
        );
    }
    let shard_rows: Vec<ShardBenchRow> = plan
        .row_ranges(n)
        .into_iter()
        .enumerate()
        .map(|(shard, range)| ShardBenchRow {
            shard,
            rows: range.len(),
            pages: sharded_engine.pages_in_shard(shard),
            capped,
        })
        .collect();

    let (harvest_sharded, wall) = time_ms(|| {
        harvest_auxiliary_sharded(&release.table, &sharded_engine, &harvest_config)
            .expect("harvest over a generated corpus cannot fail")
    });
    stages.push(StageTiming {
        name: sn::HARVEST_SHARDED_100K,
        wall_ms: wall,
        rows: n,
    });
    let (harvest_unsharded, wall) = time_ms(|| {
        harvest_auxiliary(&release.table, &world.web, &harvest_config)
            .expect("harvest over a generated corpus cannot fail")
    });
    stages.push(StageTiming {
        name: sn::HARVEST_UNSHARDED_100K,
        wall_ms: wall,
        rows: n,
    });
    assert_eq!(
        harvest_sharded, harvest_unsharded,
        "sharded harvest must be bit-identical to the unsharded parallel path"
    );

    // The per-shard streaming intersection over a full-size scenario
    // (per-source hierarchical MDAV keeps the scenario build per-leaf
    // too). Per-target cost is flat, so a seeded target sample times the
    // per-shard machinery without an O(core) tail.
    let scenario_config = ScenarioConfig {
        releases: 2,
        k: stage_k,
        seed: config.seed,
        ..ScenarioConfig::default()
    };
    let scenario = generate_scenario(&world.table, &hier, &scenario_config)
        .expect("sharded world holds a k-anonymizable core");
    let target_idx = sample_indices(
        scenario.targets.len(),
        INTERSECT_TARGET_SAMPLE,
        config.seed ^ INTERSECT_TARGET_SALT,
    );
    let targets: Vec<usize> = target_idx.iter().map(|&i| scenario.targets[i]).collect();
    let (intersections, wall) = time_ms(|| {
        intersect_releases_sharded(&scenario.sources, &targets, n, STREAM_CHUNK_ROWS, &plan)
            .expect("intersection over a generated scenario cannot fail")
    });
    assert_eq!(intersections.len(), targets.len());
    stages.push(StageTiming {
        name: sn::INTERSECT_SHARDED_100K,
        wall_ms: wall,
        rows: targets.len(),
    });

    // The equivalence pass: sharded-vs-unsharded digest pairs on a
    // seeded subsample, asserted equal in-process and re-gated against
    // the committed baseline by `compare.rs`.
    let sample = sample_indices(
        n,
        EQUIVALENCE_SAMPLE_ROWS,
        config.seed ^ EQUIVALENCE_SAMPLE_SALT,
    );
    let sub_table = Table::with_rows(
        world.table.schema().clone(),
        sample
            .iter()
            .map(|&r| world.table.rows()[r].clone())
            .collect(),
    )
    .expect("subsampled rows satisfy the schema they came from");
    let (digests, wall) = time_ms(|| {
        let mdav = Mdav::new();
        let optimized = mdav
            .partition_hierarchical(&sub_table, stage_k, &plan)
            .expect("subsample partitions cleanly");
        let reference = mdav
            .partition_hierarchical_reference(&sub_table, stage_k, &plan)
            .expect("subsample partitions cleanly");
        let sub_scenario = generate_scenario(&sub_table, &hier, &scenario_config)
            .expect("subsample holds a k-anonymizable core");
        let sharded = intersect_releases_sharded(
            &sub_scenario.sources,
            &sub_scenario.targets,
            sub_table.len(),
            STREAM_CHUNK_ROWS,
            &plan,
        )
        .expect("intersection over a generated scenario cannot fail");
        let full = intersect_releases(
            &sub_scenario.sources,
            &sub_scenario.targets,
            sub_table.len(),
            STREAM_CHUNK_ROWS,
        )
        .expect("intersection over a generated scenario cannot fail");
        assert_eq!(
            sharded, full,
            "sharded intersection must be bit-identical to the full-width engine"
        );
        (
            digest_partition(&optimized),
            digest_partition(&reference),
            digest_intersections(&sharded),
            digest_intersections(&full),
        )
    });
    let (mdav_opt, mdav_ref, int_sharded, int_full) = digests;
    assert_eq!(
        mdav_opt, mdav_ref,
        "hierarchical MDAV must match its per-leaf reference on the subsample"
    );
    stages.push(StageTiming {
        name: sn::EQUIVALENCE_100K,
        wall_ms: wall,
        rows: sub_table.len(),
    });

    Large100kBench {
        size: n,
        shards: plan.shards(),
        cores: rayon::current_num_threads(),
        sample_rows: sub_table.len(),
        peak_rss_mb: peak_rss_mb(),
        stages,
        shard_rows,
        harvest_digest_sharded: digest_harvest(&harvest_sharded),
        harvest_digest_unsharded: digest_harvest(&harvest_unsharded),
        mdav_digest_sharded: mdav_opt,
        mdav_digest_unsharded: mdav_ref,
        intersect_digest_sharded: int_sharded,
        intersect_digest_unsharded: int_full,
    }
}

fn run_naive(
    fusion: &FuzzyFusion,
    releases: &[Release],
    harvest: &Harvest,
    repeats: usize,
) -> Vec<u64> {
    let mut bits = Vec::new();
    for rep in 0..repeats {
        for release in releases {
            let est = fusion
                .estimate_interpreted(&release.table, &harvest.records)
                .expect("estimate succeeds");
            if rep == 0 {
                bits.extend(est.iter().map(|e| e.to_bits()));
            }
        }
    }
    bits
}

fn run_batch(
    fusion: &FuzzyFusion,
    releases: &[Release],
    harvest: &Harvest,
    repeats: usize,
) -> Vec<u64> {
    let mut bits = Vec::new();
    for rep in 0..repeats {
        for release in releases {
            let est = fusion
                .estimate(&release.table, &harvest.records)
                .expect("estimate succeeds");
            if rep == 0 {
                bits.extend(est.iter().map(|e| e.to_bits()));
            }
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_serializes() {
        let bench = quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            4,
            1,
            &QuickBenchOptions::default(),
        );
        assert_eq!(bench.k_range, (2, 4));
        assert_eq!(bench.stages.len(), 7);
        assert!(bench.large.is_none());
        assert!(bench.composition.is_none());
        assert!(bench.cores >= 1);
        let json = bench.to_json();
        assert!(json.contains("\"mdav_k5\""));
        assert!(json.contains("\"cores\""));
        assert!(json.contains("\"estimate_batch_parallel\""));
        assert!(json.contains("\"speedup_batch_vs_naive\""));
        assert!(json.contains("\"deterministic\": false"));
        assert!(!json.contains("\"large\""));
        assert!(!json.contains("\"composition\""));
        // No faults, no checkpoint store: the recovery ledger stays off.
        assert!(bench.recovery.is_none());
        assert!(!json.contains("\"recovery\""));
        assert!(json.trim_end().ends_with('}'));
        let ascii = bench.to_ascii();
        assert!(ascii.contains("rows/sec"));
    }

    #[test]
    fn quick_bench_large_stage_runs_and_serializes() {
        // A "large" world of 80 rows keeps the test fast while driving the
        // exact code path `--size 10_000` exercises.
        let bench = quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            4,
            1,
            &QuickBenchOptions {
                large_size: Some(80),
                ..QuickBenchOptions::default()
            },
        );
        let large = bench.large.as_ref().expect("large stage requested");
        assert_eq!(large.size, 80);
        assert!(large.cores >= 1);
        let names: Vec<&str> = large.stages.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "world_build_large",
                "mdav_k5_large",
                "release_stream_large",
                "harvest_parallel_large",
                "harvest_single_thread_large",
                "harvest_sequential_large",
                "estimate_stream_large",
            ]
        );
        assert!(large.speedup_harvest_parallel_vs_single > 0.0);
        // Without --compose the large block carries no composition stage.
        assert!(large.composition.is_none());
        let json = bench.to_json();
        assert!(json.contains("\"large\""));
        assert!(json.contains("\"mdav_k5_large\""));
        assert!(json.contains("\"estimate_stream_large\""));
        assert!(json.contains("\"speedup_harvest_parallel_vs_single\""));
        assert!(json.contains("\"harvest_single_thread_large\""));
        assert!(!json.contains("\"composition_large\""));
        // The large block records its own cores line next to its size.
        assert!(json.contains(&format!(
            "    \"size\": {},\n    \"cores\": {},\n",
            large.size, large.cores
        )));
        let ascii = bench.to_ascii();
        assert!(ascii.contains("large world"));
    }

    #[test]
    fn quick_bench_composition_stage_runs_and_serializes() {
        let bench = quick_bench(
            &WorldConfig {
                size: 40,
                ..WorldConfig::default()
            },
            2,
            4,
            1,
            &QuickBenchOptions {
                compose: true,
                ..QuickBenchOptions::default()
            },
        );
        let comp = bench.composition.as_ref().expect("composition requested");
        assert_eq!(comp.k, STAGE_K);
        let releases: Vec<usize> = comp.rows.iter().map(|r| r.releases).collect();
        assert_eq!(releases, vec![1, 2, 3]);
        assert_eq!(comp.rows[0].disclosure_gain, 0.0);
        // The gate property: strictly increasing per-record gain.
        for pair in comp.rows.windows(2) {
            assert!(
                pair[1].disclosure_gain > pair[0].disclosure_gain,
                "gain not strictly increasing: {:?}",
                comp.rows
            );
        }
        assert!(bench.stages.iter().any(|s| s.name == "composition_sweep"));
        let json = bench.to_json();
        assert!(json.contains("\"composition\""));
        assert!(json.contains("\"disclosure_gain\""));
        assert!(json.trim_end().ends_with('}'));
        let ascii = bench.to_ascii();
        assert!(ascii.contains("disclosure gain"));
        // JSON stays well-formed with both optional blocks present, and
        // --compose + large world yields the composition_large stage.
        let both = quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            3,
            1,
            &QuickBenchOptions {
                large_size: Some(40),
                compose: true,
                ..QuickBenchOptions::default()
            },
        );
        let json = both.to_json();
        assert!(json.contains("\"large\"") && json.contains("\"composition\""));
        assert!(json.contains("\"composition_large\""));
        assert!(json.trim_end().ends_with('}'));
        let large = both.large.as_ref().expect("large stage requested");
        let comp_large = large.composition.as_ref().expect("composition at scale");
        assert_eq!(comp_large.rows[0].disclosure_gain, 0.0);
        for pair in comp_large.rows.windows(2) {
            assert!(
                pair[1].disclosure_gain > pair[0].disclosure_gain,
                "large-world gain not strictly increasing: {:?}",
                comp_large.rows
            );
        }
        assert!(large
            .stages
            .iter()
            .any(|s| s.name == "composition_large" && s.rows == 40 * comp_large.rows.len()));
        assert!(both.to_ascii().contains("composition (large world)"));
    }

    #[test]
    fn quick_bench_defense_stage_runs_and_serializes() {
        let bench = quick_bench(
            &WorldConfig {
                size: 40,
                ..WorldConfig::default()
            },
            2,
            3,
            1,
            &QuickBenchOptions {
                compose: true,
                defend: Some(DefensePolicy::default_set(STAGE_K)),
                ..QuickBenchOptions::default()
            },
        );
        let defense = bench
            .composition_defense
            .as_ref()
            .expect("defense stage requested");
        assert_eq!(defense.k, STAGE_K);
        // 3 policies x R = 1..=3.
        assert_eq!(defense.rows.len(), 9);
        let policies: std::collections::BTreeSet<&str> =
            defense.rows.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(policies.len(), 3);
        assert!(policies.contains("coordinated_seeds"));
        let coordinated: Vec<_> = defense
            .rows
            .iter()
            .filter(|r| r.policy == "coordinated_seeds")
            .collect();
        for row in &defense.rows {
            if row.releases == 1 {
                // No composition yet: the residual is exactly the
                // (negated) price of the wider publish.
                assert_eq!(row.residual_gain, -row.utility_cost, "{row:?}");
            }
            if row.policy == "coordinated_seeds" {
                // Identical core classes in every release: composition
                // adds nothing, the residual stays flat in R.
                assert_eq!(row.residual_gain, coordinated[0].residual_gain, "{row:?}");
            }
            if row.policy.starts_with("calibrated_widen") {
                assert!(row.mean_candidates >= STAGE_K as f64, "{row:?}");
            }
        }
        assert!(bench.stages.iter().any(|s| s.name == "composition_defense"));
        let json = bench.to_json();
        assert!(json.contains("\"composition_defense\""));
        assert!(json.contains("\"residual_gain\""));
        assert!(json.contains("\"utility_cost\""));
        assert!(json.trim_end().ends_with('}'));
        assert!(bench.to_ascii().contains("defenses"));
        // Without --compose the defend request is ignored.
        let without = quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            3,
            1,
            &QuickBenchOptions {
                defend: Some(DefensePolicy::default_set(STAGE_K)),
                ..QuickBenchOptions::default()
            },
        );
        assert!(without.composition_defense.is_none());
        assert!(!without.to_json().contains("composition_defense"));
    }

    #[test]
    fn quick_bench_robustness_stage_runs_and_serializes() {
        let bench = quick_bench(
            &WorldConfig {
                size: 40,
                ..WorldConfig::default()
            },
            2,
            3,
            1,
            &QuickBenchOptions {
                faults: Some(0.1),
                ..QuickBenchOptions::default()
            },
        );
        let rob = bench.robustness.as_ref().expect("robustness requested");
        assert_eq!(rob.max_rate, 0.1);
        let rates: Vec<f64> = rob.rows.iter().map(|r| r.fault_rate).collect();
        // Uniform rows at 0, rate/2, rate — then the targeted worst-case
        // row at the same top budget.
        assert_eq!(rates, vec![0.0, 0.05, 0.1, 0.1]);
        let modes: Vec<&str> = rob.rows.iter().map(|r| r.mode).collect();
        assert_eq!(modes, vec!["uniform", "uniform", "uniform", "targeted"]);
        // The zero-rate row is the strict pipeline in disguise: the
        // in-process bit-identity asserts ran, and no defects survived.
        let zero = &rob.rows[0];
        assert_eq!(
            zero.pages_rejected
                + zero.rows_skipped
                + zero.fields_imputed
                + zero.workers_restarted
                + zero.shards_lost,
            0,
            "{zero:?}"
        );
        // The top uniform rate actually registered damage somewhere.
        let top = &rob.rows[2];
        assert!(
            top.pages_rejected
                + top.rows_skipped
                + top.fields_imputed
                + top.workers_restarted
                + top.shards_lost
                > 0,
            "10% corruption left no trace: {top:?}"
        );
        // The targeted plan hits exactly its victims: release rows
        // dropped, and no more signal than the strict run had.
        let targeted = rob.rows.last().expect("targeted row appended");
        assert!(
            targeted.rows_skipped > 0,
            "targeted corruption dropped no rows: {targeted:?}"
        );
        assert!(
            targeted.composition_gain <= zero.composition_gain,
            "corrupting the top-gain records cannot increase the gain: {targeted:?}"
        );
        assert!(bench.stages.iter().any(|s| s.name == "robustness_sweep"));
        // Faults enabled => the recovery ledger is emitted, with one row
        // per runner stage and no escaped panics.
        let rec = bench.recovery.as_ref().expect("recovery ledger emitted");
        assert_eq!(rec.escaped_panics, 0);
        assert_eq!(rec.transient_rate, 0.1);
        assert!(rec.rows.iter().any(|r| r.stage == "robustness"));
        assert!(!rec.resumed);
        let json = bench.to_json();
        assert!(json.contains("\"robustness\""));
        assert!(json.contains("\"fault_rate\""));
        assert!(json.contains("\"mode\": \"targeted\""));
        assert!(json.contains("\"composition_gain\""));
        assert!(json.contains("\"shards_lost\""));
        assert!(json.contains("\"recovery\""));
        assert!(json.contains("\"transient_rate\""));
        assert!(json.trim_end().ends_with('}'));
        assert!(bench.to_ascii().contains("robustness"));
        assert!(bench.to_ascii().contains("recovery"));
        // A zero --faults rate degenerates to the passthrough row alone.
        let passthrough = quick_bench(
            &WorldConfig {
                size: 40,
                ..WorldConfig::default()
            },
            2,
            3,
            1,
            &QuickBenchOptions {
                faults: Some(0.0),
                ..QuickBenchOptions::default()
            },
        );
        let rob = passthrough
            .robustness
            .as_ref()
            .expect("robustness requested");
        assert_eq!(rob.rows.len(), 1);
        assert_eq!(rob.rows[0].fault_rate, 0.0);
    }

    #[test]
    fn quick_bench_sharded_stage_runs_and_serializes() {
        // A "100k" world of 80 rows keeps the test fast while driving the
        // exact code path `--size 100000` exercises; below the per-shard
        // floor the plan degenerates to one shard, so every sharded path
        // runs against its reference over identical row ranges.
        let bench = quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            3,
            1,
            &QuickBenchOptions {
                sharded_size: Some(80),
                ..QuickBenchOptions::default()
            },
        );
        let sharded = bench.large_100k.as_ref().expect("sharded stage requested");
        assert_eq!(sharded.size, 80);
        assert_eq!(sharded.shards, 1, "80 rows sit below the 12.5k shard floor");
        assert!(sharded.cores >= 1);
        let names: Vec<&str> = sharded.stages.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "world_build_100k",
                "mdav_hier_100k",
                "harvest_sharded_100k",
                "harvest_unsharded_100k",
                "intersect_sharded_100k",
                "equivalence_100k",
            ]
        );
        // One accounting row per shard, jointly covering every row.
        assert_eq!(sharded.shard_rows.len(), sharded.shards);
        assert_eq!(
            sharded.shard_rows.iter().map(|r| r.rows).sum::<usize>(),
            sharded.size
        );
        // The in-process equivalence asserts passed, and the recorded
        // digest pairs agree — the same predicate compare.rs re-gates.
        assert_eq!(
            sharded.harvest_digest_sharded,
            sharded.harvest_digest_unsharded
        );
        assert_eq!(sharded.mdav_digest_sharded, sharded.mdav_digest_unsharded);
        assert_eq!(
            sharded.intersect_digest_sharded,
            sharded.intersect_digest_unsharded
        );
        assert_eq!(sharded.sample_rows, 80.min(EQUIVALENCE_SAMPLE_ROWS));
        let json = bench.to_json();
        assert!(json.contains("\"large_100k\""));
        assert!(json.contains("\"mdav_hier_100k\""));
        assert!(json.contains("\"intersect_sharded_100k\""));
        assert!(json.contains("\"shard_rows\""));
        assert!(json.contains("\"harvest_sharded\""));
        assert!(json.trim_end().ends_with('}'));
        let ascii = bench.to_ascii();
        assert!(ascii.contains("sharded world"));
        assert!(ascii.contains("digest-pinned"));
    }

    #[test]
    fn sampled_reference_stage_records_sample_rows() {
        // 30-row large world: the sample covers every row, so the stage
        // is the full reference in miniature; the stage's `rows` records
        // the sample size either way.
        let bench = quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            3,
            1,
            &QuickBenchOptions {
                large_size: Some(30),
                ..QuickBenchOptions::default()
            },
        );
        let large = bench.large.as_ref().expect("large stage requested");
        let stage = large
            .stages
            .iter()
            .find(|s| s.name == "harvest_sequential_large")
            .expect("reference stage present");
        assert_eq!(stage.rows, 30.min(REFERENCE_SAMPLE_ROWS));
        // The exhaustive variant keeps the sampled stage and adds the
        // full-table reference as its own stage.
        let exhaustive = quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            3,
            1,
            &QuickBenchOptions {
                large_size: Some(30),
                exhaustive: true,
                ..QuickBenchOptions::default()
            },
        );
        let large = exhaustive.large.as_ref().expect("large stage requested");
        let stage = large
            .stages
            .iter()
            .find(|s| s.name == "harvest_sequential_large")
            .expect("sampled reference stage always present");
        assert_eq!(stage.rows, 30.min(REFERENCE_SAMPLE_ROWS));
        let full = large
            .stages
            .iter()
            .find(|s| s.name == "harvest_exhaustive_large")
            .expect("exhaustive stage added on top");
        assert_eq!(full.rows, 30);
        // The default mode never records the exhaustive stage.
        assert!(!bench
            .large
            .as_ref()
            .unwrap()
            .stages
            .iter()
            .any(|s| s.name == "harvest_exhaustive_large"));
    }

    #[test]
    fn infeasible_large_world_skips_composition_stage() {
        // 8 rows at overlap 0.5 leaves a 4-row core — below STAGE_K, so
        // the composition stage must be skipped, not panic.
        let bench = quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            3,
            1,
            &QuickBenchOptions {
                large_size: Some(8),
                compose: true,
                ..QuickBenchOptions::default()
            },
        );
        let large = bench.large.as_ref().expect("large stage requested");
        assert!(large.composition.is_none());
        assert!(!large.stages.iter().any(|s| s.name == "composition_large"));
    }
}
