//! The `--quick` performance harness behind `repro --quick`: times every
//! stage of the sweep-and-attack pipeline at reduced scale and emits a
//! machine-readable `BENCH_sweep.json` baseline so perf changes across
//! PRs are diffable.
//!
//! The headline number is `speedup_batch_vs_naive`: the same releases and
//! auxiliary records pushed through [`FuzzyFusion::estimate`] (compiled
//! rulebase, parallel rows, reusable scratch) versus
//! [`FuzzyFusion::estimate_interpreted`] (per-row string/`HashMap`
//! lookups). The two paths return bit-identical estimates — the harness
//! asserts it — so the ratio is pure overhead, not changed work.

use std::time::Instant;

use fred_anon::{build_release, Anonymizer, Mdav, QiStyle, Release};
use fred_attack::{
    harvest_auxiliary, harvest_auxiliary_sequential, FusionSystem, FuzzyFusion, FuzzyFusionConfig,
    Harvest, HarvestConfig, MidpointEstimator,
};
use fred_core::{sweep, SweepConfig};

use crate::world::{faculty_world, WorldConfig};

/// Anonymization level used by the dedicated MDAV/harvest stages (matches
/// the `mdav_k5` target the ROADMAP tracks).
const STAGE_K: usize = 5;

/// Row-chunk size for the streaming-release stage.
const STREAM_CHUNK_ROWS: usize = 1024;

/// Wall-clock + throughput of one pipeline stage.
#[derive(Debug, Clone)]
pub struct StageTiming {
    /// Stage identifier (stable across PRs; used as the JSON key).
    pub name: &'static str,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Rows (records × levels where applicable) processed.
    pub rows: usize,
}

impl StageTiming {
    /// Rows per second, `0.0` when the stage was too fast to resolve.
    pub fn rows_per_sec(&self) -> f64 {
        if self.wall_ms <= 0.0 {
            return 0.0;
        }
        self.rows as f64 / (self.wall_ms / 1e3)
    }
}

/// The large-world add-on: the same hot stages timed at enterprise scale
/// (defaults to 10 000 rows), where superlinear behavior cannot hide.
#[derive(Debug, Clone)]
pub struct LargeBench {
    /// Large-world row count.
    pub size: usize,
    /// Per-stage timings in pipeline order.
    pub stages: Vec<StageTiming>,
    /// Sequential harvest wall-clock over parallel harvest wall-clock
    /// (scales with cores; ~1 on a single-core machine).
    pub speedup_harvest_parallel_vs_seq: f64,
}

/// The quick-bench result.
#[derive(Debug, Clone)]
pub struct QuickBench {
    /// World/sweep parameters the numbers were taken at.
    pub size: usize,
    /// World seed.
    pub seed: u64,
    /// Worker threads available when the numbers were taken (parallel
    /// speedups are only meaningful relative to this).
    pub cores: usize,
    /// Swept anonymization levels.
    pub k_range: (usize, usize),
    /// Per-stage timings in pipeline order.
    pub stages: Vec<StageTiming>,
    /// Naive per-row estimate wall-clock over batch wall-clock.
    pub speedup_batch_vs_naive: f64,
    /// The large-world stage, when enabled.
    pub large: Option<LargeBench>,
}

impl QuickBench {
    /// Renders the machine-readable baseline (hand-rolled JSON — the
    /// workspace builds offline, without serde).
    pub fn to_json(&self) -> String {
        let render_stages = |stages: &[StageTiming], indent: &str| -> String {
            let mut out = String::new();
            for (i, s) in stages.iter().enumerate() {
                out.push_str(&format!(
                    "{indent}{{ \"name\": \"{}\", \"wall_ms\": {:.3}, \"rows\": {}, \"rows_per_sec\": {:.1} }}{}\n",
                    s.name,
                    s.wall_ms,
                    s.rows,
                    s.rows_per_sec(),
                    if i + 1 < stages.len() { "," } else { "" }
                ));
            }
            out
        };
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"config\": {{ \"size\": {}, \"seed\": {}, \"k_min\": {}, \"k_max\": {}, \"cores\": {} }},\n",
            self.size, self.seed, self.k_range.0, self.k_range.1, self.cores
        ));
        out.push_str("  \"stages\": [\n");
        out.push_str(&render_stages(&self.stages, "    "));
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"speedup_batch_vs_naive\": {:.2}",
            self.speedup_batch_vs_naive
        ));
        if let Some(large) = &self.large {
            out.push_str(",\n  \"large\": {\n");
            out.push_str(&format!("    \"size\": {},\n", large.size));
            out.push_str("    \"stages\": [\n");
            out.push_str(&render_stages(&large.stages, "      "));
            out.push_str("    ],\n");
            out.push_str(&format!(
                "    \"speedup_harvest_parallel_vs_seq\": {:.2}\n  }}\n",
                large.speedup_harvest_parallel_vs_seq
            ));
        } else {
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }

    /// One-screen human summary for the terminal.
    pub fn to_ascii(&self) -> String {
        let mut out = format!(
            "quick bench — {} records, seed {}, k = {}..={}\n",
            self.size, self.seed, self.k_range.0, self.k_range.1
        );
        out.push_str("  stage                        wall (ms)      rows    rows/sec\n");
        for s in &self.stages {
            out.push_str(&format!(
                "  {:<26} {:>10.2} {:>9} {:>11.0}\n",
                s.name,
                s.wall_ms,
                s.rows,
                s.rows_per_sec()
            ));
        }
        out.push_str(&format!(
            "  batch/parallel estimate is {:.1}x the naive per-row path\n",
            self.speedup_batch_vs_naive
        ));
        if let Some(large) = &self.large {
            out.push_str(&format!(
                "  large world — {} records ({} core{}):\n",
                large.size,
                self.cores,
                if self.cores == 1 { "" } else { "s" }
            ));
            for s in &large.stages {
                out.push_str(&format!(
                    "  {:<26} {:>10.2} {:>9} {:>11.0}\n",
                    s.name,
                    s.wall_ms,
                    s.rows,
                    s.rows_per_sec()
                ));
            }
            out.push_str(&format!(
                "  parallel harvest is {:.1}x the sequential reference\n",
                large.speedup_harvest_parallel_vs_seq
            ));
        }
        out
    }
}

fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64() * 1e3)
}

/// Runs the reduced sweep-and-attack pipeline with per-stage timing.
///
/// `repeats` controls how many times the two estimate paths run over the
/// full release set (median-free but averaged), keeping the comparison
/// stable at quick scale. `large_size` additionally times the hot stages
/// (world build, MDAV, parallel + sequential harvest, release streaming)
/// on a world of that many rows — pass `None` to skip.
pub fn quick_bench(
    config: &WorldConfig,
    k_min: usize,
    k_max: usize,
    repeats: usize,
    large_size: Option<usize>,
) -> QuickBench {
    let repeats = repeats.max(1);
    let mut stages = Vec::new();

    // Stage 1: world generation.
    let (world, wall) = time_ms(|| faculty_world(config));
    stages.push(StageTiming {
        name: "world_build",
        wall_ms: wall,
        rows: world.table.len(),
    });

    // Stage 2: MDAV at the tracked level (the ROADMAP's `mdav_k5`).
    let anonymizer = Mdav::new();
    let stage_k = STAGE_K.min(world.table.len());
    let (_, wall) = time_ms(|| {
        anonymizer
            .partition(&world.table, stage_k)
            .expect("quick-bench world partitions cleanly")
    });
    stages.push(StageTiming {
        name: "mdav_k5",
        wall_ms: wall,
        rows: world.table.len(),
    });

    // Stage 3: per-level anonymization (partition + release).
    let k_max = k_max.min(world.table.len());
    assert!(
        k_min <= k_max,
        "quick bench needs a world with at least {k_min} records to sweep \
         k = {k_min}..; got {} (raise --size)",
        world.table.len()
    );
    let ks: Vec<usize> = (k_min..=k_max).collect();
    let (releases, wall) = time_ms(|| {
        ks.iter()
            .map(|&k| {
                let partition = anonymizer
                    .partition(&world.table, k)
                    .expect("quick-bench world partitions cleanly");
                build_release(&world.table, &partition, k, QiStyle::Range)
                    .expect("release builds from a valid partition")
            })
            .collect::<Vec<Release>>()
    });
    stages.push(StageTiming {
        name: "anonymize_all_levels",
        wall_ms: wall,
        rows: world.table.len() * ks.len(),
    });

    // Stage 3: auxiliary harvest (shared across levels, like the sweep).
    let (harvest, wall) = time_ms(|| {
        harvest_auxiliary(&releases[0].table, &world.web, &HarvestConfig::default())
            .expect("harvest over a generated corpus cannot fail")
    });
    stages.push(StageTiming {
        name: "harvest_auxiliary",
        wall_ms: wall,
        rows: world.table.len(),
    });

    // Stages 4+5: the measured comparison — identical inputs through the
    // naive interpreted path and the compiled batch/parallel path.
    let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).expect("default config valid");
    let estimate_rows = world.table.len() * ks.len() * repeats;

    let (naive, naive_wall) = time_ms(|| run_naive(&fusion, &releases, &harvest, repeats));
    stages.push(StageTiming {
        name: "estimate_naive_per_row",
        wall_ms: naive_wall,
        rows: estimate_rows,
    });

    let (batch, batch_wall) = time_ms(|| run_batch(&fusion, &releases, &harvest, repeats));
    stages.push(StageTiming {
        name: "estimate_batch_parallel",
        wall_ms: batch_wall,
        rows: estimate_rows,
    });

    assert_eq!(
        naive, batch,
        "batch path must be bit-identical to the naive path"
    );

    // Stage 6: the full parallel sweep end-to-end (what figures 4-7 run).
    let before = MidpointEstimator::default();
    let (_, wall) = time_ms(|| {
        sweep(
            &world.table,
            &world.web,
            &anonymizer,
            &before,
            &fusion,
            &SweepConfig {
                k_min,
                k_max,
                ..SweepConfig::default()
            },
        )
        .expect("quick-bench sweep succeeds")
    });
    stages.push(StageTiming {
        name: "sweep_end_to_end",
        wall_ms: wall,
        rows: world.table.len() * ks.len(),
    });

    QuickBench {
        size: world.table.len(),
        seed: config.seed,
        cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        k_range: (k_min, k_max),
        stages,
        speedup_batch_vs_naive: if batch_wall > 0.0 {
            naive_wall / batch_wall
        } else {
            0.0
        },
        large: large_size.map(|size| large_bench(config, size)),
    }
}

/// Times the hot stages on a large world: this is where the near-linear
/// MDAV, the batched/parallel harvest and the streaming release iterator
/// earn their keep, and where a superlinear regression shows up as a
/// wall-clock cliff rather than noise.
fn large_bench(config: &WorldConfig, size: usize) -> LargeBench {
    let mut stages = Vec::new();
    let large_config = WorldConfig {
        size,
        ..config.clone()
    };

    let (world, wall) = time_ms(|| faculty_world(&large_config));
    stages.push(StageTiming {
        name: "world_build_large",
        wall_ms: wall,
        rows: world.table.len(),
    });

    let anonymizer = Mdav::new();
    let stage_k = STAGE_K.min(world.table.len());
    let (partition, wall) = time_ms(|| {
        anonymizer
            .partition(&world.table, stage_k)
            .expect("large world partitions cleanly")
    });
    stages.push(StageTiming {
        name: "mdav_k5_large",
        wall_ms: wall,
        rows: world.table.len(),
    });

    // Stream the release instead of materializing it: peak memory stays
    // one chunk regardless of world size.
    let (streamed_rows, wall) = time_ms(|| {
        Release::chunks(&world.table, &partition, QiStyle::Range, STREAM_CHUNK_ROWS)
            .map(|chunk| chunk.expect("chunk builds from a valid partition").len())
            .sum::<usize>()
    });
    assert_eq!(streamed_rows, world.table.len());
    stages.push(StageTiming {
        name: "release_stream_large",
        wall_ms: wall,
        rows: streamed_rows,
    });

    let release = build_release(&world.table, &partition, stage_k, QiStyle::Range)
        .expect("release builds from a valid partition");
    let harvest_config = HarvestConfig::default();
    let (harvest_par, par_wall) = time_ms(|| {
        harvest_auxiliary(&release.table, &world.web, &harvest_config)
            .expect("harvest over a generated corpus cannot fail")
    });
    stages.push(StageTiming {
        name: "harvest_parallel_large",
        wall_ms: par_wall,
        rows: world.table.len(),
    });

    let (harvest_seq, seq_wall) = time_ms(|| {
        harvest_auxiliary_sequential(&release.table, &world.web, &harvest_config)
            .expect("harvest over a generated corpus cannot fail")
    });
    stages.push(StageTiming {
        name: "harvest_sequential_large",
        wall_ms: seq_wall,
        rows: world.table.len(),
    });
    assert_eq!(
        harvest_par, harvest_seq,
        "parallel harvest must be record-for-record identical to the reference"
    );

    LargeBench {
        size: world.table.len(),
        stages,
        speedup_harvest_parallel_vs_seq: if par_wall > 0.0 {
            seq_wall / par_wall
        } else {
            0.0
        },
    }
}

fn run_naive(
    fusion: &FuzzyFusion,
    releases: &[Release],
    harvest: &Harvest,
    repeats: usize,
) -> Vec<u64> {
    let mut bits = Vec::new();
    for rep in 0..repeats {
        for release in releases {
            let est = fusion
                .estimate_interpreted(&release.table, &harvest.records)
                .expect("estimate succeeds");
            if rep == 0 {
                bits.extend(est.iter().map(|e| e.to_bits()));
            }
        }
    }
    bits
}

fn run_batch(
    fusion: &FuzzyFusion,
    releases: &[Release],
    harvest: &Harvest,
    repeats: usize,
) -> Vec<u64> {
    let mut bits = Vec::new();
    for rep in 0..repeats {
        for release in releases {
            let est = fusion
                .estimate(&release.table, &harvest.records)
                .expect("estimate succeeds");
            if rep == 0 {
                bits.extend(est.iter().map(|e| e.to_bits()));
            }
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_bench_runs_and_serializes() {
        let bench = quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            4,
            1,
            None,
        );
        assert_eq!(bench.k_range, (2, 4));
        assert_eq!(bench.stages.len(), 7);
        assert!(bench.large.is_none());
        assert!(bench.cores >= 1);
        let json = bench.to_json();
        assert!(json.contains("\"mdav_k5\""));
        assert!(json.contains("\"cores\""));
        assert!(json.contains("\"estimate_batch_parallel\""));
        assert!(json.contains("\"speedup_batch_vs_naive\""));
        assert!(!json.contains("\"large\""));
        assert!(json.trim_end().ends_with('}'));
        let ascii = bench.to_ascii();
        assert!(ascii.contains("rows/sec"));
    }

    #[test]
    fn quick_bench_large_stage_runs_and_serializes() {
        // A "large" world of 80 rows keeps the test fast while driving the
        // exact code path `--size 10_000` exercises.
        let bench = quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            4,
            1,
            Some(80),
        );
        let large = bench.large.as_ref().expect("large stage requested");
        assert_eq!(large.size, 80);
        let names: Vec<&str> = large.stages.iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "world_build_large",
                "mdav_k5_large",
                "release_stream_large",
                "harvest_parallel_large",
                "harvest_sequential_large",
            ]
        );
        assert!(large.speedup_harvest_parallel_vs_seq > 0.0);
        let json = bench.to_json();
        assert!(json.contains("\"large\""));
        assert!(json.contains("\"mdav_k5_large\""));
        assert!(json.contains("\"speedup_harvest_parallel_vs_seq\""));
        let ascii = bench.to_ascii();
        assert!(ascii.contains("large world"));
    }
}
