//! Experiment worlds: the paper's setup (faculty table + employee web
//! pages), reproducible from a seed.

use fred_data::Table;
use fred_synth::{
    faculty_table, generate_population, FacultyConfig, PersonProfile, PopulationConfig,
};
use fred_web::{build_corpus, CorpusConfig, NameNoise, SearchEngine};

/// One fully-built experiment world.
pub struct World {
    /// Ground-truth population.
    pub people: Vec<PersonProfile>,
    /// The private dataset `P` (sensitive attribute present).
    pub table: Table,
    /// The adversary-visible web corpus `Q`.
    pub web: SearchEngine,
    /// The true sensitive column (salary), row-aligned with `table`.
    pub truth: Vec<f64>,
}

/// World-generation knobs.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Population size (the paper's faculty count is unreported; 120 is a
    /// plausible department-scale figure and our default).
    pub size: usize,
    /// Master seed.
    pub seed: u64,
    /// Web-presence rate ("the external data is collected from the
    /// employee web pages" — most but not all faculty have one).
    pub web_presence_rate: f64,
    /// Name-noise scale factor (1.0 = default channel, 0.0 = clean).
    pub name_noise: f64,
    /// Review-score noise on the 1-10 scale.
    pub score_noise: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            size: 120,
            // Calibrated so the canonical world reproduces the paper's
            // qualitative Figure-8 structure (an interior k_opt inside the
            // feasible window) under the workspace's seeded RNG stream.
            seed: 2015,
            web_presence_rate: 0.9,
            name_noise: 1.0,
            score_noise: 0.8,
        }
    }
}

/// Builds the faculty world used by every figure experiment.
pub fn faculty_world(config: &WorldConfig) -> World {
    let people = generate_population(&PopulationConfig {
        web_presence_rate: config.web_presence_rate,
        ..PopulationConfig::faculty(config.size, config.seed)
    });
    let table = faculty_table(
        &people,
        &FacultyConfig {
            score_noise: config.score_noise,
            seed: config.seed ^ 0xFAC,
            ..FacultyConfig::default()
        },
    );
    let web = build_corpus(
        &people,
        &CorpusConfig {
            seed: config.seed ^ 0x3EB,
            noise: NameNoise::default().scaled(config.name_noise),
            ..CorpusConfig::default()
        },
    );
    let sens = table.schema().sensitive_indices()[0];
    let truth = table
        .numeric_column(sens)
        .expect("salary column is numeric");
    World {
        people,
        table,
        web,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_is_consistent() {
        let w = faculty_world(&WorldConfig {
            size: 50,
            ..WorldConfig::default()
        });
        assert_eq!(w.people.len(), 50);
        assert_eq!(w.table.len(), 50);
        assert_eq!(w.truth.len(), 50);
        assert!(!w.web.is_empty());
    }

    #[test]
    fn world_is_reproducible() {
        let cfg = WorldConfig {
            size: 30,
            ..WorldConfig::default()
        };
        let a = faculty_world(&cfg);
        let b = faculty_world(&cfg);
        assert_eq!(a.table, b.table);
        assert_eq!(a.web.pages(), b.web.pages());
    }
}
