//! Ablation experiments beyond the paper's own evaluation (DESIGN.md §5).
//!
//! * A1 — anonymizer ablation: Algorithm 1's `Basic_Anonymization` swapped
//!   between MDAV, Mondrian, optimal-univariate and full-domain
//!   generalization;
//! * A2 — fusion ablation: fuzzy vs linear vs midpoint adversaries;
//! * A3 — linkage ablation: attack strength as web name noise rises;
//! * A4 — corpus-coverage sweep: attack strength vs web-presence rate;
//! * A5 — publisher preference sweep: protection weight vs chosen k_opt;
//! * A6 — l-diversity / t-closeness of categorical releases per k.

use fred_anon::{
    Anonymizer, AttributeHierarchy, FullDomain, Mdav, Mondrian, NumericHierarchy,
    OptimalUnivariate, QiStyle,
};
use fred_attack::{
    FusionSystem, FuzzyFusion, FuzzyFusionConfig, HarvestConfig, LinearFusion, MidpointEstimator,
};
use fred_core::{sweep, SweepConfig, SweepReport};

use crate::world::{faculty_world, World, WorldConfig};

/// One named series in an ablation result.
#[derive(Debug, Clone)]
pub struct AblationSeries {
    /// Configuration label.
    pub label: String,
    /// The measured sweep.
    pub report: SweepReport,
}

fn run_with(world: &World, anonymizer: &dyn Anonymizer, k_min: usize, k_max: usize) -> SweepReport {
    let before = MidpointEstimator::default();
    let after = FuzzyFusion::new(FuzzyFusionConfig::default()).expect("valid config");
    sweep(
        &world.table,
        &world.web,
        anonymizer,
        &before,
        &after,
        &SweepConfig {
            k_min,
            k_max,
            style: QiStyle::Range,
            harvest: HarvestConfig::default(),
            chunk_rows: None,
        },
    )
    .expect("sweep on well-formed world")
}

/// A full-domain generalizer for the faculty schema (three 1-10 review
/// scores).
pub fn faculty_full_domain(n_scores: usize) -> FullDomain {
    let hierarchy = NumericHierarchy::new(0.0, 1.0, 5).expect("static hierarchy");
    FullDomain::new(
        vec![AttributeHierarchy::Numeric(hierarchy); n_scores],
        // Tolerate a few suppressed outliers, as Datafly does.
        8,
    )
}

/// A1: the same attack swept under four basic anonymizers.
pub fn anonymizer_ablation(world: &World, k_min: usize, k_max: usize) -> Vec<AblationSeries> {
    let mdav = run_with(world, &Mdav::new(), k_min, k_max);
    let mondrian = run_with(world, &Mondrian::new(), k_min, k_max);
    let optimal = run_with(world, &OptimalUnivariate::new(), k_min, k_max);
    let full_domain = run_with(world, &faculty_full_domain(3), k_min, k_max);
    vec![
        AblationSeries {
            label: "mdav".into(),
            report: mdav,
        },
        AblationSeries {
            label: "mondrian".into(),
            report: mondrian,
        },
        AblationSeries {
            label: "optimal-1d".into(),
            report: optimal,
        },
        AblationSeries {
            label: "full-domain".into(),
            report: full_domain,
        },
    ]
}

/// A2: the attack with different fusion systems (adversary strength).
pub fn fusion_ablation(world: &World, k_min: usize, k_max: usize) -> Vec<AblationSeries> {
    let mk = |after: &dyn FusionSystem| {
        sweep(
            &world.table,
            &world.web,
            &Mdav::new(),
            &MidpointEstimator::default(),
            after,
            &SweepConfig {
                k_min,
                k_max,
                style: QiStyle::Range,
                harvest: HarvestConfig::default(),
                chunk_rows: None,
            },
        )
        .expect("sweep on well-formed world")
    };
    let fuzzy = FuzzyFusion::new(FuzzyFusionConfig::default()).expect("valid");
    let fuzzy_release_only = FuzzyFusion::release_only();
    let linear = LinearFusion::new(FuzzyFusionConfig::default()).expect("valid");
    vec![
        AblationSeries {
            label: "fuzzy-fusion".into(),
            report: mk(&fuzzy),
        },
        AblationSeries {
            label: "fuzzy-release-only".into(),
            report: mk(&fuzzy_release_only),
        },
        AblationSeries {
            label: "linear-fusion".into(),
            report: mk(&linear),
        },
    ]
}

/// A3: attack error (post-fusion dissimilarity at a fixed k) as the web
/// name-noise scale rises. Returns `(noise_scale, dissim_after,
/// aux_coverage)` triples.
pub fn noise_ablation(base: &WorldConfig, k: usize, scales: &[f64]) -> Vec<(f64, f64, f64)> {
    scales
        .iter()
        .map(|&s| {
            let (d, c) = seed_averaged(base, k, |cfg| WorldConfig {
                name_noise: s,
                ..cfg
            });
            (s, d, c)
        })
        .collect()
}

/// Runs the fixed-k sweep over three seeds and averages `(dissim_after,
/// aux_coverage)` — single-seed harvests are noisy enough to invert small
/// effects, so the dose-response ablations (A3, A4) smooth over seeds.
fn seed_averaged(
    base: &WorldConfig,
    k: usize,
    configure: impl Fn(WorldConfig) -> WorldConfig,
) -> (f64, f64) {
    let seeds = [base.seed, base.seed ^ 0x9E37, base.seed ^ 0x79B9];
    let mut dissim = 0.0;
    let mut coverage = 0.0;
    for seed in seeds {
        let world = faculty_world(&configure(WorldConfig {
            seed,
            ..base.clone()
        }));
        let report = run_with(&world, &Mdav::new(), k, k);
        let row = &report.rows()[0];
        dissim += row.dissim_after;
        coverage += row.aux_coverage;
    }
    (dissim / seeds.len() as f64, coverage / seeds.len() as f64)
}

/// A4: attack error at a fixed k as web-presence coverage falls. Returns
/// `(presence_rate, dissim_after, aux_coverage)` triples.
pub fn coverage_ablation(base: &WorldConfig, k: usize, rates: &[f64]) -> Vec<(f64, f64, f64)> {
    rates
        .iter()
        .map(|&rate| {
            let (d, c) = seed_averaged(base, k, |cfg| WorldConfig {
                web_presence_rate: rate,
                ..cfg
            });
            (rate, d, c)
        })
        .collect()
}

/// A5: publisher preference sweep — how the optimal level `k_opt` chosen
/// by Algorithm 1 moves as the protection weight `W1` rises (with
/// `W2 = 1 - W1`). Returns `(w1, k_opt)` pairs.
pub fn weight_ablation(world: &World, k_max: usize, w1s: &[f64]) -> Vec<(f64, usize)> {
    use fred_core::{fred_anonymize, FredParams, FredWeights};
    let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).expect("valid config");
    w1s.iter()
        .map(|&w1| {
            let weights = FredWeights::new(w1, 1.0 - w1).expect("valid weights");
            let result = fred_anonymize(
                &world.table,
                &world.web,
                &Mdav::new(),
                &fusion,
                &FredParams {
                    weights,
                    k_max,
                    ..FredParams::default()
                },
            )
            .expect("unconstrained run is feasible");
            (w1, result.k_opt)
        })
        .collect()
}

/// A6: privacy beyond k-anonymity on a categorical release — the
/// l-diversity and t-closeness of full-domain-generalized partitions of
/// the patient dataset (paper Table I's setting), per k. Returns
/// `(k, distinct_diversity, entropy_diversity, closeness)` rows.
pub fn diversity_ablation(ks: &[usize]) -> Vec<(usize, usize, f64, f64)> {
    use fred_anon::{closeness, distinct_diversity, entropy_diversity, Hierarchy};
    use fred_synth::{hospital_table, HospitalConfig};
    let table = hospital_table(&HospitalConfig::default());
    let nationality = Hierarchy::two_level(&[
        ("Americas", &["American", "Brazilian"]),
        ("Europe", &["Russian", "German"]),
        ("Asia", &["Japanese", "Indian", "Chinese"]),
        ("Africa", &["Nigerian"]),
    ])
    .expect("static hierarchy");
    let generalizer = FullDomain::new(
        vec![
            AttributeHierarchy::Numeric(NumericHierarchy::new(13_000.0, 10.0, 5).expect("static")),
            AttributeHierarchy::Numeric(NumericHierarchy::new(0.0, 5.0, 7).expect("static")),
            AttributeHierarchy::Categorical(nationality),
        ],
        // No suppression: suppressed rows become singleton classes, whose
        // degenerate distributions would dominate the *worst-case*
        // diversity and closeness metrics and mask the k-dependence this
        // ablation measures.
        0,
    );
    ks.iter()
        .map(|&k| {
            let p = generalizer
                .partition(&table, k)
                .expect("patient table partitions");
            (
                k,
                distinct_diversity(&table, &p).expect("sensitive attr present"),
                entropy_diversity(&table, &p).expect("sensitive attr present"),
                closeness(&table, &p).expect("sensitive attr present"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> WorldConfig {
        WorldConfig {
            size: 60,
            ..WorldConfig::default()
        }
    }

    #[test]
    fn anonymizer_ablation_runs_all_three() {
        let world = faculty_world(&small());
        let series = anonymizer_ablation(&world, 3, 6);
        assert_eq!(series.len(), 4);
        for s in &series {
            assert_eq!(s.report.rows().len(), 4, "{}", s.label);
            // Fusion helps under every anonymizer.
            for r in s.report.rows() {
                assert!(r.gain > 0.0, "{} k={}", s.label, r.k);
            }
        }
    }

    #[test]
    fn fusion_ablation_orders_adversaries() {
        let world = faculty_world(&small());
        let series = fusion_ablation(&world, 3, 5);
        let err_of = |label: &str| {
            series
                .iter()
                .find(|s| s.label == label)
                .unwrap()
                .report
                .after_series()
                .iter()
                .sum::<f64>()
        };
        // Full fusion must beat the release-only adversary.
        assert!(err_of("fuzzy-fusion") < err_of("fuzzy-release-only"));
    }

    #[test]
    fn noise_ablation_degrades_coverage() {
        let triples = noise_ablation(&small(), 4, &[0.0, 4.0]);
        assert_eq!(triples.len(), 2);
        let (_, _, cov_clean) = triples[0];
        let (_, _, cov_noisy) = triples[1];
        assert!(
            cov_noisy < cov_clean,
            "noise should reduce coverage: clean {cov_clean}, noisy {cov_noisy}"
        );
    }

    #[test]
    fn coverage_ablation_tracks_presence() {
        let triples = coverage_ablation(&small(), 4, &[0.2, 1.0]);
        let (_, err_low, cov_low) = triples[0];
        let (_, err_high, cov_high) = triples[1];
        assert!(cov_low < cov_high);
        // Less auxiliary data can only hurt (or not help) the adversary.
        assert!(
            err_low >= err_high,
            "err_low {err_low} vs err_high {err_high}"
        );
    }

    #[test]
    fn weight_ablation_monotone_endpoints() {
        let world = faculty_world(&small());
        let pairs = weight_ablation(&world, 10, &[0.0, 1.0]);
        // Pure utility picks the smallest k; pure protection a larger one.
        assert_eq!(pairs[0].1, 2, "{pairs:?}");
        assert!(pairs[1].1 > pairs[0].1, "{pairs:?}");
    }

    #[test]
    fn diversity_ablation_exposes_k_anonymity_limits() {
        // The instructive (and correct) result: raising k does NOT
        // reliably raise worst-case l-diversity — one homogeneous class
        // keeps distinct-l at 1. That is exactly the l-diversity paper's
        // critique of k-anonymity (the paper's reference [4]).
        let rows = diversity_ablation(&[2, 4, 8]);
        for (k, d, e, c) in rows {
            assert!(d >= 1, "k={k}");
            // exp(entropy) can never exceed the distinct count.
            assert!(e <= d as f64 + 1e-9, "k={k}: entropy-l {e} > distinct {d}");
            assert!((0.0..=1.0).contains(&c), "k={k}: closeness {c}");
        }
    }
}
