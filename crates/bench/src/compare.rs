//! The perf-smoke gate: diffs a fresh `BENCH_sweep.json` against the
//! committed baseline and reports regressions.
//!
//! The workspace builds offline (no serde), and the only JSON either side
//! of the diff ever sees is the output of
//! [`QuickBench::to_json`](crate::perf::QuickBench::to_json), so parsing
//! is a deliberately small line-oriented extractor over that one stable
//! format rather than a general JSON reader.
//!
//! Gate rules (enforced by `repro --quick --compare BASELINE` and the CI
//! perf-smoke step):
//!
//! * `speedup_batch_vs_naive` must stay ≥ 2.0;
//! * no stage present in the committed baseline may run more than 3×
//!   slower (stages faster than the timing floor are skipped as noise);
//! * a stage present in the baseline must not disappear;
//! * on machines with ≥ 4 cores, the large-world harvest must keep
//!   `speedup_harvest_parallel_vs_single` ≥ 2.0 — the parallel cached
//!   path versus the same cached path pinned to one thread, so the ratio
//!   is pure thread fan-out and a runner that silently lost all harvest
//!   parallelism cannot clear the gate on algorithmic gains alone
//!   (single-core runners skip this check — there is nothing to
//!   parallelize over). The core count
//!   is read from the `large` block itself when present (a heterogeneous
//!   runner must not gate the 10k stage against the config block's
//!   cores), falling back to the config block;
//! * when the baseline carries a composition stage — the quick-world
//!   `composition` block or the 10k-row `composition_large` block inside
//!   `large` — the fresh run must carry the same stage, its per-record
//!   disclosure gain must be *strictly increasing* in the number of
//!   composed releases, and the mean candidate count must never rise
//!   with an added release (composition only adds constraints). The two
//!   blocks gate independently;
//! * when the baseline carries a `composition_defense` block (`repro
//!   --quick --compose --defend ...`), the fresh run must carry it too,
//!   every policy's residual disclosure gain at its top release count
//!   must stay *strictly below* the undefended gain at the same `R`
//!   (a defense that stops defending is a regression), and every
//!   `calibrated_widen_*` row must keep `mean_candidates >= k` (the
//!   block's own `k` line) — the floor the calibration exists to hold;
//! * every composition/defense row's numbers must be finite: a NaN gain
//!   would not even parse out of the baseline and would otherwise sail
//!   through the strict-monotonicity check (NaN comparisons are all
//!   false), so an unparseable or non-finite row is itself a violation;
//! * when the baseline carries a `robustness` block (`repro --quick
//!   --faults <rate>`), the fresh run must carry it too, its zero-rate
//!   row must have survived **zero** defects and match the committed
//!   zero-rate row value-for-value (the fault-free path must stay an
//!   exact passthrough of the strict pipeline), and each faulted row is
//!   held to a committed envelope: harvest precision within
//!   [`ROBUSTNESS_PRECISION_SLACK`] of the committed row at the same
//!   `(fault_rate, mode)` pair — the worst-case `targeted` row gates
//!   against the committed targeted row, never against the average-case
//!   uniform row at the same rate — composition gain at least
//!   [`ROBUSTNESS_GAIN_FLOOR`] of it;
//! * when the baseline carries a `recovery` ledger (`repro --quick
//!   --faults <rate>` or any checkpointed run), the fresh run must carry
//!   it too, `escaped_panics` is pinned at zero, no stage row may vanish
//!   from the ledger, and when the fresh run shares the committed
//!   `(seed, transient_rate, max_attempts)` triple the total retry count
//!   is pinned *exactly* — injection is seeded, so the retry trace is a
//!   pure function of that triple and any drift is a behavior change;
//! * a fresh run marked `"deterministic": true` (checkpointed) has every
//!   wall-clock zeroed at source, so the timing gates (batch speedup,
//!   stage regression ratios, harvest speedup) are skipped for it — the
//!   physics gates still apply in full. A *committed* deterministic
//!   baseline is itself a violation: zeroed timings cannot gate anything,
//!   so committing one silently disarms every timing gate;
//! * when the baseline carries a `profile` block (`repro --quick`
//!   self-profiling through `fred_obs`), the fresh run must carry it
//!   too, the span-tree digest is pinned exactly — the tree wraps each
//!   runner stage *outside* its compute closure, so it is a pure
//!   function of the enabled stages and identical across fresh,
//!   deterministic and resumed runs — no committed profile stage row
//!   may vanish, and on a fresh non-deterministic run the obs counters
//!   must reconcile *exactly* against the other ledgers in the same
//!   file: `faults.*` against the robustness rows' summed degradation
//!   fields and `recover.*` against the recovery ledger (counter and
//!   ledger are incremented by the same source line, so any gap is
//!   dropped instrumentation, not noise). The measured cost of
//!   *disabled* tracing is held under [`MAX_OBS_OVERHEAD_PCT`] of the
//!   large block's wall;
//! * when the baseline carries an `eval` block (`repro --quick
//!   --compose` hypothesis-testing evaluation), the fresh run must carry
//!   it too, and the fresh block's physics gate unconditionally — even
//!   against a committed baseline that predates the block: every cell's
//!   AUC must sit in `[0.5 −` [`EVAL_AUC_SLACK`]`, 1.0]`, TPR@10⁻³ in
//!   `[0, 1]`, empirical ε must be non-negative and *non-increasing in
//!   `k`* within a `(R, defense)` group (stronger anonymity must not
//!   leak more), and every defended cell's ε must stay at or below the
//!   undefended ε at the same `(k, R)`. A non-finite cell value is
//!   unparseable by construction and lands in the malformed-row
//!   violations — on *either* side, so a NaN-poisoned committed block
//!   refuses to gate instead of disarming these checks. When the
//!   committed baseline carries the block at the same seed and
//!   populations, each matched `(k, R, defense)` cell is additionally
//!   pinned within [`EVAL_DRIFT_SLACK`] — the cell is seeded and
//!   deterministic, so larger drift is a behavior change;
//! * `large_100k` shard accounting rows carry a `capped` flag that must
//!   agree with the plan derivation at the block's size: a saturated
//!   plan (> 64 derived shards clamped to 64) holds *more* rows per
//!   shard than the one-per-12.5k derivation rate, and a row that
//!   misreports that invites exactly the misread the flag exists to
//!   prevent. Pre-cap baselines parse as uncapped;
//! * when a fresh non-deterministic profile carries histogram rows, the
//!   `harvest.name_ms` histogram's observation count must reconcile
//!   exactly with the `harvest.names` counter — both are written by the
//!   same harvest tail, so a gap is dropped instrumentation;
//! * a baseline that fails structural sanity — no config line, no
//!   parseable stage rows, or a truncated file — is reported as a
//!   violation instead of silently parsing to an empty [`Baseline`]
//!   that gates nothing (a corrupt committed baseline must fail loudly,
//!   not pass vacuously).

use std::collections::BTreeMap;

/// A stage may regress up to this factor before the gate fails (CI
/// runners are noisy; superlinear blow-ups clear 3× immediately).
pub const MAX_STAGE_REGRESSION: f64 = 3.0;

/// Minimum required compiled-vs-interpreted estimate speedup.
pub const MIN_BATCH_SPEEDUP: f64 = 2.0;

/// Minimum required parallel-vs-sequential harvest speedup on ≥ 4 cores.
pub const MIN_HARVEST_SPEEDUP: f64 = 2.0;

/// Cores below which the harvest-speedup check is vacuous.
pub const HARVEST_SPEEDUP_MIN_CORES: usize = 4;

/// Committed wall-clocks below this are too fast to ratio meaningfully:
/// the baseline and the fresh run are usually taken on *different
/// machines* (a dev box vs a CI runner), where a millisecond-scale stage
/// can miss 3x on clock-speed and scheduler differences alone. Every hot
/// stage the gate exists for (MDAV, harvest, estimates — especially
/// their `_large` variants) sits one to three orders of magnitude above
/// this floor.
pub const STAGE_FLOOR_MS: f64 = 2.0;

/// A faulted robustness row's harvest precision may fall at most this
/// far below the committed row at the same fault rate (corruption is
/// seeded, so rate-matched rows measure the same injected pattern).
pub const ROBUSTNESS_PRECISION_SLACK: f64 = 0.25;

/// A faulted robustness row's composition gain must keep at least this
/// fraction of the committed gain at the same fault rate.
pub const ROBUSTNESS_GAIN_FLOOR: f64 = 0.5;

/// Ceiling on the disabled-tracing overhead probe, as a percentage of
/// the large block's total stage wall. The probe times
/// [`crate::perf::OVERHEAD_PROBE_CALLS`] counter calls against the
/// disabled collector — the cost every uninstrumented run pays.
pub const MAX_OBS_OVERHEAD_PCT: f64 = 3.0;

/// Ceiling on the `large_100k` block's peak resident set, in MiB. The
/// block exists to prove the sharded pipeline keeps memory flat in the
/// row count — the unsharded intersection alone would allocate
/// full-master-width bitsets per equivalence class — so a breach is the
/// very regression the stage guards against. Skipped when the run
/// recorded `0.0` (deterministic mode, or `/proc` unavailable).
pub const MAX_100K_PEAK_RSS_MB: f64 = 2048.0;

/// A fresh eval cell's AUC may dip at most this far below chance-level
/// 0.5: finite decoy populations are noisy, and a defense can push the
/// attacker slightly *past* chance in the wrong direction, but a score
/// that systematically prefers decoys is a scoring-path bug.
pub const EVAL_AUC_SLACK: f64 = 0.05;

/// Tolerance for the ε ordering gates (non-increasing in `k`, defended
/// ≤ undefended) — covers the baseline's 4-decimal print rounding on
/// both sides of a comparison, nothing more.
pub const EVAL_EPSILON_SLACK: f64 = 1e-3;

/// Cross-run drift tolerance per eval metric at a matched `(k, R,
/// defense)` cell when seed and populations match: the cell is seeded
/// and deterministic, so anything past print rounding plus last-ulp
/// libm skew is a behavior change.
pub const EVAL_DRIFT_SLACK: f64 = 0.05;

/// One composition-stage row: `(releases, disclosure_gain,
/// mean_candidates)`.
pub type CompositionRow = (usize, f64, f64);

/// One `(k, R, defense)` cell of the hypothesis-testing `eval` block.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRow {
    /// Anonymization level the cell's scenario was generated at.
    pub k: usize,
    /// Number of composed releases the adversary scored.
    pub releases: usize,
    /// Defense label (`"none"` for undefended cells).
    pub defense: String,
    /// Core targets scored (the positive population).
    pub targets: usize,
    /// Matched decoys scored through the identical path (the negatives).
    pub decoys: usize,
    /// Trapezoidal area under the ROC curve.
    pub auc: f64,
    /// True-positive rate at the largest threshold with FPR ≤ 10⁻³.
    pub tpr_at_fpr3: f64,
    /// Empirical ε (max log-likelihood ratio over thresholds, Laplace
    /// corrected — finite by construction).
    pub epsilon: f64,
}

/// One robustness-stage row, as parsed from a `robustness` block.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessRow {
    /// Injected per-fault corruption rate (`0.0` is the passthrough
    /// reference row the bit-identity gate pins).
    pub fault_rate: f64,
    /// Corruption placement: `uniform` (seeded random) or `targeted`
    /// (adversarial, aimed at the highest-gain records). Old baselines
    /// predate the field and parse as `uniform`. Envelope gates match
    /// rows by `(fault_rate, mode)`, never by rate alone.
    pub mode: String,
    /// Harvest precision over the corrupted corpus.
    pub harvest_precision: f64,
    /// Harvest coverage over the corrupted corpus.
    pub harvest_coverage: f64,
    /// Composition disclosure gain under the same faults.
    pub composition_gain: f64,
    /// Total defects the tolerant pipeline survived (pages rejected +
    /// rows skipped + fields imputed + workers restarted + shards lost).
    pub defects: usize,
    /// Pages the tolerant parser rejected outright.
    pub pages_rejected: usize,
    /// Rows dropped by the row-level salvage path.
    pub rows_skipped: usize,
    /// Field values imputed after cell-level damage.
    pub fields_imputed: usize,
    /// Harvest workers restarted after an injected panic.
    pub workers_restarted: usize,
    /// Search shards lost outright and degraded around. Baselines that
    /// predate the shard-loss fault class parse as zero.
    pub shards_lost: usize,
}

/// One defense-stage row, as parsed from a `composition_defense` block.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenseRow {
    /// Stable policy label (`calibrated_widen_*` rows carry the
    /// candidate-floor gate).
    pub policy: String,
    /// Number of composed releases.
    pub releases: usize,
    /// Disclosure gain the composition still achieves under the policy.
    pub residual_gain: f64,
    /// The undefended gain at the same release count.
    pub undefended_gain: f64,
    /// Mean effective anonymity under the defense.
    pub mean_candidates: f64,
    /// Widening price of the policy.
    pub utility_cost: f64,
}

/// One per-stage row of a `recovery` ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryRow {
    /// Checkpoint stage name (`world_build`, `mdav`, ... `large`).
    pub stage: String,
    /// Compute attempts the stage took (1 means first-try success).
    pub attempts: usize,
    /// Retries after injected transients (`attempts - 1` when computed).
    pub retries: usize,
    /// Total deterministic backoff slept before success, in ms.
    pub backoff_ms: f64,
}

/// The `recovery` ledger, as parsed from a checkpointed or faulted run.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryBlock {
    /// Config seed the retry trace is keyed to.
    pub seed: u64,
    /// Injected transient-failure rate per stage attempt.
    pub transient_rate: f64,
    /// Retry-policy attempt cap in force during the run.
    pub max_attempts: usize,
    /// Total retries across every stage — pinned exactly when the
    /// committed ledger shares `(seed, transient_rate, max_attempts)`.
    pub retries_total: usize,
    /// Checkpoint files quarantined for failing integrity checks.
    /// Baselines that predate the field parse as zero.
    pub quarantined_total: usize,
    /// Panics that escaped the runner. The whole point of the ledger:
    /// this must be zero.
    pub escaped_panics: usize,
    /// Per-stage rows, in pipeline order.
    pub rows: Vec<RecoveryRow>,
}

/// One per-stage row of a `profile` block.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Runner stage name (`world_build`, `mdav`, ... `large`).
    pub stage: String,
    /// Stage span wall minus its child spans' wall, in ms.
    pub self_ms: f64,
    /// Spans in the stage's subtree (including itself).
    pub spans: usize,
}

/// The `profile` block, as parsed from a self-profiled run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileBlock {
    /// Whether the trace was taken in deterministic mode (durations
    /// zeroed at source, counter rows omitted).
    pub deterministic: bool,
    /// Total spans opened during the run.
    pub spans_total: u64,
    /// Total events recorded during the run.
    pub events_total: u64,
    /// Structural digest of the span tree — pinned committed-vs-fresh.
    pub span_tree_digest: String,
    /// Calls the disabled-tracing overhead probe made.
    pub overhead_probe_calls: u64,
    /// Wall-clock of the probe loop, ms.
    pub overhead_wall_ms: f64,
    /// Probe wall as a percentage of the large block's stage wall — the
    /// number gated under [`MAX_OBS_OVERHEAD_PCT`].
    pub overhead_pct_of_large: f64,
    /// Per-stage self-time rows.
    pub stages: Vec<ProfileRow>,
    /// Merged counter totals by name (empty on deterministic runs).
    pub counters: BTreeMap<String, u64>,
    /// Latency histograms by name → `(count, sum_ms)` (empty on
    /// deterministic runs and on baselines that predate the rows).
    pub hists: BTreeMap<String, (u64, f64)>,
}

/// The `large_100k` block, as parsed from a sharded-scale run
/// (`repro --quick --size 100000`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sharded100kBlock {
    /// World row count the block ran at.
    pub size: usize,
    /// Shards the run's `ShardPlan` derived for that size.
    pub shards: usize,
    /// Rows in the seeded equivalence subsample.
    pub sample_rows: usize,
    /// Peak resident set in MiB (`0.0` = unavailable/deterministic).
    pub peak_rss_mb: f64,
    /// Per-shard accounting rows `(shard, rows, pages, capped)`, as
    /// written — the gate checks exactly `shards` of them, dense and
    /// covering `size` rows, so a vanished shard row cannot pass
    /// silently, and `capped` must agree with the plan derivation at
    /// `size` (baselines that predate the flag parse as uncapped).
    pub shard_rows: Vec<(usize, usize, usize, bool)>,
    /// Equivalence digests by name (`harvest_sharded`,
    /// `harvest_unsharded`, `mdav_*`, `intersect_*`), as hex strings.
    pub digests: BTreeMap<String, String>,
}

/// Everything [`parse_baseline`] can recover from one baseline file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Stage name → wall milliseconds (small- and large-world stages share
    /// one namespace; large stages carry a `_large` suffix by construction).
    pub stage_wall_ms: BTreeMap<String, f64>,
    /// `speedup_batch_vs_naive`, when present.
    pub speedup_batch_vs_naive: Option<f64>,
    /// `speedup_harvest_parallel_vs_single` (older baselines:
    /// `speedup_harvest_parallel_vs_seq`), when present.
    pub speedup_harvest_parallel_vs_single: Option<f64>,
    /// `cores` recorded in the config block, when present.
    pub cores: Option<usize>,
    /// `cores` recorded inside the `large` block, when present — the
    /// count the large-world gates key off.
    pub large_cores: Option<usize>,
    /// Quick-world composition rows, ascending in releases, when present.
    pub composition: Vec<CompositionRow>,
    /// Large-world (`composition_large`) rows, when present.
    pub composition_large: Vec<CompositionRow>,
    /// Defense rows (policy-major), when present.
    pub composition_defense: Vec<DefenseRow>,
    /// `k` recorded in the `composition_defense` block, when present —
    /// the floor the `calibrated_widen_*` candidate gate checks against.
    pub defense_k: Option<usize>,
    /// Hypothesis-testing eval cells, when present (undefended cells
    /// first, then one row per defense policy).
    pub eval: Vec<EvalRow>,
    /// Robustness rows, ascending in fault rate, when present.
    pub robustness: Vec<RobustnessRow>,
    /// The sharded-scale `large_100k` block, when present.
    pub large_100k: Option<Sharded100kBlock>,
    /// `seed` recorded in the config block, when present — the
    /// `large_100k` digest pin only binds runs of the same seed.
    pub seed: Option<u64>,
    /// The recovery ledger, when present.
    pub recovery: Option<RecoveryBlock>,
    /// The observability profile block, when present.
    pub profile: Option<ProfileBlock>,
    /// `deterministic` recorded in the config block; `None` for
    /// baselines that predate the field (equivalent to `false`).
    pub deterministic: Option<bool>,
    /// Composition/defense row lines that carried an unparseable or
    /// non-finite value — each one is a gate violation when found in a
    /// fresh run.
    pub malformed_rows: Vec<String>,
    /// Structural sanity failures — a file with any of these is corrupt
    /// (truncated write, wrong file, hand-edit gone wrong) and must not
    /// gate anything: every entry is a violation on either side of the
    /// diff.
    pub structural_errors: Vec<String>,
}

/// The outcome of [`compare_baselines`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompareReport {
    /// Human-readable observations that did not fail the gate.
    pub notes: Vec<String>,
    /// Gate failures; empty means the fresh run passed.
    pub violations: Vec<String>,
}

/// Pulls the quoted value following `"key":` out of a line, if present.
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let rest = &line[line.find(&needle)? + needle.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    Some(&rest[..rest.find('"')?])
}

/// Pulls the numeric value following `"key":` out of a line, if present.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = line[line.find(&needle)? + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a `BENCH_sweep.json` produced by
/// [`QuickBench::to_json`](crate::perf::QuickBench::to_json).
///
/// The scan is line-oriented over that one writer's stable shape; the
/// only structure it tracks is which block it is inside — `large` (for
/// its `cores` line) and whichever composition block (`composition` vs
/// `composition_large`) opened most recently (for attributing rows).
pub fn parse_baseline(json: &str) -> Baseline {
    /// Which composition block subsequent rows belong to.
    enum Series {
        Quick,
        Large,
        Defense,
    }
    let mut out = Baseline::default();
    let mut in_large = false;
    let mut in_large_100k = false;
    let mut saw_config = false;
    let mut series = Series::Quick;
    for line in json.lines() {
        if line.contains("\"config\":") {
            saw_config = true;
            if let Some(seed) = num_field(line, "seed") {
                out.seed = Some(seed as u64);
            }
            if line.contains("\"deterministic\": true") {
                out.deterministic = Some(true);
            } else if line.contains("\"deterministic\": false") {
                out.deterministic = Some(false);
            }
        }
        if line.contains("\"large\":") {
            in_large = true;
        }
        if line.contains("\"large_100k\":") {
            // The writer emits the sharded block after (and outside)
            // `large`, so its header closes that block's cores scope.
            in_large_100k = true;
            in_large = false;
            out.large_100k = Some(Sharded100kBlock::default());
        }
        if line.contains("\"composition_defense\":") {
            series = Series::Defense;
            in_large = false;
            in_large_100k = false;
        } else if line.contains("\"composition_large\":") {
            series = Series::Large;
        } else if line.contains("\"composition\":") {
            // The quick-world block closes the large block (the writer
            // emits it after `large`).
            series = Series::Quick;
            in_large = false;
            in_large_100k = false;
        }
        // The sharded block's scalar header lines, shard accounting rows
        // and digest line. Stage rows inside it fall through to the
        // shared `"name"`/`"wall_ms"` branch below: the 100k stages live
        // in the same timing namespace as every other stage.
        if in_large_100k {
            if let Some(big) = &mut out.large_100k {
                if line.contains("\"digests\":") {
                    let mut complete = true;
                    for key in [
                        "harvest_sharded",
                        "harvest_unsharded",
                        "mdav_sharded",
                        "mdav_unsharded",
                        "intersect_sharded",
                        "intersect_unsharded",
                    ] {
                        match str_field(line, key) {
                            Some(hex) => {
                                big.digests.insert(key.to_owned(), hex.to_owned());
                            }
                            None => complete = false,
                        }
                    }
                    if !complete {
                        out.malformed_rows.push(line.trim().to_owned());
                    }
                    // The digest line is the block's final field.
                    in_large_100k = false;
                    continue;
                }
                if line.contains("\"shard\":") {
                    match (
                        num_field(line, "shard"),
                        num_field(line, "rows"),
                        num_field(line, "pages"),
                    ) {
                        (Some(shard), Some(rows), Some(pages)) => {
                            // Pre-cap baselines carry no flag; every
                            // size they ran at derived exactly.
                            let capped = line.contains("\"capped\": true");
                            big.shard_rows.push((
                                shard as usize,
                                rows as usize,
                                pages as usize,
                                capped,
                            ));
                        }
                        _ => out.malformed_rows.push(line.trim().to_owned()),
                    }
                    continue;
                }
                if !line.contains("\"name\":") {
                    if let Some(v) = num_field(line, "size") {
                        big.size = v as usize;
                    }
                    if let Some(v) = num_field(line, "shards") {
                        big.shards = v as usize;
                    }
                    if let Some(v) = num_field(line, "sample_rows") {
                        big.sample_rows = v as usize;
                    }
                    if let Some(v) = num_field(line, "peak_rss_mb") {
                        if v.is_finite() {
                            big.peak_rss_mb = v;
                        } else {
                            out.malformed_rows.push(line.trim().to_owned());
                        }
                    }
                }
            }
        }
        if matches!(series, Series::Defense) && line.contains("\"overlap\":") {
            if let Some(k) = num_field(line, "k") {
                out.defense_k = Some(k as usize);
            }
        }
        if let (Some(name), Some(wall)) = (str_field(line, "name"), num_field(line, "wall_ms")) {
            out.stage_wall_ms.insert(name.to_owned(), wall);
            continue;
        }
        if let Some(v) = num_field(line, "speedup_batch_vs_naive") {
            out.speedup_batch_vs_naive = Some(v);
        }
        // Current key first; pre-PR-4 baselines recorded the ratio
        // against the exhaustive sequential reference under the old name.
        if let Some(v) = num_field(line, "speedup_harvest_parallel_vs_single")
            .or_else(|| num_field(line, "speedup_harvest_parallel_vs_seq"))
        {
            out.speedup_harvest_parallel_vs_single = Some(v);
        }
        if let Some(v) = num_field(line, "cores") {
            if line.contains("\"config\"") {
                out.cores = Some(v as usize);
            } else if in_large {
                out.large_cores = Some(v as usize);
            }
        }
        if line.contains("\"fault_rate\":") {
            let fields = (
                num_field(line, "fault_rate"),
                num_field(line, "harvest_precision"),
                num_field(line, "harvest_coverage"),
                num_field(line, "composition_gain"),
                num_field(line, "pages_rejected"),
                num_field(line, "rows_skipped"),
                num_field(line, "fields_imputed"),
                num_field(line, "workers_restarted"),
            );
            match fields {
                (
                    Some(rate),
                    Some(prec),
                    Some(cov),
                    Some(gain),
                    Some(pages),
                    Some(rows),
                    Some(cells),
                    Some(workers),
                ) if rate.is_finite()
                    && prec.is_finite()
                    && cov.is_finite()
                    && gain.is_finite() =>
                {
                    // Pre-shard-loss baselines carry no shards_lost
                    // field; every row they have lost zero shards.
                    let shards = num_field(line, "shards_lost").unwrap_or(0.0);
                    out.robustness.push(RobustnessRow {
                        fault_rate: rate,
                        // Pre-targeted-corruption baselines carry no
                        // mode field; every row they have is uniform.
                        mode: str_field(line, "mode").unwrap_or("uniform").to_owned(),
                        harvest_precision: prec,
                        harvest_coverage: cov,
                        composition_gain: gain,
                        defects: (pages + rows + cells + workers + shards) as usize,
                        pages_rejected: pages as usize,
                        rows_skipped: rows as usize,
                        fields_imputed: cells as usize,
                        workers_restarted: workers as usize,
                        shards_lost: shards as usize,
                    });
                }
                _ => out.malformed_rows.push(line.trim().to_owned()),
            }
            continue;
        }
        // The recovery ledger header — keyed off `transient_rate`, which
        // no other block carries (the robustness header's rate line is
        // `max_rate`).
        if line.contains("\"transient_rate\":") {
            let fields = (
                num_field(line, "seed"),
                num_field(line, "transient_rate"),
                num_field(line, "max_attempts"),
                num_field(line, "retries_total"),
                num_field(line, "escaped_panics"),
            );
            match fields {
                (Some(seed), Some(rate), Some(max_a), Some(total), Some(esc))
                    if rate.is_finite() =>
                {
                    out.recovery = Some(RecoveryBlock {
                        seed: seed as u64,
                        transient_rate: rate,
                        max_attempts: max_a as usize,
                        retries_total: total as usize,
                        // Pre-observability baselines predate the field.
                        quarantined_total: num_field(line, "quarantined_total")
                            .map_or(0, |q| q as usize),
                        escaped_panics: esc as usize,
                        rows: Vec::new(),
                    });
                }
                _ => out.malformed_rows.push(line.trim().to_owned()),
            }
            continue;
        }
        // A recovery stage row — `"stage"` + `"attempts"` together occur
        // nowhere else (timing stages are keyed `"name"`).
        if line.contains("\"stage\":") && line.contains("\"attempts\":") {
            let fields = (
                str_field(line, "stage"),
                num_field(line, "attempts"),
                num_field(line, "retries"),
                num_field(line, "backoff_ms"),
            );
            match (&mut out.recovery, fields) {
                (Some(rec), (Some(stage), Some(att), Some(ret), Some(back)))
                    if back.is_finite() =>
                {
                    rec.rows.push(RecoveryRow {
                        stage: stage.to_owned(),
                        attempts: att as usize,
                        retries: ret as usize,
                        backoff_ms: back,
                    });
                }
                _ => out.malformed_rows.push(line.trim().to_owned()),
            }
            continue;
        }
        // The profile header — keyed off `spans_total`, which no other
        // block carries.
        if line.contains("\"spans_total\":") {
            let fields = (
                num_field(line, "spans_total"),
                num_field(line, "events_total"),
                str_field(line, "span_tree_digest"),
            );
            match fields {
                (Some(spans), Some(events), Some(digest)) => {
                    out.profile = Some(ProfileBlock {
                        deterministic: line.contains("\"deterministic\": true"),
                        spans_total: spans as u64,
                        events_total: events as u64,
                        span_tree_digest: digest.to_owned(),
                        overhead_probe_calls: 0,
                        overhead_wall_ms: 0.0,
                        overhead_pct_of_large: 0.0,
                        stages: Vec::new(),
                        counters: BTreeMap::new(),
                        hists: BTreeMap::new(),
                    });
                }
                _ => out.malformed_rows.push(line.trim().to_owned()),
            }
            continue;
        }
        // The profile's overhead line — `probe_calls` is unique to it.
        if line.contains("\"probe_calls\":") {
            let fields = (
                num_field(line, "probe_calls"),
                num_field(line, "wall_ms"),
                num_field(line, "pct_of_large"),
            );
            match (&mut out.profile, fields) {
                (Some(prof), (Some(calls), Some(wall), Some(pct)))
                    if wall.is_finite() && pct.is_finite() =>
                {
                    prof.overhead_probe_calls = calls as u64;
                    prof.overhead_wall_ms = wall;
                    prof.overhead_pct_of_large = pct;
                }
                _ => out.malformed_rows.push(line.trim().to_owned()),
            }
            continue;
        }
        // A profile stage row — `"stage"` + `"self_ms"` together occur
        // nowhere else (recovery rows pair `"stage"` with `"attempts"`).
        if line.contains("\"stage\":") && line.contains("\"self_ms\":") {
            let fields = (
                str_field(line, "stage"),
                num_field(line, "self_ms"),
                num_field(line, "spans"),
            );
            match (&mut out.profile, fields) {
                (Some(prof), (Some(stage), Some(self_ms), Some(spans))) if self_ms.is_finite() => {
                    prof.stages.push(ProfileRow {
                        stage: stage.to_owned(),
                        self_ms,
                        spans: spans as usize,
                    });
                }
                _ => out.malformed_rows.push(line.trim().to_owned()),
            }
            continue;
        }
        // A profile counter row.
        if line.contains("\"counter\":") {
            let fields = (str_field(line, "counter"), num_field(line, "value"));
            match (&mut out.profile, fields) {
                (Some(prof), (Some(name), Some(value))) => {
                    prof.counters.insert(name.to_owned(), value as u64);
                }
                _ => out.malformed_rows.push(line.trim().to_owned()),
            }
            continue;
        }
        // A profile histogram row — `"hist"` occurs nowhere else.
        if line.contains("\"hist\":") {
            let fields = (
                str_field(line, "hist"),
                num_field(line, "count"),
                num_field(line, "sum_ms"),
            );
            match (&mut out.profile, fields) {
                (Some(prof), (Some(name), Some(count), Some(sum))) if sum.is_finite() => {
                    prof.hists.insert(name.to_owned(), (count as u64, sum));
                }
                _ => out.malformed_rows.push(line.trim().to_owned()),
            }
            continue;
        }
        // A hypothesis-testing eval cell — `"auc"` occurs nowhere else.
        // A NaN metric does not survive `num_field` (the writer renders
        // it as `NaN`, which the numeric scan rejects), so a poisoned
        // cell lands in `malformed_rows` and refuses to gate instead of
        // slipping past the comparison gates below.
        if line.contains("\"auc\":") {
            let fields = (
                num_field(line, "k"),
                num_field(line, "releases"),
                str_field(line, "defense"),
                num_field(line, "targets"),
                num_field(line, "decoys"),
                num_field(line, "auc"),
                num_field(line, "tpr_at_fpr3"),
                num_field(line, "epsilon"),
            );
            match fields {
                (
                    Some(k),
                    Some(releases),
                    Some(defense),
                    Some(targets),
                    Some(decoys),
                    Some(auc),
                    Some(tpr),
                    Some(eps),
                ) if auc.is_finite() && tpr.is_finite() && eps.is_finite() => {
                    out.eval.push(EvalRow {
                        k: k as usize,
                        releases: releases as usize,
                        defense: defense.to_owned(),
                        targets: targets as usize,
                        decoys: decoys as usize,
                        auc,
                        tpr_at_fpr3: tpr,
                        epsilon: eps,
                    });
                }
                _ => out.malformed_rows.push(line.trim().to_owned()),
            }
            continue;
        }
        if line.contains("\"residual_gain\":") {
            let fields = (
                str_field(line, "policy"),
                num_field(line, "releases"),
                num_field(line, "residual_gain"),
                num_field(line, "undefended_gain"),
                num_field(line, "mean_candidates"),
                num_field(line, "utility_cost"),
            );
            match fields {
                (Some(policy), Some(r), Some(res), Some(undef), Some(cand), Some(cost))
                    if res.is_finite()
                        && undef.is_finite()
                        && cand.is_finite()
                        && cost.is_finite() =>
                {
                    out.composition_defense.push(DefenseRow {
                        policy: policy.to_owned(),
                        releases: r as usize,
                        residual_gain: res,
                        undefended_gain: undef,
                        mean_candidates: cand,
                        utility_cost: cost,
                    });
                }
                _ => out.malformed_rows.push(line.trim().to_owned()),
            }
            continue;
        }
        if line.contains("\"disclosure_gain\":") {
            let fields = (
                num_field(line, "releases"),
                num_field(line, "disclosure_gain"),
                num_field(line, "mean_candidates"),
                num_field(line, "estimate_gain"),
            );
            match fields {
                (Some(r), Some(gain), Some(cand), Some(est))
                    if gain.is_finite() && cand.is_finite() && est.is_finite() =>
                {
                    let row = (r as usize, gain, cand);
                    match series {
                        Series::Quick => out.composition.push(row),
                        Series::Large => out.composition_large.push(row),
                        Series::Defense => out.malformed_rows.push(line.trim().to_owned()),
                    }
                }
                _ => out.malformed_rows.push(line.trim().to_owned()),
            }
        }
    }
    if !saw_config {
        out.structural_errors
            .push("no config line found — not a BENCH_sweep.json".into());
    }
    if out.stage_wall_ms.is_empty() {
        out.structural_errors
            .push("no parseable stage rows found".into());
    }
    if !json.trim_end().ends_with('}') {
        out.structural_errors
            .push("file does not end with a closing brace (truncated write?)".into());
    }
    out
}

/// Diffs a fresh baseline against the committed one under the gate rules.
pub fn compare_baselines(committed_json: &str, fresh_json: &str) -> CompareReport {
    let committed = parse_baseline(committed_json);
    let fresh = parse_baseline(fresh_json);
    let mut report = CompareReport::default();

    // Structural corruption disarms every gate below (an empty parse
    // trivially has no stages to regress, no blocks to lose), so it must
    // refuse to gate, loudly, before anything else runs.
    for err in &committed.structural_errors {
        report.violations.push(format!(
            "committed baseline is structurally corrupt (regenerate it): {err}"
        ));
    }
    for err in &fresh.structural_errors {
        report
            .violations
            .push(format!("fresh baseline is structurally corrupt: {err}"));
    }
    if !report.violations.is_empty() {
        return report;
    }

    // A checkpointed run zeroes every wall-clock at source so resume can
    // be bit-identical; its timings are all sentinel zeros.
    let fresh_det = fresh.deterministic == Some(true);
    if committed.deterministic == Some(true) {
        report.violations.push(
            "committed baseline is a deterministic (checkpointed) run — its zeroed \
             timings disarm every timing gate; regenerate it without --checkpoint-dir"
                .into(),
        );
    }

    if fresh_det {
        report
            .notes
            .push("fresh run is deterministic (checkpointed): timing gates skipped".into());
    } else {
        match fresh.speedup_batch_vs_naive {
            Some(v) if v < MIN_BATCH_SPEEDUP => report.violations.push(format!(
                "speedup_batch_vs_naive fell to {v:.2} (must stay >= {MIN_BATCH_SPEEDUP:.1})"
            )),
            Some(v) => report
                .notes
                .push(format!("speedup_batch_vs_naive = {v:.2}")),
            None => report
                .violations
                .push("fresh baseline carries no speedup_batch_vs_naive".into()),
        }
    }

    for (name, &committed_ms) in &committed.stage_wall_ms {
        let Some(&fresh_ms) = fresh.stage_wall_ms.get(name) else {
            report.violations.push(format!(
                "stage `{name}` disappeared from the fresh baseline"
            ));
            continue;
        };
        if fresh_det || committed_ms < STAGE_FLOOR_MS {
            continue;
        }
        let ratio = fresh_ms / committed_ms;
        if ratio > MAX_STAGE_REGRESSION {
            report.violations.push(format!(
                "stage `{name}` regressed {ratio:.2}x ({committed_ms:.3} ms -> {fresh_ms:.3} ms, \
                 limit {MAX_STAGE_REGRESSION:.1}x)"
            ));
        }
    }

    // The composition gates: the physics of the stage, not its timing. A
    // fresh run must keep the per-record disclosure gain strictly
    // increasing in the release count and never let a target's candidate
    // pool grow with an added release. The quick-world block and the
    // 10k-row `composition_large` block gate independently.
    let gate_series = |label: &str,
                       committed: &[CompositionRow],
                       fresh: &[CompositionRow],
                       report: &mut CompareReport| {
        if !committed.is_empty() && fresh.is_empty() {
            report
                .violations
                .push(format!("{label} stage disappeared from the fresh baseline"));
        }
        for pair in fresh.windows(2) {
            let ((r0, g0, c0), (r1, g1, c1)) = (pair[0], pair[1]);
            if g1 <= g0 {
                report.violations.push(format!(
                    "{label} disclosure gain not strictly increasing: R={r0} -> {g0:.1}, \
                         R={r1} -> {g1:.1}"
                ));
            }
            if c1 > c0 + 1e-9 {
                report.violations.push(format!(
                    "{label} candidate count rose with an added release: R={r0} -> {c0:.2}, \
                         R={r1} -> {c1:.2}"
                ));
            }
        }
        if let Some((r, last_gain, _)) = fresh.last() {
            report.notes.push(format!(
                "{label} disclosure gain at R={r} is {last_gain:.1}"
            ));
        }
    };
    gate_series(
        "composition",
        &committed.composition,
        &fresh.composition,
        &mut report,
    );
    gate_series(
        "composition_large",
        &committed.composition_large,
        &fresh.composition_large,
        &mut report,
    );
    // The defense gates: a deployed policy that stops defending is a
    // regression just like a slowed stage. Per policy, the top-R row
    // must keep its residual gain strictly below the undefended gain,
    // and calibrated widening must hold the candidate floor it is named
    // for at every R.
    if !committed.composition_defense.is_empty() && fresh.composition_defense.is_empty() {
        report
            .violations
            .push("composition_defense stage disappeared from the fresh baseline".into());
    }
    // A single policy vanishing from a still-present block is the same
    // regression as the block vanishing — the per-policy gates below
    // only see the fresh run's policies, so guard the roster here.
    if !fresh.composition_defense.is_empty() {
        for row in &committed.composition_defense {
            if !fresh
                .composition_defense
                .iter()
                .any(|f| f.policy == row.policy)
                && !report.violations.iter().any(|v| v.contains(&row.policy))
            {
                report.violations.push(format!(
                    "defense `{}` disappeared from the fresh baseline",
                    row.policy
                ));
            }
        }
    }
    let mut policies: Vec<&str> = Vec::new();
    for row in &fresh.composition_defense {
        if !policies.contains(&row.policy.as_str()) {
            policies.push(&row.policy);
        }
    }
    for policy in policies {
        let rows: Vec<&DefenseRow> = fresh
            .composition_defense
            .iter()
            .filter(|r| r.policy == policy)
            .collect();
        // `policies` was built from the row list, so a group is never
        // empty — but this path also runs against a *committed* baseline
        // someone may have hand-edited, and the committed side must fail
        // structurally, never panic the gate binary.
        let Some(last) = rows.iter().max_by_key(|r| r.releases) else {
            continue;
        };
        if last.releases > 1 {
            if last.residual_gain >= last.undefended_gain {
                report.violations.push(format!(
                    "defense `{policy}` residual gain {:.1} is not strictly below the \
                     undefended gain {:.1} at R={}",
                    last.residual_gain, last.undefended_gain, last.releases
                ));
            } else {
                report.notes.push(format!(
                    "defense `{policy}`: residual gain {:.1} vs undefended {:.1} at R={} \
                     (utility cost {:.1})",
                    last.residual_gain, last.undefended_gain, last.releases, last.utility_cost
                ));
            }
        }
        if policy.starts_with("calibrated_widen") {
            match fresh.defense_k {
                Some(k) => {
                    for row in &rows {
                        if row.mean_candidates + 1e-9 < k as f64 {
                            report.violations.push(format!(
                                "defense `{policy}` mean candidates fell to {:.2} at R={} \
                                 (must stay >= k = {k})",
                                row.mean_candidates, row.releases
                            ));
                        }
                    }
                }
                None => report.violations.push(format!(
                    "defense `{policy}` rows present but the composition_defense block \
                     carries no k line to gate the candidate floor against"
                )),
            }
        }
    }
    // The hypothesis-testing eval gates: like the shard gates, the
    // block's claims are physics, not timing, so every in-run gate runs
    // on the fresh side even against a committed baseline that predates
    // the block — only the cross-run drift pin needs a committed
    // counterpart (and says so in a note when it cannot bind, so the
    // gate is never silently vacuous).
    if !committed.eval.is_empty() && fresh.eval.is_empty() {
        report
            .violations
            .push("eval (hypothesis-testing) block disappeared from the fresh baseline".into());
    }
    if !fresh.eval.is_empty() {
        for row in &fresh.eval {
            if row.targets == 0 || row.decoys == 0 {
                report.violations.push(format!(
                    "eval cell k={} R={} `{}` scored an empty population ({} targets, \
                     {} decoys) — both classes are required for a hypothesis test",
                    row.k, row.releases, row.defense, row.targets, row.decoys
                ));
            }
            if row.auc < 0.5 - EVAL_AUC_SLACK || row.auc > 1.0 + 1e-9 {
                report.violations.push(format!(
                    "eval cell k={} R={} `{}` AUC {:.4} is outside [{:.2}, 1.0] — the \
                     score must discriminate no worse than chance and cannot beat a \
                     perfect test",
                    row.k,
                    row.releases,
                    row.defense,
                    row.auc,
                    0.5 - EVAL_AUC_SLACK
                ));
            }
            if !(0.0..=1.0 + 1e-9).contains(&row.tpr_at_fpr3) {
                report.violations.push(format!(
                    "eval cell k={} R={} `{}` TPR@1e-3 {:.4} is outside [0, 1]",
                    row.k, row.releases, row.defense, row.tpr_at_fpr3
                ));
            }
            if row.epsilon < -EVAL_EPSILON_SLACK {
                report.violations.push(format!(
                    "eval cell k={} R={} `{}` empirical ε {:.4} is negative — the \
                     Laplace-corrected max log-likelihood ratio over thresholds \
                     includes the accept-nothing threshold, so it cannot fall below 0",
                    row.k, row.releases, row.defense, row.epsilon
                ));
            }
        }
        // Stronger anonymity must not leak more: within a (R, defense)
        // group, ε is non-increasing in k.
        for a in &fresh.eval {
            for b in &fresh.eval {
                if a.defense == b.defense
                    && a.releases == b.releases
                    && a.k < b.k
                    && b.epsilon > a.epsilon + EVAL_EPSILON_SLACK
                {
                    report.violations.push(format!(
                        "eval ε rose with k at R={} `{}`: k={} -> {:.4}, k={} -> {:.4} \
                         — stronger anonymity must not leak more",
                        a.releases, a.defense, a.k, a.epsilon, b.k, b.epsilon
                    ));
                }
            }
        }
        // A deployed defense must not make the attacker's test better
        // than the undefended reference at the same cell.
        for row in fresh.eval.iter().filter(|r| r.defense != "none") {
            match fresh
                .eval
                .iter()
                .find(|u| u.defense == "none" && u.k == row.k && u.releases == row.releases)
            {
                Some(undef) => {
                    if row.epsilon > undef.epsilon + EVAL_EPSILON_SLACK {
                        report.violations.push(format!(
                            "eval defended ε {:.4} under `{}` exceeds the undefended ε \
                             {:.4} at the same (k={}, R={}) — the defense made the \
                             attacker's test stronger",
                            row.epsilon, row.defense, undef.epsilon, row.k, row.releases
                        ));
                    }
                }
                None => report.violations.push(format!(
                    "eval defended cell `{}` at (k={}, R={}) has no undefended \
                     reference cell to gate against",
                    row.defense, row.k, row.releases
                )),
            }
        }
        // Cross-run drift pin: the cell is a pure function of (seed,
        // size, defense), so matched cells must agree across runs.
        if committed.eval.is_empty() {
            report.notes.push(format!(
                "committed baseline predates the eval block: in-run eval gates applied \
                 over {} cell(s); cross-run drift pin starts once the baseline is \
                 regenerated",
                fresh.eval.len()
            ));
        } else if committed.seed != fresh.seed {
            report.notes.push(
                "eval seed changed: cross-run drift pin skipped, in-run gates still applied".into(),
            );
        } else {
            for row in &fresh.eval {
                let Some(base) = committed.eval.iter().find(|b| {
                    b.k == row.k
                        && b.releases == row.releases
                        && b.defense == row.defense
                        && b.targets == row.targets
                        && b.decoys == row.decoys
                }) else {
                    continue;
                };
                for (metric, fresh_v, base_v) in [
                    ("AUC", row.auc, base.auc),
                    ("TPR@1e-3", row.tpr_at_fpr3, base.tpr_at_fpr3),
                    ("ε", row.epsilon, base.epsilon),
                ] {
                    if (fresh_v - base_v).abs() > EVAL_DRIFT_SLACK {
                        report.violations.push(format!(
                            "eval {metric} drifted at (k={}, R={}, `{}`): {fresh_v:.4} \
                             vs committed {base_v:.4} — the cell is seeded and \
                             deterministic, so this is a behavior change",
                            row.k, row.releases, row.defense
                        ));
                    }
                }
            }
        }
        if let Some(top) = fresh
            .eval
            .iter()
            .filter(|r| r.defense == "none")
            .max_by_key(|r| (r.k, r.releases))
        {
            report.notes.push(format!(
                "eval: {} cell(s); undefended k={} R={} reaches AUC {:.4}, ε {:.4}",
                fresh.eval.len(),
                top.k,
                top.releases,
                top.auc,
                top.epsilon
            ));
        }
    }
    // The robustness gates: graceful degradation is a committed
    // property. The fault-free row is pinned exactly (it *is* the strict
    // pipeline, so any drift there is a zero-fault behavior change, not
    // noise), and faulted rows must stay inside the committed envelope —
    // corruption is seeded, so rate-matched rows measure the identical
    // injected pattern and legitimately differ only through code changes.
    if !committed.robustness.is_empty() && fresh.robustness.is_empty() {
        report
            .violations
            .push("robustness stage disappeared from the fresh baseline".into());
    }
    if !fresh.robustness.is_empty() {
        match fresh.robustness.iter().find(|r| r.fault_rate == 0.0) {
            None => report
                .violations
                .push("robustness block carries no zero-fault reference row".into()),
            Some(zero) => {
                if zero.defects != 0 {
                    report.violations.push(format!(
                        "zero-fault robustness row survived {} defect(s) — the fault-free \
                         path must be an exact passthrough",
                        zero.defects
                    ));
                }
                if let Some(pinned) = committed.robustness.iter().find(|r| r.fault_rate == 0.0) {
                    if zero != pinned {
                        report.violations.push(format!(
                            "zero-fault robustness row drifted from the committed baseline \
                             (fault-free output must stay bit-identical): committed \
                             {pinned:?}, fresh {zero:?}"
                        ));
                    }
                }
            }
        }
        // The worst-case `targeted` row shares its rate with a uniform
        // row by design (worst-case next to average-case at the same
        // budget), so envelope rows pair on `(rate, mode)` — matching on
        // rate alone would gate the adversarial row against the much
        // gentler average-case numbers.
        for row in &fresh.robustness {
            if row.fault_rate == 0.0 {
                continue;
            }
            let Some(base) = committed
                .robustness
                .iter()
                .find(|b| b.fault_rate == row.fault_rate && b.mode == row.mode)
            else {
                continue;
            };
            if row.harvest_precision + ROBUSTNESS_PRECISION_SLACK < base.harvest_precision {
                report.violations.push(format!(
                    "robustness harvest precision at {} fault rate {:.3} fell to {:.4} \
                     (committed {:.4}, slack {ROBUSTNESS_PRECISION_SLACK})",
                    row.mode, row.fault_rate, row.harvest_precision, base.harvest_precision
                ));
            }
            if base.composition_gain > 0.0
                && row.composition_gain < base.composition_gain * ROBUSTNESS_GAIN_FLOOR
            {
                report.violations.push(format!(
                    "robustness composition gain at {} fault rate {:.3} fell to {:.1} \
                     (committed {:.1}, floor {ROBUSTNESS_GAIN_FLOOR} of it)",
                    row.mode, row.fault_rate, row.composition_gain, base.composition_gain
                ));
            }
        }
        // A committed targeted row is a committed property like any
        // other: a fresh run that silently stops measuring the
        // worst case has lost the gate, not passed it.
        if committed.robustness.iter().any(|r| r.mode == "targeted")
            && !fresh.robustness.iter().any(|r| r.mode == "targeted")
        {
            report.violations.push(
                "targeted (worst-case) robustness row disappeared from the fresh baseline".into(),
            );
        }
        if let Some(top) = fresh.robustness.last() {
            report.notes.push(format!(
                "robustness: precision {:.3}, gain {:.1} at {} fault rate {:.3} \
                 ({} defects survived, zero panics)",
                top.harvest_precision, top.composition_gain, top.mode, top.fault_rate, top.defects
            ));
        }
    }
    // The sharded-scale gates: the `large_100k` block's claims are
    // structural, not timed, so every one of them holds on fresh runs
    // even against a committed baseline that predates the block — a
    // pre-shard baseline must never make the shard gates vacuous. The
    // sharded paths are pure functions of (seed, size), so when the
    // committed block shares the fresh run's (seed, size, shards)
    // triple, every equivalence digest is pinned exactly.
    if committed.large_100k.is_some() && fresh.large_100k.is_none() {
        report
            .violations
            .push("large_100k (sharded) block disappeared from the fresh baseline".into());
    }
    if let Some(big) = &fresh.large_100k {
        for (sharded, unsharded, label) in [
            ("harvest_sharded", "harvest_unsharded", "harvest"),
            ("mdav_sharded", "mdav_unsharded", "hierarchical MDAV"),
            ("intersect_sharded", "intersect_unsharded", "intersection"),
        ] {
            match (big.digests.get(sharded), big.digests.get(unsharded)) {
                (Some(s), Some(u)) if s == u => {}
                (Some(s), Some(u)) => report.violations.push(format!(
                    "large_100k {label} diverged from its unsharded reference: sharded \
                     digest {s} vs unsharded {u}"
                )),
                _ => report.violations.push(format!(
                    "large_100k block carries no {label} digest pair — the \
                     sharded-vs-unsharded equivalence gate cannot run"
                )),
            }
        }
        if big.shard_rows.len() != big.shards {
            report.violations.push(format!(
                "large_100k shard accounting lost a shard: {} row(s) for {} shard(s)",
                big.shard_rows.len(),
                big.shards
            ));
        } else if big
            .shard_rows
            .iter()
            .enumerate()
            .any(|(i, (shard, _, _, _))| *shard != i)
        {
            report.violations.push(format!(
                "large_100k shard rows are not dense ascending: {:?}",
                big.shard_rows
            ));
        }
        let covered: usize = big.shard_rows.iter().map(|(_, rows, _, _)| rows).sum();
        if covered != big.size {
            report.violations.push(format!(
                "large_100k shard rows cover {} of {} master rows — every row must \
                 belong to exactly one shard",
                covered, big.size
            ));
        }
        // The capped flag must agree with the plan derivation: a
        // saturated plan holds more rows per shard than the
        // one-per-12.5k rate, and a row that misreports it reintroduces
        // exactly the misread the flag exists to prevent.
        let expected_cap = fred_data::ShardPlan::for_size_saturated(big.size);
        if big
            .shard_rows
            .iter()
            .any(|(_, _, _, capped)| *capped != expected_cap)
        {
            report.violations.push(format!(
                "large_100k shard rows misreport cap saturation at {} rows across {} \
                 shard(s): expected capped = {expected_cap}",
                big.size, big.shards
            ));
        }
        if expected_cap && !big.shard_rows.is_empty() {
            report.notes.push(format!(
                "large_100k shard plan saturated at the derivation ceiling: {} shard(s) \
                 hold ~{} rows each, not one per 12.5k",
                big.shards,
                big.size / big.shards.max(1)
            ));
        }
        if big.peak_rss_mb > MAX_100K_PEAK_RSS_MB {
            report.violations.push(format!(
                "large_100k peak rss reached {:.1} MiB at {} rows (must stay <= \
                 {MAX_100K_PEAK_RSS_MB:.0} MiB — the sharded pipeline's memory must \
                 not scale with the master width)",
                big.peak_rss_mb, big.size
            ));
        }
        match &committed.large_100k {
            Some(base)
                if base.size == big.size
                    && base.shards == big.shards
                    && committed.seed == fresh.seed =>
            {
                if base.digests != big.digests {
                    report.violations.push(format!(
                        "large_100k digests drifted at the same (seed, size {}, shards {}) \
                         — the sharded pipeline is seeded and deterministic, so this is a \
                         behavior change: committed {:?}, fresh {:?}",
                        big.size, big.shards, base.digests, big.digests
                    ));
                }
            }
            Some(base) => report.notes.push(format!(
                "large_100k config changed (committed size {} / {} shards, fresh size {} / \
                 {} shards): cross-run digest pin skipped, in-run equivalence still gated",
                base.size, base.shards, big.size, big.shards
            )),
            None => report.notes.push(format!(
                "committed baseline predates the large_100k block: in-run shard gates \
                 applied at size {} / {} shards; cross-run digest pin starts once the \
                 baseline is regenerated",
                big.size, big.shards
            )),
        }
        report.notes.push(format!(
            "large_100k: {} rows across {} shard(s), peak rss {:.1} MiB",
            big.size, big.shards, big.peak_rss_mb
        ));
    }
    // The recovery gates: the ledger is the witness that the runner
    // absorbed every injected transient. Losing it, leaking a panic, or
    // drifting off the seeded retry trace are all regressions.
    if committed.recovery.is_some() && fresh.recovery.is_none() {
        report
            .violations
            .push("recovery ledger disappeared from the fresh baseline".into());
    }
    if let Some(rec) = &fresh.recovery {
        if rec.escaped_panics != 0 {
            report.violations.push(format!(
                "recovery ledger reports {} escaped panic(s) — every injected \
                 transient must be absorbed by the retry policy",
                rec.escaped_panics
            ));
        }
        if let Some(base) = &committed.recovery {
            // Injection sites hash only (plan seed, stage, attempt), so
            // the same triple must reproduce the identical retry trace.
            if base.seed == rec.seed
                && base.transient_rate == rec.transient_rate
                && base.max_attempts == rec.max_attempts
                && rec.retries_total != base.retries_total
            {
                report.violations.push(format!(
                    "recovery retry trace drifted: {} total retries vs committed {} \
                     at the same (seed {}, transient rate {:.3}, max attempts {}) — \
                     seeded injection makes this a pure function of that triple",
                    rec.retries_total,
                    base.retries_total,
                    rec.seed,
                    rec.transient_rate,
                    rec.max_attempts
                ));
            }
            for row in &base.rows {
                if !rec.rows.iter().any(|f| f.stage == row.stage) {
                    report.violations.push(format!(
                        "recovery stage `{}` vanished from the fresh ledger",
                        row.stage
                    ));
                }
            }
        }
        if rec.escaped_panics == 0 {
            report.notes.push(format!(
                "recovery: {} retries absorbed across {} stage(s) at transient rate \
                 {:.3}, zero escaped panics",
                rec.retries_total,
                rec.rows.len(),
                rec.transient_rate
            ));
        }
    }
    // The profile gates: the observability layer self-verifies against
    // the other ledgers in the same file. The span tree wraps each
    // runner stage outside its compute closure, so its digest is a pure
    // function of the enabled stages — identical across fresh,
    // deterministic and resumed runs — and is pinned exactly. On a
    // fresh non-deterministic run the obs counters and the robustness/
    // recovery ledgers are incremented by the same source lines, so
    // they must agree to the unit; any gap is dropped instrumentation.
    if committed.profile.is_some() && fresh.profile.is_none() {
        report
            .violations
            .push("profile block disappeared from the fresh baseline".into());
    }
    if let Some(prof) = &fresh.profile {
        if let Some(base) = &committed.profile {
            if base.span_tree_digest != prof.span_tree_digest {
                report.violations.push(format!(
                    "span tree digest drifted: fresh {} vs committed {} — the tree is a \
                     pure function of the enabled stages, so this is a structural \
                     pipeline change, not noise",
                    prof.span_tree_digest, base.span_tree_digest
                ));
            }
            for row in &base.stages {
                if !prof.stages.iter().any(|f| f.stage == row.stage) {
                    report.violations.push(format!(
                        "profile stage `{}` disappeared from the fresh profile",
                        row.stage
                    ));
                }
            }
        }
        if prof.deterministic {
            report
                .notes
                .push("fresh profile is deterministic: overhead and counter gates skipped".into());
        } else {
            if prof.overhead_pct_of_large > MAX_OBS_OVERHEAD_PCT {
                report.violations.push(format!(
                    "disabled-tracing overhead reached {:.3}% of the large block over \
                     {} probe calls (must stay < {MAX_OBS_OVERHEAD_PCT}%)",
                    prof.overhead_pct_of_large, prof.overhead_probe_calls
                ));
            }
            if !prof.counters.is_empty() {
                let count = |name: &str| prof.counters.get(name).copied().unwrap_or(0) as usize;
                if !fresh.robustness.is_empty() {
                    let ledgers = [
                        (
                            "faults.pages_rejected",
                            fresh.robustness.iter().map(|r| r.pages_rejected).sum(),
                        ),
                        (
                            "faults.rows_skipped",
                            fresh.robustness.iter().map(|r| r.rows_skipped).sum(),
                        ),
                        (
                            "faults.fields_imputed",
                            fresh.robustness.iter().map(|r| r.fields_imputed).sum(),
                        ),
                        (
                            "faults.workers_restarted",
                            fresh.robustness.iter().map(|r| r.workers_restarted).sum(),
                        ),
                        (
                            "faults.shards_lost",
                            fresh.robustness.iter().map(|r| r.shards_lost).sum(),
                        ),
                    ];
                    for (name, ledger) in ledgers {
                        let counted = count(name);
                        if counted != ledger {
                            report.violations.push(format!(
                                "obs counter `{name}` = {counted} disagrees with the \
                                 robustness ledger total {ledger} — counter and ledger \
                                 are written by the same line, so a gap is dropped \
                                 instrumentation"
                            ));
                        }
                    }
                }
                // The harvest latency histogram and the harvest.names
                // counter are bumped by the same classify-extract tail
                // (cached, sequential, sharded and tolerant paths all
                // funnel through it), so their totals must agree to the
                // unit whenever the histogram was recorded.
                if let (Some((hist_count, _)), Some(&names)) = (
                    prof.hists.get("harvest.name_ms"),
                    prof.counters.get("harvest.names"),
                ) {
                    if *hist_count != names {
                        report.violations.push(format!(
                            "obs histogram `harvest.name_ms` recorded {hist_count} \
                             observation(s) but counter `harvest.names` = {names} — \
                             both are written by the same harvest tail, so a gap is \
                             dropped instrumentation"
                        ));
                    }
                }
                if let Some(rec) = &fresh.recovery {
                    let attempts: usize = rec.rows.iter().map(|r| r.attempts).sum();
                    let ledgers = [
                        ("recover.attempts", attempts),
                        ("recover.retries", rec.retries_total),
                        ("recover.quarantines", rec.quarantined_total),
                    ];
                    for (name, ledger) in ledgers {
                        let counted = count(name);
                        if counted != ledger {
                            report.violations.push(format!(
                                "obs counter `{name}` = {counted} disagrees with the \
                                 recovery ledger total {ledger} — counter and ledger \
                                 are written by the same line, so a gap is dropped \
                                 instrumentation"
                            ));
                        }
                    }
                }
            }
            report.notes.push(format!(
                "profile: {} spans (tree {}), {} counters; disabled-tracing probe at \
                 {:.2}% of the large block",
                prof.spans_total,
                prof.span_tree_digest,
                prof.counters.len(),
                prof.overhead_pct_of_large
            ));
        }
    }
    for line in &fresh.malformed_rows {
        report.violations.push(format!(
            "composition row carries a non-finite or unparseable value: {line}"
        ));
    }
    // A corrupt committed baseline is just as disarming: its rows drop
    // out of the parsed series, so the disappeared/monotonicity checks
    // above would silently stop guarding that block. Refuse to gate
    // against it — regenerating the baseline is the remedy.
    for line in &committed.malformed_rows {
        report.violations.push(format!(
            "committed baseline carries a non-finite or unparseable composition row \
             (regenerate it): {line}"
        ));
    }

    // Key the large-world harvest gate off the cores that ran the large
    // block when recorded, so a heterogeneous runner cannot gate the 10k
    // stage against the wrong count.
    let fresh_cores = fresh.large_cores.or(fresh.cores).unwrap_or(1);
    match fresh.speedup_harvest_parallel_vs_single {
        _ if fresh_det => {}
        Some(v) if fresh_cores >= HARVEST_SPEEDUP_MIN_CORES && v < MIN_HARVEST_SPEEDUP => {
            report.violations.push(format!(
                "harvest parallel speedup fell to {v:.2} on {fresh_cores} cores \
                 (must stay >= {MIN_HARVEST_SPEEDUP:.1} on >= {HARVEST_SPEEDUP_MIN_CORES})"
            ))
        }
        Some(v) => report.notes.push(format!(
            "harvest parallel speedup = {v:.2} on {fresh_cores} core(s)"
        )),
        None => {}
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{quick_bench, QuickBenchOptions};
    use crate::world::WorldConfig;

    fn small_bench_json(large: Option<usize>) -> String {
        quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            4,
            1,
            &QuickBenchOptions {
                large_size: large,
                ..QuickBenchOptions::default()
            },
        )
        .to_json()
    }

    #[test]
    fn parses_its_own_writer_round_trip() {
        let json = small_bench_json(Some(40));
        let b = parse_baseline(&json);
        assert!(b.stage_wall_ms.contains_key("world_build"));
        assert!(b.stage_wall_ms.contains_key("mdav_k5"));
        assert!(b.stage_wall_ms.contains_key("mdav_k5_large"));
        assert!(b.stage_wall_ms.contains_key("harvest_parallel_large"));
        assert!(b.speedup_batch_vs_naive.is_some());
        assert!(b.speedup_harvest_parallel_vs_single.is_some());
        assert!(b.cores.unwrap_or(0) >= 1);
        assert!(b.large_cores.unwrap_or(0) >= 1);
        assert!(b.malformed_rows.is_empty());
    }

    #[test]
    fn both_composition_blocks_round_trip_separately() {
        let json = quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            3,
            1,
            &QuickBenchOptions {
                large_size: Some(40),
                compose: true,
                ..QuickBenchOptions::default()
            },
        )
        .to_json();
        let b = parse_baseline(&json);
        // Both series present, attributed to their own blocks, R = 1..=3
        // each — not nine rows pooled into one series.
        let releases = |rows: &[CompositionRow]| rows.iter().map(|r| r.0).collect::<Vec<_>>();
        assert_eq!(releases(&b.composition), vec![1, 2, 3]);
        assert_eq!(releases(&b.composition_large), vec![1, 2, 3]);
        assert!(b.stage_wall_ms.contains_key("composition_large"));
        assert!(b.malformed_rows.is_empty());
        // A self-diff passes the gates.
        let report = compare_baselines(&json, &json);
        assert!(
            report.violations.iter().all(|v| !v.contains("composition")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn identical_baselines_pass() {
        // Synthetic timings: a real timed run under parallel-test load can
        // legitimately dip below the speedup gate, which is not what this
        // test is about.
        let json = synthetic_json(100.0, 5.0);
        let report = compare_baselines(&json, &json);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn slow_batch_speedup_fails() {
        let committed = synthetic_json(100.0, 5.0);
        let degraded = synthetic_json(100.0, 1.10);
        let report = compare_baselines(&committed, &degraded);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("speedup_batch_vs_naive")));
    }

    /// A handcrafted baseline in the writer's format: timings are pinned
    /// so the test does not depend on how fast this machine happens to be.
    fn synthetic_json(mdav_ms: f64, speedup: f64) -> String {
        format!(
            "{{\n  \"config\": {{ \"size\": 120, \"seed\": 2015, \"k_min\": 2, \"k_max\": 10, \"cores\": 1 }},\n  \
             \"stages\": [\n    \
             {{ \"name\": \"world_build\", \"wall_ms\": 1.500, \"rows\": 120, \"rows_per_sec\": 80000.0 }},\n    \
             {{ \"name\": \"mdav_k5\", \"wall_ms\": {mdav_ms:.3}, \"rows\": 120, \"rows_per_sec\": 1000.0 }}\n  \
             ],\n  \"speedup_batch_vs_naive\": {speedup:.2}\n}}\n"
        )
    }

    #[test]
    fn stage_blowup_fails() {
        // Committed: 100 ms (above floor). Fresh: 1000 ms — a 10x blow-up.
        let committed = synthetic_json(100.0, 5.0);
        let fresh = synthetic_json(1000.0, 5.0);
        let report = compare_baselines(&committed, &fresh);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("`mdav_k5` regressed")),
            "{:?}",
            report.violations
        );
        // Same blow-up ratio below the floor is ignored as noise.
        let committed = synthetic_json(STAGE_FLOOR_MS / 2.0, 5.0);
        let fresh = synthetic_json(STAGE_FLOOR_MS * 4.0, 5.0);
        let report = compare_baselines(&committed, &fresh);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    /// A synthetic baseline with a composition block whose rows are
    /// caller-controlled.
    fn synthetic_composition_json(rows: &[(usize, f64, f64)]) -> String {
        let mut out = synthetic_json(100.0, 5.0);
        out.truncate(out.rfind("\n}").expect("closing brace"));
        out.push_str(",\n  \"composition\": {\n    \"k\": 5, \"overlap\": 0.50, \"wall_ms\": 10.000,\n    \"rows\": [\n");
        for (i, (r, gain, cand)) in rows.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"releases\": {r}, \"disclosure_gain\": {gain:.1}, \"mean_candidates\": {cand:.2}, \"estimate_gain\": 0.0 }}{}\n",
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n  }\n}\n");
        out
    }

    #[test]
    fn composition_rows_parse() {
        let json = synthetic_composition_json(&[(1, 0.0, 5.0), (2, 7000.0, 2.3)]);
        let b = parse_baseline(&json);
        assert_eq!(b.composition, vec![(1, 0.0, 5.0), (2, 7000.0, 2.3)]);
    }

    #[test]
    fn monotone_composition_passes_and_flat_gain_fails() {
        let committed =
            synthetic_composition_json(&[(1, 0.0, 5.0), (2, 7000.0, 2.3), (3, 9000.0, 1.7)]);
        let report = compare_baselines(&committed, &committed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);

        let flat = synthetic_composition_json(&[(1, 0.0, 5.0), (2, 7000.0, 2.3), (3, 7000.0, 1.7)]);
        let report = compare_baselines(&committed, &flat);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("not strictly increasing")));

        let rising_candidates =
            synthetic_composition_json(&[(1, 0.0, 5.0), (2, 7000.0, 2.3), (3, 9000.0, 2.9)]);
        let report = compare_baselines(&committed, &rising_candidates);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("candidate count rose")));
    }

    #[test]
    fn missing_composition_stage_fails() {
        let committed = synthetic_composition_json(&[(1, 0.0, 5.0), (2, 7000.0, 2.3)]);
        let fresh = synthetic_json(100.0, 5.0);
        let report = compare_baselines(&committed, &fresh);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("composition stage disappeared")));
    }

    #[test]
    fn non_finite_composition_rows_fail() {
        let committed =
            synthetic_composition_json(&[(1, 0.0, 5.0), (2, 7000.0, 2.3), (3, 9000.0, 1.7)]);
        let poisoned =
            synthetic_composition_json(&[(1, 0.0, 5.0), (2, f64::NAN, 2.3), (3, 9000.0, 1.7)]);
        let b = parse_baseline(&poisoned);
        // The NaN row must not silently vanish from the series.
        assert_eq!(b.malformed_rows.len(), 1, "{:?}", b.malformed_rows);
        let report = compare_baselines(&committed, &poisoned);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("non-finite or unparseable")),
            "{:?}",
            report.violations
        );
        // A poisoned COMMITTED baseline must refuse to gate, not let a
        // fresh run with a vanished composition stage sail through
        // (the NaN row drops out of the committed series, so the
        // stage-disappeared check alone would never fire).
        let fresh_without_composition = synthetic_json(100.0, 5.0);
        let report = compare_baselines(&poisoned, &fresh_without_composition);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("committed baseline carries")),
            "{:?}",
            report.violations
        );
    }

    /// A handcrafted baseline with a `large` block carrying its own
    /// cores line, a `composition_large` block, and a quick-world
    /// composition block — the full writer shape, with every number
    /// caller-pinned.
    fn synthetic_large_json(
        config_cores: usize,
        large_cores: usize,
        harvest_speedup: f64,
        large_rows: &[(usize, f64, f64)],
        quick_rows: &[(usize, f64, f64)],
    ) -> String {
        let render_rows = |rows: &[(usize, f64, f64)], indent: &str| -> String {
            let mut out = String::new();
            for (i, (r, gain, cand)) in rows.iter().enumerate() {
                out.push_str(&format!(
                    "{indent}{{ \"releases\": {r}, \"disclosure_gain\": {gain:.1}, \"mean_candidates\": {cand:.2}, \"estimate_gain\": 0.0 }}{}\n",
                    if i + 1 < rows.len() { "," } else { "" }
                ));
            }
            out
        };
        format!(
            "{{\n  \"config\": {{ \"size\": 120, \"seed\": 2015, \"k_min\": 2, \"k_max\": 10, \"cores\": {config_cores} }},\n  \
             \"stages\": [\n    \
             {{ \"name\": \"mdav_k5\", \"wall_ms\": 100.000, \"rows\": 120, \"rows_per_sec\": 1000.0 }}\n  \
             ],\n  \"speedup_batch_vs_naive\": 5.00,\n  \
             \"large\": {{\n    \"size\": 10000,\n    \"cores\": {large_cores},\n    \"stages\": [\n      \
             {{ \"name\": \"harvest_parallel_large\", \"wall_ms\": 500.000, \"rows\": 10000, \"rows_per_sec\": 20000.0 }}\n    \
             ],\n    \"speedup_harvest_parallel_vs_single\": {harvest_speedup:.2},\n    \
             \"composition_large\": {{\n      \"k\": 5, \"overlap\": 0.50, \"wall_ms\": 900.000,\n      \"rows\": [\n{}      ]\n    }}\n  }},\n  \
             \"composition\": {{\n    \"k\": 5, \"overlap\": 0.50, \"wall_ms\": 10.000,\n    \"rows\": [\n{}    ]\n  }}\n}}\n",
            render_rows(large_rows, "        "),
            render_rows(quick_rows, "      "),
        )
    }

    #[test]
    fn large_composition_block_parses_and_gates_independently() {
        let good = synthetic_large_json(
            1,
            1,
            1.0,
            &[(1, 0.0, 5.0), (2, 4000.0, 2.8), (3, 6000.0, 2.1)],
            &[(1, 0.0, 5.0), (2, 7000.0, 2.3), (3, 9000.0, 1.7)],
        );
        let b = parse_baseline(&good);
        assert_eq!(b.composition.len(), 3);
        assert_eq!(b.composition_large.len(), 3);
        assert_eq!(b.composition_large[1], (2, 4000.0, 2.8));
        assert_eq!(b.large_cores, Some(1));
        assert_eq!(b.cores, Some(1));
        let report = compare_baselines(&good, &good);
        assert!(report.violations.is_empty(), "{:?}", report.violations);

        // A flat *large* series fails even while the quick series is
        // fine — the blocks gate independently.
        let flat_large = synthetic_large_json(
            1,
            1,
            1.0,
            &[(1, 0.0, 5.0), (2, 4000.0, 2.8), (3, 4000.0, 2.1)],
            &[(1, 0.0, 5.0), (2, 7000.0, 2.3), (3, 9000.0, 1.7)],
        );
        let report = compare_baselines(&good, &flat_large);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("composition_large disclosure gain")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn harvest_gate_keys_off_the_large_blocks_cores() {
        let rows_l = [(1usize, 0.0, 5.0), (2, 4000.0, 2.8)];
        let rows_q = [(1usize, 0.0, 5.0), (2, 7000.0, 2.3)];
        // Config says 8 cores but the large block ran on 1: the weak
        // harvest speedup must NOT gate.
        let fresh = synthetic_large_json(8, 1, 1.0, &rows_l, &rows_q);
        let report = compare_baselines(&fresh, &fresh);
        assert!(
            !report.violations.iter().any(|v| v.contains("harvest")),
            "{:?}",
            report.violations
        );
        // Config says 1 core but the large block ran on 8: the weak
        // speedup MUST gate.
        let fresh = synthetic_large_json(1, 8, 1.0, &rows_l, &rows_q);
        let report = compare_baselines(&fresh, &fresh);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("harvest parallel speedup fell")),
            "{:?}",
            report.violations
        );
    }

    /// A synthetic baseline with a `composition_defense` block whose
    /// rows are caller-controlled `(policy, releases, residual,
    /// undefended, candidates)`.
    fn synthetic_defense_json(k: usize, rows: &[(&str, usize, f64, f64, f64)]) -> String {
        let mut out = synthetic_json(100.0, 5.0);
        out.truncate(out.rfind("\n}").expect("closing brace"));
        out.push_str(&format!(
            ",\n  \"composition_defense\": {{\n    \"k\": {k}, \"overlap\": 0.50, \"wall_ms\": 25.000,\n    \"rows\": [\n"
        ));
        for (i, (policy, r, res, undef, cand)) in rows.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"policy\": \"{policy}\", \"releases\": {r}, \"residual_gain\": {res:.1}, \"undefended_gain\": {undef:.1}, \"mean_candidates\": {cand:.2}, \"utility_cost\": 100.0 }}{}\n",
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n  }\n}\n");
        out
    }

    #[test]
    fn defense_rows_parse_with_their_k() {
        let json = synthetic_defense_json(
            5,
            &[
                ("coordinated_seeds", 1, 0.0, 0.0, 5.0),
                ("coordinated_seeds", 3, 0.0, 9000.0, 5.0),
                ("calibrated_widen_k5", 3, 4000.0, 9000.0, 6.1),
            ],
        );
        let b = parse_baseline(&json);
        assert_eq!(b.defense_k, Some(5));
        assert_eq!(b.composition_defense.len(), 3);
        assert_eq!(b.composition_defense[1].policy, "coordinated_seeds");
        assert_eq!(b.composition_defense[1].undefended_gain, 9000.0);
        assert_eq!(b.composition_defense[2].mean_candidates, 6.1);
        assert!(b.malformed_rows.is_empty());
    }

    #[test]
    fn defended_policies_must_beat_the_undefended_gain() {
        let good = synthetic_defense_json(
            5,
            &[
                ("coordinated_seeds", 1, 0.0, 0.0, 5.0),
                ("coordinated_seeds", 3, 0.0, 9000.0, 5.0),
                ("overlap_cap_0.90", 3, 2000.0, 9000.0, 4.0),
            ],
        );
        let report = compare_baselines(&good, &good);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.notes.iter().any(|n| n.contains("coordinated_seeds")));

        // A policy whose residual gain reaches the undefended gain fails.
        let broken = synthetic_defense_json(
            5,
            &[
                ("coordinated_seeds", 3, 0.0, 9000.0, 5.0),
                ("overlap_cap_0.90", 3, 9000.0, 9000.0, 4.0),
            ],
        );
        let report = compare_baselines(&good, &broken);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("overlap_cap_0.90") && v.contains("strictly below")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn calibrated_widen_rows_gate_the_candidate_floor() {
        let good = synthetic_defense_json(
            5,
            &[
                ("calibrated_widen_k5", 2, 1000.0, 7000.0, 5.0),
                ("calibrated_widen_k5", 3, 2000.0, 9000.0, 5.2),
            ],
        );
        assert!(compare_baselines(&good, &good).violations.is_empty());
        // A single R cell below the floor fails, even when the top-R
        // residual gate passes.
        let sunk = synthetic_defense_json(
            5,
            &[
                ("calibrated_widen_k5", 2, 1000.0, 7000.0, 4.2),
                ("calibrated_widen_k5", 3, 2000.0, 9000.0, 5.2),
            ],
        );
        let report = compare_baselines(&good, &sunk);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("mean candidates fell") && v.contains("R=2")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn single_vanished_policy_fails_even_with_the_block_present() {
        let committed = synthetic_defense_json(
            5,
            &[
                ("coordinated_seeds", 3, 0.0, 9000.0, 5.0),
                ("calibrated_widen_k5", 3, 2000.0, 9000.0, 5.2),
            ],
        );
        let fresh = synthetic_defense_json(5, &[("coordinated_seeds", 3, 0.0, 9000.0, 5.0)]);
        let report = compare_baselines(&committed, &fresh);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("calibrated_widen_k5") && v.contains("disappeared")),
            "{:?}",
            report.violations
        );
        // The surviving policy still gates (and passes) normally.
        assert!(report.notes.iter().any(|n| n.contains("coordinated_seeds")));
    }

    #[test]
    fn missing_defense_stage_fails() {
        let committed = synthetic_defense_json(5, &[("coordinated_seeds", 3, 0.0, 9000.0, 5.0)]);
        let fresh = synthetic_json(100.0, 5.0);
        let report = compare_baselines(&committed, &fresh);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("composition_defense stage disappeared")),
            "{:?}",
            report.violations
        );
        // The other direction — a defense block newly appearing — is
        // fine.
        let report = compare_baselines(&fresh, &committed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn non_finite_defense_rows_fail_both_sides() {
        let good = synthetic_defense_json(5, &[("coordinated_seeds", 3, 0.0, 9000.0, 5.0)]);
        let poisoned =
            synthetic_defense_json(5, &[("coordinated_seeds", 3, f64::NAN, 9000.0, 5.0)]);
        let b = parse_baseline(&poisoned);
        assert_eq!(b.malformed_rows.len(), 1, "{:?}", b.malformed_rows);
        let report = compare_baselines(&good, &poisoned);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("non-finite or unparseable")));
        // A poisoned committed defense series must refuse to gate.
        let fresh_without = synthetic_json(100.0, 5.0);
        let report = compare_baselines(&poisoned, &fresh_without);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("committed baseline carries")),
            "{:?}",
            report.violations
        );
    }

    /// A synthetic baseline with a `robustness` block whose rows are
    /// caller-controlled `(fault_rate, precision, coverage, gain,
    /// defects)`.
    fn synthetic_robustness_json(rows: &[(f64, f64, f64, f64, usize)]) -> String {
        let mut out = synthetic_json(100.0, 5.0);
        out.truncate(out.rfind("\n}").expect("closing brace"));
        out.push_str(
            ",\n  \"robustness\": {\n    \"max_rate\": 0.100, \"seed\": 2015, \"wall_ms\": 50.000,\n    \"rows\": [\n",
        );
        for (i, (rate, prec, cov, gain, defects)) in rows.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"fault_rate\": {rate:.3}, \"harvest_precision\": {prec:.4}, \"harvest_coverage\": {cov:.4}, \"composition_gain\": {gain:.1}, \"pages_rejected\": {defects}, \"rows_skipped\": 0, \"fields_imputed\": 0, \"workers_restarted\": 0 }}{}\n",
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n  }\n}\n");
        out
    }

    #[test]
    fn robustness_rows_parse() {
        let json =
            synthetic_robustness_json(&[(0.0, 0.95, 0.9, 8000.0, 0), (0.1, 0.9, 0.7, 6000.0, 42)]);
        let b = parse_baseline(&json);
        assert_eq!(b.robustness.len(), 2);
        assert_eq!(b.robustness[0].fault_rate, 0.0);
        assert_eq!(b.robustness[0].defects, 0);
        assert_eq!(b.robustness[1].harvest_precision, 0.9);
        assert_eq!(b.robustness[1].defects, 42);
        assert!(b.malformed_rows.is_empty());
        // Robustness rows never leak into the composition series.
        assert!(b.composition.is_empty());
        let report = compare_baselines(&json, &json);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.notes.iter().any(|n| n.contains("robustness")));
    }

    #[test]
    fn zero_fault_robustness_row_is_pinned_exactly() {
        let committed =
            synthetic_robustness_json(&[(0.0, 0.95, 0.9, 8000.0, 0), (0.1, 0.9, 0.7, 6000.0, 42)]);
        // A dirty zero row fails even against itself.
        let dirty = synthetic_robustness_json(&[(0.0, 0.95, 0.9, 8000.0, 3)]);
        let report = compare_baselines(&committed, &dirty);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("exact passthrough")),
            "{:?}",
            report.violations
        );
        // A drifted (but clean) zero row fails the bit-identity pin.
        let drifted =
            synthetic_robustness_json(&[(0.0, 0.94, 0.9, 8000.0, 0), (0.1, 0.9, 0.7, 6000.0, 42)]);
        let report = compare_baselines(&committed, &drifted);
        assert!(
            report.violations.iter().any(|v| v.contains("drifted")),
            "{:?}",
            report.violations
        );
        // A block with no zero row at all fails.
        let no_zero = synthetic_robustness_json(&[(0.1, 0.9, 0.7, 6000.0, 42)]);
        let report = compare_baselines(&committed, &no_zero);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("no zero-fault reference row")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn faulted_robustness_rows_gate_against_the_committed_envelope() {
        let committed =
            synthetic_robustness_json(&[(0.0, 0.95, 0.9, 8000.0, 0), (0.1, 0.9, 0.7, 6000.0, 42)]);
        // Precision collapse at the same rate fails.
        let collapsed =
            synthetic_robustness_json(&[(0.0, 0.95, 0.9, 8000.0, 0), (0.1, 0.5, 0.7, 6000.0, 42)]);
        let report = compare_baselines(&committed, &collapsed);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("harvest precision at uniform fault rate")),
            "{:?}",
            report.violations
        );
        // Gain collapse below the committed floor fails.
        let no_gain =
            synthetic_robustness_json(&[(0.0, 0.95, 0.9, 8000.0, 0), (0.1, 0.9, 0.7, 1000.0, 42)]);
        let report = compare_baselines(&committed, &no_gain);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("composition gain at uniform fault rate")),
            "{:?}",
            report.violations
        );
        // Within-envelope degradation passes.
        let fine =
            synthetic_robustness_json(&[(0.0, 0.95, 0.9, 8000.0, 0), (0.1, 0.8, 0.6, 4000.0, 50)]);
        let report = compare_baselines(&committed, &fine);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn missing_robustness_stage_fails_and_non_finite_rows_are_malformed() {
        let committed = synthetic_robustness_json(&[(0.0, 0.95, 0.9, 8000.0, 0)]);
        let fresh = synthetic_json(100.0, 5.0);
        let report = compare_baselines(&committed, &fresh);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("robustness stage disappeared")),
            "{:?}",
            report.violations
        );
        // A newly appearing robustness block is fine.
        let report = compare_baselines(&fresh, &committed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // A NaN metric drops the row into malformed_rows and gates.
        let poisoned = synthetic_robustness_json(&[(0.1, f64::NAN, 0.7, 6000.0, 42)]);
        let b = parse_baseline(&poisoned);
        assert_eq!(b.malformed_rows.len(), 1, "{:?}", b.malformed_rows);
        let report = compare_baselines(&committed, &poisoned);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("non-finite or unparseable")),
            "{:?}",
            report.violations
        );
    }

    /// A synthetic robustness block with caller-controlled modes:
    /// `(fault_rate, mode, precision, coverage, gain, defects)`.
    fn synthetic_mode_robustness_json(rows: &[(f64, &str, f64, f64, f64, usize)]) -> String {
        let mut out = synthetic_json(100.0, 5.0);
        out.truncate(out.rfind("\n}").expect("closing brace"));
        out.push_str(
            ",\n  \"robustness\": {\n    \"max_rate\": 0.100, \"seed\": 2015, \"wall_ms\": 50.000,\n    \"rows\": [\n",
        );
        for (i, (rate, mode, prec, cov, gain, defects)) in rows.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"fault_rate\": {rate:.3}, \"mode\": \"{mode}\", \"harvest_precision\": {prec:.4}, \"harvest_coverage\": {cov:.4}, \"composition_gain\": {gain:.1}, \"pages_rejected\": {defects}, \"rows_skipped\": 0, \"fields_imputed\": 0, \"workers_restarted\": 0 }}{}\n",
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n  }\n}\n");
        out
    }

    #[test]
    fn robustness_mode_parses_and_defaults_to_uniform() {
        // Mode-less rows (pre-targeted baselines) parse as uniform.
        let old = synthetic_robustness_json(&[(0.0, 0.95, 0.9, 8000.0, 0)]);
        let b = parse_baseline(&old);
        assert_eq!(b.robustness[0].mode, "uniform");
        // Mode-carrying rows keep their mode.
        let new = synthetic_mode_robustness_json(&[
            (0.0, "uniform", 0.95, 0.9, 8000.0, 0),
            (0.1, "targeted", 0.9, 0.7, 1000.0, 12),
        ]);
        let b = parse_baseline(&new);
        assert_eq!(b.robustness[1].mode, "targeted");
        assert!(b.malformed_rows.is_empty());
    }

    #[test]
    fn robustness_envelope_matches_rows_by_rate_and_mode() {
        // Uniform and targeted rows share the 0.1 rate by design. The
        // targeted gain (1000) sits far below the uniform gain (6000):
        // matched by rate alone, a fresh targeted row at 900 would gate
        // against 6000 * 0.5 = 3000 and fail spuriously.
        let committed = synthetic_mode_robustness_json(&[
            (0.0, "uniform", 0.95, 0.9, 8000.0, 0),
            (0.1, "uniform", 0.9, 0.7, 6000.0, 42),
            (0.1, "targeted", 0.85, 0.6, 1000.0, 12),
        ]);
        let fine = synthetic_mode_robustness_json(&[
            (0.0, "uniform", 0.95, 0.9, 8000.0, 0),
            (0.1, "uniform", 0.9, 0.7, 6000.0, 42),
            (0.1, "targeted", 0.85, 0.6, 900.0, 12),
        ]);
        let report = compare_baselines(&committed, &fine);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // A genuinely collapsed targeted row still fails against its own
        // committed envelope.
        let collapsed = synthetic_mode_robustness_json(&[
            (0.0, "uniform", 0.95, 0.9, 8000.0, 0),
            (0.1, "uniform", 0.9, 0.7, 6000.0, 42),
            (0.1, "targeted", 0.85, 0.6, 400.0, 12),
        ]);
        let report = compare_baselines(&committed, &collapsed);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("targeted fault rate 0.100")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn vanished_targeted_row_fails() {
        let committed = synthetic_mode_robustness_json(&[
            (0.0, "uniform", 0.95, 0.9, 8000.0, 0),
            (0.1, "targeted", 0.85, 0.6, 1000.0, 12),
        ]);
        let fresh = synthetic_mode_robustness_json(&[
            (0.0, "uniform", 0.95, 0.9, 8000.0, 0),
            (0.1, "uniform", 0.9, 0.7, 6000.0, 42),
        ]);
        let report = compare_baselines(&committed, &fresh);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("targeted (worst-case) robustness row disappeared")),
            "{:?}",
            report.violations
        );
    }

    /// A synthetic baseline with a `recovery` ledger, rows as
    /// `(stage, attempts, retries, backoff_ms)`.
    fn synthetic_recovery_json(
        seed: u64,
        rate: f64,
        max_attempts: usize,
        retries_total: usize,
        escaped: usize,
        rows: &[(&str, usize, usize, f64)],
    ) -> String {
        let mut out = synthetic_json(100.0, 5.0);
        out.truncate(out.rfind("\n}").expect("closing brace"));
        out.push_str(&format!(
            ",\n  \"recovery\": {{\n    \"seed\": {seed}, \"transient_rate\": {rate:.3}, \"max_attempts\": {max_attempts}, \"retries_total\": {retries_total}, \"escaped_panics\": {escaped},\n    \"rows\": [\n"
        ));
        for (i, (stage, att, ret, back)) in rows.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"stage\": \"{stage}\", \"attempts\": {att}, \"retries\": {ret}, \"backoff_ms\": {back:.3} }}{}\n",
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n  }\n}\n");
        out
    }

    #[test]
    fn recovery_ledger_parses() {
        let json = synthetic_recovery_json(
            2015,
            0.1,
            4,
            3,
            0,
            &[("world_build", 1, 0, 0.0), ("mdav", 3, 2, 14.5)],
        );
        let b = parse_baseline(&json);
        let rec = b.recovery.expect("recovery block parsed");
        assert_eq!(rec.seed, 2015);
        assert_eq!(rec.transient_rate, 0.1);
        assert_eq!(rec.max_attempts, 4);
        assert_eq!(rec.retries_total, 3);
        assert_eq!(rec.escaped_panics, 0);
        assert_eq!(rec.rows.len(), 2);
        assert_eq!(rec.rows[1].stage, "mdav");
        assert_eq!(rec.rows[1].attempts, 3);
        assert_eq!(rec.rows[1].backoff_ms, 14.5);
        assert!(b.malformed_rows.is_empty());
        // Recovery rows never leak into the timing-stage namespace.
        assert!(!b.stage_wall_ms.contains_key("mdav"));
        let report = compare_baselines(&json, &json);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.notes.iter().any(|n| n.contains("recovery")));
    }

    #[test]
    fn vanished_recovery_ledger_and_escaped_panics_fail() {
        let committed = synthetic_recovery_json(2015, 0.1, 4, 3, 0, &[("world_build", 1, 0, 0.0)]);
        // Ledger disappeared entirely.
        let fresh = synthetic_json(100.0, 5.0);
        let report = compare_baselines(&committed, &fresh);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("recovery ledger disappeared")),
            "{:?}",
            report.violations
        );
        // A newly appearing ledger is fine.
        let report = compare_baselines(&fresh, &committed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // An escaped panic fails even against itself.
        let leaky = synthetic_recovery_json(2015, 0.1, 4, 3, 1, &[("world_build", 1, 0, 0.0)]);
        let report = compare_baselines(&committed, &leaky);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("escaped panic")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn retry_trace_is_pinned_at_the_same_seed_rate_and_policy() {
        let committed = synthetic_recovery_json(2015, 0.1, 4, 3, 0, &[("robustness", 2, 1, 4.0)]);
        // Same (seed, rate, max_attempts), different total: drift.
        let drifted = synthetic_recovery_json(2015, 0.1, 4, 5, 0, &[("robustness", 2, 1, 4.0)]);
        let report = compare_baselines(&committed, &drifted);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("retry trace drifted")),
            "{:?}",
            report.violations
        );
        // A different seed legitimately produces a different trace.
        let other_seed = synthetic_recovery_json(77, 0.1, 4, 5, 0, &[("robustness", 2, 1, 4.0)]);
        let report = compare_baselines(&committed, &other_seed);
        assert!(
            !report.violations.iter().any(|v| v.contains("drifted")),
            "{:?}",
            report.violations
        );
        // A stage row vanishing from a still-present ledger fails.
        let hollow = synthetic_recovery_json(2015, 0.1, 4, 3, 0, &[("world_build", 1, 0, 0.0)]);
        let report = compare_baselines(&committed, &hollow);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("`robustness` vanished from the fresh ledger")),
            "{:?}",
            report.violations
        );
    }

    /// A synthetic baseline whose config marks a deterministic
    /// (checkpointed) run: every wall-clock zeroed, speedups at the 0.0
    /// sentinel.
    fn synthetic_det_json() -> String {
        "{\n  \"config\": { \"size\": 120, \"seed\": 2015, \"k_min\": 2, \"k_max\": 10, \"cores\": 1, \"deterministic\": true },\n  \
         \"stages\": [\n    \
         { \"name\": \"world_build\", \"wall_ms\": 0.000, \"rows\": 120, \"rows_per_sec\": 0.0 },\n    \
         { \"name\": \"mdav_k5\", \"wall_ms\": 0.000, \"rows\": 120, \"rows_per_sec\": 0.0 }\n  \
         ],\n  \"speedup_batch_vs_naive\": 0.00\n}\n"
            .to_owned()
    }

    #[test]
    fn deterministic_fresh_run_skips_timing_gates_but_not_structure() {
        let committed = synthetic_json(100.0, 5.0);
        let det = synthetic_det_json();
        assert_eq!(parse_baseline(&det).deterministic, Some(true));
        assert_eq!(parse_baseline(&committed).deterministic, None);
        // Zeroed speedup and zeroed stage walls pass: timing gates are
        // skipped for a deterministic fresh run.
        let report = compare_baselines(&committed, &det);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("timing gates skipped")),
            "{:?}",
            report.notes
        );
        // The stage-disappeared gate still applies in full.
        let hollow: String = det
            .lines()
            .filter(|l| !l.contains("\"mdav_k5\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let report = compare_baselines(&committed, &hollow);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("`mdav_k5` disappeared")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn committed_deterministic_baseline_is_a_violation() {
        let det = synthetic_det_json();
        let fresh = synthetic_json(100.0, 5.0);
        let report = compare_baselines(&det, &fresh);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("deterministic (checkpointed) run")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn structurally_corrupt_baselines_refuse_to_gate() {
        let good = synthetic_composition_json(&[(1, 0.0, 5.0), (2, 7000.0, 2.3)]);
        // A truncated committed baseline (torn write) fails loudly with
        // ONLY structural violations — no spurious disappeared-stage
        // noise from the half-parsed remains.
        let torn = &good[..good.len() / 2];
        assert!(!parse_baseline(torn).structural_errors.is_empty());
        let report = compare_baselines(torn, &good);
        assert!(!report.violations.is_empty());
        assert!(
            report
                .violations
                .iter()
                .all(|v| v.contains("structurally corrupt")),
            "{:?}",
            report.violations
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("regenerate it")),
            "{:?}",
            report.violations
        );
        // A torn fresh run fails the same way.
        let report = compare_baselines(&good, torn);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("fresh baseline is structurally corrupt")),
            "{:?}",
            report.violations
        );
        // Not-a-baseline input reports every missing landmark.
        let b = parse_baseline("");
        assert_eq!(b.structural_errors.len(), 3, "{:?}", b.structural_errors);
    }

    #[test]
    fn missing_stage_fails() {
        let json = small_bench_json(None);
        let fresh: String = json
            .lines()
            .filter(|l| !l.contains("\"mdav_k5\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let report = compare_baselines(&json, &fresh);
        assert!(report.violations.iter().any(|v| v.contains("disappeared")));
    }

    /// Appends a `profile` block in the writer's shape onto an existing
    /// synthetic baseline.
    fn with_profile(
        mut out: String,
        digest: &str,
        pct: f64,
        stages: &[(&str, usize)],
        counters: &[(&str, u64)],
    ) -> String {
        out.truncate(out.rfind("\n}").expect("closing brace"));
        out.push_str(",\n  \"profile\": {\n");
        out.push_str(&format!(
            "    \"deterministic\": false, \"spans_total\": {}, \"events_total\": 0, \"span_tree_digest\": \"{digest}\",\n",
            stages.len() + 1
        ));
        out.push_str(&format!(
            "    \"overhead\": {{ \"probe_calls\": 1000000, \"wall_ms\": 4.000, \"pct_of_large\": {pct:.3} }},\n"
        ));
        out.push_str("    \"stages\": [\n");
        for (i, (stage, spans)) in stages.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"stage\": \"{stage}\", \"self_ms\": 1.000, \"spans\": {spans} }}{}\n",
                if i + 1 < stages.len() { "," } else { "" }
            ));
        }
        out.push_str("    ],\n    \"counters\": [\n");
        for (i, (name, value)) in counters.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"counter\": \"{name}\", \"value\": {value} }}{}\n",
                if i + 1 < counters.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n  }\n}\n");
        out
    }

    #[test]
    fn profile_block_parses() {
        let json = with_profile(
            synthetic_json(100.0, 5.0),
            "00deadbeef00cafe",
            0.5,
            &[("world_build", 1), ("mdav", 1)],
            &[("mdav.rounds", 12), ("release.chunks", 3)],
        );
        let b = parse_baseline(&json);
        let prof = b.profile.expect("profile block parsed");
        assert!(!prof.deterministic);
        assert_eq!(prof.spans_total, 3);
        assert_eq!(prof.span_tree_digest, "00deadbeef00cafe");
        assert_eq!(prof.overhead_probe_calls, 1_000_000);
        assert_eq!(prof.overhead_pct_of_large, 0.5);
        assert_eq!(prof.stages.len(), 2);
        assert_eq!(prof.stages[1].stage, "mdav");
        assert_eq!(prof.counters.get("mdav.rounds"), Some(&12));
        assert!(b.malformed_rows.is_empty());
        // Profile stage rows never leak into the timing-stage namespace
        // or the recovery ledger.
        assert!(!b.stage_wall_ms.contains_key("mdav"));
        assert!(b.recovery.is_none());
        let report = compare_baselines(&json, &json);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.notes.iter().any(|n| n.contains("profile")));
    }

    #[test]
    fn span_tree_digest_is_pinned_and_profile_must_not_vanish() {
        let committed = with_profile(
            synthetic_json(100.0, 5.0),
            "00deadbeef00cafe",
            0.5,
            &[("world_build", 1)],
            &[],
        );
        // Digest drift fails.
        let drifted = with_profile(
            synthetic_json(100.0, 5.0),
            "ffffffffffffffff",
            0.5,
            &[("world_build", 1)],
            &[],
        );
        let report = compare_baselines(&committed, &drifted);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("span tree digest drifted")),
            "{:?}",
            report.violations
        );
        // The whole block vanishing fails.
        let report = compare_baselines(&committed, &synthetic_json(100.0, 5.0));
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("profile block disappeared")),
            "{:?}",
            report.violations
        );
        // A committed stage row vanishing from a still-present block fails.
        let hollow = with_profile(
            synthetic_json(100.0, 5.0),
            "00deadbeef00cafe",
            0.5,
            &[("mdav", 1)],
            &[],
        );
        let report = compare_baselines(&committed, &hollow);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("profile stage `world_build` disappeared")),
            "{:?}",
            report.violations
        );
        // A newly appearing profile is fine.
        let report = compare_baselines(&synthetic_json(100.0, 5.0), &committed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn overhead_ceiling_gates_the_disabled_path() {
        let fast = with_profile(
            synthetic_json(100.0, 5.0),
            "00deadbeef00cafe",
            MAX_OBS_OVERHEAD_PCT / 2.0,
            &[("world_build", 1)],
            &[],
        );
        let report = compare_baselines(&fast, &fast);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let slow = with_profile(
            synthetic_json(100.0, 5.0),
            "00deadbeef00cafe",
            MAX_OBS_OVERHEAD_PCT * 2.0,
            &[("world_build", 1)],
            &[],
        );
        let report = compare_baselines(&fast, &slow);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("disabled-tracing overhead")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn obs_counters_reconcile_against_the_robustness_ledger() {
        // Ledger rows sum to 42 pages_rejected (the helper writes defects
        // as pages_rejected), zero everything else.
        let base =
            synthetic_robustness_json(&[(0.0, 0.95, 0.9, 8000.0, 0), (0.1, 0.9, 0.7, 6000.0, 42)]);
        let agree = with_profile(
            base.clone(),
            "00deadbeef00cafe",
            0.5,
            &[("robustness", 1)],
            &[
                ("faults.pages_rejected", 42),
                ("faults.rows_skipped", 0),
                ("faults.fields_imputed", 0),
                ("faults.workers_restarted", 0),
            ],
        );
        let report = compare_baselines(&agree, &agree);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // One dropped increment fails — the reconciliation is exact.
        let disagree = with_profile(
            base,
            "00deadbeef00cafe",
            0.5,
            &[("robustness", 1)],
            &[
                ("faults.pages_rejected", 41),
                ("faults.rows_skipped", 0),
                ("faults.fields_imputed", 0),
                ("faults.workers_restarted", 0),
            ],
        );
        let report = compare_baselines(&disagree, &disagree);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("`faults.pages_rejected` = 41 disagrees")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn obs_counters_reconcile_against_the_recovery_ledger() {
        let base = synthetic_recovery_json(
            2015,
            0.1,
            4,
            3,
            0,
            &[("world_build", 1, 0, 0.0), ("mdav", 3, 2, 14.5)],
        );
        // attempts sum to 4, retries_total 3, quarantines default 0.
        let agree = with_profile(
            base.clone(),
            "00deadbeef00cafe",
            0.5,
            &[("world_build", 1), ("mdav", 1)],
            &[
                ("recover.attempts", 4),
                ("recover.retries", 3),
                ("recover.quarantines", 0),
            ],
        );
        let report = compare_baselines(&agree, &agree);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let disagree = with_profile(
            base,
            "00deadbeef00cafe",
            0.5,
            &[("world_build", 1), ("mdav", 1)],
            &[
                ("recover.attempts", 5),
                ("recover.retries", 3),
                ("recover.quarantines", 0),
            ],
        );
        let report = compare_baselines(&disagree, &disagree);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("`recover.attempts` = 5 disagrees")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn deterministic_profile_skips_counter_and_overhead_gates() {
        // A deterministic profile header with zeroed overhead and no
        // counter rows — what a checkpointed/resumed run emits. Only the
        // structural pins (digest, stage coverage) may gate it.
        let committed = with_profile(
            synthetic_json(100.0, 5.0),
            "00deadbeef00cafe",
            0.5,
            &[("world_build", 1)],
            &[],
        );
        let det = committed
            .replace("\"deterministic\": false", "\"deterministic\": true")
            .replace("\"pct_of_large\": 0.500", "\"pct_of_large\": 0.000");
        let report = compare_baselines(&committed, &det);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("counter gates skipped")),
            "{:?}",
            report.notes
        );
        // Digest drift still fails a deterministic profile.
        let drifted = det.replace("00deadbeef00cafe", "ffffffffffffffff");
        let report = compare_baselines(&committed, &drifted);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("span tree digest drifted")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn quarantined_total_round_trips_and_defaults() {
        // Old-format header (no quarantined_total) parses as zero.
        let old = synthetic_recovery_json(2015, 0.1, 4, 3, 0, &[("world_build", 1, 0, 0.0)]);
        assert_eq!(parse_baseline(&old).recovery.unwrap().quarantined_total, 0);
        // New-format header round-trips the field.
        let new = old.replace(
            "\"retries_total\": 3,",
            "\"retries_total\": 3, \"quarantined_total\": 2,",
        );
        assert_eq!(parse_baseline(&new).recovery.unwrap().quarantined_total, 2);
    }

    /// A synthetic baseline carrying a well-formed `large_100k` block in
    /// the writer's format: `shards` equal shards covering `size` rows,
    /// all three digest pairs agreeing, peak rss under the ceiling.
    fn synthetic_sharded_sized_json(size: usize, shards: usize) -> String {
        let mut out = synthetic_json(100.0, 5.0);
        out.truncate(out.rfind("\n}").expect("closing brace"));
        out.push_str(&format!(
            ",\n  \"large_100k\": {{\n    \"size\": {size},\n    \"shards\": {shards},\n    \
             \"cores\": 1,\n    \"sample_rows\": {size},\n    \"peak_rss_mb\": 512.0,\n"
        ));
        out.push_str(
            "    \"stages\": [\n      \
             { \"name\": \"harvest_sharded_100k\", \"wall_ms\": 100.000, \"rows\": 200, \"rows_per_sec\": 2000.0 }\n    \
             ],\n    \"shard_rows\": [\n",
        );
        for shard in 0..shards {
            out.push_str(&format!(
                "      {{ \"shard\": {shard}, \"rows\": {}, \"pages\": {} }}{}\n",
                size / shards,
                90 - shard,
                if shard + 1 < shards { "," } else { "" }
            ));
        }
        out.push_str(
            "    ],\n    \
             \"digests\": { \"harvest_sharded\": \"00000000000000aa\", \"harvest_unsharded\": \"00000000000000aa\", \"mdav_sharded\": \"00000000000000bb\", \"mdav_unsharded\": \"00000000000000bb\", \"intersect_sharded\": \"00000000000000cc\", \"intersect_unsharded\": \"00000000000000cc\" }\n  \
             }\n}\n",
        );
        out
    }

    /// The two-shard, 200-row default most gate tests mutate.
    fn synthetic_sharded_json() -> String {
        synthetic_sharded_sized_json(200, 2)
    }

    #[test]
    fn sharded_block_parses_and_self_diff_passes() {
        let json = synthetic_sharded_json();
        let b = parse_baseline(&json);
        let big = b.large_100k.as_ref().expect("block parsed");
        assert_eq!((big.size, big.shards, big.sample_rows), (200, 2, 200));
        assert_eq!(big.peak_rss_mb, 512.0);
        // Pre-cap rows (no `capped` field) parse as uncapped.
        assert_eq!(
            big.shard_rows,
            vec![(0, 100, 90, false), (1, 100, 89, false)]
        );
        assert_eq!(big.digests.len(), 6);
        assert_eq!(b.seed, Some(2015));
        // The 100k stages share the common timing namespace.
        assert!(b.stage_wall_ms.contains_key("harvest_sharded_100k"));
        assert!(b.malformed_rows.is_empty(), "{:?}", b.malformed_rows);
        let report = compare_baselines(&json, &json);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(
            report.notes.iter().any(|n| n.contains("large_100k")),
            "{:?}",
            report.notes
        );
    }

    #[test]
    fn sharded_digest_mismatch_fails() {
        let committed = synthetic_sharded_json();
        let fresh = committed.replace(
            "\"mdav_unsharded\": \"00000000000000bb\"",
            "\"mdav_unsharded\": \"00000000000000be\"",
        );
        let report = compare_baselines(&committed, &fresh);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("hierarchical MDAV diverged")),
            "{:?}",
            report.violations
        );
        // The drifted pair also breaks the cross-run pin at the same
        // (seed, size, shards).
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("digests drifted")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn vanished_shard_row_and_uncovered_rows_fail() {
        let committed = synthetic_sharded_json();
        // Drop the second shard's accounting row entirely.
        let fresh = committed
            .replace(
                "{ \"shard\": 0, \"rows\": 100, \"pages\": 90 },\n",
                "{ \"shard\": 0, \"rows\": 100, \"pages\": 90 }\n",
            )
            .replace("      { \"shard\": 1, \"rows\": 100, \"pages\": 89 }\n", "");
        let report = compare_baselines(&committed, &fresh);
        assert!(
            report.violations.iter().any(|v| v.contains("lost a shard")),
            "{:?}",
            report.violations
        );
        // A present-but-short row count is a coverage violation.
        let fresh = committed.replace(
            "{ \"shard\": 1, \"rows\": 100, \"pages\": 89 }",
            "{ \"shard\": 1, \"rows\": 60, \"pages\": 89 }",
        );
        let report = compare_baselines(&committed, &fresh);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("cover 160 of 200")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn sharded_rss_ceiling_gates_and_zero_skips() {
        let committed = synthetic_sharded_json();
        let breach = committed.replace(
            "\"peak_rss_mb\": 512.0",
            &format!("\"peak_rss_mb\": {:.1}", MAX_100K_PEAK_RSS_MB * 2.0),
        );
        let report = compare_baselines(&committed, &breach);
        assert!(
            report.violations.iter().any(|v| v.contains("peak rss")),
            "{:?}",
            report.violations
        );
        // A deterministic/unavailable 0.0 reading skips the ceiling.
        let zeroed = committed.replace("\"peak_rss_mb\": 512.0", "\"peak_rss_mb\": 0.0");
        let report = compare_baselines(&committed, &zeroed);
        assert!(
            !report.violations.iter().any(|v| v.contains("peak rss")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn pre_shard_committed_baseline_still_gates_the_fresh_block() {
        // Committed predates the block: the in-run gates still fire.
        let committed = synthetic_json(100.0, 5.0);
        let fresh = synthetic_sharded_json();
        let report = compare_baselines(&committed, &fresh);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("predates the large_100k block")),
            "{:?}",
            report.notes
        );
        // ... and a broken fresh block fails against that same old
        // baseline — no pre-shard vacuous pass.
        let broken = fresh.replace(
            "\"intersect_unsharded\": \"00000000000000cc\"",
            "\"intersect_unsharded\": \"00000000000000cd\"",
        );
        let report = compare_baselines(&committed, &broken);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("intersection diverged")),
            "{:?}",
            report.violations
        );
        // A committed block that vanishes from the fresh run fails.
        let report = compare_baselines(&fresh, &committed);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("large_100k (sharded) block disappeared")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn sharded_config_change_skips_the_cross_run_pin() {
        // Same digests, different (size, shards): the in-run gates still
        // hold and the cross-run pin steps aside with a note.
        let committed = synthetic_sharded_json();
        let fresh = synthetic_sharded_sized_json(400, 4);
        let report = compare_baselines(&committed, &fresh);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("cross-run digest pin skipped")),
            "{:?}",
            report.notes
        );
        // Non-dense shard indices are their own violation even when the
        // count and coverage check out.
        let swapped = committed
            .replace("\"shard\": 1", "\"shard\": 9")
            .replace("\"shard\": 0", "\"shard\": 1")
            .replace("\"shard\": 9", "\"shard\": 0");
        let report = compare_baselines(&committed, &swapped);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("not dense ascending")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn sharded_block_round_trips_from_the_writer() {
        let json = quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            3,
            1,
            &QuickBenchOptions {
                sharded_size: Some(80),
                ..QuickBenchOptions::default()
            },
        )
        .to_json();
        let b = parse_baseline(&json);
        let big = b.large_100k.as_ref().expect("block parsed");
        assert_eq!((big.size, big.shards), (80, 1));
        assert_eq!(big.shard_rows.len(), 1);
        assert_eq!(big.digests.len(), 6);
        assert!(b.stage_wall_ms.contains_key("equivalence_100k"));
        assert!(b.malformed_rows.is_empty(), "{:?}", b.malformed_rows);
        let report = compare_baselines(&json, &json);
        assert!(
            report.violations.iter().all(|v| !v.contains("large_100k")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn robustness_shards_lost_parses_and_defaults() {
        // Old-format rows (no shards_lost) parse as zero lost shards.
        let old = synthetic_robustness_json(&[(0.0, 0.95, 0.9, 8000.0, 0)]);
        assert_eq!(parse_baseline(&old).robustness[0].shards_lost, 0);
        // New-format rows fold the field into the defect total.
        let new = old.replace(
            "\"workers_restarted\": 0",
            "\"workers_restarted\": 0, \"shards_lost\": 3",
        );
        let row = &parse_baseline(&new).robustness[0];
        assert_eq!(row.shards_lost, 3);
        assert_eq!(row.defects, 3);
    }
}
