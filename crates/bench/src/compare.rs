//! The perf-smoke gate: diffs a fresh `BENCH_sweep.json` against the
//! committed baseline and reports regressions.
//!
//! The workspace builds offline (no serde), and the only JSON either side
//! of the diff ever sees is the output of
//! [`QuickBench::to_json`](crate::perf::QuickBench::to_json), so parsing
//! is a deliberately small line-oriented extractor over that one stable
//! format rather than a general JSON reader.
//!
//! Gate rules (enforced by `repro --quick --compare BASELINE` and the CI
//! perf-smoke step):
//!
//! * `speedup_batch_vs_naive` must stay ≥ 2.0;
//! * no stage present in the committed baseline may run more than 3×
//!   slower (stages faster than the timing floor are skipped as noise);
//! * a stage present in the baseline must not disappear;
//! * on machines with ≥ 4 cores, the large-world harvest must keep
//!   `speedup_harvest_parallel_vs_seq` ≥ 2.0 (single-core runners skip
//!   this check — there is nothing to parallelize over);
//! * when the baseline carries a composition stage the fresh run must
//!   carry one too, its per-record disclosure gain must be *strictly
//!   increasing* in the number of composed releases, and the mean
//!   candidate count must never rise with an added release (composition
//!   only adds constraints).

use std::collections::BTreeMap;

/// A stage may regress up to this factor before the gate fails (CI
/// runners are noisy; superlinear blow-ups clear 3× immediately).
pub const MAX_STAGE_REGRESSION: f64 = 3.0;

/// Minimum required compiled-vs-interpreted estimate speedup.
pub const MIN_BATCH_SPEEDUP: f64 = 2.0;

/// Minimum required parallel-vs-sequential harvest speedup on ≥ 4 cores.
pub const MIN_HARVEST_SPEEDUP: f64 = 2.0;

/// Cores below which the harvest-speedup check is vacuous.
pub const HARVEST_SPEEDUP_MIN_CORES: usize = 4;

/// Committed wall-clocks below this are too fast to ratio meaningfully:
/// the baseline and the fresh run are usually taken on *different
/// machines* (a dev box vs a CI runner), where a millisecond-scale stage
/// can miss 3x on clock-speed and scheduler differences alone. Every hot
/// stage the gate exists for (MDAV, harvest, estimates — especially
/// their `_large` variants) sits one to three orders of magnitude above
/// this floor.
pub const STAGE_FLOOR_MS: f64 = 2.0;

/// One composition-stage row: `(releases, disclosure_gain,
/// mean_candidates)`.
pub type CompositionRow = (usize, f64, f64);

/// Everything [`parse_baseline`] can recover from one baseline file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Stage name → wall milliseconds (small- and large-world stages share
    /// one namespace; large stages carry a `_large` suffix by construction).
    pub stage_wall_ms: BTreeMap<String, f64>,
    /// `speedup_batch_vs_naive`, when present.
    pub speedup_batch_vs_naive: Option<f64>,
    /// `speedup_harvest_parallel_vs_seq`, when present.
    pub speedup_harvest_parallel_vs_seq: Option<f64>,
    /// `cores` recorded in the config block, when present.
    pub cores: Option<usize>,
    /// Composition-stage rows, ascending in releases, when present.
    pub composition: Vec<CompositionRow>,
}

/// The outcome of [`compare_baselines`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CompareReport {
    /// Human-readable observations that did not fail the gate.
    pub notes: Vec<String>,
    /// Gate failures; empty means the fresh run passed.
    pub violations: Vec<String>,
}

/// Pulls the quoted value following `"key":` out of a line, if present.
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":");
    let rest = &line[line.find(&needle)? + needle.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    Some(&rest[..rest.find('"')?])
}

/// Pulls the numeric value following `"key":` out of a line, if present.
fn num_field(line: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = line[line.find(&needle)? + needle.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a `BENCH_sweep.json` produced by
/// [`QuickBench::to_json`](crate::perf::QuickBench::to_json).
pub fn parse_baseline(json: &str) -> Baseline {
    let mut out = Baseline::default();
    for line in json.lines() {
        if let (Some(name), Some(wall)) = (str_field(line, "name"), num_field(line, "wall_ms")) {
            out.stage_wall_ms.insert(name.to_owned(), wall);
            continue;
        }
        if let Some(v) = num_field(line, "speedup_batch_vs_naive") {
            out.speedup_batch_vs_naive = Some(v);
        }
        if let Some(v) = num_field(line, "speedup_harvest_parallel_vs_seq") {
            out.speedup_harvest_parallel_vs_seq = Some(v);
        }
        if let Some(v) = num_field(line, "cores") {
            out.cores = Some(v as usize);
        }
        if let (Some(r), Some(gain), Some(cand)) = (
            num_field(line, "releases"),
            num_field(line, "disclosure_gain"),
            num_field(line, "mean_candidates"),
        ) {
            out.composition.push((r as usize, gain, cand));
        }
    }
    out
}

/// Diffs a fresh baseline against the committed one under the gate rules.
pub fn compare_baselines(committed_json: &str, fresh_json: &str) -> CompareReport {
    let committed = parse_baseline(committed_json);
    let fresh = parse_baseline(fresh_json);
    let mut report = CompareReport::default();

    match fresh.speedup_batch_vs_naive {
        Some(v) if v < MIN_BATCH_SPEEDUP => report.violations.push(format!(
            "speedup_batch_vs_naive fell to {v:.2} (must stay >= {MIN_BATCH_SPEEDUP:.1})"
        )),
        Some(v) => report
            .notes
            .push(format!("speedup_batch_vs_naive = {v:.2}")),
        None => report
            .violations
            .push("fresh baseline carries no speedup_batch_vs_naive".into()),
    }

    for (name, &committed_ms) in &committed.stage_wall_ms {
        let Some(&fresh_ms) = fresh.stage_wall_ms.get(name) else {
            report.violations.push(format!(
                "stage `{name}` disappeared from the fresh baseline"
            ));
            continue;
        };
        if committed_ms < STAGE_FLOOR_MS {
            continue;
        }
        let ratio = fresh_ms / committed_ms;
        if ratio > MAX_STAGE_REGRESSION {
            report.violations.push(format!(
                "stage `{name}` regressed {ratio:.2}x ({committed_ms:.3} ms -> {fresh_ms:.3} ms, \
                 limit {MAX_STAGE_REGRESSION:.1}x)"
            ));
        }
    }

    // The composition gate: the physics of the stage, not its timing. A
    // fresh run must keep the per-record disclosure gain strictly
    // increasing in the release count and never let a target's candidate
    // pool grow with an added release.
    if !committed.composition.is_empty() && fresh.composition.is_empty() {
        report
            .violations
            .push("composition stage disappeared from the fresh baseline".into());
    }
    for pair in fresh.composition.windows(2) {
        let ((r0, g0, c0), (r1, g1, c1)) = (pair[0], pair[1]);
        if g1 <= g0 {
            report.violations.push(format!(
                "composition disclosure gain not strictly increasing: R={r0} -> {g0:.1}, \
                 R={r1} -> {g1:.1}"
            ));
        }
        if c1 > c0 + 1e-9 {
            report.violations.push(format!(
                "composition candidate count rose with an added release: R={r0} -> {c0:.2}, \
                 R={r1} -> {c1:.2}"
            ));
        }
    }
    if let Some((r, last_gain, _)) = fresh.composition.last() {
        report.notes.push(format!(
            "composition disclosure gain at R={r} is {last_gain:.1}"
        ));
    }

    let fresh_cores = fresh.cores.unwrap_or(1);
    match fresh.speedup_harvest_parallel_vs_seq {
        Some(v) if fresh_cores >= HARVEST_SPEEDUP_MIN_CORES && v < MIN_HARVEST_SPEEDUP => {
            report.violations.push(format!(
                "harvest parallel speedup fell to {v:.2} on {fresh_cores} cores \
                 (must stay >= {MIN_HARVEST_SPEEDUP:.1} on >= {HARVEST_SPEEDUP_MIN_CORES})"
            ))
        }
        Some(v) => report.notes.push(format!(
            "harvest parallel speedup = {v:.2} on {fresh_cores} core(s)"
        )),
        None => {}
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::quick_bench;
    use crate::world::WorldConfig;

    fn small_bench_json(large: Option<usize>) -> String {
        quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            4,
            1,
            large,
            false,
        )
        .to_json()
    }

    #[test]
    fn parses_its_own_writer_round_trip() {
        let json = small_bench_json(Some(40));
        let b = parse_baseline(&json);
        assert!(b.stage_wall_ms.contains_key("world_build"));
        assert!(b.stage_wall_ms.contains_key("mdav_k5"));
        assert!(b.stage_wall_ms.contains_key("mdav_k5_large"));
        assert!(b.stage_wall_ms.contains_key("harvest_parallel_large"));
        assert!(b.speedup_batch_vs_naive.is_some());
        assert!(b.speedup_harvest_parallel_vs_seq.is_some());
        assert!(b.cores.unwrap_or(0) >= 1);
    }

    #[test]
    fn identical_baselines_pass() {
        // Synthetic timings: a real timed run under parallel-test load can
        // legitimately dip below the speedup gate, which is not what this
        // test is about.
        let json = synthetic_json(100.0, 5.0);
        let report = compare_baselines(&json, &json);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn slow_batch_speedup_fails() {
        let committed = synthetic_json(100.0, 5.0);
        let degraded = synthetic_json(100.0, 1.10);
        let report = compare_baselines(&committed, &degraded);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("speedup_batch_vs_naive")));
    }

    /// A handcrafted baseline in the writer's format: timings are pinned
    /// so the test does not depend on how fast this machine happens to be.
    fn synthetic_json(mdav_ms: f64, speedup: f64) -> String {
        format!(
            "{{\n  \"config\": {{ \"size\": 120, \"seed\": 2015, \"k_min\": 2, \"k_max\": 10, \"cores\": 1 }},\n  \
             \"stages\": [\n    \
             {{ \"name\": \"world_build\", \"wall_ms\": 1.500, \"rows\": 120, \"rows_per_sec\": 80000.0 }},\n    \
             {{ \"name\": \"mdav_k5\", \"wall_ms\": {mdav_ms:.3}, \"rows\": 120, \"rows_per_sec\": 1000.0 }}\n  \
             ],\n  \"speedup_batch_vs_naive\": {speedup:.2}\n}}\n"
        )
    }

    #[test]
    fn stage_blowup_fails() {
        // Committed: 100 ms (above floor). Fresh: 1000 ms — a 10x blow-up.
        let committed = synthetic_json(100.0, 5.0);
        let fresh = synthetic_json(1000.0, 5.0);
        let report = compare_baselines(&committed, &fresh);
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("`mdav_k5` regressed")),
            "{:?}",
            report.violations
        );
        // Same blow-up ratio below the floor is ignored as noise.
        let committed = synthetic_json(STAGE_FLOOR_MS / 2.0, 5.0);
        let fresh = synthetic_json(STAGE_FLOOR_MS * 4.0, 5.0);
        let report = compare_baselines(&committed, &fresh);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    /// A synthetic baseline with a composition block whose rows are
    /// caller-controlled.
    fn synthetic_composition_json(rows: &[(usize, f64, f64)]) -> String {
        let mut out = synthetic_json(100.0, 5.0);
        out.truncate(out.rfind("\n}").expect("closing brace"));
        out.push_str(",\n  \"composition\": {\n    \"k\": 5, \"overlap\": 0.50, \"wall_ms\": 10.000,\n    \"rows\": [\n");
        for (i, (r, gain, cand)) in rows.iter().enumerate() {
            out.push_str(&format!(
                "      {{ \"releases\": {r}, \"disclosure_gain\": {gain:.1}, \"mean_candidates\": {cand:.2}, \"estimate_gain\": 0.0 }}{}\n",
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("    ]\n  }\n}\n");
        out
    }

    #[test]
    fn composition_rows_parse() {
        let json = synthetic_composition_json(&[(1, 0.0, 5.0), (2, 7000.0, 2.3)]);
        let b = parse_baseline(&json);
        assert_eq!(b.composition, vec![(1, 0.0, 5.0), (2, 7000.0, 2.3)]);
    }

    #[test]
    fn monotone_composition_passes_and_flat_gain_fails() {
        let committed =
            synthetic_composition_json(&[(1, 0.0, 5.0), (2, 7000.0, 2.3), (3, 9000.0, 1.7)]);
        let report = compare_baselines(&committed, &committed);
        assert!(report.violations.is_empty(), "{:?}", report.violations);

        let flat = synthetic_composition_json(&[(1, 0.0, 5.0), (2, 7000.0, 2.3), (3, 7000.0, 1.7)]);
        let report = compare_baselines(&committed, &flat);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("not strictly increasing")));

        let rising_candidates =
            synthetic_composition_json(&[(1, 0.0, 5.0), (2, 7000.0, 2.3), (3, 9000.0, 2.9)]);
        let report = compare_baselines(&committed, &rising_candidates);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("candidate count rose")));
    }

    #[test]
    fn missing_composition_stage_fails() {
        let committed = synthetic_composition_json(&[(1, 0.0, 5.0), (2, 7000.0, 2.3)]);
        let fresh = synthetic_json(100.0, 5.0);
        let report = compare_baselines(&committed, &fresh);
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("composition stage disappeared")));
    }

    #[test]
    fn missing_stage_fails() {
        let json = small_bench_json(None);
        let fresh: String = json
            .lines()
            .filter(|l| !l.contains("\"mdav_k5\""))
            .map(|l| format!("{l}\n"))
            .collect();
        let report = compare_baselines(&json, &fresh);
        assert!(report.violations.iter().any(|v| v.contains("disappeared")));
    }
}
