//! Checkpoint artifacts for the quick-bench pipeline: how each stage's
//! result round-trips through `fred-recover`'s envelope protocol.
//!
//! Two artifact families exist. *Anchors* ([`StageAnchor`]) cover the
//! cheap upstream stages (world build, MDAV + anonymization, harvest)
//! that are always recomputed on resume: the anchor carries a content
//! digest of the recomputed state, so `StageRunner::run_verified` can
//! prove the checkpoint directory still belongs to this exact
//! configuration before any downstream checkpoint is trusted. *Block
//! artifacts* are the bench blocks themselves ([`super::perf`] structs),
//! which a resumed run loads instead of recomputing — the actual time
//! saved by resumption.
//!
//! Every float is rendered with `{:?}` (Rust's shortest round-trip
//! form), so a load-then-render at the bench's fixed precision is
//! bit-identical to an uninterrupted run; 64-bit digests are rendered as
//! hex strings because JSON numbers lose integer precision past 2^53.

use fred_recover::{json, Artifact};

use crate::perf::{
    CompositionBench, CompositionBenchRow, DefenseBench, DefenseBenchRow, EvalBench, EvalCellRow,
    Large100kBench, LargeBench, RobustnessBench, RobustnessBenchRow, ShardBenchRow, StageTiming,
};
use crate::world::World;
use fred_attack::Harvest;

/// Streaming FNV-1a 64 fold over heterogeneous fields — the content
/// digest primitive for anchors.
pub struct Digest(u64);

impl Digest {
    /// A fresh digest at the FNV offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Digest {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds one integer (length-prefixed fields stay unambiguous).
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Folds one string with a length prefix.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// The folded hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Content digest of a built world: identifier strings, ground-truth
/// sensitive bits and the rendered corpus. Any drift here (changed
/// generator, changed seed handling) invalidates every checkpoint.
pub fn digest_world(world: &World) -> u64 {
    let mut d = Digest::new();
    for s in world.table.identifier_strings() {
        d.str(&s);
    }
    for &v in &world.truth {
        d.u64(v.to_bits());
    }
    for page in world.web.pages() {
        d.u64(page.id as u64);
        d.u64(page.person_id.map_or(u64::MAX, |p| p as u64));
        d.str(&page.text);
    }
    d.finish()
}

/// Content digest of a harvest: per-row consolidated records and page
/// links (via their canonical `Debug` forms, which are deterministic).
pub fn digest_harvest(harvest: &Harvest) -> u64 {
    let mut d = Digest::new();
    for record in &harvest.records {
        d.str(&format!("{record:?}"));
    }
    for links in &harvest.linked {
        d.u64(links.len() as u64);
        for &p in links {
            d.u64(p as u64);
        }
    }
    d.u64(harvest.pages_inspected as u64);
    d.u64(harvest.pages_linked as u64);
    d.finish()
}

/// Digest of an estimate bit-vector (the naive/batch equality witness).
pub fn digest_bits(bits: &[u64]) -> u64 {
    let mut d = Digest::new();
    for &b in bits {
        d.u64(b);
    }
    d.finish()
}

/// Interns a parsed stage name back to the `&'static str` the
/// [`StageTiming`] roster uses. `None` for unknown names — a checkpoint
/// naming a stage this build does not know is corrupt or stale.
pub fn intern_stage_name(name: &str) -> Option<&'static str> {
    crate::stages::TIMING_ROSTER
        .iter()
        .find(|&&n| n == name)
        .copied()
}

/// Interns a robustness-row mode label.
fn intern_mode(mode: &str) -> Option<&'static str> {
    match mode {
        "uniform" => Some("uniform"),
        "targeted" => Some("targeted"),
        _ => None,
    }
}

/// The always-recomputed anchor artifact: a content digest of one cheap
/// upstream stage plus the [`StageTiming`] rows it contributes. Under a
/// checkpoint store timings are zeroed (deterministic mode), so two runs
/// of the same configuration produce `PartialEq`-identical anchors.
#[derive(Debug, Clone, PartialEq)]
pub struct StageAnchor {
    /// Checkpoint stage name.
    pub label: String,
    /// Rows the stage processed.
    pub rows: usize,
    /// Content digest of the recomputed state.
    pub content_hash: u64,
    /// `(stage name, wall_ms, rows)` timing rows for the bench output.
    pub timings: Vec<(String, f64, usize)>,
}

impl Artifact for StageAnchor {
    fn to_payload(&self) -> String {
        let timings: Vec<String> = self
            .timings
            .iter()
            .map(|(name, wall, rows)| {
                format!(
                    "{{\"name\": \"{}\", \"wall_ms\": {wall:?}, \"rows\": {rows}}}",
                    json::escape(name)
                )
            })
            .collect();
        format!(
            "{{\"label\": \"{}\", \"rows\": {}, \"content_hash\": \"{:016x}\", \"timings\": [{}]}}",
            json::escape(&self.label),
            self.rows,
            self.content_hash,
            timings.join(", ")
        )
    }

    fn from_payload(value: &json::Value) -> Option<StageAnchor> {
        let timings = value
            .get("timings")?
            .as_arr()?
            .iter()
            .map(|t| {
                Some((
                    t.get("name")?.as_str()?.to_string(),
                    t.get("wall_ms")?.as_f64()?,
                    t.get("rows")?.as_usize()?,
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(StageAnchor {
            label: value.get("label")?.as_str()?.to_string(),
            rows: value.get("rows")?.as_usize()?,
            content_hash: u64::from_str_radix(value.get("content_hash")?.as_str()?, 16).ok()?,
            timings,
        })
    }
}

/// The estimate-comparison stage's artifact: both timings, the headline
/// speedup and a digest of the (bit-identical) estimate vector.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatesArtifact {
    /// Naive interpreted-path wall clock (ms; 0 in deterministic mode).
    pub naive_ms: f64,
    /// Batch/parallel-path wall clock (ms; 0 in deterministic mode).
    pub batch_ms: f64,
    /// Rows estimated per path.
    pub rows: usize,
    /// `naive_ms / batch_ms` (0 in deterministic mode).
    pub speedup: f64,
    /// Digest of the estimate bit-vector both paths produced.
    pub estimate_hash: u64,
}

impl Artifact for EstimatesArtifact {
    fn to_payload(&self) -> String {
        format!(
            "{{\"naive_ms\": {:?}, \"batch_ms\": {:?}, \"rows\": {}, \"speedup\": {:?}, \"estimate_hash\": \"{:016x}\"}}",
            self.naive_ms, self.batch_ms, self.rows, self.speedup, self.estimate_hash
        )
    }

    fn from_payload(value: &json::Value) -> Option<EstimatesArtifact> {
        Some(EstimatesArtifact {
            naive_ms: value.get("naive_ms")?.as_f64()?,
            batch_ms: value.get("batch_ms")?.as_f64()?,
            rows: value.get("rows")?.as_usize()?,
            speedup: value.get("speedup")?.as_f64()?,
            estimate_hash: u64::from_str_radix(value.get("estimate_hash")?.as_str()?, 16).ok()?,
        })
    }
}

/// The end-to-end sweep stage's artifact (the sweep result itself is
/// not part of the bench output — only its cost).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArtifact {
    /// Wall clock (ms; 0 in deterministic mode).
    pub wall_ms: f64,
    /// Rows swept (records × levels).
    pub rows: usize,
}

impl Artifact for SweepArtifact {
    fn to_payload(&self) -> String {
        format!(
            "{{\"wall_ms\": {:?}, \"rows\": {}}}",
            self.wall_ms, self.rows
        )
    }

    fn from_payload(value: &json::Value) -> Option<SweepArtifact> {
        Some(SweepArtifact {
            wall_ms: value.get("wall_ms")?.as_f64()?,
            rows: value.get("rows")?.as_usize()?,
        })
    }
}

fn composition_payload(comp: &CompositionBench) -> String {
    let rows: Vec<String> = comp
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"releases\": {}, \"disclosure_gain\": {:?}, \"mean_candidates\": {:?}, \"estimate_gain\": {:?}}}",
                r.releases, r.disclosure_gain, r.mean_candidates, r.estimate_gain
            )
        })
        .collect();
    format!(
        "{{\"k\": {}, \"overlap\": {:?}, \"wall_ms\": {:?}, \"rows\": [{}]}}",
        comp.k,
        comp.overlap,
        comp.wall_ms,
        rows.join(", ")
    )
}

fn composition_from_payload(value: &json::Value) -> Option<CompositionBench> {
    let rows = value
        .get("rows")?
        .as_arr()?
        .iter()
        .map(|r| {
            Some(CompositionBenchRow {
                releases: r.get("releases")?.as_usize()?,
                disclosure_gain: r.get("disclosure_gain")?.as_f64()?,
                mean_candidates: r.get("mean_candidates")?.as_f64()?,
                estimate_gain: r.get("estimate_gain")?.as_f64()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    Some(CompositionBench {
        k: value.get("k")?.as_usize()?,
        overlap: value.get("overlap")?.as_f64()?,
        wall_ms: value.get("wall_ms")?.as_f64()?,
        rows,
    })
}

impl Artifact for CompositionBench {
    fn to_payload(&self) -> String {
        composition_payload(self)
    }

    fn from_payload(value: &json::Value) -> Option<CompositionBench> {
        composition_from_payload(value)
    }
}

impl Artifact for DefenseBench {
    fn to_payload(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"policy\": \"{}\", \"releases\": {}, \"residual_gain\": {:?}, \"undefended_gain\": {:?}, \"mean_candidates\": {:?}, \"utility_cost\": {:?}}}",
                    json::escape(&r.policy),
                    r.releases,
                    r.residual_gain,
                    r.undefended_gain,
                    r.mean_candidates,
                    r.utility_cost
                )
            })
            .collect();
        format!(
            "{{\"k\": {}, \"overlap\": {:?}, \"wall_ms\": {:?}, \"rows\": [{}]}}",
            self.k,
            self.overlap,
            self.wall_ms,
            rows.join(", ")
        )
    }

    fn from_payload(value: &json::Value) -> Option<DefenseBench> {
        let rows = value
            .get("rows")?
            .as_arr()?
            .iter()
            .map(|r| {
                Some(DefenseBenchRow {
                    policy: r.get("policy")?.as_str()?.to_string(),
                    releases: r.get("releases")?.as_usize()?,
                    residual_gain: r.get("residual_gain")?.as_f64()?,
                    undefended_gain: r.get("undefended_gain")?.as_f64()?,
                    mean_candidates: r.get("mean_candidates")?.as_f64()?,
                    utility_cost: r.get("utility_cost")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(DefenseBench {
            k: value.get("k")?.as_usize()?,
            overlap: value.get("overlap")?.as_f64()?,
            wall_ms: value.get("wall_ms")?.as_f64()?,
            rows,
        })
    }
}

impl Artifact for EvalBench {
    fn to_payload(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"k\": {}, \"releases\": {}, \"defense\": \"{}\", \"targets\": {}, \"decoys\": {}, \"auc\": {:?}, \"tpr_at_fpr3\": {:?}, \"epsilon\": {:?}}}",
                    r.k,
                    r.releases,
                    json::escape(&r.defense),
                    r.targets,
                    r.decoys,
                    r.auc,
                    r.tpr_at_fpr3,
                    r.epsilon
                )
            })
            .collect();
        format!(
            "{{\"wall_ms\": {:?}, \"rows\": [{}]}}",
            self.wall_ms,
            rows.join(", ")
        )
    }

    fn from_payload(value: &json::Value) -> Option<EvalBench> {
        let rows = value
            .get("rows")?
            .as_arr()?
            .iter()
            .map(|r| {
                Some(EvalCellRow {
                    k: r.get("k")?.as_usize()?,
                    releases: r.get("releases")?.as_usize()?,
                    defense: r.get("defense")?.as_str()?.to_string(),
                    targets: r.get("targets")?.as_usize()?,
                    decoys: r.get("decoys")?.as_usize()?,
                    auc: r.get("auc")?.as_f64()?,
                    tpr_at_fpr3: r.get("tpr_at_fpr3")?.as_f64()?,
                    epsilon: r.get("epsilon")?.as_f64()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(EvalBench {
            wall_ms: value.get("wall_ms")?.as_f64()?,
            rows,
        })
    }
}

impl Artifact for RobustnessBench {
    fn to_payload(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"fault_rate\": {:?}, \"mode\": \"{}\", \"harvest_precision\": {:?}, \"harvest_coverage\": {:?}, \"composition_gain\": {:?}, \"pages_rejected\": {}, \"rows_skipped\": {}, \"fields_imputed\": {}, \"workers_restarted\": {}, \"shards_lost\": {}}}",
                    r.fault_rate,
                    r.mode,
                    r.harvest_precision,
                    r.harvest_coverage,
                    r.composition_gain,
                    r.pages_rejected,
                    r.rows_skipped,
                    r.fields_imputed,
                    r.workers_restarted,
                    r.shards_lost
                )
            })
            .collect();
        format!(
            "{{\"max_rate\": {:?}, \"seed\": {}, \"wall_ms\": {:?}, \"rows\": [{}]}}",
            self.max_rate,
            self.seed,
            self.wall_ms,
            rows.join(", ")
        )
    }

    fn from_payload(value: &json::Value) -> Option<RobustnessBench> {
        let rows = value
            .get("rows")?
            .as_arr()?
            .iter()
            .map(|r| {
                Some(RobustnessBenchRow {
                    fault_rate: r.get("fault_rate")?.as_f64()?,
                    mode: intern_mode(r.get("mode")?.as_str()?)?,
                    harvest_precision: r.get("harvest_precision")?.as_f64()?,
                    harvest_coverage: r.get("harvest_coverage")?.as_f64()?,
                    composition_gain: r.get("composition_gain")?.as_f64()?,
                    pages_rejected: r.get("pages_rejected")?.as_usize()?,
                    rows_skipped: r.get("rows_skipped")?.as_usize()?,
                    fields_imputed: r.get("fields_imputed")?.as_usize()?,
                    workers_restarted: r.get("workers_restarted")?.as_usize()?,
                    shards_lost: r.get("shards_lost")?.as_usize()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        Some(RobustnessBench {
            max_rate: value.get("max_rate")?.as_f64()?,
            seed: value.get("seed")?.as_f64()? as u64,
            wall_ms: value.get("wall_ms")?.as_f64()?,
            rows,
        })
    }
}

impl Artifact for LargeBench {
    fn to_payload(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\": \"{}\", \"wall_ms\": {:?}, \"rows\": {}}}",
                    s.name, s.wall_ms, s.rows
                )
            })
            .collect();
        let composition = match &self.composition {
            Some(comp) => composition_payload(comp),
            None => "null".to_string(),
        };
        format!(
            "{{\"size\": {}, \"cores\": {}, \"speedup_harvest_parallel_vs_single\": {:?}, \"stages\": [{}], \"composition\": {}}}",
            self.size,
            self.cores,
            self.speedup_harvest_parallel_vs_single,
            stages.join(", "),
            composition
        )
    }

    fn from_payload(value: &json::Value) -> Option<LargeBench> {
        let stages = value
            .get("stages")?
            .as_arr()?
            .iter()
            .map(|s| {
                Some(StageTiming {
                    name: intern_stage_name(s.get("name")?.as_str()?)?,
                    wall_ms: s.get("wall_ms")?.as_f64()?,
                    rows: s.get("rows")?.as_usize()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let composition = match value.get("composition")? {
            json::Value::Null => None,
            comp => Some(composition_from_payload(comp)?),
        };
        Some(LargeBench {
            size: value.get("size")?.as_usize()?,
            cores: value.get("cores")?.as_usize()?,
            stages,
            speedup_harvest_parallel_vs_single: value
                .get("speedup_harvest_parallel_vs_single")?
                .as_f64()?,
            composition,
        })
    }
}

impl Artifact for Large100kBench {
    fn to_payload(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{{\"name\": \"{}\", \"wall_ms\": {:?}, \"rows\": {}}}",
                    s.name, s.wall_ms, s.rows
                )
            })
            .collect();
        let shard_rows: Vec<String> = self
            .shard_rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"shard\": {}, \"rows\": {}, \"pages\": {}, \"capped\": {}}}",
                    r.shard, r.rows, r.pages, r.capped
                )
            })
            .collect();
        format!(
            "{{\"size\": {}, \"shards\": {}, \"cores\": {}, \"sample_rows\": {}, \"peak_rss_mb\": {:?}, \
             \"harvest_digest_sharded\": \"{:016x}\", \"harvest_digest_unsharded\": \"{:016x}\", \
             \"mdav_digest_sharded\": \"{:016x}\", \"mdav_digest_unsharded\": \"{:016x}\", \
             \"intersect_digest_sharded\": \"{:016x}\", \"intersect_digest_unsharded\": \"{:016x}\", \
             \"stages\": [{}], \"shard_rows\": [{}]}}",
            self.size,
            self.shards,
            self.cores,
            self.sample_rows,
            self.peak_rss_mb,
            self.harvest_digest_sharded,
            self.harvest_digest_unsharded,
            self.mdav_digest_sharded,
            self.mdav_digest_unsharded,
            self.intersect_digest_sharded,
            self.intersect_digest_unsharded,
            stages.join(", "),
            shard_rows.join(", ")
        )
    }

    fn from_payload(value: &json::Value) -> Option<Large100kBench> {
        let stages = value
            .get("stages")?
            .as_arr()?
            .iter()
            .map(|s| {
                Some(StageTiming {
                    name: intern_stage_name(s.get("name")?.as_str()?)?,
                    wall_ms: s.get("wall_ms")?.as_f64()?,
                    rows: s.get("rows")?.as_usize()?,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let shard_rows = value
            .get("shard_rows")?
            .as_arr()?
            .iter()
            .map(|r| {
                Some(ShardBenchRow {
                    shard: r.get("shard")?.as_usize()?,
                    rows: r.get("rows")?.as_usize()?,
                    pages: r.get("pages")?.as_usize()?,
                    // Checkpoints written before the cap-saturation fix
                    // lack the field; those runs were all well below the
                    // 64-shard ceiling, so absent means uncapped.
                    capped: r.get("capped").and_then(|v| v.as_bool()).unwrap_or(false),
                })
            })
            .collect::<Option<Vec<_>>>()?;
        let hex =
            |key: &str| -> Option<u64> { u64::from_str_radix(value.get(key)?.as_str()?, 16).ok() };
        Some(Large100kBench {
            size: value.get("size")?.as_usize()?,
            shards: value.get("shards")?.as_usize()?,
            cores: value.get("cores")?.as_usize()?,
            sample_rows: value.get("sample_rows")?.as_usize()?,
            peak_rss_mb: value.get("peak_rss_mb")?.as_f64()?,
            stages,
            shard_rows,
            harvest_digest_sharded: hex("harvest_digest_sharded")?,
            harvest_digest_unsharded: hex("harvest_digest_unsharded")?,
            mdav_digest_sharded: hex("mdav_digest_sharded")?,
            mdav_digest_unsharded: hex("mdav_digest_unsharded")?,
            intersect_digest_sharded: hex("intersect_digest_sharded")?,
            intersect_digest_unsharded: hex("intersect_digest_unsharded")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Artifact>(artifact: &T) -> T {
        let payload = artifact.to_payload();
        let value = json::parse(&payload).expect("payload parses");
        T::from_payload(&value).expect("payload decodes")
    }

    #[test]
    fn stage_anchor_round_trips() {
        let anchor = StageAnchor {
            label: "mdav".to_string(),
            rows: 120,
            content_hash: 0xdead_beef_0123_4567,
            timings: vec![
                ("mdav_k5".to_string(), 1.25, 120),
                ("anonymize_all_levels".to_string(), 0.1 + 0.2, 480),
            ],
        };
        let back = round_trip(&anchor);
        assert_eq!(back, anchor);
        assert_eq!(back.timings[1].1.to_bits(), (0.1f64 + 0.2).to_bits());
    }

    #[test]
    fn estimates_and_sweep_round_trip() {
        let est = EstimatesArtifact {
            naive_ms: 12.345678901234,
            batch_ms: 2.3,
            rows: 480,
            speedup: 5.367251,
            estimate_hash: 0xffff_ffff_ffff_fffe,
        };
        assert_eq!(round_trip(&est), est);
        let sweep = SweepArtifact {
            wall_ms: 0.0,
            rows: 480,
        };
        assert_eq!(round_trip(&sweep), sweep);
    }

    #[test]
    fn bench_blocks_round_trip() {
        let comp = CompositionBench {
            k: 5,
            overlap: 0.5,
            wall_ms: 3.25,
            rows: vec![CompositionBenchRow {
                releases: 2,
                disclosure_gain: 8377.8,
                mean_candidates: 2.13,
                estimate_gain: 1.88,
            }],
        };
        let back = round_trip(&comp);
        assert_eq!(back.rows[0].disclosure_gain.to_bits(), 8377.8f64.to_bits());

        let defense = DefenseBench {
            k: 5,
            overlap: 0.5,
            wall_ms: 1.0,
            rows: vec![DefenseBenchRow {
                policy: "calibrated_widen_1.5".to_string(),
                releases: 3,
                residual_gain: -12.5,
                undefended_gain: 9000.0,
                mean_candidates: 6.25,
                utility_cost: 120.0,
            }],
        };
        let back = round_trip(&defense);
        assert_eq!(back.rows[0].policy, "calibrated_widen_1.5");

        let eval = EvalBench {
            wall_ms: 2.5,
            rows: vec![
                EvalCellRow {
                    k: 2,
                    releases: 3,
                    defense: "none".to_string(),
                    targets: 60,
                    decoys: 60,
                    auc: 0.9875,
                    tpr_at_fpr3: 0.8166,
                    epsilon: 4.094_344_562_222_1,
                },
                EvalCellRow {
                    k: 5,
                    releases: 3,
                    defense: "coordinated_seeds".to_string(),
                    targets: 60,
                    decoys: 60,
                    auc: 0.5,
                    tpr_at_fpr3: 0.0,
                    epsilon: 0.008_230_486,
                },
            ],
        };
        let back = round_trip(&eval);
        assert_eq!(back, eval);
        assert_eq!(back.rows[1].defense, "coordinated_seeds");
        assert_eq!(
            back.rows[0].epsilon.to_bits(),
            eval.rows[0].epsilon.to_bits()
        );

        let rob = RobustnessBench {
            max_rate: 0.1,
            seed: 2015 ^ 0xFA17,
            wall_ms: 5.0,
            rows: vec![RobustnessBenchRow {
                fault_rate: 0.1,
                mode: "targeted",
                harvest_precision: 0.9321,
                harvest_coverage: 0.85,
                composition_gain: 8123.4,
                pages_rejected: 3,
                rows_skipped: 2,
                fields_imputed: 1,
                workers_restarted: 0,
                shards_lost: 2,
            }],
        };
        let back = round_trip(&rob);
        assert_eq!(back.rows[0].mode, "targeted");
        assert_eq!(back.rows[0].shards_lost, 2);

        let large = LargeBench {
            size: 10_000,
            cores: 8,
            stages: vec![StageTiming {
                name: "mdav_k5_large",
                wall_ms: 250.5,
                rows: 10_000,
            }],
            speedup_harvest_parallel_vs_single: 3.7,
            composition: Some(comp),
        };
        let back = round_trip(&large);
        assert_eq!(back.stages[0].name, "mdav_k5_large");
        assert!(back.composition.is_some());

        let sharded = Large100kBench {
            size: 100_000,
            shards: 8,
            cores: 1,
            sample_rows: 2048,
            peak_rss_mb: 512.25,
            stages: vec![StageTiming {
                name: "harvest_sharded_100k",
                wall_ms: 12_500.75,
                rows: 100_000,
            }],
            shard_rows: vec![ShardBenchRow {
                shard: 0,
                rows: 12_500,
                pages: 11_000,
                capped: true,
            }],
            harvest_digest_sharded: 0x0123_4567_89ab_cdef,
            harvest_digest_unsharded: 0x0123_4567_89ab_cdef,
            mdav_digest_sharded: u64::MAX,
            mdav_digest_unsharded: u64::MAX,
            intersect_digest_sharded: 1,
            intersect_digest_unsharded: 1,
        };
        let back = round_trip(&sharded);
        assert_eq!(back, sharded);
        assert_eq!(back.harvest_digest_sharded, 0x0123_4567_89ab_cdef);

        // Checkpoints written before the cap-saturation field still
        // parse, defaulting to uncapped.
        let legacy = sharded.to_payload().replace(", \"capped\": true", "");
        let value = json::parse(&legacy).unwrap();
        let back = Large100kBench::from_payload(&value).expect("legacy payload decodes");
        assert!(!back.shard_rows[0].capped);
    }

    #[test]
    fn unknown_stage_or_mode_rejects_the_payload() {
        let large = "{\"size\": 10, \"cores\": 1, \"speedup_harvest_parallel_vs_single\": 1.0, \
                     \"stages\": [{\"name\": \"not_a_stage\", \"wall_ms\": 1.0, \"rows\": 10}], \
                     \"composition\": null}";
        let value = json::parse(large).unwrap();
        assert!(LargeBench::from_payload(&value).is_none());

        let rob =
            "{\"max_rate\": 0.1, \"seed\": 1, \"wall_ms\": 1.0, \"rows\": [{\"fault_rate\": 0.1, \
                   \"mode\": \"sideways\", \"harvest_precision\": 1.0, \"harvest_coverage\": 1.0, \
                   \"composition_gain\": 1.0, \"pages_rejected\": 0, \"rows_skipped\": 0, \
                   \"fields_imputed\": 0, \"workers_restarted\": 0, \"shards_lost\": 0}]}";
        let value = json::parse(rob).unwrap();
        assert!(RobustnessBench::from_payload(&value).is_none());
    }

    #[test]
    fn digests_separate_fields() {
        let mut a = Digest::new();
        a.str("ab");
        a.str("c");
        let mut b = Digest::new();
        b.str("a");
        b.str("bc");
        assert_ne!(
            a.finish(),
            b.finish(),
            "length prefixes must separate fields"
        );
        assert_eq!(digest_bits(&[1, 2, 3]), digest_bits(&[1, 2, 3]));
        assert_ne!(digest_bits(&[1, 2, 3]), digest_bits(&[1, 2, 4]));
    }
}
