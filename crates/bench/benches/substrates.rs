//! Micro-benches of the substrate algorithms: anonymizers, fuzzy
//! inference, record linkage and the search engine. These are the pieces
//! the figure pipelines spend their time in; tracking them separately
//! makes regressions attributable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fred_anon::{build_release, Anonymizer, Mdav, Mondrian, QiStyle};
use fred_bench::{faculty_world, WorldConfig};
use fred_fuzzy::{FuzzyEngine, LinguisticVariable};
use fred_linkage::{jaro_winkler, levenshtein, Linker, NameNormalizer};
use std::collections::HashMap;
use std::hint::black_box;

fn bench_anonymizers(c: &mut Criterion) {
    let mut group = c.benchmark_group("anonymizers");
    for &n in &[100usize, 400] {
        let world = faculty_world(&WorldConfig {
            size: n,
            ..WorldConfig::default()
        });
        group.bench_with_input(BenchmarkId::new("mdav_k5", n), &world.table, |b, t| {
            b.iter(|| black_box(Mdav::new().partition(t, 5).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("mondrian_k5", n), &world.table, |b, t| {
            b.iter(|| black_box(Mondrian::new().partition(t, 5).unwrap()))
        });
        let partition = Mdav::new().partition(&world.table, 5).unwrap();
        group.bench_with_input(
            BenchmarkId::new("build_release_k5", n),
            &(&world.table, &partition),
            |b, (t, p)| b.iter(|| black_box(build_release(t, p, 5, QiStyle::Range).unwrap())),
        );
    }
    group.finish();
}

fn bench_fuzzy(c: &mut Criterion) {
    let service = LinguisticVariable::new("service", 0.0, 10.0)
        .unwrap()
        .with_uniform_terms(&["poor", "ok", "good", "great", "superb"])
        .unwrap();
    let food = LinguisticVariable::new("food", 0.0, 10.0)
        .unwrap()
        .with_uniform_terms(&["bad", "meh", "fine", "tasty", "divine"])
        .unwrap();
    let tip = LinguisticVariable::new("tip", 0.0, 30.0)
        .unwrap()
        .with_uniform_terms(&["t1", "t2", "t3", "t4", "t5"])
        .unwrap();
    let mut engine = FuzzyEngine::new(vec![service, food], tip);
    for (vin, vout) in [
        ("poor", "t1"),
        ("ok", "t2"),
        ("good", "t3"),
        ("great", "t4"),
        ("superb", "t5"),
    ] {
        engine
            .add_rules_text(&format!("IF service IS {vin} THEN tip IS {vout}"))
            .unwrap();
    }
    for (vin, vout) in [
        ("bad", "t1"),
        ("meh", "t2"),
        ("fine", "t3"),
        ("tasty", "t4"),
        ("divine", "t5"),
    ] {
        engine
            .add_rules_text(&format!("IF food IS {vin} THEN tip IS {vout}"))
            .unwrap();
    }
    let inputs: HashMap<&str, f64> = [("service", 6.5), ("food", 3.2)].into_iter().collect();
    c.bench_function("fuzzy/mamdani_eval_2in_10rules", |b| {
        b.iter(|| black_box(engine.evaluate(&inputs).unwrap()))
    });
    // The compiled fast path over the same rulebase: dense indices,
    // precomputed consequent curves, reusable scratch.
    let compiled = engine.compile().unwrap();
    let mut scratch = compiled.scratch();
    c.bench_function("fuzzy/compiled_eval_2in_10rules", |b| {
        b.iter(|| black_box(compiled.evaluate_with(&[6.5, 3.2], &mut scratch).unwrap()))
    });
}

/// The measured fusion hot path: naive per-row interpreted estimates vs
/// the compiled batch/parallel pipeline, over the same release and
/// harvested auxiliary records.
fn bench_fusion_paths(c: &mut Criterion) {
    use fred_attack::{
        harvest_auxiliary, FusionSystem, FuzzyFusion, FuzzyFusionConfig, HarvestConfig,
    };
    let world = faculty_world(&WorldConfig {
        size: 120,
        ..WorldConfig::default()
    });
    let partition = Mdav::new().partition(&world.table, 5).unwrap();
    let release = build_release(&world.table, &partition, 5, QiStyle::Range).unwrap();
    let harvest = harvest_auxiliary(&release.table, &world.web, &HarvestConfig::default()).unwrap();
    let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).unwrap();
    c.bench_function("fusion/estimate_naive_per_row_n120", |b| {
        b.iter(|| {
            black_box(
                fusion
                    .estimate_interpreted(&release.table, &harvest.records)
                    .unwrap(),
            )
        })
    });
    c.bench_function("fusion/estimate_batch_parallel_n120", |b| {
        b.iter(|| black_box(fusion.estimate(&release.table, &harvest.records).unwrap()))
    });
}

fn bench_linkage(c: &mut Criterion) {
    c.bench_function("linkage/levenshtein_10x10", |b| {
        b.iter(|| black_box(levenshtein("washington", "wushington")))
    });
    c.bench_function("linkage/jaro_winkler", |b| {
        b.iter(|| black_box(jaro_winkler("srivatsava ranjit", "ranjit srivatsava")))
    });
    let normalizer = NameNormalizer::new();
    c.bench_function("linkage/normalize_name", |b| {
        b.iter(|| black_box(normalizer.canonical("Dr. Robert K. Smith, Jr.")))
    });
    let world = faculty_world(&WorldConfig {
        size: 100,
        ..WorldConfig::default()
    });
    let names: Vec<String> = world.people.iter().map(|p| p.name.clone()).collect();
    let shuffled: Vec<String> = names.iter().rev().cloned().collect();
    c.bench_function("linkage/link_100x100", |b| {
        b.iter(|| black_box(Linker::new().link(&names, &shuffled)))
    });
}

fn bench_search(c: &mut Criterion) {
    let world = faculty_world(&WorldConfig {
        size: 200,
        ..WorldConfig::default()
    });
    c.bench_function("web/search_name", |b| {
        b.iter(|| black_box(world.web.search(&world.people[17].name, 8)))
    });
}

criterion_group! {
    name = substrates;
    config = Criterion::default().sample_size(20);
    targets = bench_anonymizers, bench_fuzzy, bench_fusion_paths, bench_linkage, bench_search
}
criterion_main!(substrates);
