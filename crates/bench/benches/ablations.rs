//! Benches for the ablation experiments (DESIGN.md §5): the design-choice
//! comparisons that extend the paper's evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use fred_bench::ablations::{
    anonymizer_ablation, coverage_ablation, fusion_ablation, noise_ablation,
};
use fred_bench::{faculty_world, WorldConfig};
use std::hint::black_box;

fn small() -> WorldConfig {
    WorldConfig {
        size: 60,
        ..WorldConfig::default()
    }
}

fn bench_ablation_a1(c: &mut Criterion) {
    let world = faculty_world(&small());
    c.bench_function("ablation_a1/anonymizer_swap_k3_6", |b| {
        b.iter(|| black_box(anonymizer_ablation(&world, 3, 6)))
    });
}

fn bench_ablation_a2(c: &mut Criterion) {
    let world = faculty_world(&small());
    c.bench_function("ablation_a2/fusion_swap_k3_5", |b| {
        b.iter(|| black_box(fusion_ablation(&world, 3, 5)))
    });
}

fn bench_ablation_a3(c: &mut Criterion) {
    let cfg = small();
    c.bench_function("ablation_a3/name_noise_two_points", |b| {
        b.iter(|| black_box(noise_ablation(&cfg, 4, &[0.0, 2.0])))
    });
}

fn bench_ablation_a4(c: &mut Criterion) {
    let cfg = small();
    c.bench_function("ablation_a4/coverage_two_points", |b| {
        b.iter(|| black_box(coverage_ablation(&cfg, 4, &[0.3, 0.9])))
    });
}

criterion_group! {
    name = ablation_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablation_a1, bench_ablation_a2, bench_ablation_a3, bench_ablation_a4
}
criterion_main!(ablation_benches);
