//! Criterion benches regenerating every figure of the paper's evaluation.
//!
//! Each bench times the exact code path the `repro` binary uses to print
//! that figure, at a reduced world size so `cargo bench` completes in
//! minutes. The printed series themselves come from `repro`; these benches
//! measure the cost of regenerating them and guard against performance
//! regressions in the pipeline.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fred_bench::figures::{figure8, figure_sweep_with_range};
use fred_bench::tables::{figure2_demo, render_all, table_iii};
use fred_bench::{faculty_world, World, WorldConfig};
use std::hint::black_box;

fn bench_world() -> World {
    faculty_world(&WorldConfig {
        size: 60,
        ..WorldConfig::default()
    })
}

/// Tables I-IV: the running example (anonymize Table II, render all).
fn bench_tables(c: &mut Criterion) {
    c.bench_function("tables_i_to_iv/render", |b| {
        b.iter(|| black_box(render_all()))
    });
    c.bench_function("tables_i_to_iv/anonymize_table_ii", |b| {
        b.iter(|| black_box(table_iii()))
    });
}

/// Figure 2: one fused estimate through the full fuzzy system.
fn bench_figure2(c: &mut Criterion) {
    c.bench_function("figure2/fuzzy_fusion_walkthrough", |b| {
        b.iter(|| black_box(figure2_demo()))
    });
}

/// Figures 4-7 share one sweep; benched together and per-figure-series.
fn bench_figures_4_to_7(c: &mut Criterion) {
    let world = bench_world();
    c.bench_function("figures_4_to_7/sweep_k2_8_n60", |b| {
        b.iter(|| black_box(figure_sweep_with_range(&world, 2, 8)))
    });
    let report = figure_sweep_with_range(&world, 2, 8);
    c.bench_function("figures_4_to_7/series_extraction", |b| {
        b.iter_batched(
            || report.clone(),
            |r| {
                black_box((
                    r.before_series(),
                    r.after_series(),
                    r.gain_series(),
                    r.utility_series(),
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

/// Figure 8: threshold derivation + Algorithm 1 over the window.
fn bench_figure8(c: &mut Criterion) {
    let world = bench_world();
    c.bench_function("figure8/fred_algorithm1_n60", |b| {
        b.iter(|| black_box(figure8(&world, (4, 8))))
    });
}

criterion_group! {
    name = figures;
    config = Criterion::default().sample_size(10);
    targets = bench_tables, bench_figure2, bench_figures_4_to_7, bench_figure8
}
criterion_main!(figures);
