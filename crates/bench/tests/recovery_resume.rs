//! End-to-end kill/resume guarantees for the checkpointed sweep.
//!
//! The headline property this suite pins: a `--quick` sweep killed at
//! *any* stage boundary and resumed produces a final JSON **bit-identical**
//! to the uninterrupted run with the same seed. Checkpointed runs zero
//! every wall-clock at source (deterministic mode), so the whole output
//! is a pure function of the config — byte equality is the assertion,
//! not an approximation of it.
//!
//! Four layers:
//!
//! * an in-process boundary matrix — every prefix of the committed
//!   checkpoint roster simulates a kill right after that stage's commit;
//! * one real subprocess kill via `FRED_HALT_AFTER` (the repro binary
//!   exits with [`fred_recover::HALT_EXIT_CODE`] right after the named
//!   stage commits, exactly where CI's kill-and-resume smoke aims);
//! * retry-trace determinism — the same `(seed, transient rate, policy)`
//!   must reproduce the identical retry ledger and final JSON, with a
//!   trace that actually contains retries;
//! * adversarial checkpoint corruption — truncated and bit-flipped
//!   artifacts are quarantined, recomputed, and the final JSON still
//!   matches the clean run byte-for-byte.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

use fred_bench::perf::{quick_bench, QuickBench, QuickBenchOptions};
use fred_bench::world::WorldConfig;
use fred_composition::DefensePolicy;

/// The committed checkpoint roster, in pipeline order, for the options
/// used by the boundary matrix (compose + defend + faults + large all
/// on, so every stage the runner knows is exercised).
const ROSTER: &[&str] = &[
    "world_build",
    "mdav",
    "harvest",
    "estimates",
    "sweep",
    "composition",
    "defense",
    "robustness",
    "large",
];

/// Index of the first roster stage satisfied via `StageRunner::run`
/// (the three anchors before it recompute-and-verify on resume, so they
/// never flip the `resumed` flag by themselves).
const FIRST_LOADABLE: usize = 3;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fred_resume_{}_{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn config() -> WorldConfig {
    WorldConfig {
        size: 30,
        ..WorldConfig::default()
    }
}

fn options(dir: &Path, resume: bool) -> QuickBenchOptions {
    QuickBenchOptions {
        large_size: Some(40),
        compose: true,
        defend: Some(vec![DefensePolicy::CoordinatedSeeds]),
        faults: Some(0.1),
        checkpoint_dir: Some(dir.to_path_buf()),
        resume,
        ..QuickBenchOptions::default()
    }
}

fn run(dir: &Path, resume: bool) -> QuickBench {
    quick_bench(&config(), 2, 4, 1, &options(dir, resume))
}

#[test]
fn resume_from_every_stage_boundary_is_bit_identical() {
    let ref_dir = temp_dir("boundary_ref");
    let reference = run(&ref_dir, false).to_json();
    // The roster above must be the roster the runner actually committed —
    // a silent rename would turn every boundary below into the i = 0 case.
    for stage in ROSTER {
        assert!(
            ref_dir.join(format!("{stage}.ckpt.json")).exists(),
            "reference run committed no `{stage}` checkpoint"
        );
    }
    // i committed stages survive the kill; the resume recomputes the rest.
    for i in 0..=ROSTER.len() {
        let dir = temp_dir(&format!("boundary_{i}"));
        for stage in &ROSTER[..i] {
            let name = format!("{stage}.ckpt.json");
            fs::copy(ref_dir.join(&name), dir.join(&name)).expect("copy checkpoint");
        }
        let bench = run(&dir, true);
        assert_eq!(
            bench.to_json(),
            reference,
            "resume after {i} committed stage(s) diverged from the uninterrupted run"
        );
        let rec = bench
            .recovery
            .expect("checkpointed run emits the recovery ledger");
        assert_eq!(rec.escaped_panics, 0);
        assert_eq!(rec.quarantined_total, 0, "clean checkpoints quarantined");
        if i > FIRST_LOADABLE {
            assert!(rec.resumed, "no checkpoint loaded after boundary {i}");
        }
    }
}

#[test]
fn halted_subprocess_resumes_to_the_uninterrupted_output() {
    let exe = env!("CARGO_BIN_EXE_repro");
    let args = |dir: &Path, out: &Path| {
        vec![
            "--quick".to_owned(),
            "--size".to_owned(),
            "40".to_owned(),
            "--seed".to_owned(),
            "77".to_owned(),
            "--large-size".to_owned(),
            "0".to_owned(),
            "--faults".to_owned(),
            "0.2".to_owned(),
            "--checkpoint-dir".to_owned(),
            dir.display().to_string(),
            "--out".to_owned(),
            out.display().to_string(),
        ]
    };

    // The uninterrupted reference, in its own store.
    let ref_dir = temp_dir("halt_ref");
    let ref_out = ref_dir.join("reference.json");
    let status = Command::new(exe)
        .args(args(&ref_dir, &ref_out))
        .status()
        .expect("spawn repro");
    assert!(status.success(), "reference run failed: {status:?}");

    // Kill right after the harvest anchor commits: the process must die
    // with the halt code, holding checkpoints up to harvest and nothing
    // downstream — no final JSON either.
    let dir = temp_dir("halt");
    let out = dir.join("resumed.json");
    let status = Command::new(exe)
        .args(args(&dir, &out))
        .env("FRED_HALT_AFTER", "harvest")
        .status()
        .expect("spawn repro");
    assert_eq!(
        status.code(),
        Some(fred_recover::HALT_EXIT_CODE),
        "halted run must exit with the halt code"
    );
    assert!(dir.join("harvest.ckpt.json").exists());
    assert!(!dir.join("estimates.ckpt.json").exists());
    assert!(
        !out.exists(),
        "halted run must not have written the final JSON"
    );

    // Resume completes and lands byte-identical to the reference.
    let status = Command::new(exe)
        .args(args(&dir, &out))
        .arg("--resume")
        .status()
        .expect("spawn repro");
    assert!(status.success(), "resume failed: {status:?}");
    let resumed = fs::read_to_string(&out).expect("resumed output");
    let reference = fs::read_to_string(&ref_out).expect("reference output");
    assert_eq!(
        resumed, reference,
        "kill + resume diverged from the uninterrupted run"
    );
}

#[test]
fn retry_traces_are_deterministic_and_actually_retry() {
    // Scan a few seeds for a trace where at least one transient fires —
    // at a 0.1 per-attempt rate over six stages most seeds qualify, and
    // a trace with zero retries would vacuously pass the replay check.
    // Each run gets its own fresh store: byte-identity of the full JSON
    // is only promised in deterministic (checkpointed) mode, where every
    // wall-clock is zeroed at source.
    let base = WorldConfig {
        size: 30,
        ..WorldConfig::default()
    };
    let run_fresh = |seed: u64, tag: &str| {
        let dir = temp_dir(&format!("retry_{seed}_{tag}"));
        let config = WorldConfig {
            seed,
            ..base.clone()
        };
        let options = QuickBenchOptions {
            faults: Some(0.1),
            checkpoint_dir: Some(dir),
            ..QuickBenchOptions::default()
        };
        quick_bench(&config, 2, 4, 1, &options)
    };
    let mut checked = false;
    for seed in 0..16 {
        let first = run_fresh(seed, "a");
        let rec = first
            .recovery
            .as_ref()
            .expect("faulted run emits the ledger");
        if rec.retries_total == 0 {
            continue;
        }
        // Same (seed, transient rate, policy): the retry trace and the
        // whole JSON must replay identically.
        let second = run_fresh(seed, "b");
        assert_eq!(
            second.recovery, first.recovery,
            "retry trace drifted at seed {seed}"
        );
        assert_eq!(
            second.to_json(),
            first.to_json(),
            "faulted JSON drifted at seed {seed}"
        );
        assert_eq!(rec.escaped_panics, 0);
        assert!(rec.rows.iter().any(|r| r.retries > 0));
        checked = true;
        break;
    }
    assert!(
        checked,
        "no seed in 0..16 produced a retrying trace at rate 0.1"
    );
}

#[test]
fn corrupted_checkpoints_are_quarantined_and_resume_stays_bit_identical() {
    let dir = temp_dir("corrupt");
    let reference = run(&dir, false).to_json();

    // Truncate one committed artifact (torn write) ...
    let torn = dir.join("estimates.ckpt.json");
    let text = fs::read_to_string(&torn).expect("read checkpoint");
    fs::write(&torn, &text[..text.len() / 2]).expect("truncate checkpoint");
    // ... and flip one bit inside another's payload (at-rest corruption);
    // the checksum only covers the payload bytes, so the flip must land
    // there to model silent data rot rather than a broken envelope.
    let flipped = dir.join("sweep.ckpt.json");
    let text = fs::read_to_string(&flipped).expect("read checkpoint");
    let mut bytes = text.into_bytes();
    let at = String::from_utf8(bytes.clone())
        .expect("utf8")
        .find("\"payload\":")
        .expect("payload marker")
        + "\"payload\":".len()
        + 4;
    bytes[at] ^= 0x01;
    fs::write(&flipped, &bytes).expect("write corrupted checkpoint");

    let bench = run(&dir, true);
    assert_eq!(
        bench.to_json(),
        reference,
        "resume over corrupted checkpoints diverged from the clean run"
    );
    let rec = bench.recovery.expect("recovery ledger emitted");
    assert!(
        rec.quarantined_total >= 2,
        "both corrupted artifacts must be quarantined, got {}",
        rec.quarantined_total
    );
    assert_eq!(rec.escaped_panics, 0);
    let quarantine = dir.join("quarantine");
    assert!(
        quarantine
            .read_dir()
            .map(|d| d.count() >= 2)
            .unwrap_or(false),
        "quarantine dir must hold the corrupted artifacts"
    );
}
