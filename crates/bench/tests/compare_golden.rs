//! Golden-file tests for the perf-smoke gate: two committed
//! `BENCH_sweep.json` snapshots — one clean, one poisoned with a NaN
//! composition row, a missing `composition_defense` block, a
//! robustness block whose zero-fault row both survived defects and
//! drifted, a profile block whose `mdav` stage row vanished and whose
//! `faults.fields_imputed` counter disagrees with the robustness
//! ledger, an eval block with a NaN ε row, an AUC above 1, and a
//! drifted undefended cell, a shard row misreporting cap saturation,
//! and a `harvest.name_ms` histogram that disagrees with the
//! `harvest.names` counter — pin [`fred_bench::compare`] end to end
//! against the *written* baseline format, not just against JSON the
//! tests synthesize themselves. The parser has twice grown silent-skip
//! bugs against real files (PR 4); these fixtures make every
//! documented fire/stay-silent decision a committed artifact.

use fred_bench::compare::{compare_baselines, parse_baseline};

const CLEAN: &str = include_str!("fixtures/bench_clean.json");
const POISONED: &str = include_str!("fixtures/bench_poisoned.json");

#[test]
fn clean_fixture_parses_every_documented_block() {
    let b = parse_baseline(CLEAN);
    // Stages from both worlds share one namespace; the defense stage is
    // a first-class timed stage.
    for stage in [
        "world_build",
        "mdav_k5",
        "composition_sweep",
        "composition_defense",
        "eval_sweep",
        "robustness_sweep",
        "world_build_large",
        "harvest_sequential_large",
        "composition_large",
        "world_build_100k",
        "mdav_hier_100k",
        "harvest_sharded_100k",
        "intersect_sharded_100k",
        "equivalence_100k",
    ] {
        assert!(
            b.stage_wall_ms.contains_key(stage),
            "stage `{stage}` missing from the parsed clean fixture"
        );
    }
    assert_eq!(b.cores, Some(1));
    assert_eq!(b.large_cores, Some(1));
    assert_eq!(b.speedup_batch_vs_naive, Some(5.38));
    // The sampled reference records its sample size, not the world size.
    assert_eq!(
        b.stage_wall_ms.get("harvest_sequential_large"),
        Some(&92.126)
    );
    // Both composition series, attributed to their own blocks.
    let releases = |rows: &[(usize, f64, f64)]| rows.iter().map(|r| r.0).collect::<Vec<_>>();
    assert_eq!(releases(&b.composition), vec![1, 2, 3]);
    assert_eq!(releases(&b.composition_large), vec![1, 2, 3]);
    assert_eq!(b.composition[2], (3, 8377.8, 1.88));
    assert_eq!(b.composition_large[2], (3, 2306.2, 1.50));
    // The defense block: nine rows (three policies x three Rs), its own k.
    assert_eq!(b.defense_k, Some(5));
    assert_eq!(b.composition_defense.len(), 9);
    let coordinated: Vec<_> = b
        .composition_defense
        .iter()
        .filter(|r| r.policy == "coordinated_seeds")
        .collect();
    assert_eq!(coordinated.len(), 3);
    assert_eq!(coordinated[2].releases, 3);
    assert_eq!(coordinated[2].residual_gain, -4148.1);
    assert_eq!(coordinated[2].undefended_gain, 8377.8);
    let widen: Vec<_> = b
        .composition_defense
        .iter()
        .filter(|r| r.policy == "calibrated_widen_k5")
        .collect();
    assert_eq!(widen.len(), 3);
    assert!(widen.iter().all(|r| r.mean_candidates >= 5.0));
    // The robustness block: zero-fault reference row first, defect-free,
    // then the two faulted rows with their skip-and-count totals pooled
    // into `defects`.
    assert_eq!(b.robustness.len(), 3);
    assert_eq!(b.robustness[0].fault_rate, 0.0);
    assert_eq!(b.robustness[0].harvest_precision, 1.0);
    assert_eq!(b.robustness[0].composition_gain, 8377.8);
    assert_eq!(b.robustness[0].defects, 0);
    assert_eq!(b.robustness[1].defects, 14 + 5 + 9 + 6 + 2);
    assert_eq!(b.robustness[1].shards_lost, 2);
    assert_eq!(b.robustness[2].fault_rate, 0.1);
    assert_eq!(b.robustness[2].defects, 31 + 11 + 17 + 13 + 4);
    assert_eq!(b.robustness[2].shards_lost, 4);
    // The sharded-scale block: shard accounting dense and covering, the
    // three digest pairs agreeing, and the peak-rss witness.
    let big = b
        .large_100k
        .as_ref()
        .expect("clean fixture carries the sharded block");
    assert_eq!(big.size, 100_000);
    assert_eq!(big.shards, 8);
    assert_eq!(big.sample_rows, 2048);
    assert_eq!(big.peak_rss_mb, 612.4);
    assert_eq!(big.shard_rows.len(), 8);
    assert_eq!(big.shard_rows.iter().map(|r| r.1).sum::<usize>(), 100_000);
    assert_eq!(big.digests.len(), 6);
    assert_eq!(
        big.digests.get("harvest_sharded"),
        big.digests.get("harvest_unsharded")
    );
    assert_eq!(
        big.digests.get("intersect_sharded"),
        Some(&"e6b20a9f7d1c5438".to_owned())
    );
    // Every shard row carries the cap-saturation flag, false below the
    // 64-shard derivation ceiling.
    assert!(big.shard_rows.iter().all(|r| !r.3));
    // The hypothesis-testing eval block: four undefended cells, one per
    // deployed defense at the stage (k, R), every metric finite.
    assert_eq!(b.eval.len(), 7);
    assert_eq!(b.eval.iter().filter(|r| r.defense == "none").count(), 4);
    let top = b
        .eval
        .iter()
        .find(|r| r.k == 5 && r.releases == 3 && r.defense == "none")
        .expect("undefended stage cell present");
    assert_eq!((top.targets, top.decoys), (60, 51));
    assert_eq!(
        (top.auc, top.tpr_at_fpr3, top.epsilon),
        (0.9984, 0.9167, 4.5499)
    );
    assert!(b
        .eval
        .iter()
        .any(|r| r.defense == "coordinated_seeds" && r.epsilon == 1.6917));
    // The profile block: header, overhead, one self-time row per runner
    // stage, and the counter rows the reconciliation gate reads.
    let prof = b.profile.as_ref().expect("clean fixture carries a profile");
    assert!(!prof.deterministic);
    assert_eq!(prof.spans_total, 11);
    assert_eq!(prof.span_tree_digest, "3f94c1d2a07be586");
    assert_eq!(prof.overhead_probe_calls, 1_000_000);
    assert_eq!(prof.overhead_pct_of_large, 0.352);
    assert_eq!(prof.stages.len(), 10);
    assert!(prof.stages.iter().any(|s| s.stage == "mdav"));
    assert!(prof.stages.iter().any(|s| s.stage == "eval"));
    assert_eq!(prof.counters.get("faults.pages_rejected"), Some(&45));
    assert_eq!(prof.counters.get("faults.workers_restarted"), Some(&19));
    assert_eq!(prof.counters.get("faults.shards_lost"), Some(&6));
    // The latency histogram the obs-reconciliation gate reads, agreeing
    // with its counter to the unit.
    assert_eq!(prof.counters.get("harvest.names"), Some(&226));
    assert_eq!(prof.hists.get("harvest.name_ms"), Some(&(226, 7.150)));
    assert!(b.malformed_rows.is_empty(), "{:?}", b.malformed_rows);
}

#[test]
fn clean_self_diff_stays_silent_and_notes_every_series() {
    let report = compare_baselines(CLEAN, CLEAN);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    for expected in [
        "speedup_batch_vs_naive",
        "composition disclosure gain at R=3",
        "composition_large disclosure gain at R=3",
        "defense `coordinated_seeds`",
        "defense `overlap_cap_0.90`",
        "defense `calibrated_widen_k5`",
        "robustness: precision",
        "profile: 11 spans",
        "large_100k: 100000 rows across 8 shard(s)",
        "eval: 7 cell(s)",
    ] {
        assert!(
            report.notes.iter().any(|n| n.contains(expected)),
            "no note mentioning {expected:?} in {:?}",
            report.notes
        );
    }
}

#[test]
fn poisoned_fresh_run_fires_exactly_the_documented_gates() {
    let b = parse_baseline(POISONED);
    // All three NaN rows (composition, robustness, eval ε) must surface
    // as malformed, not silently drop.
    assert_eq!(b.malformed_rows.len(), 3, "{:?}", b.malformed_rows);
    assert!(b.malformed_rows.iter().all(|l| l.contains("NaN")));
    // The NaN ε row drops out of the parsed eval series; the drifted
    // undefended cell and the impossible defended cell stay in.
    assert_eq!(b.eval.len(), 2);
    // The defense block is gone entirely.
    assert!(b.composition_defense.is_empty());
    assert_eq!(b.defense_k, None);
    // The NaN robustness row drops out of the parsed series; the other
    // two — the dirty zero row and the collapsed 10% row — stay in.
    assert_eq!(b.robustness.len(), 2);
    assert_eq!(b.robustness[0].defects, 2);
    // Pre-shard-loss rows parse with zero lost shards, so the counter
    // reconciliation stays silent on the absent `faults.shards_lost`.
    assert!(b.robustness.iter().all(|r| r.shards_lost == 0));
    // The poisoned sharded block parses structurally — its defects are
    // semantic (a vanished shard row, a blown memory ceiling), caught by
    // the gates below, not by the parser.
    let big = b
        .large_100k
        .as_ref()
        .expect("poisoned sharded block parses");
    assert_eq!((big.shards, big.shard_rows.len()), (2, 1));

    let report = compare_baselines(CLEAN, POISONED);
    // Exactly nineteen findings: the two timed stages that vanished, the
    // defense series that vanished, the zero-fault robustness row that
    // survived defects AND drifted from the pin, the 10% row breaking
    // both the precision slack and the gain floor, the three NaN rows,
    // the profile stage row that vanished, the obs counter that
    // disagrees with the parsed robustness ledger, the histogram whose
    // observation count disagrees with its counter, the sharded block's
    // three structural defects (one shard-accounting row for two shards,
    // a peak rss over the ceiling, a shard row claiming cap saturation
    // far below the derivation ceiling), and the eval block's three: an
    // AUC above a perfect test, a defended cell whose undefended
    // reference was eaten by the NaN row, and an undefended cell that
    // drifted from the committed pin. The NaN-adjacent composition
    // series itself (rows 1 and 3 still parse, still increasing) must
    // NOT additionally trip the monotonicity gate, and the NaN
    // robustness row must not be held to the envelope it failed to
    // parse into — nor feed the counter reconciliation, which sums the
    // *parsed* rows only. The single shard row covers all 200 master
    // rows, so the coverage gate stays silent, and the (size, shards)
    // pair differs from the committed block, so the cross-run digest
    // pin is skipped (a note), not fired. The surviving eval pair (one
    // row per (R, defense) group) must not trip the ε-vs-k gate.
    assert_eq!(report.violations.len(), 19, "{:?}", report.violations);
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("AUC 1.2000 is outside")));
    assert!(report.violations.iter().any(
        |v| v.contains("eval defended cell `overlap_cap_0.90` at (k=5, R=3) has no undefended")
    ));
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("eval ε drifted at (k=2, R=3, `none`)")));
    assert!(!report
        .violations
        .iter()
        .any(|v| v.contains("ε rose with k")));
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("misreport cap saturation at 200 rows")));
    assert!(report.violations.iter().any(|v| {
        v.contains("obs histogram `harvest.name_ms` recorded 226")
            && v.contains("`harvest.names` = 230")
    }));
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("large_100k shard accounting lost a shard: 1 row(s) for 2 shard(s)")));
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("large_100k peak rss reached 4096.0 MiB")));
    assert!(!report
        .violations
        .iter()
        .any(|v| v.contains("master rows") || v.contains("digests drifted")));
    assert!(report
        .notes
        .iter()
        .any(|n| n.contains("large_100k config changed")));
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("profile stage `mdav` disappeared")));
    assert!(report.violations.iter().any(|v| {
        v.contains("obs counter `faults.fields_imputed` = 99")
            && v.contains("robustness ledger total 17")
    }));
    // The identical digest must not fire: the tree did not change shape.
    assert!(!report
        .violations
        .iter()
        .any(|v| v.contains("span tree digest drifted")));
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("stage `composition_defense` disappeared")));
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("stage `robustness_sweep` disappeared")));
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("composition_defense stage disappeared")));
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("zero-fault robustness row survived 2 defect(s)")));
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("zero-fault robustness row drifted")));
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("robustness harvest precision at uniform fault rate 0.100")));
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("robustness composition gain at uniform fault rate 0.100")));
    assert_eq!(
        report
            .violations
            .iter()
            .filter(|v| v.contains("non-finite or unparseable") && v.contains("NaN"))
            .count(),
        3,
        "{:?}",
        report.violations
    );
    assert!(!report
        .violations
        .iter()
        .any(|v| v.contains("not strictly increasing")));
}

#[test]
fn poisoned_committed_baseline_refuses_to_gate() {
    // A corrupt committed baseline must not silently disarm its own
    // gates: each NaN row is a violation in itself, prompting a
    // regenerate, even when the fresh run is pristine. The other two
    // findings are the cross-run pins working in reverse — the clean
    // fresh zero-fault row and undefended eval cell legitimately differ
    // from the dirty committed ones, and drift from the committed
    // reference is an alarm in either direction.
    let report = compare_baselines(POISONED, CLEAN);
    assert_eq!(report.violations.len(), 5, "{:?}", report.violations);
    assert_eq!(
        report
            .violations
            .iter()
            .filter(|v| v.contains("committed baseline carries"))
            .count(),
        3,
        "{:?}",
        report.violations
    );
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("zero-fault robustness row drifted")));
    assert!(report
        .violations
        .iter()
        .any(|v| v.contains("eval ε drifted at (k=2, R=3, `none`)")));
    // A fresh run *adding* the defense block on top of a committed
    // baseline without one is growth, not a regression — nothing else
    // fires.
    assert!(!report
        .violations
        .iter()
        .any(|v| v.contains("composition_defense")));
    // The clean fresh sharded block passes every in-run gate; the
    // committed block's own poisons never gate (in-run gates read the
    // fresh side only), and its different (size, shards) downgrades the
    // cross-run digest pin to a note.
    assert!(!report.violations.iter().any(|v| v.contains("large_100k")));
    assert!(report
        .notes
        .iter()
        .any(|n| n.contains("large_100k config changed")));
}

#[test]
fn vanished_eval_block_fires_the_disappearance_gate() {
    // A fresh run that silently drops the hypothesis-testing block is a
    // regression, not growth-in-reverse: strip the eval block (and only
    // it) from the clean fixture and the dedicated gate must fire. With
    // no fresh cells, every other eval gate — including the cross-run
    // drift pin — has nothing to bind to and must stay silent rather
    // than panic or double-report.
    let mut stripped = String::new();
    let mut in_eval = false;
    for line in CLEAN.lines() {
        if line.starts_with("  \"eval\": {") {
            in_eval = true;
            continue;
        }
        if in_eval {
            if line == "  }," {
                in_eval = false;
            }
            continue;
        }
        stripped.push_str(line);
        stripped.push('\n');
    }
    assert!(!parse_baseline(&stripped).eval.iter().any(|_| true));
    let report = compare_baselines(CLEAN, &stripped);
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert!(report.violations[0].contains("eval (hypothesis-testing) block disappeared"));
}
