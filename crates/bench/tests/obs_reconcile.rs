//! Observability ground-truth tests: the obs counters must agree with
//! the pipeline's own ledgers, and deterministic traces must be
//! bit-identical across runs.
//!
//! Three properties:
//!
//! * **Ledger reconciliation** — on a faulted `--quick`-shaped run, every
//!   `faults.*` counter equals the summed degradation fields of the
//!   robustness rows and every `recover.*` counter equals the recovery
//!   ledger, *exactly*, across seeds. Counter and ledger are incremented
//!   by the same source line (`Degradation::record`, the stage runner's
//!   attempt loop), and injected stage transients fire *before* the
//!   compute closure runs, so retries never double-count — any gap is
//!   dropped instrumentation.
//! * **Histogram reconciliation** — the `harvest.name_ms` latency
//!   histogram and the `harvest.names` counter are bumped by the same
//!   classify-extract tail (cached, sharded and tolerant paths all
//!   funnel through it), so the histogram's observation count equals
//!   the counter to the unit, and its buckets sum to that count.
//! * **Deterministic trace bit-identity** — two zero-fault checkpointed
//!   runs of the same configuration (separate stores, both computing
//!   fresh) drain byte-identical trace JSON and the same structural
//!   digest, which also matches the digest embedded in the `profile`
//!   block.
//!
//! The obs collector is process-global, so every test in this binary
//! serializes on one lock; tests that enable tracing must never share a
//! binary with tests that run `quick_bench` concurrently.

use std::path::PathBuf;
use std::sync::Mutex;

use fred_bench::perf::{quick_bench, QuickBench, QuickBenchOptions};
use fred_bench::world::WorldConfig;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fred_obs_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Counter lookup over the profile's rendered rows (absent names count
/// as zero, matching the gate in `compare.rs`).
fn counter(bench: &QuickBench, name: &str) -> u64 {
    bench
        .profile
        .as_ref()
        .expect("profiled run carries a profile block")
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map_or(0, |(_, v)| *v)
}

#[test]
fn faulted_counters_reconcile_with_both_ledgers_across_seeds() {
    let _g = obs_lock();
    for seed in [7, 42, 2008] {
        let bench = quick_bench(
            &WorldConfig {
                size: 30,
                seed,
                ..WorldConfig::default()
            },
            2,
            4,
            1,
            &QuickBenchOptions {
                large_size: None,
                faults: Some(0.1),
                profile: true,
                ..QuickBenchOptions::default()
            },
        );
        let rob = bench
            .robustness
            .as_ref()
            .expect("faulted run carries the robustness block");
        let sum = |f: fn(&fred_bench::perf::RobustnessBenchRow) -> usize| -> u64 {
            rob.rows.iter().map(f).sum::<usize>() as u64
        };
        let pairs = [
            ("faults.pages_rejected", sum(|r| r.pages_rejected)),
            ("faults.rows_skipped", sum(|r| r.rows_skipped)),
            ("faults.fields_imputed", sum(|r| r.fields_imputed)),
            ("faults.workers_restarted", sum(|r| r.workers_restarted)),
        ];
        for (name, ledger) in pairs {
            assert_eq!(
                counter(&bench, name),
                ledger,
                "seed {seed}: obs counter `{name}` disagrees with the robustness ledger"
            );
        }
        // The uniform sweep at a positive rate must actually have
        // exercised the tolerant paths, or the equalities above are
        // vacuous 0 == 0.
        assert!(
            pairs.iter().any(|(_, ledger)| *ledger > 0),
            "seed {seed}: fault injection produced no defects at all"
        );
        let rec = bench
            .recovery
            .as_ref()
            .expect("faulted run carries the recovery ledger");
        assert_eq!(
            counter(&bench, "recover.attempts"),
            rec.rows.iter().map(|r| r.attempts).sum::<usize>() as u64,
            "seed {seed}: obs counter `recover.attempts` disagrees with the recovery ledger"
        );
        assert_eq!(
            counter(&bench, "recover.retries"),
            rec.retries_total as u64,
            "seed {seed}: obs counter `recover.retries` disagrees with the recovery ledger"
        );
        assert_eq!(
            counter(&bench, "recover.quarantines"),
            rec.quarantined_total as u64,
            "seed {seed}: obs counter `recover.quarantines` disagrees with the recovery ledger"
        );
    }
}

#[test]
fn harvest_latency_histogram_reconciles_with_the_names_counter() {
    let _g = obs_lock();
    for seed in [7, 2008] {
        let bench = quick_bench(
            &WorldConfig {
                size: 30,
                seed,
                ..WorldConfig::default()
            },
            2,
            4,
            1,
            &QuickBenchOptions {
                large_size: None,
                faults: Some(0.1),
                profile: true,
                ..QuickBenchOptions::default()
            },
        );
        let prof = bench
            .profile
            .as_ref()
            .expect("profiled run carries a profile block");
        let hist = prof
            .hists
            .iter()
            .find(|h| h.name == "harvest.name_ms")
            .expect("profiled harvest records the per-name latency histogram");
        // Non-vacuous: the quick world's harvest classifies real pages.
        assert!(
            hist.count > 0,
            "seed {seed}: harvest recorded no per-name latencies at all"
        );
        assert_eq!(
            hist.count,
            counter(&bench, "harvest.names"),
            "seed {seed}: histogram observations disagree with `harvest.names` — \
             both are written by the same classify-extract tail"
        );
        assert_eq!(
            hist.buckets.iter().sum::<u64>(),
            hist.count,
            "seed {seed}: histogram buckets do not sum to the observation count"
        );
        assert!(
            hist.sum_ms.is_finite() && hist.sum_ms >= 0.0,
            "seed {seed}: histogram sum must be finite and non-negative"
        );
    }
}

#[test]
fn deterministic_trace_is_bit_identical_across_runs() {
    let _g = obs_lock();
    let run = |dir: PathBuf| {
        quick_bench(
            &WorldConfig {
                size: 30,
                ..WorldConfig::default()
            },
            2,
            4,
            1,
            &QuickBenchOptions {
                large_size: Some(40),
                checkpoint_dir: Some(dir),
                profile: true,
                ..QuickBenchOptions::default()
            },
        )
    };
    let a = run(temp_dir("det_a"));
    let b = run(temp_dir("det_b"));
    let (ta, tb) = (
        a.trace.as_ref().expect("profiled run keeps its trace"),
        b.trace.as_ref().expect("profiled run keeps its trace"),
    );
    assert!(
        ta.deterministic,
        "checkpointed runs trace deterministically"
    );
    assert_eq!(
        ta.to_json(),
        tb.to_json(),
        "deterministic trace JSON diverged between two fresh runs"
    );
    assert_eq!(ta.structural_digest(), tb.structural_digest());
    // The digest the profile block publishes is the digest of this tree.
    let prof = a.profile.as_ref().expect("profile block present");
    assert_eq!(prof.span_tree_digest, ta.structural_digest());
    assert!(prof.deterministic);
    // Deterministic profiles must not publish runtime counter rows: a
    // later resumed run would skip compute closures and legitimately
    // count differently.
    assert!(prof.counters.is_empty());
    assert!(prof.hists.is_empty());
    // Every duration in the tree is zeroed at source.
    fn all_zero(node: &fred_obs::SpanNode) -> bool {
        node.start_ms == 0.0 && node.wall_ms == 0.0 && node.children.iter().all(all_zero)
    }
    assert!(ta.spans.iter().all(all_zero));
    // Merged counter totals are still a pure function of the config,
    // and the scheduling-dependent per-worker split is omitted.
    assert_eq!(ta.counters, tb.counters);
    assert!(ta.counter_total("recover.attempts") > 0);
    assert!(ta.worker_counters.is_empty());
}

#[test]
fn resumed_run_keeps_the_span_tree_of_the_uninterrupted_run() {
    let _g = obs_lock();
    let opts = |dir: PathBuf, resume: bool| QuickBenchOptions {
        large_size: Some(40),
        checkpoint_dir: Some(dir),
        resume,
        profile: true,
        ..QuickBenchOptions::default()
    };
    let config = WorldConfig {
        size: 30,
        ..WorldConfig::default()
    };
    let dir = temp_dir("resume");
    let full = quick_bench(&config, 2, 4, 1, &opts(dir.clone(), false));
    // Second run over the same store: every loadable stage is satisfied
    // from its checkpoint, so the compute closures are skipped — the
    // span tree must not notice (spans wrap the runner, not the
    // closures).
    let resumed = quick_bench(&config, 2, 4, 1, &opts(dir, true));
    let full_prof = full.profile.expect("profile present");
    let resumed_prof = resumed.profile.expect("profile present");
    assert_eq!(full_prof.span_tree_digest, resumed_prof.span_tree_digest);
    assert_eq!(
        full_prof
            .stages
            .iter()
            .map(|s| &s.stage)
            .collect::<Vec<_>>(),
        resumed_prof
            .stages
            .iter()
            .map(|s| &s.stage)
            .collect::<Vec<_>>()
    );
}
