//! # fred-anon — anonymization substrate
//!
//! Partitioning-based k-anonymization algorithms and the privacy/utility
//! machinery around them:
//!
//! * [`mdav::Mdav`] — microaggregation (Domingo-Ferrer), the paper's
//!   `Basic_Anonymization` procedure;
//! * [`mondrian::Mondrian`] — multidimensional k-anonymity (LeFevre et al.),
//!   used as an ablation baseline;
//! * [`generalize::FullDomain`] — Datafly-style full-domain generalization
//!   over value-generalization hierarchies;
//! * [`release::build_release`] — turns a partition into a published table
//!   (identifiers kept, QIs generalized, sensitive cells suppressed);
//! * checkers: [`kanon`] (k-anonymity), [`diversity`] (l-diversity),
//!   [`closeness`] (t-closeness);
//! * [`utility`] — the discernibility metric `C_DM` and friends.
//!
//! ## Example
//!
//! ```
//! use fred_anon::{Anonymizer, Mdav, build_release, QiStyle, is_k_anonymous};
//! use fred_data::{Schema, Table, Value};
//!
//! let schema = Schema::builder()
//!     .identifier("Name")
//!     .quasi_numeric("Valuation")
//!     .sensitive_numeric("Income")
//!     .build()
//!     .unwrap();
//! let table = Table::with_rows(schema, (0..10).map(|i| vec![
//!     Value::Text(format!("p{i}")),
//!     Value::Float(i as f64),
//!     Value::Float(50_000.0 + 1_000.0 * i as f64),
//! ]).collect()).unwrap();
//!
//! let partition = Mdav::new().partition(&table, 3).unwrap();
//! let release = build_release(&table, &partition, 3, QiStyle::Range).unwrap();
//! assert!(is_k_anonymous(&release.table, 3).unwrap());
//! ```

#![warn(missing_docs)]

pub mod anonymizer;
pub mod closeness;
pub mod diversity;
pub mod error;
pub mod generalize;
pub mod kanon;
pub mod mdav;
pub mod mondrian;
pub mod optimal;
pub mod partition;
pub mod release;
pub mod utility;

pub use anonymizer::Anonymizer;
pub use closeness::{closeness, is_t_close, ordered_emd, variational_distance};
pub use diversity::{
    distinct_diversity, entropy_diversity, is_distinct_l_diverse, is_entropy_l_diverse,
};
pub use error::{AnonError, Result};
pub use generalize::{AttributeHierarchy, FullDomain, Hierarchy, NumericHierarchy};
pub use kanon::{anonymity_level, classes_from_release, is_k_anonymous};
pub use mdav::{HierarchicalMdav, Mdav};
pub use mondrian::Mondrian;
pub use optimal::{within_class_sse, OptimalUnivariate};
pub use partition::{EquivalenceClass, Partition};
pub use release::{build_release, QiStyle, Release, ReleaseChunks};
pub use utility::{
    average_class_size, discernibility, loss_metric, per_record_costs, per_record_utilities,
    utility,
};
