//! l-diversity checks (Machanavajjhala et al., ICDE 2006 — reference [4]).
//!
//! k-anonymity bounds re-identification, not attribute disclosure: a class
//! whose members all share one sensitive value leaks it outright. Distinct
//! l-diversity requires `l` different sensitive values per class; entropy
//! l-diversity requires the class entropy to be at least `log(l)`.

use crate::error::{AnonError, Result};
use crate::partition::Partition;
use fred_data::Table;
use std::collections::HashMap;

/// Sensitive-value frequency map of one equivalence class.
fn class_counts(table: &Table, class: &[usize], sens_col: usize) -> HashMap<String, usize> {
    let mut counts: HashMap<String, usize> = HashMap::new();
    for &row in class {
        let label = table
            .cell(row, sens_col)
            .map(|v| v.to_string())
            .unwrap_or_default();
        *counts.entry(label).or_insert(0) += 1;
    }
    counts
}

fn sensitive_column(table: &Table) -> Result<usize> {
    table
        .schema()
        .sensitive_indices()
        .first()
        .copied()
        .ok_or(AnonError::NoSensitiveAttribute)
}

/// Distinct diversity of the least diverse class (the largest `l` for which
/// the partition is distinct l-diverse).
pub fn distinct_diversity(table: &Table, partition: &Partition) -> Result<usize> {
    let sens = sensitive_column(table)?;
    let mut min = usize::MAX;
    for class in partition.classes() {
        min = min.min(class_counts(table, class, sens).len());
    }
    Ok(if partition.is_empty() { 0 } else { min })
}

/// Whether the partition is distinct l-diverse.
pub fn is_distinct_l_diverse(table: &Table, partition: &Partition, l: usize) -> Result<bool> {
    Ok(distinct_diversity(table, partition)? >= l)
}

/// Entropy diversity of the least diverse class: `exp(H_min)` where `H_min`
/// is the minimum Shannon entropy (nats) across classes. The partition is
/// entropy l-diverse iff this value is at least `l`.
pub fn entropy_diversity(table: &Table, partition: &Partition) -> Result<f64> {
    let sens = sensitive_column(table)?;
    let mut min_h = f64::INFINITY;
    for class in partition.classes() {
        let counts = class_counts(table, class, sens);
        let n = class.len() as f64;
        let h: f64 = counts
            .values()
            .map(|&c| {
                let p = c as f64 / n;
                -p * p.ln()
            })
            .sum();
        min_h = min_h.min(h);
    }
    Ok(if partition.is_empty() {
        0.0
    } else {
        min_h.exp()
    })
}

/// Whether the partition is entropy l-diverse.
pub fn is_entropy_l_diverse(table: &Table, partition: &Partition, l: f64) -> Result<bool> {
    Ok(entropy_diversity(table, partition)? >= l)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_data::{Schema, Table, Value};

    fn table_with_sensitive(values: &[&str]) -> Table {
        let schema = Schema::builder()
            .quasi_numeric("x")
            .sensitive_categorical("Condition")
            .build()
            .unwrap();
        Table::with_rows(
            schema,
            values
                .iter()
                .enumerate()
                .map(|(i, &s)| vec![Value::Float(i as f64), Value::Categorical(s.into())])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn distinct_diversity_counts_values() {
        let t = table_with_sensitive(&["flu", "flu", "cancer", "aids"]);
        let p = Partition::new(vec![vec![0, 1], vec![2, 3]], 4).unwrap();
        // Class {0,1} has one distinct value; class {2,3} has two.
        assert_eq!(distinct_diversity(&t, &p).unwrap(), 1);
        assert!(is_distinct_l_diverse(&t, &p, 1).unwrap());
        assert!(!is_distinct_l_diverse(&t, &p, 2).unwrap());

        let p2 = Partition::new(vec![vec![0, 2], vec![1, 3]], 4).unwrap();
        assert_eq!(distinct_diversity(&t, &p2).unwrap(), 2);
    }

    #[test]
    fn entropy_diversity_uniform_class() {
        let t = table_with_sensitive(&["a", "b", "c", "d"]);
        let p = Partition::single(4);
        // Uniform over 4 values: exp(ln 4) = 4.
        let e = entropy_diversity(&t, &p).unwrap();
        assert!((e - 4.0).abs() < 1e-9);
        assert!(is_entropy_l_diverse(&t, &p, 3.9).unwrap());
        assert!(!is_entropy_l_diverse(&t, &p, 4.1).unwrap());
    }

    #[test]
    fn entropy_diversity_skewed_class_is_lower() {
        let t = table_with_sensitive(&["a", "a", "a", "b"]);
        let p = Partition::single(4);
        let e = entropy_diversity(&t, &p).unwrap();
        assert!(e < 2.0, "skewed class must be < 2-diverse, got {e}");
        assert!(e > 1.0);
    }

    #[test]
    fn homogeneous_class_has_diversity_one() {
        let t = table_with_sensitive(&["a", "a"]);
        let p = Partition::single(2);
        assert_eq!(distinct_diversity(&t, &p).unwrap(), 1);
        assert!((entropy_diversity(&t, &p).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn requires_sensitive_attribute() {
        let schema = Schema::builder().quasi_numeric("x").build().unwrap();
        let t = Table::with_rows(schema, vec![vec![Value::Float(0.0)]]).unwrap();
        let p = Partition::single(1);
        assert!(matches!(
            distinct_diversity(&t, &p),
            Err(AnonError::NoSensitiveAttribute)
        ));
    }
}
