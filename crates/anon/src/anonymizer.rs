//! The [`Anonymizer`] abstraction: anything that can partition a table into
//! k-member equivalence classes.
//!
//! Algorithm 1 of the paper is parametric in its `Basic_Anonymization`
//! procedure ("any basic anonymization algorithm such as [9] [3] can be
//! used"); this trait is that parameter. The workspace ships three
//! implementations: [`crate::mdav::Mdav`] (the paper's choice),
//! [`crate::mondrian::Mondrian`] and
//! [`crate::generalize::FullDomain`].

use crate::error::{AnonError, Result};
use crate::partition::Partition;
use fred_data::Table;

/// A partitioning anonymization algorithm.
/// `Sync` is a supertrait so anonymizers can be shared across the worker
/// threads of the parallel k-sweep; every implementor is plain data.
pub trait Anonymizer: Sync {
    /// Short human-readable algorithm name (used in reports and benches).
    fn name(&self) -> &'static str;

    /// Partitions `table` into equivalence classes of at least `k` rows.
    ///
    /// Implementations must return a partition where every class has
    /// `len >= k` whenever `table.len() >= k`, and must fail with
    /// [`AnonError::NotEnoughRows`] otherwise.
    fn partition(&self, table: &Table, k: usize) -> Result<Partition>;
}

/// Validates the common preconditions shared by all anonymizers and returns
/// the numeric quasi-identifier matrix.
pub(crate) fn numeric_qi_matrix(table: &Table, k: usize) -> Result<Vec<Vec<f64>>> {
    if k == 0 {
        return Err(AnonError::InvalidK(k));
    }
    if table.len() < k {
        return Err(AnonError::NotEnoughRows {
            rows: table.len(),
            k,
        });
    }
    let qi = table.schema().quasi_identifier_indices();
    if qi.is_empty() {
        return Err(AnonError::NoQuasiIdentifiers);
    }
    table
        .numeric_matrix(&qi)
        .map_err(|_| AnonError::NonNumericQuasiIdentifiers)
}

/// Z-score normalizes a matrix column-wise in place (population std).
/// Constant columns are left at zero so they never influence distances.
pub(crate) fn normalize_columns(matrix: &mut [Vec<f64>]) {
    if matrix.is_empty() {
        return;
    }
    let cols = matrix[0].len();
    let n = matrix.len() as f64;
    for c in 0..cols {
        let mean = matrix.iter().map(|r| r[c]).sum::<f64>() / n;
        let var = matrix
            .iter()
            .map(|r| (r[c] - mean) * (r[c] - mean))
            .sum::<f64>()
            / n;
        let std = var.sqrt();
        for row in matrix.iter_mut() {
            row[c] = if std > 0.0 {
                (row[c] - mean) / std
            } else {
                0.0
            };
        }
    }
}

/// Squared Euclidean distance between two equally-long points.
#[inline]
pub(crate) fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_data::{Schema, Table, Value};

    fn table(rows: &[(f64, f64)]) -> Table {
        let schema = Schema::builder()
            .quasi_numeric("x")
            .quasi_numeric("y")
            .build()
            .unwrap();
        Table::with_rows(
            schema,
            rows.iter()
                .map(|&(x, y)| vec![Value::Float(x), Value::Float(y)])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn precondition_checks() {
        let t = table(&[(1.0, 2.0), (3.0, 4.0)]);
        assert!(matches!(
            numeric_qi_matrix(&t, 0),
            Err(AnonError::InvalidK(0))
        ));
        assert!(matches!(
            numeric_qi_matrix(&t, 5),
            Err(AnonError::NotEnoughRows { rows: 2, k: 5 })
        ));
        assert_eq!(numeric_qi_matrix(&t, 2).unwrap().len(), 2);

        let no_qi = Table::new(Schema::builder().identifier("Name").build().unwrap());
        assert!(matches!(
            numeric_qi_matrix(&no_qi, 1),
            Err(AnonError::NotEnoughRows { .. })
        ));
    }

    #[test]
    fn no_quasi_identifier_error() {
        let schema = Schema::builder().identifier("Name").build().unwrap();
        let t = Table::with_rows(schema, vec![vec![Value::Text("a".into())]]).unwrap();
        assert!(matches!(
            numeric_qi_matrix(&t, 1),
            Err(AnonError::NoQuasiIdentifiers)
        ));
    }

    #[test]
    fn normalization_zero_mean_unit_var() {
        let mut m = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        normalize_columns(&mut m);
        let mean0: f64 = m.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-12);
        // Constant column collapses to zero.
        assert!(m.iter().all(|r| r[1] == 0.0));
        let var0: f64 = m.iter().map(|r| r[0] * r[0]).sum::<f64>() / 3.0;
        assert!((var0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dist2_is_squared_euclidean() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist2(&[1.0], &[1.0]), 0.0);
    }
}
