//! Projection-based *optimal* microaggregation.
//!
//! Domingo-Ferrer's reference [9] discusses heuristics for optimal
//! k-anonymous microaggregation; for univariate data the exact optimum is
//! computable: sort the values, observe that optimal classes are contiguous
//! runs of length in `[k, 2k-1]` (Hansen & Mukherjee), and run a shortest-
//! path dynamic program over prefix sums of squared error.
//!
//! Multivariate tables are handled the standard way: z-score the
//! quasi-identifiers, project onto the dominant principal direction (power
//! iteration), and solve the univariate problem on the projections. The
//! result is optimal for the projected values and a strong heuristic for
//! the original ones — in the ablation benches it lower-bounds MDAV's
//! within-class spread on elongated data.

use crate::anonymizer::{normalize_columns, numeric_qi_matrix, Anonymizer};
use crate::error::Result;
use crate::partition::Partition;
use fred_data::Table;

/// The projection-based optimal microaggregation anonymizer.
#[derive(Debug, Clone, Default)]
pub struct OptimalUnivariate {
    _private: (),
}

impl OptimalUnivariate {
    /// Creates the anonymizer.
    pub fn new() -> Self {
        OptimalUnivariate { _private: () }
    }
}

impl Anonymizer for OptimalUnivariate {
    fn name(&self) -> &'static str {
        "optimal-univariate"
    }

    fn partition(&self, table: &Table, k: usize) -> Result<Partition> {
        let mut matrix = numeric_qi_matrix(table, k)?;
        normalize_columns(&mut matrix);
        let projected = project_principal(&matrix);
        let mut order: Vec<usize> = (0..projected.len()).collect();
        order.sort_by(|&a, &b| {
            projected[a]
                .partial_cmp(&projected[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let sorted: Vec<f64> = order.iter().map(|&i| projected[i]).collect();
        let boundaries = optimal_boundaries(&sorted, k);
        let mut classes = Vec::with_capacity(boundaries.len());
        let mut start = 0usize;
        for end in boundaries {
            classes.push(order[start..end].to_vec());
            start = end;
        }
        Partition::new(classes, projected.len())
    }
}

/// Projects rows onto the dominant principal direction of the (already
/// normalized) matrix via power iteration. Falls back to the first column
/// when the iteration degenerates (e.g. all-zero matrix).
fn project_principal(matrix: &[Vec<f64>]) -> Vec<f64> {
    let n = matrix.len();
    let d = matrix[0].len();
    if d == 1 {
        return matrix.iter().map(|r| r[0]).collect();
    }
    // Covariance-free power iteration: v <- Xᵀ(Xv), normalized.
    let mut v = vec![1.0 / (d as f64).sqrt(); d];
    for _ in 0..64 {
        // w = X v  (length n)
        let w: Vec<f64> = matrix
            .iter()
            .map(|row| row.iter().zip(&v).map(|(&x, &vi)| x * vi).sum())
            .collect();
        // u = Xᵀ w (length d)
        let mut u = vec![0.0; d];
        for (row, &wi) in matrix.iter().zip(&w) {
            for (j, &x) in row.iter().enumerate() {
                u[j] += x * wi;
            }
        }
        let norm = u.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-12 {
            return matrix.iter().map(|r| r[0]).collect();
        }
        for (vi, ui) in v.iter_mut().zip(&u) {
            *vi = ui / norm;
        }
    }
    let _ = n;
    matrix
        .iter()
        .map(|row| row.iter().zip(&v).map(|(&x, &vi)| x * vi).sum())
        .collect()
}

/// Dynamic program over sorted values: returns the class end-indices
/// (exclusive) of the SSE-minimal partition into runs of length `[k, 2k-1]`
/// (the final run may reach `2k-1`; when `n < 2k` a single run is forced).
fn optimal_boundaries(sorted: &[f64], k: usize) -> Vec<usize> {
    let n = sorted.len();
    if n < 2 * k {
        return vec![n];
    }
    // Prefix sums for O(1) SSE of any run.
    let mut sum = vec![0.0; n + 1];
    let mut sum2 = vec![0.0; n + 1];
    for (i, &x) in sorted.iter().enumerate() {
        sum[i + 1] = sum[i] + x;
        sum2[i + 1] = sum2[i] + x * x;
    }
    let sse = |a: usize, b: usize| -> f64 {
        // SSE of sorted[a..b].
        let m = (b - a) as f64;
        let s = sum[b] - sum[a];
        (sum2[b] - sum2[a]) - s * s / m
    };
    let inf = f64::INFINITY;
    let mut dp = vec![inf; n + 1];
    let mut prev = vec![usize::MAX; n + 1];
    dp[0] = 0.0;
    for i in k..=n {
        // The class ending at i starts at j with i-j in [k, 2k-1].
        let j_lo = i.saturating_sub(2 * k - 1);
        let j_hi = i - k;
        for j in j_lo..=j_hi {
            if dp[j] < inf {
                let cand = dp[j] + sse(j, i);
                if cand < dp[i] {
                    dp[i] = cand;
                    prev[i] = j;
                }
            }
        }
    }
    debug_assert!(dp[n] < inf, "DP must reach n for n >= 2k");
    let mut boundaries = Vec::new();
    let mut i = n;
    while i > 0 {
        boundaries.push(i);
        i = prev[i];
    }
    boundaries.reverse();
    boundaries
}

/// Within-class sum of squared errors of a partition over the (z-scored)
/// quasi-identifiers — the quantity microaggregation minimizes. Exposed so
/// benches can compare MDAV against the optimal partitioner.
pub fn within_class_sse(table: &Table, partition: &Partition) -> Result<f64> {
    let mut matrix = numeric_qi_matrix(table, 1)?;
    normalize_columns(&mut matrix);
    let mut total = 0.0;
    for class in partition.classes() {
        let dims = matrix[0].len();
        let mut centroid = vec![0.0; dims];
        for &r in class {
            for (j, &x) in matrix[r].iter().enumerate() {
                centroid[j] += x;
            }
        }
        for c in &mut centroid {
            *c /= class.len() as f64;
        }
        for &r in class {
            total += matrix[r]
                .iter()
                .zip(&centroid)
                .map(|(&x, &c)| (x - c) * (x - c))
                .sum::<f64>();
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mdav::Mdav;
    use fred_data::{Schema, Table, Value};

    fn univariate_table(values: &[f64]) -> Table {
        let schema = Schema::builder().quasi_numeric("x").build().unwrap();
        Table::with_rows(
            schema,
            values.iter().map(|&x| vec![Value::Float(x)]).collect(),
        )
        .unwrap()
    }

    fn bivariate_table(points: &[(f64, f64)]) -> Table {
        let schema = Schema::builder()
            .quasi_numeric("x")
            .quasi_numeric("y")
            .build()
            .unwrap();
        Table::with_rows(
            schema,
            points
                .iter()
                .map(|&(x, y)| vec![Value::Float(x), Value::Float(y)])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn partitions_satisfy_k_and_size_bounds() {
        for n in [4usize, 7, 10, 23, 60] {
            for k in [2usize, 3, 5] {
                if n < k {
                    continue;
                }
                let values: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64).collect();
                let t = univariate_table(&values);
                let p = OptimalUnivariate::new().partition(&t, k).unwrap();
                assert!(p.satisfies_k(k), "n={n} k={k}");
                if n >= 2 * k {
                    assert!(p.max_class_size() < 2 * k, "n={n} k={k}");
                }
                assert_eq!(p.n_rows(), n);
            }
        }
    }

    #[test]
    fn classes_are_contiguous_in_value_order() {
        let values = [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0];
        let t = univariate_table(&values);
        let p = OptimalUnivariate::new().partition(&t, 2).unwrap();
        // Every class's value range must not overlap another class's.
        let mut ranges: Vec<(f64, f64)> = p
            .classes()
            .iter()
            .map(|class| {
                let vals: Vec<f64> = class.iter().map(|&r| values[r]).collect();
                (
                    vals.iter().copied().fold(f64::INFINITY, f64::min),
                    vals.iter().copied().fold(f64::NEG_INFINITY, f64::max),
                )
            })
            .collect();
        ranges.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in ranges.windows(2) {
            assert!(w[0].1 < w[1].0, "overlapping classes: {ranges:?}");
        }
    }

    #[test]
    fn beats_or_matches_mdav_on_univariate_sse() {
        // On 1-D data the DP is exactly optimal, so it can never lose.
        let values: Vec<f64> = (0..50)
            .map(|i| ((i * 13) % 29) as f64 + ((i * 7) % 11) as f64 * 0.1)
            .collect();
        let t = univariate_table(&values);
        for k in [2usize, 3, 4] {
            let opt = OptimalUnivariate::new().partition(&t, k).unwrap();
            let mdav = Mdav::new().partition(&t, k).unwrap();
            let sse_opt = within_class_sse(&t, &opt).unwrap();
            let sse_mdav = within_class_sse(&t, &mdav).unwrap();
            assert!(
                sse_opt <= sse_mdav + 1e-9,
                "k={k}: optimal {sse_opt} > mdav {sse_mdav}"
            );
        }
    }

    #[test]
    fn known_optimal_solution() {
        // Two tight clusters of 3: the optimal k=3 partition is obvious.
        let values = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let t = univariate_table(&values);
        let p = OptimalUnivariate::new().partition(&t, 3).unwrap();
        assert_eq!(p.len(), 2);
        let mut classes: Vec<Vec<usize>> = p.classes().to_vec();
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort();
        assert_eq!(classes, vec![vec![0, 1, 2], vec![3, 4, 5]]);
    }

    #[test]
    fn projection_separates_elongated_blobs() {
        // Two blobs along the diagonal; projection must keep them apart.
        let mut pts = Vec::new();
        for i in 0..4 {
            pts.push((i as f64 * 0.1, i as f64 * 0.1));
        }
        for i in 0..4 {
            pts.push((50.0 + i as f64 * 0.1, 50.0 + i as f64 * 0.1));
        }
        let t = bivariate_table(&pts);
        let p = OptimalUnivariate::new().partition(&t, 4).unwrap();
        assert_eq!(p.len(), 2);
        for class in p.classes() {
            let all_low = class.iter().all(|&r| r < 4);
            let all_high = class.iter().all(|&r| r >= 4);
            assert!(all_low || all_high, "blobs mixed: {class:?}");
        }
    }

    #[test]
    fn constant_data_single_class_when_small() {
        let t = univariate_table(&[3.0; 5]);
        let p = OptimalUnivariate::new().partition(&t, 3).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn errors_propagate() {
        let t = univariate_table(&[1.0, 2.0]);
        assert!(OptimalUnivariate::new().partition(&t, 0).is_err());
        assert!(OptimalUnivariate::new().partition(&t, 3).is_err());
    }
}
