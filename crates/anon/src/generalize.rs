//! Generalization hierarchies and full-domain generalization
//! (Samarati/Sweeney-style, reference [2] of the paper).
//!
//! A [`Hierarchy`] maps each leaf value to a fixed path of increasingly
//! general labels ending at the root `*`. Numeric attributes use
//! [`NumericHierarchy`], which coarsens values into aligned bins whose width
//! doubles per level. [`FullDomain`] is a Datafly-style anonymizer: it
//! repeatedly generalizes the attribute with the most distinct values until
//! every equivalence class reaches size `k` (suppressing up to a bounded
//! number of outliers), then reports the induced [`Partition`].

use crate::anonymizer::Anonymizer;
use crate::error::{AnonError, Result};
use crate::partition::Partition;
use fred_data::{Table, Value};
use std::collections::HashMap;

/// A value-generalization hierarchy for a categorical attribute.
///
/// Level 0 is the leaf value itself; the last level is the root (`*` by
/// convention). All leaves must share the same path length.
#[derive(Debug, Clone, PartialEq)]
pub struct Hierarchy {
    paths: HashMap<String, Vec<String>>,
    levels: usize,
}

impl Hierarchy {
    /// Builds a hierarchy from `(leaf, path)` pairs where `path[0] == leaf`.
    pub fn new(paths: Vec<(String, Vec<String>)>) -> Result<Self> {
        let mut map = HashMap::with_capacity(paths.len());
        let mut levels = 0usize;
        for (leaf, path) in paths {
            if path.is_empty() {
                return Err(AnonError::InvalidHierarchy(format!(
                    "empty path for `{leaf}`"
                )));
            }
            if path[0] != leaf {
                return Err(AnonError::InvalidHierarchy(format!(
                    "path for `{leaf}` must start with the leaf itself"
                )));
            }
            if levels == 0 {
                levels = path.len();
            } else if path.len() != levels {
                return Err(AnonError::InvalidHierarchy(format!(
                    "path for `{leaf}` has {} levels, expected {levels}",
                    path.len()
                )));
            }
            if map.insert(leaf.clone(), path).is_some() {
                return Err(AnonError::InvalidHierarchy(format!(
                    "duplicate leaf `{leaf}`"
                )));
            }
        }
        if levels == 0 {
            return Err(AnonError::InvalidHierarchy(
                "hierarchy has no leaves".into(),
            ));
        }
        Ok(Hierarchy { paths: map, levels })
    }

    /// Convenience constructor: a two-level hierarchy `leaf -> group -> *`.
    pub fn two_level(groups: &[(&str, &[&str])]) -> Result<Self> {
        let mut paths = Vec::new();
        for (group, leaves) in groups {
            for leaf in *leaves {
                paths.push((
                    (*leaf).to_owned(),
                    vec![(*leaf).to_owned(), (*group).to_owned(), "*".to_owned()],
                ));
            }
        }
        Hierarchy::new(paths)
    }

    /// Number of levels including leaf (0) and root.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Generalizes `value` to `level`. Unknown values generalize to the root
    /// at any level > 0 and stay themselves at level 0.
    pub fn generalize(&self, value: &str, level: usize) -> Result<String> {
        if level >= self.levels {
            return Err(AnonError::LevelOutOfRange {
                level,
                max: self.levels - 1,
            });
        }
        match self.paths.get(value) {
            Some(path) => Ok(path[level].clone()),
            None if level == 0 => Ok(value.to_owned()),
            None => Ok(self
                .paths
                .values()
                .next()
                .map(|p| p[self.levels - 1].clone())
                .unwrap_or_else(|| "*".into())),
        }
    }
}

/// A binning hierarchy for numeric attributes.
///
/// Level 0 keeps the exact value. Level `l >= 1` maps the value into a bin
/// of width `base_width * 2^(l-1)` aligned at `origin`. The top level is the
/// full range.
#[derive(Debug, Clone, PartialEq)]
pub struct NumericHierarchy {
    origin: f64,
    base_width: f64,
    levels: usize,
}

impl NumericHierarchy {
    /// Creates a numeric hierarchy; `levels` counts all levels including the
    /// exact level 0, so it must be at least 2 to allow any generalization.
    pub fn new(origin: f64, base_width: f64, levels: usize) -> Result<Self> {
        if base_width <= 0.0 || !base_width.is_finite() {
            return Err(AnonError::InvalidHierarchy(format!(
                "base width must be positive, got {base_width}"
            )));
        }
        if levels < 2 {
            return Err(AnonError::InvalidHierarchy("need at least 2 levels".into()));
        }
        Ok(NumericHierarchy {
            origin,
            base_width,
            levels,
        })
    }

    /// Number of levels including the exact level 0.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Bin label covering `x` at `level` as a half-open range `[lo, hi)`
    /// rendered `lo..hi`; level 0 renders the value itself.
    pub fn generalize(&self, x: f64, level: usize) -> Result<String> {
        if level >= self.levels {
            return Err(AnonError::LevelOutOfRange {
                level,
                max: self.levels - 1,
            });
        }
        if level == 0 {
            return Ok(format!("{x}"));
        }
        let width = self.base_width * f64::powi(2.0, (level - 1) as i32);
        let bin = ((x - self.origin) / width).floor();
        let lo = self.origin + bin * width;
        Ok(format!("{lo}..{}", lo + width))
    }
}

/// Per-attribute hierarchy: numeric or categorical.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeHierarchy {
    /// Numeric binning hierarchy.
    Numeric(NumericHierarchy),
    /// Categorical path hierarchy.
    Categorical(Hierarchy),
}

impl AttributeHierarchy {
    /// Number of levels.
    pub fn levels(&self) -> usize {
        match self {
            AttributeHierarchy::Numeric(h) => h.levels(),
            AttributeHierarchy::Categorical(h) => h.levels(),
        }
    }

    /// Generalized label of a cell at `level`.
    pub fn generalize_value(&self, value: &Value, level: usize) -> Result<String> {
        match self {
            AttributeHierarchy::Numeric(h) => {
                let x = value.as_f64().ok_or_else(|| {
                    AnonError::InvalidHierarchy("numeric hierarchy over non-numeric cell".into())
                })?;
                h.generalize(x, level)
            }
            AttributeHierarchy::Categorical(h) => {
                let s = value.as_str().ok_or_else(|| {
                    AnonError::InvalidHierarchy("categorical hierarchy over non-text cell".into())
                })?;
                h.generalize(s, level)
            }
        }
    }
}

/// Datafly-style full-domain generalization anonymizer.
///
/// At each step, equivalence classes are induced by the generalized QI
/// signature. If the rows in sub-`k` classes number at most
/// `max_suppressed`, those rows are suppressed (becoming singleton classes
/// in the reported partition — the discernibility metric then charges them
/// the `|D|·|E|` outlier penalty exactly as the paper's metric prescribes);
/// otherwise the attribute with the most distinct generalized values is
/// generalized one more level.
#[derive(Debug, Clone)]
pub struct FullDomain {
    hierarchies: Vec<AttributeHierarchy>,
    max_suppressed: usize,
}

impl FullDomain {
    /// Creates a full-domain anonymizer. `hierarchies` must align 1:1 with
    /// the table's quasi-identifier columns (in schema order).
    pub fn new(hierarchies: Vec<AttributeHierarchy>, max_suppressed: usize) -> Self {
        FullDomain {
            hierarchies,
            max_suppressed,
        }
    }

    /// The generalization levels chosen by the most recent run are not
    /// stored (the anonymizer is stateless); this helper recomputes the
    /// signature table for inspection.
    pub fn signatures(&self, table: &Table, levels: &[usize]) -> Result<Vec<Vec<String>>> {
        let qi = table.schema().quasi_identifier_indices();
        if qi.len() != self.hierarchies.len() {
            return Err(AnonError::InvalidHierarchy(format!(
                "{} hierarchies for {} quasi-identifiers",
                self.hierarchies.len(),
                qi.len()
            )));
        }
        let mut out = Vec::with_capacity(table.len());
        for row in table.rows() {
            let mut sig = Vec::with_capacity(qi.len());
            for (h, &c) in self.hierarchies.iter().zip(&qi) {
                sig.push(
                    h.generalize_value(&row[c], levels[qi.iter().position(|&x| x == c).unwrap()])?,
                );
            }
            out.push(sig);
        }
        Ok(out)
    }
}

impl Anonymizer for FullDomain {
    fn name(&self) -> &'static str {
        "full-domain"
    }

    fn partition(&self, table: &Table, k: usize) -> Result<Partition> {
        if k == 0 {
            return Err(AnonError::InvalidK(k));
        }
        if table.len() < k {
            return Err(AnonError::NotEnoughRows {
                rows: table.len(),
                k,
            });
        }
        let qi = table.schema().quasi_identifier_indices();
        if qi.is_empty() {
            return Err(AnonError::NoQuasiIdentifiers);
        }
        if qi.len() != self.hierarchies.len() {
            return Err(AnonError::InvalidHierarchy(format!(
                "{} hierarchies for {} quasi-identifiers",
                self.hierarchies.len(),
                qi.len()
            )));
        }
        let mut levels = vec![0usize; qi.len()];
        loop {
            let sigs = self.signatures(table, &levels)?;
            let mut groups: HashMap<&[String], Vec<usize>> = HashMap::new();
            for (row, sig) in sigs.iter().enumerate() {
                groups.entry(sig.as_slice()).or_default().push(row);
            }
            let small: usize = groups
                .values()
                .filter(|rows| rows.len() < k)
                .map(|rows| rows.len())
                .sum();
            if small <= self.max_suppressed {
                // Done: sub-k rows become suppressed singletons.
                let mut classes: Vec<Vec<usize>> = Vec::new();
                for rows in groups.into_values() {
                    if rows.len() >= k {
                        classes.push(rows);
                    } else {
                        for r in rows {
                            classes.push(vec![r]);
                        }
                    }
                }
                // Deterministic order: by smallest member.
                classes.sort_by_key(|c| *c.iter().min().unwrap());
                return Partition::new(classes, table.len());
            }
            // Generalize the attribute with the most distinct values that
            // still has headroom.
            let mut best: Option<(usize, usize)> = None; // (distinct, attr)
            for (a, h) in self.hierarchies.iter().enumerate() {
                if levels[a] + 1 >= h.levels() {
                    continue;
                }
                let mut distinct: Vec<&String> = sigs.iter().map(|s| &s[a]).collect();
                distinct.sort();
                distinct.dedup();
                let d = distinct.len();
                if best.is_none_or(|(bd, _)| d > bd) {
                    best = Some((d, a));
                }
            }
            match best {
                Some((_, a)) => levels[a] += 1,
                None => {
                    // Everything at root and still sub-k groups beyond the
                    // suppression budget: suppress them anyway (root
                    // signature is identical for all, so this only happens
                    // when max_suppressed < rows in sub-k classes with all
                    // QIs at root — i.e. never for k <= n; defensive path).
                    let mut classes: Vec<Vec<usize>> = Vec::new();
                    for rows in groups.into_values() {
                        if rows.len() >= k {
                            classes.push(rows);
                        } else {
                            for r in rows {
                                classes.push(vec![r]);
                            }
                        }
                    }
                    classes.sort_by_key(|c| *c.iter().min().unwrap());
                    return Partition::new(classes, table.len());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_data::{Schema, Table, Value};

    fn hierarchy() -> Hierarchy {
        Hierarchy::two_level(&[
            ("Europe", &["France", "Germany"]),
            ("Asia", &["Japan", "India"]),
        ])
        .unwrap()
    }

    #[test]
    fn hierarchy_paths() {
        let h = hierarchy();
        assert_eq!(h.levels(), 3);
        assert_eq!(h.generalize("France", 0).unwrap(), "France");
        assert_eq!(h.generalize("France", 1).unwrap(), "Europe");
        assert_eq!(h.generalize("France", 2).unwrap(), "*");
        assert_eq!(h.generalize("Japan", 1).unwrap(), "Asia");
        assert!(h.generalize("France", 3).is_err());
        // Unknown value: itself at level 0, root above.
        assert_eq!(h.generalize("Mars", 0).unwrap(), "Mars");
        assert_eq!(h.generalize("Mars", 1).unwrap(), "*");
    }

    #[test]
    fn hierarchy_validation() {
        assert!(Hierarchy::new(vec![]).is_err());
        assert!(Hierarchy::new(vec![("a".into(), vec![])]).is_err());
        assert!(Hierarchy::new(vec![("a".into(), vec!["b".into()])]).is_err());
        assert!(Hierarchy::new(vec![
            ("a".into(), vec!["a".into(), "*".into()]),
            ("b".into(), vec!["b".into()]),
        ])
        .is_err());
        assert!(Hierarchy::new(vec![
            ("a".into(), vec!["a".into(), "*".into()]),
            ("a".into(), vec!["a".into(), "*".into()]),
        ])
        .is_err());
    }

    #[test]
    fn numeric_hierarchy_bins_double() {
        let h = NumericHierarchy::new(0.0, 10.0, 4).unwrap();
        assert_eq!(h.generalize(37.0, 0).unwrap(), "37");
        assert_eq!(h.generalize(37.0, 1).unwrap(), "30..40");
        assert_eq!(h.generalize(37.0, 2).unwrap(), "20..40");
        assert_eq!(h.generalize(37.0, 3).unwrap(), "0..40");
        assert!(h.generalize(37.0, 4).is_err());
        assert!(NumericHierarchy::new(0.0, 0.0, 3).is_err());
        assert!(NumericHierarchy::new(0.0, 1.0, 1).is_err());
    }

    fn people_table() -> Table {
        let schema = Schema::builder()
            .identifier("Name")
            .quasi_int("Age")
            .quasi_categorical("Country")
            .sensitive_numeric("Salary")
            .build()
            .unwrap();
        let rows = vec![
            ("p0", 23, "France", 50_000.0),
            ("p1", 27, "Germany", 52_000.0),
            ("p2", 24, "France", 51_000.0),
            ("p3", 26, "Germany", 49_000.0),
            ("p4", 61, "Japan", 90_000.0),
            ("p5", 67, "India", 95_000.0),
            ("p6", 63, "Japan", 88_000.0),
            ("p7", 66, "India", 93_000.0),
        ];
        Table::with_rows(
            schema,
            rows.into_iter()
                .map(|(n, a, c, s)| {
                    vec![
                        Value::Text(n.into()),
                        Value::Int(a),
                        Value::Categorical(c.into()),
                        Value::Float(s),
                    ]
                })
                .collect(),
        )
        .unwrap()
    }

    fn full_domain() -> FullDomain {
        FullDomain::new(
            vec![
                AttributeHierarchy::Numeric(NumericHierarchy::new(0.0, 5.0, 6).unwrap()),
                AttributeHierarchy::Categorical(hierarchy()),
            ],
            0,
        )
    }

    #[test]
    fn full_domain_reaches_k_anonymity() {
        let t = people_table();
        for k in [2usize, 4] {
            let p = full_domain().partition(&t, k).unwrap();
            assert!(p.satisfies_k(k), "k={k}: min class {}", p.min_class_size());
            assert_eq!(p.n_rows(), 8);
        }
    }

    #[test]
    fn full_domain_separates_age_groups_for_small_k() {
        let t = people_table();
        let p = full_domain().partition(&t, 4).unwrap();
        // Young Europeans vs old Asians should end in different classes.
        let class_of = p.class_of_rows();
        assert_eq!(class_of[0], class_of[1]);
        assert_ne!(class_of[0], class_of[4]);
    }

    #[test]
    fn suppression_budget_respected() {
        // One outlier (row 8) that never merges below root: with a budget of
        // 1 it gets suppressed rather than dragging everything to root.
        let schema = Schema::builder().quasi_int("Age").build().unwrap();
        let mut rows: Vec<Vec<Value>> = (0..6).map(|i| vec![Value::Int(20 + i)]).collect();
        rows.push(vec![Value::Int(90)]);
        let t = Table::with_rows(schema, rows).unwrap();
        let fd = FullDomain::new(
            vec![AttributeHierarchy::Numeric(
                NumericHierarchy::new(0.0, 10.0, 3).unwrap(),
            )],
            1,
        );
        let p = fd.partition(&t, 3).unwrap();
        // The outlier is a singleton; everyone else is in >= 3-classes.
        let sizes: Vec<usize> = p.classes().iter().map(Vec::len).collect();
        assert!(sizes.contains(&1));
        assert!(sizes.iter().filter(|&&s| s > 1).all(|&s| s >= 3));
    }

    #[test]
    fn mismatched_hierarchy_count_errors() {
        let t = people_table();
        let fd = FullDomain::new(vec![], 0);
        assert!(matches!(
            fd.partition(&t, 2),
            Err(AnonError::InvalidHierarchy(_))
        ));
    }
}
