//! Mondrian multidimensional k-anonymity (LeFevre, DeWitt, Ramakrishnan,
//! ICDE 2006) — reference [3] of the paper.
//!
//! Strict top-down greedy partitioning: recursively split the current class
//! on the quasi-identifier with the widest normalized range, at the median,
//! as long as both halves keep at least `k` records. Serves as the baseline
//! `Basic_Anonymization` alternative to MDAV in the ablation benches.

use crate::anonymizer::{numeric_qi_matrix, Anonymizer};
use crate::error::Result;
use crate::partition::Partition;
use fred_data::Table;

/// The Mondrian strict multidimensional partitioner.
#[derive(Debug, Clone, Default)]
pub struct Mondrian {
    _private: (),
}

impl Mondrian {
    /// Creates a Mondrian anonymizer.
    pub fn new() -> Self {
        Mondrian { _private: () }
    }
}

impl Anonymizer for Mondrian {
    fn name(&self) -> &'static str {
        "mondrian"
    }

    fn partition(&self, table: &Table, k: usize) -> Result<Partition> {
        let matrix = numeric_qi_matrix(table, k)?;
        let n = matrix.len();
        let dims = matrix[0].len();
        // Global ranges normalize the per-class spread so wide-scaled
        // attributes are not always chosen.
        let global_range: Vec<f64> = (0..dims)
            .map(|d| {
                let lo = matrix.iter().map(|r| r[d]).fold(f64::INFINITY, f64::min);
                let hi = matrix
                    .iter()
                    .map(|r| r[d])
                    .fold(f64::NEG_INFINITY, f64::max);
                hi - lo
            })
            .collect();

        let mut classes = Vec::new();
        let mut stack = vec![(0..n).collect::<Vec<usize>>()];
        while let Some(class) = stack.pop() {
            match split(&matrix, &global_range, &class, k) {
                Some((lhs, rhs)) => {
                    stack.push(lhs);
                    stack.push(rhs);
                }
                None => classes.push(class),
            }
        }
        Partition::new(classes, n)
    }
}

/// Attempts to split `class` into two halves of at least `k` rows each.
/// Dimensions are tried in decreasing order of normalized spread.
fn split(
    matrix: &[Vec<f64>],
    global_range: &[f64],
    class: &[usize],
    k: usize,
) -> Option<(Vec<usize>, Vec<usize>)> {
    if class.len() < 2 * k {
        return None;
    }
    let dims = matrix[0].len();
    let mut spreads: Vec<(f64, usize)> = (0..dims)
        .map(|d| {
            let lo = class
                .iter()
                .map(|&r| matrix[r][d])
                .fold(f64::INFINITY, f64::min);
            let hi = class
                .iter()
                .map(|&r| matrix[r][d])
                .fold(f64::NEG_INFINITY, f64::max);
            let norm = if global_range[d] > 0.0 {
                (hi - lo) / global_range[d]
            } else {
                0.0
            };
            (norm, d)
        })
        .collect();
    // Widest normalized spread first; ties by dimension index.
    spreads.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });

    for &(spread, d) in &spreads {
        if spread <= 0.0 {
            break; // all remaining dimensions are constant within the class
        }
        let mut values: Vec<f64> = class.iter().map(|&r| matrix[r][d]).collect();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = values[values.len() / 2];
        // Strict Mondrian: lhs <= median < rhs. If the median equals the
        // maximum (heavy ties), fall back to < median | >= median.
        let (mut lhs, mut rhs): (Vec<usize>, Vec<usize>) =
            class.iter().partition(|&&r| matrix[r][d] <= median);
        if rhs.len() < k || lhs.len() < k {
            let parts: (Vec<usize>, Vec<usize>) =
                class.iter().partition(|&&r| matrix[r][d] < median);
            lhs = parts.0;
            rhs = parts.1;
        }
        if lhs.len() >= k && rhs.len() >= k {
            return Some((lhs, rhs));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_data::{Schema, Table, Value};

    fn numeric_table(points: &[(f64, f64)]) -> Table {
        let schema = Schema::builder()
            .quasi_numeric("x")
            .quasi_numeric("y")
            .build()
            .unwrap();
        Table::with_rows(
            schema,
            points
                .iter()
                .map(|&(x, y)| vec![Value::Float(x), Value::Float(y)])
                .collect(),
        )
        .unwrap()
    }

    fn grid_table(n: usize) -> Table {
        let pts: Vec<(f64, f64)> = (0..n).map(|i| ((i % 10) as f64, (i / 10) as f64)).collect();
        numeric_table(&pts)
    }

    #[test]
    fn k_anonymity_always_holds() {
        for n in [4usize, 10, 37, 100] {
            for k in [2usize, 3, 7] {
                if n < k {
                    continue;
                }
                let t = grid_table(n);
                let p = Mondrian::new().partition(&t, k).unwrap();
                assert!(p.satisfies_k(k), "n={n} k={k}");
                assert_eq!(p.n_rows(), n);
            }
        }
    }

    #[test]
    fn splits_reduce_class_sizes() {
        let t = grid_table(100);
        let p = Mondrian::new().partition(&t, 5).unwrap();
        // Mondrian should produce many classes, not a single blob.
        assert!(
            p.len() >= 10,
            "expected fine partition, got {} classes",
            p.len()
        );
        // Strict Mondrian keeps classes below 2k whenever splits exist, but
        // ties can block splits; 100 distinct grid points have none.
        assert!(p.max_class_size() < 10);
    }

    #[test]
    fn constant_data_yields_single_class() {
        let pts = vec![(1.0, 1.0); 8];
        let t = numeric_table(&pts);
        let p = Mondrian::new().partition(&t, 2).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.max_class_size(), 8);
    }

    #[test]
    fn heavy_ties_still_satisfy_k() {
        // 6 records at x=0, 2 at x=1: median-splitting must not strand a
        // sub-k class.
        let pts = vec![
            (0.0, 0.0),
            (0.0, 0.0),
            (0.0, 0.0),
            (0.0, 0.0),
            (0.0, 0.0),
            (0.0, 0.0),
            (1.0, 0.0),
            (1.0, 0.0),
        ];
        let t = numeric_table(&pts);
        let p = Mondrian::new().partition(&t, 2).unwrap();
        assert!(p.satisfies_k(2));
    }

    #[test]
    fn separated_blobs_split_first() {
        let mut pts = Vec::new();
        for i in 0..4 {
            pts.push((i as f64 * 0.01, 0.0));
        }
        for i in 0..4 {
            pts.push((1000.0 + i as f64 * 0.01, 0.0));
        }
        let t = numeric_table(&pts);
        let p = Mondrian::new().partition(&t, 4).unwrap();
        assert_eq!(p.len(), 2);
        for class in p.classes() {
            let all_low = class.iter().all(|&r| r < 4);
            let all_high = class.iter().all(|&r| r >= 4);
            assert!(all_low || all_high);
        }
    }

    #[test]
    fn preconditions() {
        let t = grid_table(4);
        assert!(Mondrian::new().partition(&t, 0).is_err());
        assert!(Mondrian::new().partition(&t, 5).is_err());
    }
}
