//! t-closeness (Li, Li, Venkatasubramanian, ICDE 2007 — reference [7]).
//!
//! A partition is t-close when, in every equivalence class, the distribution
//! of the sensitive attribute is within Earth Mover's Distance `t` of the
//! global distribution. Numeric attributes use the ordered-distance EMD of
//! the original paper; categorical attributes use variational distance
//! (equal ground distance).

use crate::error::{AnonError, Result};
use crate::partition::Partition;
use fred_data::Table;
use std::collections::HashMap;

fn sensitive_column(table: &Table) -> Result<usize> {
    table
        .schema()
        .sensitive_indices()
        .first()
        .copied()
        .ok_or(AnonError::NoSensitiveAttribute)
}

/// EMD between two distributions over the *same ordered support* of `m`
/// values with unit adjacent distance, normalized by `m - 1`:
/// `(1/(m-1)) * Σ_i |Σ_{j<=i} (p_j - q_j)|`.
pub fn ordered_emd(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    let m = p.len();
    if m <= 1 {
        return 0.0;
    }
    let mut cum = 0.0;
    let mut total = 0.0;
    for i in 0..m {
        cum += p[i] - q[i];
        total += cum.abs();
    }
    total / (m - 1) as f64
}

/// Variational distance `0.5 * Σ |p_i - q_i|` (EMD with equal ground
/// distance, used for categorical attributes).
pub fn variational_distance(p: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(p.len(), q.len());
    0.5 * p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>()
}

/// The closeness of the partition: the maximum EMD between any class's
/// sensitive distribution and the global one. The partition is t-close iff
/// this value is at most `t`.
///
/// Numeric sensitive attributes use [`ordered_emd`] over the sorted distinct
/// observed values; categorical ones use [`variational_distance`].
pub fn closeness(table: &Table, partition: &Partition) -> Result<f64> {
    let sens = sensitive_column(table)?;
    if table.is_empty() {
        return Ok(0.0);
    }
    let numeric = table.rows().iter().all(|r| r[sens].as_f64().is_some());

    // Build the ordered support of distinct values (numeric: by value;
    // categorical: lexical — order is irrelevant for variational distance).
    let mut support: Vec<String> = table.column(sens).map(|v| v.to_string()).collect();
    if numeric {
        support.sort_by(|a, b| {
            let (x, y) = (
                a.parse::<f64>().unwrap_or(0.0),
                b.parse::<f64>().unwrap_or(0.0),
            );
            x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal)
        });
    } else {
        support.sort();
    }
    support.dedup();
    let index: HashMap<&str, usize> = support
        .iter()
        .enumerate()
        .map(|(i, s)| (s.as_str(), i))
        .collect();

    let mut global = vec![0.0; support.len()];
    for v in table.column(sens) {
        global[index[v.to_string().as_str()]] += 1.0;
    }
    let n = table.len() as f64;
    for g in &mut global {
        *g /= n;
    }

    let mut worst: f64 = 0.0;
    for class in partition.classes() {
        let mut dist = vec![0.0; support.len()];
        for &row in class {
            let label = table.cell(row, sens).expect("row in range").to_string();
            dist[index[label.as_str()]] += 1.0;
        }
        let cn = class.len() as f64;
        for d in &mut dist {
            *d /= cn;
        }
        let emd = if numeric {
            ordered_emd(&dist, &global)
        } else {
            variational_distance(&dist, &global)
        };
        worst = worst.max(emd);
    }
    Ok(worst)
}

/// Whether the partition is t-close.
pub fn is_t_close(table: &Table, partition: &Partition, t: f64) -> Result<bool> {
    Ok(closeness(table, partition)? <= t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_data::{Schema, Table, Value};

    #[test]
    fn ordered_emd_textbook_values() {
        // Distributions over {3k, 4k, 5k ... 11k} style ordered support.
        let p = [
            1.0 / 3.0,
            1.0 / 3.0,
            1.0 / 3.0,
            0.0,
            0.0,
            0.0,
            0.0,
            0.0,
            0.0,
        ];
        let q = [1.0 / 9.0; 9];
        let emd = ordered_emd(&p, &q);
        // Li et al. report 0.375 for the analogous {3,4,5}-in-{3..11} case.
        assert!((emd - 0.375).abs() < 1e-9, "got {emd}");
    }

    #[test]
    fn emd_identity_is_zero() {
        let p = [0.25, 0.25, 0.5];
        assert_eq!(ordered_emd(&p, &p), 0.0);
        assert_eq!(variational_distance(&p, &p), 0.0);
    }

    #[test]
    fn emd_symmetry() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.1, 0.1, 0.8];
        assert!((ordered_emd(&p, &q) - ordered_emd(&q, &p)).abs() < 1e-12);
        assert!((variational_distance(&p, &q) - variational_distance(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn variational_distance_bounds() {
        let p = [1.0, 0.0];
        let q = [0.0, 1.0];
        assert_eq!(variational_distance(&p, &q), 1.0);
    }

    fn numeric_table(values: &[f64]) -> Table {
        let schema = Schema::builder()
            .quasi_numeric("x")
            .sensitive_numeric("s")
            .build()
            .unwrap();
        Table::with_rows(
            schema,
            values
                .iter()
                .enumerate()
                .map(|(i, &s)| vec![Value::Float(i as f64), Value::Float(s)])
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn single_class_partition_is_zero_close() {
        let t = numeric_table(&[1.0, 2.0, 3.0, 4.0]);
        let p = Partition::single(4);
        assert_eq!(closeness(&t, &p).unwrap(), 0.0);
        assert!(is_t_close(&t, &p, 0.0).unwrap());
    }

    #[test]
    fn skewed_class_increases_closeness() {
        // Class {0,1} holds the two lowest values, {2,3} the two highest:
        // both deviate from the global distribution.
        let t = numeric_table(&[1.0, 2.0, 9.0, 10.0]);
        let skewed = Partition::new(vec![vec![0, 1], vec![2, 3]], 4).unwrap();
        let mixed = Partition::new(vec![vec![0, 3], vec![1, 2]], 4).unwrap();
        let c_skewed = closeness(&t, &skewed).unwrap();
        let c_mixed = closeness(&t, &mixed).unwrap();
        assert!(
            c_skewed > c_mixed,
            "skewed {c_skewed} should exceed mixed {c_mixed}"
        );
        assert!(c_skewed > 0.0);
    }

    #[test]
    fn categorical_uses_variational_distance() {
        let schema = Schema::builder()
            .quasi_numeric("x")
            .sensitive_categorical("s")
            .build()
            .unwrap();
        let t = Table::with_rows(
            schema,
            vec![
                vec![Value::Float(0.0), Value::Categorical("a".into())],
                vec![Value::Float(1.0), Value::Categorical("a".into())],
                vec![Value::Float(2.0), Value::Categorical("b".into())],
                vec![Value::Float(3.0), Value::Categorical("b".into())],
            ],
        )
        .unwrap();
        let p = Partition::new(vec![vec![0, 1], vec![2, 3]], 4).unwrap();
        // Each class is all-a or all-b vs global (0.5, 0.5): VD = 0.5.
        assert!((closeness(&t, &p).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn requires_sensitive_attribute() {
        let schema = Schema::builder().quasi_numeric("x").build().unwrap();
        let t = Table::with_rows(schema, vec![vec![Value::Float(0.0)]]).unwrap();
        assert!(matches!(
            closeness(&t, &Partition::single(1)),
            Err(AnonError::NoSensitiveAttribute)
        ));
    }
}
