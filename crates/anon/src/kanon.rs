//! K-anonymity verification over released tables.
//!
//! Given a *published* table (post-generalization), the equivalence classes
//! are recovered by grouping rows on the rendered quasi-identifier
//! signature; k-anonymity holds when the smallest group has at least `k`
//! members.

use crate::error::{AnonError, Result};
use crate::partition::Partition;
use fred_data::Table;
use std::collections::HashMap;

/// Recovers the equivalence classes of a released table by grouping rows on
/// their quasi-identifier signatures.
pub fn classes_from_release(table: &Table) -> Result<Partition> {
    let qi = table.schema().quasi_identifier_indices();
    if qi.is_empty() {
        return Err(AnonError::NoQuasiIdentifiers);
    }
    let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, row) in table.rows().iter().enumerate() {
        let mut sig = String::new();
        for &c in &qi {
            sig.push_str(&row[c].to_string());
            sig.push('\u{1f}'); // unit separator avoids accidental collisions
        }
        groups.entry(sig).or_default().push(i);
    }
    let mut classes: Vec<Vec<usize>> = groups.into_values().collect();
    classes.sort_by_key(|c| *c.iter().min().expect("non-empty class"));
    Partition::new(classes, table.len())
}

/// Whether the released table is k-anonymous with respect to its
/// quasi-identifiers.
pub fn is_k_anonymous(table: &Table, k: usize) -> Result<bool> {
    if k == 0 {
        return Err(AnonError::InvalidK(k));
    }
    if table.is_empty() {
        return Ok(true);
    }
    Ok(classes_from_release(table)?.satisfies_k(k))
}

/// The largest `k` for which the released table is k-anonymous (its
/// anonymity level). Empty tables report 0.
pub fn anonymity_level(table: &Table) -> Result<usize> {
    if table.is_empty() {
        return Ok(0);
    }
    Ok(classes_from_release(table)?.min_class_size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anonymizer::Anonymizer;
    use crate::mdav::Mdav;
    use crate::release::{build_release, QiStyle};
    use fred_data::{Schema, Table, Value};

    fn released_table() -> Table {
        // Two classes: [5-10] and [1-5].
        let schema = Schema::builder()
            .identifier("Name")
            .quasi_numeric("Vol")
            .sensitive_numeric("Income")
            .build()
            .unwrap();
        let iv_hi = Value::parse("[5-10]", fred_data::ValueKind::Interval).unwrap();
        let iv_lo = Value::parse("[1-5]", fred_data::ValueKind::Interval).unwrap();
        Table::with_rows(
            schema,
            vec![
                vec![Value::Text("a".into()), iv_hi.clone(), Value::Missing],
                vec![Value::Text("b".into()), iv_lo.clone(), Value::Missing],
                vec![Value::Text("c".into()), iv_hi, Value::Missing],
                vec![Value::Text("d".into()), iv_lo, Value::Missing],
            ],
        )
        .unwrap()
    }

    #[test]
    fn groups_by_qi_signature() {
        let t = released_table();
        let p = classes_from_release(&t).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.satisfies_k(2));
        let class_of = p.class_of_rows();
        assert_eq!(class_of[0], class_of[2]);
        assert_eq!(class_of[1], class_of[3]);
        assert_ne!(class_of[0], class_of[1]);
    }

    #[test]
    fn k_anonymity_checks() {
        let t = released_table();
        assert!(is_k_anonymous(&t, 2).unwrap());
        assert!(!is_k_anonymous(&t, 3).unwrap());
        assert_eq!(anonymity_level(&t).unwrap(), 2);
        assert!(is_k_anonymous(&t, 0).is_err());
    }

    #[test]
    fn empty_table_is_vacuously_anonymous() {
        let schema = Schema::builder().quasi_numeric("x").build().unwrap();
        let t = Table::new(schema);
        assert!(is_k_anonymous(&t, 5).unwrap());
        assert_eq!(anonymity_level(&t).unwrap(), 0);
    }

    #[test]
    fn mdav_release_verifies_k_anonymous() {
        let schema = Schema::builder()
            .quasi_numeric("x")
            .quasi_numeric("y")
            .sensitive_numeric("s")
            .build()
            .unwrap();
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| {
                vec![
                    Value::Float(i as f64),
                    Value::Float((i * i % 13) as f64),
                    Value::Float(1000.0 + i as f64),
                ]
            })
            .collect();
        let t = Table::with_rows(schema, rows).unwrap();
        for k in [2usize, 3, 5] {
            let p = Mdav::new().partition(&t, k).unwrap();
            let rel = build_release(&t, &p, k, QiStyle::Range).unwrap();
            assert!(is_k_anonymous(&rel.table, k).unwrap(), "k={k}");
        }
    }
}
