//! MDAV microaggregation (Maximum Distance to Average Vector).
//!
//! This is the "microaggregation based k-anonymization proposed in [9]"
//! (Domingo-Ferrer) that the paper's experiments use as the
//! `Basic_Anonymization` procedure. MDAV builds clusters of exactly `k`
//! records around the two mutually most-distant extremes, repeating until
//! fewer than `3k` records remain; the leftovers form one or two final
//! clusters of size in `[k, 2k-1]`.
//!
//! Distances are computed on column-wise z-score-normalized
//! quasi-identifiers so that attributes with large scales do not dominate.

use crate::anonymizer::{dist2, normalize_columns, numeric_qi_matrix, Anonymizer};
use crate::error::Result;
use crate::partition::Partition;
use fred_data::{ShardPlan, Table};
use rayon::prelude::*;

/// Minimum number of active rows before a distance scan is worth
/// fanning out to worker threads. The rayon shim keeps a persistent
/// worker pool (no per-call thread spawn), so handoff costs a channel
/// send + condvar wait and fan-out pays from a few thousand rows.
const PAR_SCAN_MIN_ROWS: usize = 4 * 1024;

/// The MDAV microaggregation anonymizer.
#[derive(Debug, Clone, Default)]
pub struct Mdav {
    /// When `false`, distances use raw attribute scales. Defaults to `true`.
    skip_normalization: bool,
}

impl Mdav {
    /// Creates an MDAV anonymizer with z-score normalization (recommended).
    pub fn new() -> Self {
        Mdav {
            skip_normalization: false,
        }
    }

    /// Creates an MDAV anonymizer that clusters on raw attribute scales.
    pub fn without_normalization() -> Self {
        Mdav {
            skip_normalization: true,
        }
    }
}

impl Mdav {
    /// The straightforward MDAV loop the optimized
    /// [`partition`](Anonymizer::partition) is pinned against: recomputes
    /// the centroid from scratch every round and selects each cluster by
    /// fully sorting the candidate distances. Kept public so equivalence
    /// property tests (and future anonymizer rewrites) can diff against
    /// the known-good semantics.
    pub fn partition_reference(&self, table: &Table, k: usize) -> Result<Partition> {
        let mut matrix = numeric_qi_matrix(table, k)?;
        if !self.skip_normalization {
            normalize_columns(&mut matrix);
        }
        let n = matrix.len();
        let mut selected = vec![false; n];
        let classes = reference_classes(&matrix, (0..n).collect(), &mut selected, k);
        Partition::new(classes, n)
    }

    /// Hierarchical MDAV: the rows are first recursively split along the
    /// widest-spread quasi-identifier dimension into at most
    /// [`ShardPlan::shards`] leaves (each at least `3k` rows, so every
    /// leaf clusters exactly like a standalone MDAV run), then the
    /// optimized MDAV loop runs independently inside each leaf and the
    /// per-leaf classes are concatenated in deterministic leaf order —
    /// the bounded cross-shard "merge" is that concatenation. Distance
    /// scans therefore touch `n / leaves` rows instead of `n`, turning
    /// the O(n·rounds) flat loop into a per-shard loop.
    ///
    /// With a single-shard plan the split is a no-op and the result is
    /// bit-identical to [`partition`](Anonymizer::partition); for any
    /// plan it is pinned bit-identical to
    /// [`partition_hierarchical_reference`](Mdav::partition_hierarchical_reference)
    /// by property test (same ulp caveat as the flat pair).
    pub fn partition_hierarchical(
        &self,
        table: &Table,
        k: usize,
        plan: &ShardPlan,
    ) -> Result<Partition> {
        let mut matrix = numeric_qi_matrix(table, k)?;
        if !self.skip_normalization {
            normalize_columns(&mut matrix);
        }
        let n = matrix.len();
        let dims = matrix[0].len();
        let leaves = split_leaves(&matrix, (0..n).collect(), plan.shards(), k);
        let mut classes: Vec<Vec<usize>> = Vec::with_capacity(n / k + 1);
        for leaf in leaves {
            fred_obs::counter("mdav.leaves", 1);
            let mut flat = Vec::with_capacity(leaf.len() * dims);
            for &r in &leaf {
                flat.extend_from_slice(&matrix[r]);
            }
            for class in pool_classes(flat, leaf.len(), dims, k) {
                classes.push(class.into_iter().map(|local| leaf[local]).collect());
            }
        }
        Partition::new(classes, n)
    }

    /// The reference twin of [`partition_hierarchical`](Mdav::partition_hierarchical):
    /// identical leaf split, but each leaf runs the straightforward
    /// [`partition_reference`](Mdav::partition_reference) loop over its
    /// global row ids. Equivalence tests diff the two.
    pub fn partition_hierarchical_reference(
        &self,
        table: &Table,
        k: usize,
        plan: &ShardPlan,
    ) -> Result<Partition> {
        let mut matrix = numeric_qi_matrix(table, k)?;
        if !self.skip_normalization {
            normalize_columns(&mut matrix);
        }
        let n = matrix.len();
        let leaves = split_leaves(&matrix, (0..n).collect(), plan.shards(), k);
        let mut selected = vec![false; n];
        let mut classes: Vec<Vec<usize>> = Vec::with_capacity(n / k + 1);
        for leaf in leaves {
            classes.extend(reference_classes(&matrix, leaf, &mut selected, k));
        }
        Partition::new(classes, n)
    }
}

/// [`Mdav`] in hierarchical mode packaged as a drop-in [`Anonymizer`]:
/// the composition stack selects it for large sweeps where the flat
/// MDAV loop's full-pool distance scans dominate.
#[derive(Debug, Clone)]
pub struct HierarchicalMdav {
    inner: Mdav,
    plan: ShardPlan,
}

impl HierarchicalMdav {
    /// Hierarchical MDAV with z-score normalization, splitting into at
    /// most `plan.shards()` leaves.
    pub fn new(plan: ShardPlan) -> Self {
        HierarchicalMdav {
            inner: Mdav::new(),
            plan,
        }
    }

    /// The shard plan driving the leaf split.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }
}

impl Anonymizer for HierarchicalMdav {
    fn name(&self) -> &'static str {
        "mdav_hier"
    }

    fn partition(&self, table: &Table, k: usize) -> Result<Partition> {
        self.inner.partition_hierarchical(table, k, &self.plan)
    }
}

impl Anonymizer for Mdav {
    fn name(&self) -> &'static str {
        "mdav"
    }

    /// The optimized MDAV loop: quasi-identifiers live in one contiguous
    /// row-major buffer, the global centroid is maintained incrementally
    /// as clusters leave the pool, each cluster is selected with
    /// `select_nth_unstable` (O(n) expected) instead of a full sort, and
    /// removal is a swap-remove over a dense index set. Distance scans fan
    /// out across threads once the active pool is large enough.
    ///
    /// Ties are broken by row index everywhere (farthest scans pick the
    /// lowest-index maximum, nearest selection orders by `(distance, row)`),
    /// matching [`partition_reference`](Mdav::partition_reference); the
    /// equivalence is pinned by property test over random tables. One
    /// caveat: the incrementally maintained centroid can differ from the
    /// reference's fresh per-round fold by an ulp, so on *adversarially
    /// symmetric* normalized data (rows exactly equidistant from the pool
    /// centroid) the two implementations may break such a tie differently
    /// and produce different — equally valid — partitions. Continuous or
    /// raw-integer attribute data is unaffected (ties are measure-zero,
    /// and integer sums are exact in `f64`).
    fn partition(&self, table: &Table, k: usize) -> Result<Partition> {
        let mut matrix = numeric_qi_matrix(table, k)?;
        if !self.skip_normalization {
            normalize_columns(&mut matrix);
        }
        let n = matrix.len();
        let dims = matrix[0].len();
        let mut flat = Vec::with_capacity(n * dims);
        for row in &matrix {
            flat.extend_from_slice(row);
        }
        drop(matrix);
        let classes = pool_classes(flat, n, dims, k);
        Partition::new(classes, n)
    }
}

/// The optimized MDAV loop over a prepared flat point buffer: returns
/// classes of *local* ids `0..n` (the caller maps them back to table
/// rows when the buffer is a leaf subset).
fn pool_classes(flat: Vec<f64>, n: usize, dims: usize, k: usize) -> Vec<Vec<usize>> {
    let mut pool = ActivePool::new(flat, n, dims);
    let mut scored: Vec<(f64, u32)> = Vec::with_capacity(n);
    let mut centroid = vec![0.0f64; dims];
    let mut classes: Vec<Vec<usize>> = Vec::with_capacity(n / k + 1);

    while pool.len() >= 3 * k {
        fred_obs::counter("mdav.rounds", 1);
        pool.centroid_into(&mut centroid);
        let r = pool.farthest_from(&centroid);
        let cluster_r = pool.take_nearest(r, k, &mut scored, true);
        // `s`: the record farthest from `r` among what is left. The
        // scored buffer still holds every pre-removal distance to `r`,
        // so the scan is a reduce over it (skipping the rows just
        // removed) instead of a fresh distance pass.
        let s = pool.farthest_in_scored(&scored);
        let cluster_s = pool.take_nearest(s, k, &mut scored, false);
        classes.push(cluster_r);
        classes.push(cluster_s);
    }

    if pool.len() >= 2 * k {
        // Final stage: at most `3k - 1` rows remain, and with `k = 1`
        // the two leftovers are exactly equidistant from their
        // midpoint — a structural tie the incremental sum (off by an
        // ulp from the reference's fresh fold) would break the wrong
        // way. A fresh ascending-order fold is O(k·dims) here and
        // bit-identical to the reference by construction.
        pool.centroid_fresh_into(&mut centroid);
        let r = pool.farthest_from(&centroid);
        let cluster_r = pool.take_nearest(r, k, &mut scored, false);
        classes.push(cluster_r);
        classes.push(pool.drain_sorted());
    } else if !pool.is_empty() {
        classes.push(pool.drain_sorted());
    }

    classes
}

/// The straightforward MDAV loop over the row subset `remaining` of a
/// prepared (normalized) matrix. `selected` is an all-false scratch mask
/// of table size, restored before returning. Classes carry the global
/// row ids from `remaining`.
fn reference_classes(
    matrix: &[Vec<f64>],
    mut remaining: Vec<usize>,
    selected: &mut [bool],
    k: usize,
) -> Vec<Vec<usize>> {
    let mut classes: Vec<Vec<usize>> = Vec::with_capacity(remaining.len() / k + 1);

    while remaining.len() >= 3 * k {
        let centroid = centroid_of(matrix, &remaining);
        let r = farthest_from_point(matrix, &remaining, &centroid);
        let cluster_r = take_nearest(matrix, &mut remaining, selected, r, k);
        // `s`: the record farthest from `r` among what is left.
        let s = farthest_from_row(matrix, &remaining, &matrix[r]);
        let cluster_s = take_nearest(matrix, &mut remaining, selected, s, k);
        classes.push(cluster_r);
        classes.push(cluster_s);
    }

    if remaining.len() >= 2 * k {
        let centroid = centroid_of(matrix, &remaining);
        let r = farthest_from_point(matrix, &remaining, &centroid);
        let cluster_r = take_nearest(matrix, &mut remaining, selected, r, k);
        classes.push(cluster_r);
        classes.push(std::mem::take(&mut remaining));
    } else if !remaining.is_empty() {
        classes.push(std::mem::take(&mut remaining));
    }

    classes
}

/// Recursively splits `rows` into at most `parts` leaves for
/// hierarchical MDAV. Each split picks the dimension with the widest
/// value spread among the node's rows (ties to the lowest dimension),
/// orders the rows by `(value, row)` along it, and cuts proportionally
/// to the leaf budget of each side. A node stops splitting when its
/// budget reaches one leaf or when a cut would leave a side below `3k`
/// rows — so every leaf is big enough to run the full three-phase MDAV
/// loop, keeping per-leaf cluster sizes in the same `[k, 2k-1]` bounds
/// as a flat run. Leaves come back in deterministic left-to-right order
/// with their rows ascending (the fold order both MDAV loops assume).
fn split_leaves(matrix: &[Vec<f64>], rows: Vec<usize>, parts: usize, k: usize) -> Vec<Vec<usize>> {
    let mut leaves = Vec::with_capacity(parts);
    split_rec(matrix, rows, parts, 3 * k, &mut leaves);
    leaves
}

fn split_rec(
    matrix: &[Vec<f64>],
    rows: Vec<usize>,
    parts: usize,
    min_leaf: usize,
    out: &mut Vec<Vec<usize>>,
) {
    if parts <= 1 || rows.len() < 2 * min_leaf {
        out.push(rows);
        return;
    }
    let dims = matrix[0].len();
    let (split_dim, _) = (0..dims)
        .map(|d| {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for &r in &rows {
                let v = matrix[r][d];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            (d, hi - lo)
        })
        .fold((0, f64::NEG_INFINITY), |best, cand| {
            if cand.1 > best.1 {
                cand
            } else {
                best
            }
        });
    let left_parts = parts / 2;
    let right_parts = parts - left_parts;
    let target_left = (rows.len() * left_parts / parts).clamp(min_leaf, rows.len() - min_leaf);
    let mut sorted = rows;
    sorted.sort_by(|&a, &b| {
        matrix[a][split_dim]
            .partial_cmp(&matrix[b][split_dim])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut right = sorted.split_off(target_left);
    let mut left = sorted;
    left.sort_unstable();
    right.sort_unstable();
    split_rec(matrix, left, left_parts, min_leaf, out);
    split_rec(matrix, right, right_parts, min_leaf, out);
}

/// The dense set of rows MDAV has not yet clustered. Points are kept
/// *compacted*: `pts[p*dims..]` is the point of `rows[p]`, and removal
/// swap-removes both in lockstep, so every distance scan streams over
/// contiguous memory. The per-dimension sum is maintained incrementally
/// so the global centroid never needs a full recompute.
struct ActivePool {
    dims: usize,
    /// Worker-thread budget for the parallel scans (cached once).
    width: usize,
    /// Compacted point storage, position-aligned with `rows`.
    pts: Vec<f64>,
    /// Active row ids, in arbitrary order (swap-remove).
    rows: Vec<u32>,
    /// `pos[row]` = index of `row` in `rows` (u32::MAX when removed).
    pos: Vec<u32>,
    /// Per-dimension sum over the active rows.
    sum: Vec<f64>,
}

/// Largest cluster size routed through the fused scan-and-select heap;
/// beyond this, `select_nth_unstable` over the scored buffer wins.
const TOP_K_HEAP_MAX: usize = 32;

/// Bounded k-smallest tracker under the `(distance, row)` total order:
/// a candidate enters only by beating the current worst member, so the
/// final contents are exactly the unique k-smallest set.
struct TopK {
    k: usize,
    items: Vec<(f64, u32)>,
    /// Index of the current worst (largest) member once full.
    worst: usize,
}

impl TopK {
    fn new(k: usize) -> Self {
        TopK {
            k,
            items: Vec::with_capacity(k),
            worst: 0,
        }
    }

    #[inline]
    fn offer(&mut self, d: f64, r: u32) {
        if self.items.len() < self.k {
            self.items.push((d, r));
            if self.items.len() == self.k {
                self.find_worst();
            }
        } else {
            let (wd, wr) = self.items[self.worst];
            if d < wd || (d == wd && r < wr) {
                self.items[self.worst] = (d, r);
                self.find_worst();
            }
        }
    }

    fn find_worst(&mut self) {
        let mut wi = 0;
        for i in 1..self.items.len() {
            let (d, r) = self.items[i];
            let (wd, wr) = self.items[wi];
            if d > wd || (d == wd && r > wr) {
                wi = i;
            }
        }
        self.worst = wi;
    }

    fn into_vec(self) -> Vec<(f64, u32)> {
        self.items
    }
}

/// `(distance, row)` max under the reference tie rule: strictly greater
/// distance wins, equal distance goes to the lower row id. The rule is a
/// total order, so any scan order — sequential, chunked, or over a
/// permuted buffer — produces the same winner.
#[inline]
fn better(d: f64, r: u32, best_d: f64, best_r: u32) -> bool {
    d > best_d || (d == best_d && r < best_r)
}

impl ActivePool {
    fn new(flat: Vec<f64>, n: usize, dims: usize) -> Self {
        let mut sum = vec![0.0f64; dims];
        // Ascending-row fold: the first centroid matches the reference
        // implementation bit-for-bit.
        for r in 0..n {
            for (d, s) in sum.iter_mut().enumerate() {
                *s += flat[r * dims + d];
            }
        }
        ActivePool {
            dims,
            // Effective pool width (honors RAYON_NUM_THREADS) — ranges
            // split for more workers than exist would run sequentially.
            width: rayon::current_num_threads(),
            pts: flat,
            rows: (0..n as u32).collect(),
            pos: (0..n as u32).collect(),
            sum,
        }
    }

    fn len(&self) -> usize {
        self.rows.len()
    }

    fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The point of an *active* row (by row id, through the position map).
    #[inline]
    fn point(&self, row: u32) -> &[f64] {
        let p = self.pos[row as usize] as usize;
        &self.pts[p * self.dims..(p + 1) * self.dims]
    }

    fn centroid_into(&self, out: &mut [f64]) {
        let len = self.rows.len() as f64;
        for (o, &s) in out.iter_mut().zip(&self.sum) {
            *o = s / len;
        }
    }

    /// Centroid recomputed from scratch in ascending row order — the
    /// exact fold the reference implementation performs.
    fn centroid_fresh_into(&self, out: &mut [f64]) {
        let mut sorted: Vec<u32> = self.rows.clone();
        sorted.sort_unstable();
        out.fill(0.0);
        for &r in &sorted {
            let point = self.point(r);
            for (o, &v) in out.iter_mut().zip(point) {
                *o += v;
            }
        }
        let len = self.rows.len() as f64;
        for o in out.iter_mut() {
            *o /= len;
        }
    }

    /// Id of the active row farthest from `point` (ties to the lowest id).
    fn farthest_from(&self, point: &[f64]) -> u32 {
        let reduce = |lo: usize, hi: usize| -> (f64, u32) {
            let mut best_d = -1.0;
            let mut best = self.rows[lo];
            for (p, chunk) in self.pts[lo * self.dims..hi * self.dims]
                .chunks_exact(self.dims)
                .enumerate()
            {
                let d = dist2(chunk, point);
                let r = self.rows[lo + p];
                if better(d, r, best_d, best) {
                    best_d = d;
                    best = r;
                }
            }
            (best_d, best)
        };
        let partials: Vec<(f64, u32)> = match self.par_ranges() {
            Some(ranges) => ranges
                .into_par_iter()
                .map(|range| reduce(range.start, range.end))
                .collect(),
            None => vec![reduce(0, self.rows.len())],
        };
        let mut best = partials[0];
        for &(d, r) in &partials[1..] {
            if better(d, r, best.0, best.1) {
                best = (d, r);
            }
        }
        best.1
    }

    /// Id of the not-yet-removed row with the maximal recorded distance in
    /// `scored` (ties to the lowest id): re-uses the distances-to-`r` scan
    /// of the preceding [`take_nearest`](Self::take_nearest) to pick the
    /// next anchor `s` without touching the point buffer again.
    fn farthest_in_scored(&self, scored: &[(f64, u32)]) -> u32 {
        let mut best_d = -1.0;
        let mut best = u32::MAX;
        for &(d, r) in scored {
            if self.pos[r as usize] != u32::MAX && better(d, r, best_d, best) {
                best_d = d;
                best = r;
            }
        }
        debug_assert!(best != u32::MAX, "scored held only removed rows");
        best
    }

    /// Removes `anchor` and its `k-1` nearest active neighbours,
    /// returning them ordered by `(distance, row)` exactly like the
    /// reference full-sort selection. When `keep_scored` is set, `scored`
    /// is left holding the pre-removal `(distance, row)` pair of *every*
    /// scanned row (the input to [`farthest_in_scored`](Self::farthest_in_scored)).
    ///
    /// Selection runs through a bounded worst-out heap fused into the
    /// distance scan for small `k` (one pass, no full materialization),
    /// falling back to `select_nth_unstable` over the scored buffer for
    /// large `k`. Both compute the unique k-smallest set under the
    /// `(distance, row)` total order, so the cluster is identical.
    fn take_nearest(
        &mut self,
        anchor: u32,
        k: usize,
        scored: &mut Vec<(f64, u32)>,
        keep_scored: bool,
    ) -> Vec<usize> {
        let anchor_point = self.point(anchor).to_vec();
        let cmp = |a: &(f64, u32), b: &(f64, u32)| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        };
        let mut selected: Vec<(f64, u32)>;
        if !keep_scored && k <= TOP_K_HEAP_MAX && self.rows.len() > k {
            // Fused scan + bounded selection: track the k best seen so
            // far; a candidate only enters if it beats the current worst.
            let mut heap = TopK::new(k);
            for (chunk, &r) in self.pts.chunks_exact(self.dims).zip(&self.rows) {
                heap.offer(dist2(chunk, &anchor_point), r);
            }
            selected = heap.into_vec();
            selected.sort_unstable_by(cmp);
        } else {
            scored.clear();
            match self.par_ranges() {
                Some(ranges) => {
                    let parts: Vec<Vec<(f64, u32)>> = ranges
                        .into_par_iter()
                        .map(|range| {
                            self.pts[range.start * self.dims..range.end * self.dims]
                                .chunks_exact(self.dims)
                                .enumerate()
                                .map(|(p, chunk)| {
                                    (dist2(chunk, &anchor_point), self.rows[range.start + p])
                                })
                                .collect::<Vec<_>>()
                        })
                        .collect();
                    for part in parts {
                        scored.extend(part);
                    }
                }
                None => {
                    scored.extend(
                        self.pts
                            .chunks_exact(self.dims)
                            .zip(&self.rows)
                            .map(|(chunk, &r)| (dist2(chunk, &anchor_point), r)),
                    );
                }
            }
            if scored.len() > k {
                scored.select_nth_unstable_by(k - 1, cmp);
            }
            let take = k.min(scored.len());
            selected = scored[..take].to_vec();
            selected.sort_unstable_by(cmp);
        }
        let cluster: Vec<usize> = selected.iter().map(|&(_, r)| r as usize).collect();
        for &row in cluster.iter() {
            self.remove(row as u32);
        }
        cluster
    }

    fn remove(&mut self, row: u32) {
        let p = self.pos[row as usize] as usize;
        debug_assert!(p != u32::MAX as usize, "row removed twice");
        let last = self.rows.len() - 1;
        // Update the incremental sum from the still-valid point slot.
        {
            let base = p * self.dims;
            for (d, s) in self.sum.iter_mut().enumerate() {
                *s -= self.pts[base + d];
            }
        }
        // Swap-remove the id and its point in lockstep.
        self.rows.swap_remove(p);
        if p != last {
            let (head, tail) = self.pts.split_at_mut(last * self.dims);
            head[p * self.dims..(p + 1) * self.dims].copy_from_slice(&tail[..self.dims]);
            self.pos[self.rows[p] as usize] = p as u32;
        }
        self.pts.truncate(last * self.dims);
        self.pos[row as usize] = u32::MAX;
    }

    /// Removes every remaining row, returned in ascending row order (the
    /// order the reference implementation's retain-based pool preserves).
    fn drain_sorted(&mut self) -> Vec<usize> {
        let mut rest: Vec<usize> = self.rows.drain(..).map(|r| r as usize).collect();
        for &r in &rest {
            self.pos[r] = u32::MAX;
        }
        self.pts.clear();
        rest.sort_unstable();
        rest
    }

    /// Position ranges for a parallel distance scan, or `None` when the
    /// pool is too small (or the machine too narrow) for fan-out to pay.
    fn par_ranges(&self) -> Option<Vec<std::ops::Range<usize>>> {
        let n = self.rows.len();
        if self.width <= 1 || n < PAR_SCAN_MIN_ROWS {
            return None;
        }
        let chunk = n.div_ceil(self.width);
        Some(
            (0..n)
                .step_by(chunk)
                .map(|lo| lo..(lo + chunk).min(n))
                .collect(),
        )
    }
}

fn centroid_of(matrix: &[Vec<f64>], rows: &[usize]) -> Vec<f64> {
    let dims = matrix[0].len();
    let mut c = vec![0.0; dims];
    for &r in rows {
        for (d, v) in matrix[r].iter().enumerate() {
            c[d] += v;
        }
    }
    for v in &mut c {
        *v /= rows.len() as f64;
    }
    c
}

fn farthest_from_point(matrix: &[Vec<f64>], rows: &[usize], point: &[f64]) -> usize {
    let mut best = rows[0];
    let mut best_d = -1.0;
    for &r in rows {
        let d = dist2(&matrix[r], point);
        if d > best_d {
            best_d = d;
            best = r;
        }
    }
    best
}

fn farthest_from_row(matrix: &[Vec<f64>], rows: &[usize], anchor: &[f64]) -> usize {
    farthest_from_point(matrix, rows, anchor)
}

/// Removes `anchor` and its `k-1` nearest neighbours from `remaining`,
/// returning them as a cluster. `anchor` must be present in `remaining`.
/// `selected` is an all-false scratch mask of table size; it is restored
/// to all-false before returning, so one allocation serves every cluster
/// (the retain test is O(1) per row instead of an O(k) `contains` scan).
fn take_nearest(
    matrix: &[Vec<f64>],
    remaining: &mut Vec<usize>,
    selected: &mut [bool],
    anchor: usize,
    k: usize,
) -> Vec<usize> {
    // Sort candidates by distance to the anchor; ties broken by row index so
    // the algorithm is fully deterministic.
    let anchor_point = matrix[anchor].clone();
    let mut scored: Vec<(f64, usize)> = remaining
        .iter()
        .map(|&r| (dist2(&matrix[r], &anchor_point), r))
        .collect();
    scored.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    let cluster: Vec<usize> = scored.iter().take(k).map(|&(_, r)| r).collect();
    for &r in &cluster {
        selected[r] = true;
    }
    remaining.retain(|&r| !selected[r]);
    for &r in &cluster {
        selected[r] = false;
    }
    cluster
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_data::{Schema, Table, Value};

    fn numeric_table(points: &[(f64, f64)]) -> Table {
        let schema = Schema::builder()
            .quasi_numeric("x")
            .quasi_numeric("y")
            .build()
            .unwrap();
        Table::with_rows(
            schema,
            points
                .iter()
                .map(|&(x, y)| vec![Value::Float(x), Value::Float(y)])
                .collect(),
        )
        .unwrap()
    }

    fn linear_table(n: usize) -> Table {
        let pts: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, 2.0 * i as f64)).collect();
        numeric_table(&pts)
    }

    #[test]
    fn cluster_sizes_bounded_by_k_and_2k_minus_1() {
        for n in [6usize, 7, 10, 23, 50] {
            for k in [2usize, 3, 5] {
                if n < k {
                    continue;
                }
                let t = linear_table(n);
                let p = Mdav::new().partition(&t, k).unwrap();
                assert!(p.satisfies_k(k), "n={n} k={k} violated k");
                assert!(
                    p.max_class_size() < 2 * k,
                    "n={n} k={k}: max class {} > 2k-1",
                    p.max_class_size()
                );
                assert_eq!(p.n_rows(), n);
            }
        }
    }

    #[test]
    fn k_equal_to_n_gives_single_class() {
        let t = linear_table(5);
        let p = Mdav::new().partition(&t, 5).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.max_class_size(), 5);
    }

    #[test]
    fn two_well_separated_blobs_are_separated() {
        let mut pts = Vec::new();
        for i in 0..4 {
            pts.push((i as f64 * 0.1, i as f64 * 0.1));
        }
        for i in 0..4 {
            pts.push((100.0 + i as f64 * 0.1, 100.0 + i as f64 * 0.1));
        }
        let t = numeric_table(&pts);
        let p = Mdav::new().partition(&t, 4).unwrap();
        assert_eq!(p.len(), 2);
        for class in p.classes() {
            let all_low = class.iter().all(|&r| r < 4);
            let all_high = class.iter().all(|&r| r >= 4);
            assert!(all_low || all_high, "cluster mixes blobs: {class:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let t = linear_table(20);
        let p1 = Mdav::new().partition(&t, 3).unwrap();
        let p2 = Mdav::new().partition(&t, 3).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn errors_bubble_up() {
        let t = linear_table(4);
        assert!(Mdav::new().partition(&t, 0).is_err());
        assert!(Mdav::new().partition(&t, 5).is_err());
    }

    #[test]
    fn without_normalization_uses_raw_scale() {
        // y spans a much wider range; without normalization it dominates,
        // with normalization both contribute equally. The two configs should
        // produce different clusterings on this adversarial layout.
        let pts = [(0.0, 0.0), (1.0, 1000.0), (0.1, 1000.0), (1.1, 0.0)];
        let t = numeric_table(&pts);
        let raw = Mdav::without_normalization().partition(&t, 2).unwrap();
        // Raw scale: rows pair by y (0 with 3, 1 with 2).
        let mut classes: Vec<Vec<usize>> = raw.classes().to_vec();
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort();
        assert_eq!(classes, vec![vec![0, 3], vec![1, 2]]);
    }

    /// Tie-free irregular points: a linear ramp with a large deterministic
    /// jitter, so no two rows are equidistant from any centroid. (On
    /// *exactly* symmetric layouts the optimized path's incrementally
    /// maintained centroid can differ from the reference's fresh sum by an
    /// ulp and break a distance tie the other way — real data has no such
    /// ties, and the equivalence proptest mirrors that.)
    fn jittered_table(n: usize) -> Table {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut jitter = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| (i as f64 + jitter(), 2.0 * i as f64 + 3.0 * jitter()))
            .collect();
        numeric_table(&pts)
    }

    #[test]
    fn optimized_matches_reference_on_fixtures() {
        for n in [6usize, 7, 10, 23, 50, 101] {
            for k in [1usize, 2, 3, 5, 7] {
                if n < k {
                    continue;
                }
                let jt = jittered_table(n);
                for m in [Mdav::new(), Mdav::without_normalization()] {
                    let fast = m.partition(&jt, k).unwrap();
                    let reference = m.partition_reference(&jt, k).unwrap();
                    assert_eq!(fast, reference, "jittered n={n} k={k}");
                }
                // Integer-valued data without normalization: every sum and
                // difference is exact in f64, so even the tie-heavy linear
                // ramp must match bit-for-bit.
                let lt = linear_table(n);
                let m = Mdav::without_normalization();
                let fast = m.partition(&lt, k).unwrap();
                let reference = m.partition_reference(&lt, k).unwrap();
                assert_eq!(fast, reference, "linear n={n} k={k}");
            }
        }
    }

    #[test]
    fn identity_when_k_is_one() {
        let t = linear_table(4);
        let p = Mdav::new().partition(&t, 1).unwrap();
        assert!(p.satisfies_k(1));
        assert_eq!(p.n_rows(), 4);
        // k=1 MDAV still caps classes at 2k-1 = 1.
        assert_eq!(p.max_class_size(), 1);
    }

    use fred_data::ShardPlan;

    #[test]
    fn hierarchical_single_shard_is_flat() {
        let plan = ShardPlan::single();
        for n in [7usize, 23, 60] {
            for k in [1usize, 2, 4] {
                let t = jittered_table(n);
                let m = Mdav::new();
                assert_eq!(
                    m.partition_hierarchical(&t, k, &plan).unwrap(),
                    m.partition(&t, k).unwrap(),
                    "optimized n={n} k={k}"
                );
                assert_eq!(
                    m.partition_hierarchical_reference(&t, k, &plan).unwrap(),
                    m.partition_reference(&t, k).unwrap(),
                    "reference n={n} k={k}"
                );
            }
        }
    }

    #[test]
    fn hierarchical_optimized_matches_reference() {
        for n in [30usize, 81, 150] {
            for k in [2usize, 3, 5] {
                for shards in [2usize, 3, 4, 7] {
                    let plan = ShardPlan::new(shards, 11);
                    let t = jittered_table(n);
                    for m in [Mdav::new(), Mdav::without_normalization()] {
                        let fast = m.partition_hierarchical(&t, k, &plan).unwrap();
                        let reference = m.partition_hierarchical_reference(&t, k, &plan).unwrap();
                        assert_eq!(fast, reference, "n={n} k={k} shards={shards}");
                    }
                }
            }
        }
    }

    #[test]
    fn hierarchical_cluster_sizes_stay_bounded() {
        for n in [24usize, 50, 120] {
            for k in [2usize, 3, 5] {
                for shards in [2usize, 4, 8] {
                    let plan = ShardPlan::new(shards, 3);
                    let t = jittered_table(n);
                    let p = Mdav::new().partition_hierarchical(&t, k, &plan).unwrap();
                    assert!(p.satisfies_k(k), "n={n} k={k} shards={shards} violated k");
                    assert!(
                        p.max_class_size() < 2 * k,
                        "n={n} k={k} shards={shards}: max class {} > 2k-1",
                        p.max_class_size()
                    );
                    assert_eq!(p.n_rows(), n);
                }
            }
        }
    }

    #[test]
    fn hierarchical_small_input_collapses_to_single_leaf() {
        // n < 6k: no cut can keep both sides at 3k, so the split is a
        // no-op and the result must equal the flat run exactly.
        let t = jittered_table(11);
        let plan = ShardPlan::new(8, 0);
        let m = Mdav::new();
        assert_eq!(
            m.partition_hierarchical(&t, 2, &plan).unwrap(),
            m.partition(&t, 2).unwrap()
        );
    }

    #[test]
    fn hierarchical_anonymizer_wrapper_delegates() {
        let plan = ShardPlan::new(3, 7);
        let t = jittered_table(40);
        let wrapped = HierarchicalMdav::new(plan);
        assert_eq!(wrapped.name(), "mdav_hier");
        assert_eq!(wrapped.plan().shards(), 3);
        assert_eq!(
            wrapped.partition(&t, 3).unwrap(),
            Mdav::new().partition_hierarchical(&t, 3, &plan).unwrap()
        );
    }

    #[test]
    fn split_leaves_cover_rows_exactly_once() {
        let t = jittered_table(90);
        let mut matrix = numeric_qi_matrix(&t, 3).unwrap();
        normalize_columns(&mut matrix);
        let leaves = split_leaves(&matrix, (0..90).collect(), 4, 3);
        assert!(leaves.len() <= 4 && !leaves.is_empty());
        let mut seen = [false; 90];
        for leaf in &leaves {
            assert!(leaf.len() >= 9, "leaf below 3k: {}", leaf.len());
            assert!(leaf.windows(2).all(|w| w[0] < w[1]), "leaf not ascending");
            for &r in leaf {
                assert!(!seen[r], "row {r} in two leaves");
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some row missing from leaves");
    }
}
