//! MDAV microaggregation (Maximum Distance to Average Vector).
//!
//! This is the "microaggregation based k-anonymization proposed in [9]"
//! (Domingo-Ferrer) that the paper's experiments use as the
//! `Basic_Anonymization` procedure. MDAV builds clusters of exactly `k`
//! records around the two mutually most-distant extremes, repeating until
//! fewer than `3k` records remain; the leftovers form one or two final
//! clusters of size in `[k, 2k-1]`.
//!
//! Distances are computed on column-wise z-score-normalized
//! quasi-identifiers so that attributes with large scales do not dominate.

use crate::anonymizer::{dist2, normalize_columns, numeric_qi_matrix, Anonymizer};
use crate::error::Result;
use crate::partition::Partition;
use fred_data::Table;

/// The MDAV microaggregation anonymizer.
#[derive(Debug, Clone, Default)]
pub struct Mdav {
    /// When `false`, distances use raw attribute scales. Defaults to `true`.
    skip_normalization: bool,
}

impl Mdav {
    /// Creates an MDAV anonymizer with z-score normalization (recommended).
    pub fn new() -> Self {
        Mdav {
            skip_normalization: false,
        }
    }

    /// Creates an MDAV anonymizer that clusters on raw attribute scales.
    pub fn without_normalization() -> Self {
        Mdav {
            skip_normalization: true,
        }
    }
}

impl Anonymizer for Mdav {
    fn name(&self) -> &'static str {
        "mdav"
    }

    fn partition(&self, table: &Table, k: usize) -> Result<Partition> {
        let mut matrix = numeric_qi_matrix(table, k)?;
        if !self.skip_normalization {
            normalize_columns(&mut matrix);
        }
        let n = matrix.len();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut classes: Vec<Vec<usize>> = Vec::with_capacity(n / k + 1);

        while remaining.len() >= 3 * k {
            let centroid = centroid_of(&matrix, &remaining);
            let r = farthest_from_point(&matrix, &remaining, &centroid);
            let cluster_r = take_nearest(&matrix, &mut remaining, r, k);
            // `s`: the record farthest from `r` among what is left.
            let s = farthest_from_row(&matrix, &remaining, &matrix[r]);
            let cluster_s = take_nearest(&matrix, &mut remaining, s, k);
            classes.push(cluster_r);
            classes.push(cluster_s);
        }

        if remaining.len() >= 2 * k {
            let centroid = centroid_of(&matrix, &remaining);
            let r = farthest_from_point(&matrix, &remaining, &centroid);
            let cluster_r = take_nearest(&matrix, &mut remaining, r, k);
            classes.push(cluster_r);
            classes.push(std::mem::take(&mut remaining));
        } else if !remaining.is_empty() {
            classes.push(std::mem::take(&mut remaining));
        }

        Partition::new(classes, n)
    }
}

fn centroid_of(matrix: &[Vec<f64>], rows: &[usize]) -> Vec<f64> {
    let dims = matrix[0].len();
    let mut c = vec![0.0; dims];
    for &r in rows {
        for (d, v) in matrix[r].iter().enumerate() {
            c[d] += v;
        }
    }
    for v in &mut c {
        *v /= rows.len() as f64;
    }
    c
}

fn farthest_from_point(matrix: &[Vec<f64>], rows: &[usize], point: &[f64]) -> usize {
    let mut best = rows[0];
    let mut best_d = -1.0;
    for &r in rows {
        let d = dist2(&matrix[r], point);
        if d > best_d {
            best_d = d;
            best = r;
        }
    }
    best
}

fn farthest_from_row(matrix: &[Vec<f64>], rows: &[usize], anchor: &[f64]) -> usize {
    farthest_from_point(matrix, rows, anchor)
}

/// Removes `anchor` and its `k-1` nearest neighbours from `remaining`,
/// returning them as a cluster. `anchor` must be present in `remaining`.
fn take_nearest(
    matrix: &[Vec<f64>],
    remaining: &mut Vec<usize>,
    anchor: usize,
    k: usize,
) -> Vec<usize> {
    // Sort candidates by distance to the anchor; ties broken by row index so
    // the algorithm is fully deterministic.
    let anchor_point = matrix[anchor].clone();
    let mut scored: Vec<(f64, usize)> = remaining
        .iter()
        .map(|&r| (dist2(&matrix[r], &anchor_point), r))
        .collect();
    scored.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
    });
    let cluster: Vec<usize> = scored.iter().take(k).map(|&(_, r)| r).collect();
    remaining.retain(|r| !cluster.contains(r));
    cluster
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_data::{Schema, Table, Value};

    fn numeric_table(points: &[(f64, f64)]) -> Table {
        let schema = Schema::builder()
            .quasi_numeric("x")
            .quasi_numeric("y")
            .build()
            .unwrap();
        Table::with_rows(
            schema,
            points
                .iter()
                .map(|&(x, y)| vec![Value::Float(x), Value::Float(y)])
                .collect(),
        )
        .unwrap()
    }

    fn linear_table(n: usize) -> Table {
        let pts: Vec<(f64, f64)> = (0..n).map(|i| (i as f64, 2.0 * i as f64)).collect();
        numeric_table(&pts)
    }

    #[test]
    fn cluster_sizes_bounded_by_k_and_2k_minus_1() {
        for n in [6usize, 7, 10, 23, 50] {
            for k in [2usize, 3, 5] {
                if n < k {
                    continue;
                }
                let t = linear_table(n);
                let p = Mdav::new().partition(&t, k).unwrap();
                assert!(p.satisfies_k(k), "n={n} k={k} violated k");
                assert!(
                    p.max_class_size() < 2 * k,
                    "n={n} k={k}: max class {} > 2k-1",
                    p.max_class_size()
                );
                assert_eq!(p.n_rows(), n);
            }
        }
    }

    #[test]
    fn k_equal_to_n_gives_single_class() {
        let t = linear_table(5);
        let p = Mdav::new().partition(&t, 5).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.max_class_size(), 5);
    }

    #[test]
    fn two_well_separated_blobs_are_separated() {
        let mut pts = Vec::new();
        for i in 0..4 {
            pts.push((i as f64 * 0.1, i as f64 * 0.1));
        }
        for i in 0..4 {
            pts.push((100.0 + i as f64 * 0.1, 100.0 + i as f64 * 0.1));
        }
        let t = numeric_table(&pts);
        let p = Mdav::new().partition(&t, 4).unwrap();
        assert_eq!(p.len(), 2);
        for class in p.classes() {
            let all_low = class.iter().all(|&r| r < 4);
            let all_high = class.iter().all(|&r| r >= 4);
            assert!(all_low || all_high, "cluster mixes blobs: {class:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let t = linear_table(20);
        let p1 = Mdav::new().partition(&t, 3).unwrap();
        let p2 = Mdav::new().partition(&t, 3).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn errors_bubble_up() {
        let t = linear_table(4);
        assert!(Mdav::new().partition(&t, 0).is_err());
        assert!(Mdav::new().partition(&t, 5).is_err());
    }

    #[test]
    fn without_normalization_uses_raw_scale() {
        // y spans a much wider range; without normalization it dominates,
        // with normalization both contribute equally. The two configs should
        // produce different clusterings on this adversarial layout.
        let pts = [(0.0, 0.0), (1.0, 1000.0), (0.1, 1000.0), (1.1, 0.0)];
        let t = numeric_table(&pts);
        let raw = Mdav::without_normalization().partition(&t, 2).unwrap();
        // Raw scale: rows pair by y (0 with 3, 1 with 2).
        let mut classes: Vec<Vec<usize>> = raw.classes().to_vec();
        for c in &mut classes {
            c.sort_unstable();
        }
        classes.sort();
        assert_eq!(classes, vec![vec![0, 3], vec![1, 2]]);
    }

    #[test]
    fn identity_when_k_is_one() {
        let t = linear_table(4);
        let p = Mdav::new().partition(&t, 1).unwrap();
        assert!(p.satisfies_k(1));
        assert_eq!(p.n_rows(), 4);
        // k=1 MDAV still caps classes at 2k-1 = 1.
        assert_eq!(p.max_class_size(), 1);
    }
}
