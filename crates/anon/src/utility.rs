//! Utility metrics for anonymized releases.
//!
//! The paper measures release utility with the **discernibility metric**
//! `C_DM` of Bayardo & Agrawal (reference [22]) and defines the utility used
//! in the objective as its inverse:
//!
//! ```text
//! C_DM(k) = Σ_{|E| >= k} |E|^2  +  Σ_{|E| < k} |D|·|E|
//! U_k     = 1 / C_DM(k)
//! ```
//!
//! Per-record costs `C_i` (and their inverses `u_i1 = 1/C_i`, the paper's
//! utility column matrix) are exposed for the weighted-trace form of the
//! objective. Two auxiliary metrics — average-class-size (`C_AVG`) and the
//! generalized loss metric — support the ablation benches.

use crate::error::{AnonError, Result};
use crate::partition::Partition;
use fred_data::{Table, Value};

/// Discernibility metric `C_DM` of a partition at level `k`.
///
/// Classes of size `>= k` cost `|E|^2`; smaller (outlier/suppressed) classes
/// cost `|D|·|E|`.
pub fn discernibility(partition: &Partition, k: usize) -> f64 {
    let d = partition.n_rows() as f64;
    partition
        .classes()
        .iter()
        .map(|class| {
            let e = class.len() as f64;
            if class.len() >= k {
                e * e
            } else {
                d * e
            }
        })
        .sum()
}

/// The paper's release utility `U_k = 1 / C_DM(k)`.
///
/// Returns an error for empty partitions (the metric is undefined).
pub fn utility(partition: &Partition, k: usize) -> Result<f64> {
    if partition.is_empty() {
        return Err(AnonError::InvalidPartition(
            "utility of empty partition".into(),
        ));
    }
    Ok(1.0 / discernibility(partition, k))
}

/// Per-record discernibility costs `C_i` (paper Section VI-C): the size of
/// the record's class when `|E| >= k`, else `|D|·|E|`.
pub fn per_record_costs(partition: &Partition, k: usize) -> Vec<f64> {
    let d = partition.n_rows() as f64;
    let mut out = vec![0.0; partition.n_rows()];
    for class in partition.classes() {
        let e = class.len() as f64;
        let cost = if class.len() >= k { e } else { d * e };
        for &row in class {
            out[row] = cost;
        }
    }
    out
}

/// The paper's utility column matrix `U = {u_i1}` with `u_i1 = 1/C_i`.
pub fn per_record_utilities(partition: &Partition, k: usize) -> Vec<f64> {
    per_record_costs(partition, k)
        .into_iter()
        .map(|c| if c > 0.0 { 1.0 / c } else { 0.0 })
        .collect()
}

/// Average equivalence-class-size metric `C_AVG = (|D| / #classes) / k`
/// (LeFevre et al.). 1.0 is optimal; larger is worse.
pub fn average_class_size(partition: &Partition, k: usize) -> Result<f64> {
    if partition.is_empty() {
        return Err(AnonError::InvalidPartition(
            "metric of empty partition".into(),
        ));
    }
    if k == 0 {
        return Err(AnonError::InvalidK(0));
    }
    Ok(partition.n_rows() as f64 / partition.len() as f64 / k as f64)
}

/// Generalized loss metric over a *released* table: the mean, over numeric
/// quasi-identifier cells, of `published interval width / attribute range`.
/// 0 means no generalization, 1 means every cell was generalized to the full
/// attribute range. Missing cells count as fully suppressed (loss 1).
pub fn loss_metric(release: &Table) -> Result<f64> {
    let qi = release.schema().quasi_identifier_indices();
    if qi.is_empty() {
        return Err(AnonError::NoQuasiIdentifiers);
    }
    if release.is_empty() {
        return Err(AnonError::Data(fred_data::DataError::EmptyTable));
    }
    let mut total = 0.0;
    let mut cells = 0usize;
    for &c in &qi {
        // Attribute range from the published intervals' hulls.
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for v in release.column(c) {
            if let Some(iv) = v.as_interval() {
                lo = lo.min(iv.lo());
                hi = hi.max(iv.hi());
            }
        }
        let range = hi - lo;
        for v in release.column(c) {
            cells += 1;
            total += match v {
                Value::Missing => 1.0,
                _ => match v.as_interval() {
                    Some(iv) if range > 0.0 => iv.width() / range,
                    Some(_) => 0.0,
                    None => 1.0, // non-numeric published cell: treated as suppressed
                },
            };
        }
    }
    Ok(total / cells as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discernibility_of_uniform_partition() {
        // 9 rows in 3 classes of 3 at k=3: 3 * 9 = 27.
        let p = Partition::new(vec![vec![0, 1, 2], vec![3, 4, 5], vec![6, 7, 8]], 9).unwrap();
        assert_eq!(discernibility(&p, 3), 27.0);
        assert!((utility(&p, 3).unwrap() - 1.0 / 27.0).abs() < 1e-15);
    }

    #[test]
    fn outlier_classes_pay_the_big_penalty() {
        // 5 rows: one class of 4 and one singleton at k=2.
        let p = Partition::new(vec![vec![0, 1, 2, 3], vec![4]], 5).unwrap();
        // 4^2 + 5*1 = 21.
        assert_eq!(discernibility(&p, 2), 21.0);
    }

    #[test]
    fn discernibility_monotone_in_class_merging() {
        // Merging classes can only increase C_DM (for classes >= k).
        let fine = Partition::new(vec![vec![0, 1], vec![2, 3]], 4).unwrap();
        let coarse = Partition::single(4);
        assert!(discernibility(&fine, 2) < discernibility(&coarse, 2));
    }

    #[test]
    fn lower_bound_is_n_times_k() {
        // With all classes exactly k, C_DM = (n/k) * k^2 = n*k.
        let p = Partition::new(vec![vec![0, 1], vec![2, 3], vec![4, 5]], 6).unwrap();
        assert_eq!(discernibility(&p, 2), 12.0);
    }

    #[test]
    fn per_record_costs_match_class_sizes() {
        let p = Partition::new(vec![vec![0, 1, 2], vec![3]], 4).unwrap();
        let costs = per_record_costs(&p, 2);
        assert_eq!(costs, vec![3.0, 3.0, 3.0, 4.0]);
        let utils = per_record_utilities(&p, 2);
        assert!((utils[0] - 1.0 / 3.0).abs() < 1e-15);
        assert!((utils[3] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn average_class_size_metric() {
        let p = Partition::new(vec![vec![0, 1], vec![2, 3, 4, 5]], 6).unwrap();
        // n=6, classes=2, k=2 -> (6/2)/2 = 1.5.
        assert_eq!(average_class_size(&p, 2).unwrap(), 1.5);
        assert!(average_class_size(&p, 0).is_err());
    }

    #[test]
    fn loss_metric_of_release() {
        use fred_data::{Interval, Schema, Table, Value};
        let schema = Schema::builder().quasi_numeric("x").build().unwrap();
        let t = Table::with_rows(
            schema,
            vec![
                vec![Value::Interval(Interval::new(0.0, 5.0).unwrap())],
                vec![Value::Interval(Interval::new(5.0, 10.0).unwrap())],
                vec![Value::Interval(Interval::new(0.0, 10.0).unwrap())],
                vec![Value::Missing],
            ],
        )
        .unwrap();
        // Range = 10. Losses: 0.5, 0.5, 1.0, 1.0 -> mean 0.75.
        assert!((loss_metric(&t).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn loss_metric_zero_for_ungeneralized() {
        use fred_data::{Schema, Table, Value};
        let schema = Schema::builder().quasi_numeric("x").build().unwrap();
        let t = Table::with_rows(
            schema,
            vec![vec![Value::Float(1.0)], vec![Value::Float(2.0)]],
        )
        .unwrap();
        assert_eq!(loss_metric(&t).unwrap(), 0.0);
    }

    #[test]
    fn empty_inputs_error() {
        let p = Partition::new(vec![], 0).unwrap();
        assert!(utility(&p, 2).is_err());
        assert!(average_class_size(&p, 2).is_err());
    }
}
