//! Equivalence-class partitions of a table's rows.
//!
//! Every partitioning anonymizer in this crate (MDAV, Mondrian, full-domain
//! generalization) produces a [`Partition`]: a set of disjoint equivalence
//! classes covering all row indices. Releases, privacy checks and the
//! discernibility metric all consume partitions.

use crate::error::{AnonError, Result};
use fred_data::Table;

/// One equivalence class: the indices of the rows it contains.
pub type EquivalenceClass = Vec<usize>;

/// A partition of `0..n` row indices into disjoint equivalence classes.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    classes: Vec<EquivalenceClass>,
    n_rows: usize,
}

impl Partition {
    /// Builds a partition after validating that the classes are non-empty,
    /// disjoint and cover exactly `0..n_rows`.
    pub fn new(classes: Vec<EquivalenceClass>, n_rows: usize) -> Result<Self> {
        let mut seen = vec![false; n_rows];
        let mut covered = 0usize;
        for (ci, class) in classes.iter().enumerate() {
            if class.is_empty() {
                return Err(AnonError::InvalidPartition(format!("class {ci} is empty")));
            }
            for &row in class {
                if row >= n_rows {
                    return Err(AnonError::InvalidPartition(format!(
                        "class {ci} references row {row} beyond table of {n_rows}"
                    )));
                }
                if seen[row] {
                    return Err(AnonError::InvalidPartition(format!(
                        "row {row} appears in more than one class"
                    )));
                }
                seen[row] = true;
                covered += 1;
            }
        }
        if covered != n_rows {
            return Err(AnonError::InvalidPartition(format!(
                "classes cover {covered} of {n_rows} rows"
            )));
        }
        Ok(Partition { classes, n_rows })
    }

    /// The single-class partition (everything indistinguishable).
    pub fn single(n_rows: usize) -> Self {
        Partition {
            classes: vec![(0..n_rows).collect()],
            n_rows,
        }
    }

    /// The identity partition (every row its own class, i.e. no anonymity).
    pub fn identity(n_rows: usize) -> Self {
        Partition {
            classes: (0..n_rows).map(|i| vec![i]).collect(),
            n_rows,
        }
    }

    /// Number of rows covered.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The equivalence classes.
    pub fn classes(&self) -> &[EquivalenceClass] {
        &self.classes
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether there are no classes (only true for empty tables).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Size of the smallest class; `0` for an empty partition.
    pub fn min_class_size(&self) -> usize {
        self.classes.iter().map(Vec::len).min().unwrap_or(0)
    }

    /// Size of the largest class; `0` for an empty partition.
    pub fn max_class_size(&self) -> usize {
        self.classes.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average class size; `0.0` for an empty partition.
    pub fn mean_class_size(&self) -> f64 {
        if self.classes.is_empty() {
            0.0
        } else {
            self.n_rows as f64 / self.classes.len() as f64
        }
    }

    /// Whether every class holds at least `k` rows (the structural
    /// k-anonymity requirement).
    pub fn satisfies_k(&self, k: usize) -> bool {
        self.min_class_size() >= k
    }

    /// Map from row index to the index of its class.
    pub fn class_of_rows(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.n_rows];
        for (ci, class) in self.classes.iter().enumerate() {
            for &row in class {
                out[row] = ci;
            }
        }
        out
    }

    /// Per-class numeric centroids over the given columns.
    pub fn centroids(&self, table: &Table, cols: &[usize]) -> Result<Vec<Vec<f64>>> {
        let matrix = table.numeric_matrix(cols)?;
        let mut out = Vec::with_capacity(self.classes.len());
        for class in &self.classes {
            let mut centroid = vec![0.0; cols.len()];
            for &row in class {
                for (c, v) in matrix[row].iter().enumerate() {
                    centroid[c] += v;
                }
            }
            for v in &mut centroid {
                *v /= class.len() as f64;
            }
            out.push(centroid);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_accepts_proper_partition() {
        let p = Partition::new(vec![vec![0, 2], vec![1, 3]], 4).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.min_class_size(), 2);
        assert!(p.satisfies_k(2));
        assert!(!p.satisfies_k(3));
    }

    #[test]
    fn validation_rejects_gaps_overlaps_and_empties() {
        assert!(matches!(
            Partition::new(vec![vec![0], vec![0, 1]], 2),
            Err(AnonError::InvalidPartition(_))
        ));
        assert!(matches!(
            Partition::new(vec![vec![0]], 2),
            Err(AnonError::InvalidPartition(_))
        ));
        assert!(matches!(
            Partition::new(vec![vec![0, 1], vec![]], 2),
            Err(AnonError::InvalidPartition(_))
        ));
        assert!(matches!(
            Partition::new(vec![vec![0, 5]], 2),
            Err(AnonError::InvalidPartition(_))
        ));
    }

    #[test]
    fn canonical_partitions() {
        let single = Partition::single(4);
        assert_eq!(single.len(), 1);
        assert_eq!(single.max_class_size(), 4);
        let id = Partition::identity(4);
        assert_eq!(id.len(), 4);
        assert_eq!(id.max_class_size(), 1);
        assert!(id.satisfies_k(1));
        assert!(!id.satisfies_k(2));
    }

    #[test]
    fn class_of_rows_inverts_classes() {
        let p = Partition::new(vec![vec![0, 3], vec![1, 2]], 4).unwrap();
        assert_eq!(p.class_of_rows(), vec![0, 1, 1, 0]);
    }

    #[test]
    fn mean_class_size() {
        let p = Partition::new(vec![vec![0, 1, 2], vec![3]], 4).unwrap();
        assert_eq!(p.mean_class_size(), 2.0);
        assert_eq!(Partition::new(vec![], 0).unwrap().mean_class_size(), 0.0);
    }

    #[test]
    fn centroids() {
        use fred_data::{Schema, Table, Value};
        let schema = Schema::builder()
            .quasi_numeric("a")
            .quasi_numeric("b")
            .build()
            .unwrap();
        let table = Table::with_rows(
            schema,
            vec![
                vec![Value::Float(0.0), Value::Float(0.0)],
                vec![Value::Float(2.0), Value::Float(4.0)],
                vec![Value::Float(10.0), Value::Float(10.0)],
            ],
        )
        .unwrap();
        let p = Partition::new(vec![vec![0, 1], vec![2]], 3).unwrap();
        let c = p.centroids(&table, &[0, 1]).unwrap();
        assert_eq!(c, vec![vec![1.0, 2.0], vec![10.0, 10.0]]);
    }
}
