//! Errors for the anonymization crate.

use fred_data::DataError;
use std::fmt;

/// Errors produced by anonymizers, checkers and metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum AnonError {
    /// Underlying data-layer failure.
    Data(DataError),
    /// `k` must be at least 1 (at least 2 for a meaningful anonymization).
    InvalidK(usize),
    /// The table has fewer rows than `k`, so no k-partition exists.
    NotEnoughRows {
        /// Rows available.
        rows: usize,
        /// Requested anonymity parameter.
        k: usize,
    },
    /// The table's quasi-identifiers are not numeric but the algorithm
    /// requires numeric QIs.
    NonNumericQuasiIdentifiers,
    /// The table has no quasi-identifier attributes.
    NoQuasiIdentifiers,
    /// The table has no sensitive attributes but the check requires one.
    NoSensitiveAttribute,
    /// A partition is inconsistent with the table it claims to cover.
    InvalidPartition(String),
    /// A generalization hierarchy is malformed.
    InvalidHierarchy(String),
    /// The requested generalization level does not exist.
    LevelOutOfRange {
        /// Requested level.
        level: usize,
        /// Number of levels available.
        max: usize,
    },
}

impl fmt::Display for AnonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnonError::Data(e) => write!(f, "data error: {e}"),
            AnonError::InvalidK(k) => write!(f, "invalid anonymity parameter k={k}"),
            AnonError::NotEnoughRows { rows, k } => {
                write!(f, "table has {rows} rows, cannot form k={k} partition")
            }
            AnonError::NonNumericQuasiIdentifiers => {
                write!(f, "algorithm requires numeric quasi-identifiers")
            }
            AnonError::NoQuasiIdentifiers => write!(f, "schema declares no quasi-identifiers"),
            AnonError::NoSensitiveAttribute => write!(f, "schema declares no sensitive attribute"),
            AnonError::InvalidPartition(msg) => write!(f, "invalid partition: {msg}"),
            AnonError::InvalidHierarchy(msg) => write!(f, "invalid hierarchy: {msg}"),
            AnonError::LevelOutOfRange { level, max } => {
                write!(f, "generalization level {level} out of range (max {max})")
            }
        }
    }
}

impl std::error::Error for AnonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AnonError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DataError> for AnonError {
    fn from(e: DataError) -> Self {
        AnonError::Data(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, AnonError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = AnonError::NotEnoughRows { rows: 3, k: 5 };
        assert!(e.to_string().contains("3 rows"));
        let e: AnonError = DataError::EmptyTable.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(AnonError::InvalidK(0).to_string().contains("k=0"));
    }
}
