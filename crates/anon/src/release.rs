//! Construction of anonymized releases (paper Table III).
//!
//! A release keeps identifiers verbatim (the enterprise requirement that
//! enables the attack), rewrites each quasi-identifier cell with a
//! class-level summary, and suppresses every sensitive cell.

use crate::error::Result;
use crate::partition::Partition;
use fred_data::{Interval, Table, Value};

/// How quasi-identifier cells are summarized within an equivalence class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QiStyle {
    /// Publish the covering range `[min-max]` (presentation used by the
    /// paper's Table III).
    Range,
    /// Publish the class centroid (classic microaggregation output).
    Centroid,
}

/// An anonymized release: the rewritten table plus the partition that
/// produced it and the level (`k`) it was built for.
#[derive(Debug, Clone, PartialEq)]
pub struct Release {
    /// The published table.
    pub table: Table,
    /// Equivalence classes over the original row indices (row order is
    /// preserved by construction).
    pub partition: Partition,
    /// Anonymization level used.
    pub k: usize,
    /// Quasi-identifier summarization style.
    pub style: QiStyle,
}

/// Builds an anonymized release from a table and a partition of its rows.
///
/// * identifier and insensitive columns pass through unchanged;
/// * numeric quasi-identifier cells become the class [`Interval`]
///   ([`QiStyle::Range`]) or class mean ([`QiStyle::Centroid`]);
/// * categorical quasi-identifier cells become the class value when the
///   class agrees, otherwise the sorted distinct values joined with `|`;
/// * sensitive cells are suppressed to [`Value::Missing`].
pub fn build_release(
    table: &Table,
    partition: &Partition,
    k: usize,
    style: QiStyle,
) -> Result<Release> {
    let qi_cols = table.quasi_identifier_columns();
    let sens_cols = table.sensitive_columns();
    let class_of = partition.class_of_rows();

    // Precompute per-class, per-QI summaries.
    let mut summaries: Vec<Vec<Value>> = Vec::with_capacity(partition.len());
    for class in partition.classes() {
        let mut per_col = Vec::with_capacity(qi_cols.len());
        for &c in &qi_cols {
            per_col.push(summarize_class(table, class, c, style));
        }
        summaries.push(per_col);
    }

    let mut out = table.clone();
    for (row_idx, _) in table.rows().iter().enumerate() {
        let class_idx = class_of[row_idx];
        for (qi_pos, &c) in qi_cols.iter().enumerate() {
            out.set_cell(row_idx, c, summaries[class_idx][qi_pos].clone())?;
        }
        for &c in &sens_cols {
            out.set_cell(row_idx, c, Value::Missing)?;
        }
    }
    Ok(Release {
        table: out,
        partition: partition.clone(),
        k,
        style,
    })
}

impl Release {
    /// Streams the release `build_release` would produce as row-chunks of
    /// at most `chunk_rows` rows, without ever materializing the full
    /// rewritten table: per-class summaries are computed lazily the first
    /// time a chunk touches the class and cached for later chunks.
    /// Concatenating every chunk's rows reproduces
    /// [`build_release`]`(..).table` cell-for-cell — sweeps over large
    /// worlds can therefore process one chunk at a time and keep peak
    /// memory proportional to `chunk_rows`, not to `rows × k-levels`.
    pub fn chunks<'a>(
        table: &'a Table,
        partition: &'a Partition,
        style: QiStyle,
        chunk_rows: usize,
    ) -> ReleaseChunks<'a> {
        ReleaseChunks {
            table,
            partition,
            style,
            qi_cols: table.quasi_identifier_columns(),
            sens_cols: table.sensitive_columns(),
            class_of: partition.class_of_rows(),
            summaries: vec![None; partition.len()],
            chunk_rows: chunk_rows.max(1),
            next_row: 0,
        }
    }
}

/// Streaming iterator over the row-chunks of a release; see
/// [`Release::chunks`].
#[derive(Debug, Clone)]
pub struct ReleaseChunks<'a> {
    table: &'a Table,
    partition: &'a Partition,
    style: QiStyle,
    qi_cols: Vec<usize>,
    sens_cols: Vec<usize>,
    class_of: Vec<usize>,
    /// Lazily-filled per-class QI summaries (aligned with `qi_cols`).
    summaries: Vec<Option<Vec<Value>>>,
    chunk_rows: usize,
    next_row: usize,
}

impl ReleaseChunks<'_> {
    fn class_summary(&mut self, class_idx: usize) -> &[Value] {
        if self.summaries[class_idx].is_none() {
            let class = &self.partition.classes()[class_idx];
            let per_col: Vec<Value> = self
                .qi_cols
                .iter()
                .map(|&c| summarize_class(self.table, class, c, self.style))
                .collect();
            self.summaries[class_idx] = Some(per_col);
        }
        self.summaries[class_idx].as_deref().expect("just filled")
    }
}

impl Iterator for ReleaseChunks<'_> {
    type Item = Result<Table>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.next_row >= self.table.len() {
            return None;
        }
        let lo = self.next_row;
        let hi = (lo + self.chunk_rows).min(self.table.len());
        self.next_row = hi;
        fred_obs::counter("release.chunks", 1);
        fred_obs::counter("release.chunk_rows", (hi - lo) as u64);
        // Warm the summary cache for every class this chunk touches, then
        // rewrite rows through immutable reads.
        for row_idx in lo..hi {
            self.class_summary(self.class_of[row_idx]);
        }
        let mut rows = Vec::with_capacity(hi - lo);
        for row_idx in lo..hi {
            let mut row = self.table.rows()[row_idx].clone();
            let summary = self.summaries[self.class_of[row_idx]]
                .as_deref()
                .expect("warmed above");
            for (qi_pos, &c) in self.qi_cols.iter().enumerate() {
                row[c] = summary[qi_pos].clone();
            }
            for &c in &self.sens_cols {
                row[c] = Value::Missing;
            }
            rows.push(row);
        }
        Some(Table::with_rows(self.table.schema().clone(), rows).map_err(Into::into))
    }
}

fn summarize_class(table: &Table, class: &[usize], col: usize, style: QiStyle) -> Value {
    // Numeric path: all members numeric-viewable.
    let numeric: Option<Vec<f64>> = class
        .iter()
        .map(|&r| table.cell(r, col).and_then(Value::as_f64))
        .collect();
    if let Some(xs) = numeric {
        return match style {
            QiStyle::Range => match Interval::cover(&xs) {
                Some(iv) => Value::Interval(iv),
                None => Value::Missing,
            },
            QiStyle::Centroid => Value::Float(xs.iter().sum::<f64>() / xs.len() as f64),
        };
    }
    // Categorical path: distinct sorted values.
    let mut labels: Vec<String> = class
        .iter()
        .filter_map(|&r| {
            table
                .cell(r, col)
                .and_then(Value::as_str)
                .map(str::to_owned)
        })
        .collect();
    labels.sort();
    labels.dedup();
    match labels.len() {
        0 => Value::Missing,
        1 => Value::Categorical(labels.pop().expect("len checked")),
        _ => Value::Categorical(labels.join("|")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::anonymizer::Anonymizer;
    use crate::mdav::Mdav;
    use fred_data::{Schema, Table, Value};

    fn customer_table() -> Table {
        let schema = Schema::builder()
            .identifier("Name")
            .quasi_numeric("InvstVol")
            .quasi_numeric("InvstAmt")
            .quasi_numeric("Valuation")
            .sensitive_numeric("Income")
            .build()
            .unwrap();
        let rows = [
            ("Alice", 8.0, 7.0, 4.0, 91_250.0),
            ("Bob", 5.0, 4.0, 4.0, 74_340.0),
            ("Christine", 4.0, 5.0, 5.0, 75_123.0),
            ("Robert", 9.0, 8.0, 9.0, 98_230.0),
        ];
        Table::with_rows(
            schema,
            rows.iter()
                .map(|&(n, v, a, val, inc)| {
                    vec![
                        Value::Text(n.into()),
                        Value::Float(v),
                        Value::Float(a),
                        Value::Float(val),
                        Value::Float(inc),
                    ]
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn release_keeps_identifiers_and_suppresses_sensitive() {
        let t = customer_table();
        let p = Mdav::new().partition(&t, 2).unwrap();
        let rel = build_release(&t, &p, 2, QiStyle::Range).unwrap();
        assert_eq!(
            rel.table.identifier_strings(),
            vec!["Alice", "Bob", "Christine", "Robert"]
        );
        assert!(rel.table.column(4).all(Value::is_missing));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn range_style_publishes_covering_intervals() {
        let t = customer_table();
        let p = Mdav::new().partition(&t, 2).unwrap();
        let rel = build_release(&t, &p, 2, QiStyle::Range).unwrap();
        // Every QI cell is an interval containing the original value.
        for (r, row) in t.rows().iter().enumerate() {
            for c in 1..=3 {
                let published = rel.table.cell(r, c).unwrap();
                let iv = published.as_interval().expect("interval");
                let original = row[c].as_f64().unwrap();
                assert!(
                    iv.contains(original),
                    "row {r} col {c}: {iv:?} does not contain {original}"
                );
            }
        }
    }

    #[test]
    fn centroid_style_publishes_class_means() {
        let t = customer_table();
        let p = crate::partition::Partition::new(vec![vec![0, 3], vec![1, 2]], 4).unwrap();
        let rel = build_release(&t, &p, 2, QiStyle::Centroid).unwrap();
        // Alice & Robert share centroid (8.5, 7.5, 6.5).
        assert_eq!(rel.table.cell(0, 1).unwrap().as_f64(), Some(8.5));
        assert_eq!(rel.table.cell(3, 1).unwrap().as_f64(), Some(8.5));
        assert_eq!(rel.table.cell(0, 3).unwrap().as_f64(), Some(6.5));
        // Bob & Christine share centroid (4.5, 4.5, 4.5).
        assert_eq!(rel.table.cell(1, 2).unwrap().as_f64(), Some(4.5));
    }

    #[test]
    fn rows_in_same_class_publish_identical_qi_cells() {
        let t = customer_table();
        let p = Mdav::new().partition(&t, 2).unwrap();
        let rel = build_release(&t, &p, 2, QiStyle::Range).unwrap();
        for class in rel.partition.classes() {
            for c in 1..=3 {
                let first = rel.table.cell(class[0], c).unwrap();
                for &r in class {
                    assert_eq!(rel.table.cell(r, c).unwrap(), first);
                }
            }
        }
    }

    #[test]
    fn chunks_concatenate_to_the_full_release() {
        let t = customer_table();
        let p = Mdav::new().partition(&t, 2).unwrap();
        let full = build_release(&t, &p, 2, QiStyle::Range).unwrap();
        for chunk_rows in [1usize, 2, 3, 4, 7] {
            let mut streamed: Vec<Vec<Value>> = Vec::new();
            for chunk in Release::chunks(&t, &p, QiStyle::Range, chunk_rows) {
                let chunk = chunk.unwrap();
                assert!(chunk.len() <= chunk_rows);
                assert_eq!(chunk.schema(), t.schema());
                streamed.extend(chunk.rows().iter().cloned());
            }
            assert_eq!(streamed, full.table.rows(), "chunk_rows={chunk_rows}");
        }
        // Centroid style streams identically too.
        let full = build_release(&t, &p, 2, QiStyle::Centroid).unwrap();
        let streamed: Vec<Vec<Value>> = Release::chunks(&t, &p, QiStyle::Centroid, 3)
            .flat_map(|c| c.unwrap().rows().to_vec())
            .collect();
        assert_eq!(streamed, full.table.rows());
    }

    #[test]
    fn chunks_clamp_degenerate_sizes() {
        let t = customer_table();
        let p = Mdav::new().partition(&t, 2).unwrap();
        // chunk_rows = 0 is clamped to 1; oversized chunks yield one table.
        assert_eq!(Release::chunks(&t, &p, QiStyle::Range, 0).count(), t.len());
        let mut it = Release::chunks(&t, &p, QiStyle::Range, 1000);
        assert_eq!(it.next().unwrap().unwrap().len(), t.len());
        assert!(it.next().is_none());
    }

    #[test]
    fn categorical_qi_summarization() {
        let schema = Schema::builder()
            .quasi_categorical("Country")
            .sensitive_numeric("Salary")
            .build()
            .unwrap();
        let t = Table::with_rows(
            schema,
            vec![
                vec![Value::Categorical("FR".into()), Value::Float(1.0)],
                vec![Value::Categorical("DE".into()), Value::Float(2.0)],
                vec![Value::Categorical("FR".into()), Value::Float(3.0)],
                vec![Value::Categorical("FR".into()), Value::Float(4.0)],
            ],
        )
        .unwrap();
        let p = crate::partition::Partition::new(vec![vec![0, 1], vec![2, 3]], 4).unwrap();
        let rel = build_release(&t, &p, 2, QiStyle::Range).unwrap();
        assert_eq!(rel.table.cell(0, 0).unwrap().as_str(), Some("DE|FR"));
        assert_eq!(rel.table.cell(2, 0).unwrap().as_str(), Some("FR"));
    }
}
