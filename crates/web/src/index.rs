//! A miniature search engine over the corpus: inverted index with TF-IDF
//! ranking. This is the "index into the web" the paper's intruder uses.

use crate::page::{tokenize, WebPage};
use std::collections::HashMap;

/// An inverted-index search engine over [`WebPage`]s.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    pages: Vec<WebPage>,
    // term -> (page index, term frequency)
    index: HashMap<String, Vec<(usize, usize)>>,
}

/// A ranked search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Index into [`SearchEngine::pages`].
    pub page: usize,
    /// TF-IDF relevance score.
    pub score: f64,
}

impl SearchEngine {
    /// Builds the index over a corpus of pages.
    pub fn build(pages: Vec<WebPage>) -> Self {
        let mut index: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        for (pi, page) in pages.iter().enumerate() {
            let mut counts: HashMap<String, usize> = HashMap::new();
            for tok in page.tokens() {
                *counts.entry(tok).or_insert(0) += 1;
            }
            for (tok, count) in counts {
                index.entry(tok).or_default().push((pi, count));
            }
        }
        SearchEngine { pages, index }
    }

    /// Number of pages indexed.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The indexed pages.
    pub fn pages(&self) -> &[WebPage] {
        &self.pages
    }

    /// Page by index.
    pub fn page(&self, idx: usize) -> Option<&WebPage> {
        self.pages.get(idx)
    }

    /// Searches for pages matching the query, ranked by summed TF-IDF of
    /// the query terms. Returns at most `limit` hits.
    ///
    /// This mirrors a name search: querying `"Robert Smith"` scores pages
    /// mentioning both tokens highest, with rare surnames dominating.
    pub fn search(&self, query: &str, limit: usize) -> Vec<SearchHit> {
        let terms = tokenize(query);
        if terms.is_empty() || self.pages.is_empty() {
            return Vec::new();
        }
        let n = self.pages.len() as f64;
        let mut scores: HashMap<usize, f64> = HashMap::new();
        for term in &terms {
            if let Some(postings) = self.index.get(term) {
                let idf = (n / postings.len() as f64).ln() + 1.0;
                for &(page, tf) in postings {
                    *scores.entry(page).or_insert(0.0) += (1.0 + (tf as f64).ln()) * idf;
                }
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(page, score)| SearchHit { page, score })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.page.cmp(&b.page))
        });
        hits.truncate(limit);
        hits
    }

    /// Convenience: searches and returns the hit pages directly.
    pub fn search_pages(&self, query: &str, limit: usize) -> Vec<&WebPage> {
        self.search(query, limit)
            .into_iter()
            .filter_map(|h| self.pages.get(h.page))
            .collect()
    }

    /// A reusable scratch sized for this corpus; see
    /// [`search_with`](SearchEngine::search_with).
    pub fn scratch(&self) -> SearchScratch {
        SearchScratch {
            scores: vec![0.0; self.pages.len()],
            mark: vec![0; self.pages.len()],
            epoch: 0,
            touched: Vec::new(),
        }
    }

    /// An empty per-batch term cache; see
    /// [`search_with`](SearchEngine::search_with).
    pub fn term_cache(&self) -> TermCache<'_> {
        TermCache {
            map: HashMap::new(),
        }
    }

    /// [`search`](SearchEngine::search) with caller-provided scratch: the
    /// dense score accumulator replaces the per-call `HashMap`, and the
    /// term cache skips repeated postings/IDF lookups across queries of
    /// one batch (release names share a small token vocabulary, so the
    /// hit rate is high). Results are bit-identical to `search` — scores
    /// accumulate in the same term order and the final ranking comparator
    /// is a total order.
    pub fn search_with<'a>(
        &'a self,
        query: &str,
        limit: usize,
        scratch: &mut SearchScratch,
        cache: &mut TermCache<'a>,
    ) -> Vec<SearchHit> {
        let terms = tokenize(query);
        if terms.is_empty() || self.pages.is_empty() {
            return Vec::new();
        }
        let n = self.pages.len() as f64;
        scratch.begin(self.pages.len());
        for term in terms {
            let entry = cache.map.entry(term).or_insert_with_key(|t| {
                self.index.get(t).map(|postings| {
                    let idf = (n / postings.len() as f64).ln() + 1.0;
                    (idf, postings.as_slice())
                })
            });
            if let Some((idf, postings)) = entry {
                for &(page, tf) in *postings {
                    scratch.add(page, (1.0 + (tf as f64).ln()) * *idf);
                }
            }
        }
        let mut hits: Vec<SearchHit> = scratch
            .touched
            .iter()
            .map(|&page| SearchHit {
                page: page as usize,
                score: scratch.scores[page as usize],
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.page.cmp(&b.page))
        });
        hits.truncate(limit);
        hits
    }

    /// Batched multi-name queries: one scratch score map and one term
    /// cache amortized across the whole batch. `search_many(qs, l)[i]` is
    /// bit-identical to `search(qs[i], l)` for every `i`.
    pub fn search_many<S: AsRef<str>>(&self, queries: &[S], limit: usize) -> Vec<Vec<SearchHit>> {
        let mut scratch = self.scratch();
        let mut cache = self.term_cache();
        queries
            .iter()
            .map(|q| self.search_with(q.as_ref(), limit, &mut scratch, &mut cache))
            .collect()
    }
}

/// Reusable dense per-page score accumulator for
/// [`SearchEngine::search_with`]: generation-stamped so resetting between
/// queries is O(1) instead of O(pages).
#[derive(Debug, Clone)]
pub struct SearchScratch {
    scores: Vec<f64>,
    /// `scores[p]` is live iff `mark[p] == epoch`.
    mark: Vec<u32>,
    epoch: u32,
    /// Pages touched by the current query, in first-touch order.
    touched: Vec<u32>,
}

impl SearchScratch {
    fn begin(&mut self, pages: usize) {
        if self.scores.len() < pages {
            self.scores.resize(pages, 0.0);
            self.mark.resize(pages, 0);
        }
        self.touched.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale marks could alias the fresh epoch.
            self.mark.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn add(&mut self, page: usize, score: f64) {
        if self.mark[page] == self.epoch {
            self.scores[page] += score;
        } else {
            self.mark[page] = self.epoch;
            self.scores[page] = score;
            self.touched.push(page as u32);
        }
    }
}

/// Per-batch memo of term → (IDF, postings) resolved against one
/// [`SearchEngine`]; negative lookups are cached too.
#[derive(Debug, Clone, Default)]
pub struct TermCache<'a> {
    map: HashMap<String, CachedTerm<'a>>,
}

/// One resolved term: its IDF and postings slice (`None` = not indexed).
type CachedTerm<'a> = Option<(f64, &'a [(usize, usize)])>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn corpus() -> SearchEngine {
        let pages = vec![
            WebPage::render(
                0,
                Some(0),
                PageKind::Homepage,
                "Robert Smith",
                "CEO",
                "Microsoft",
                Some(5430.0),
            ),
            WebPage::render(
                1,
                Some(1),
                PageKind::Directory,
                "Alice Walker",
                "Manager",
                "Verizon",
                None,
            ),
            WebPage::render(
                2,
                Some(0),
                PageKind::PropertyRecord,
                "Robert Smith",
                "",
                "",
                Some(5430.0),
            ),
            WebPage::render(3, None, PageKind::News, "Robert Jones", "", "Acme", None),
        ];
        SearchEngine::build(pages)
    }

    #[test]
    fn name_search_ranks_both_token_pages_first() {
        let e = corpus();
        let hits = e.search("Robert Smith", 10);
        assert!(!hits.is_empty());
        // Pages 0 and 2 mention both tokens; page 3 only "Robert".
        let top2: Vec<usize> = hits.iter().take(2).map(|h| h.page).collect();
        assert!(top2.contains(&0) && top2.contains(&2), "hits: {hits:?}");
        let robert_jones = hits.iter().find(|h| h.page == 3).unwrap();
        assert!(robert_jones.score < hits[0].score);
    }

    #[test]
    fn unrelated_query_returns_nothing() {
        let e = corpus();
        assert!(e.search("zzyzx unknown", 10).is_empty());
        assert!(e.search("", 10).is_empty());
    }

    #[test]
    fn limit_respected() {
        let e = corpus();
        let hits = e.search("Robert", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn rare_terms_weigh_more() {
        let e = corpus();
        // "walker" appears once, "robert" in two pages: a query for Alice
        // Walker must put page 1 first.
        let hits = e.search("Alice Walker", 10);
        assert_eq!(hits[0].page, 1);
    }

    #[test]
    fn search_pages_resolves() {
        let e = corpus();
        let pages = e.search_pages("Verizon", 5);
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].display_name, "Alice Walker");
    }

    #[test]
    fn empty_engine() {
        let e = SearchEngine::build(vec![]);
        assert!(e.is_empty());
        assert!(e.search("anything", 5).is_empty());
        assert!(e.search_many(&["anything"], 5)[0].is_empty());
    }

    #[test]
    fn search_many_matches_search_bit_for_bit() {
        let e = corpus();
        let queries = [
            "Robert Smith",
            "Alice Walker",
            "Robert",
            "Verizon",
            "Robert Smith", // repeat: exercises the warm term cache
            "zzyzx unknown",
            "",
            "Robert Jones Acme",
        ];
        for limit in [1usize, 2, 10] {
            let batched = e.search_many(&queries, limit);
            for (q, hits) in queries.iter().zip(&batched) {
                let single = e.search(q, limit);
                assert_eq!(hits.len(), single.len(), "query {q:?} limit {limit}");
                for (a, b) in hits.iter().zip(&single) {
                    assert_eq!(a.page, b.page, "query {q:?}");
                    assert_eq!(a.score.to_bits(), b.score.to_bits(), "query {q:?}");
                }
            }
        }
    }

    #[test]
    fn scratch_survives_many_epochs() {
        let e = corpus();
        let mut scratch = e.scratch();
        let mut cache = e.term_cache();
        let reference = e.search("Robert Smith", 10);
        for _ in 0..100 {
            let hits = e.search_with("Robert Smith", 10, &mut scratch, &mut cache);
            assert_eq!(hits, reference);
        }
    }
}
