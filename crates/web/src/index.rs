//! A miniature search engine over the corpus: inverted index with TF-IDF
//! ranking. This is the "index into the web" the paper's intruder uses.

use crate::page::{tokenize, WebPage};
use std::collections::HashMap;

/// An inverted-index search engine over [`WebPage`]s.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    pages: Vec<WebPage>,
    // term -> (page index, term frequency)
    index: HashMap<String, Vec<(usize, usize)>>,
}

/// A ranked search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Index into [`SearchEngine::pages`].
    pub page: usize,
    /// TF-IDF relevance score.
    pub score: f64,
}

impl SearchEngine {
    /// Builds the index over a corpus of pages.
    pub fn build(pages: Vec<WebPage>) -> Self {
        let mut index: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        for (pi, page) in pages.iter().enumerate() {
            let mut counts: HashMap<String, usize> = HashMap::new();
            for tok in page.tokens() {
                *counts.entry(tok).or_insert(0) += 1;
            }
            for (tok, count) in counts {
                index.entry(tok).or_default().push((pi, count));
            }
        }
        SearchEngine { pages, index }
    }

    /// Number of pages indexed.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The indexed pages.
    pub fn pages(&self) -> &[WebPage] {
        &self.pages
    }

    /// Page by index.
    pub fn page(&self, idx: usize) -> Option<&WebPage> {
        self.pages.get(idx)
    }

    /// Searches for pages matching the query, ranked by summed TF-IDF of
    /// the query terms. Returns at most `limit` hits.
    ///
    /// This mirrors a name search: querying `"Robert Smith"` scores pages
    /// mentioning both tokens highest, with rare surnames dominating.
    pub fn search(&self, query: &str, limit: usize) -> Vec<SearchHit> {
        let terms = tokenize(query);
        if terms.is_empty() || self.pages.is_empty() {
            return Vec::new();
        }
        let n = self.pages.len() as f64;
        let mut scores: HashMap<usize, f64> = HashMap::new();
        for term in &terms {
            if let Some(postings) = self.index.get(term) {
                let idf = (n / postings.len() as f64).ln() + 1.0;
                for &(page, tf) in postings {
                    *scores.entry(page).or_insert(0.0) += (1.0 + (tf as f64).ln()) * idf;
                }
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(page, score)| SearchHit { page, score })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.page.cmp(&b.page))
        });
        hits.truncate(limit);
        hits
    }

    /// Convenience: searches and returns the hit pages directly.
    pub fn search_pages(&self, query: &str, limit: usize) -> Vec<&WebPage> {
        self.search(query, limit)
            .into_iter()
            .filter_map(|h| self.pages.get(h.page))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn corpus() -> SearchEngine {
        let pages = vec![
            WebPage::render(
                0,
                Some(0),
                PageKind::Homepage,
                "Robert Smith",
                "CEO",
                "Microsoft",
                Some(5430.0),
            ),
            WebPage::render(
                1,
                Some(1),
                PageKind::Directory,
                "Alice Walker",
                "Manager",
                "Verizon",
                None,
            ),
            WebPage::render(
                2,
                Some(0),
                PageKind::PropertyRecord,
                "Robert Smith",
                "",
                "",
                Some(5430.0),
            ),
            WebPage::render(3, None, PageKind::News, "Robert Jones", "", "Acme", None),
        ];
        SearchEngine::build(pages)
    }

    #[test]
    fn name_search_ranks_both_token_pages_first() {
        let e = corpus();
        let hits = e.search("Robert Smith", 10);
        assert!(!hits.is_empty());
        // Pages 0 and 2 mention both tokens; page 3 only "Robert".
        let top2: Vec<usize> = hits.iter().take(2).map(|h| h.page).collect();
        assert!(top2.contains(&0) && top2.contains(&2), "hits: {hits:?}");
        let robert_jones = hits.iter().find(|h| h.page == 3).unwrap();
        assert!(robert_jones.score < hits[0].score);
    }

    #[test]
    fn unrelated_query_returns_nothing() {
        let e = corpus();
        assert!(e.search("zzyzx unknown", 10).is_empty());
        assert!(e.search("", 10).is_empty());
    }

    #[test]
    fn limit_respected() {
        let e = corpus();
        let hits = e.search("Robert", 1);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn rare_terms_weigh_more() {
        let e = corpus();
        // "walker" appears once, "robert" in two pages: a query for Alice
        // Walker must put page 1 first.
        let hits = e.search("Alice Walker", 10);
        assert_eq!(hits[0].page, 1);
    }

    #[test]
    fn search_pages_resolves() {
        let e = corpus();
        let pages = e.search_pages("Verizon", 5);
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].display_name, "Alice Walker");
    }

    #[test]
    fn empty_engine() {
        let e = SearchEngine::build(vec![]);
        assert!(e.is_empty());
        assert!(e.search("anything", 5).is_empty());
    }
}
