//! A miniature search engine over the corpus: inverted index with TF-IDF
//! ranking. This is the "index into the web" the paper's intruder uses.
//!
//! Index tokens are *interned*: each distinct token string is stored once
//! in the term table and postings live in dense per-term vectors keyed by
//! term id (the corpus keys on ~a hundred distinct name tokens, so
//! interning removes almost all per-posting string traffic). Two postings
//! orders are kept per term: page-ascending (the classic scan + binary
//! search order) and score-contribution-descending (the order the top-k
//! searcher consumes, enabling its early exit).

use crate::page::{tokenize, WebPage};
use fred_data::ShardPlan;
use rayon::prelude::*;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a. The build interner and the query term cache hash hundreds of
/// thousands of short tokens; the default SipHash costs more than the
/// rest of the merge combined.
struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<Fnv>>;

/// An inverted-index search engine over [`WebPage`]s.
#[derive(Debug, Clone)]
pub struct SearchEngine {
    pages: Vec<WebPage>,
    /// Interned token → dense term id.
    terms: FnvMap<String, u32>,
    /// Per-term postings `(page, term frequency)`, page-ascending (by
    /// construction: pages are merged in ascending order).
    postings: Vec<Vec<(u32, u32)>>,
    /// Per-term postings re-sorted by score contribution: `tf`
    /// descending, then page ascending. Fuel for
    /// [`search_topk_with`](SearchEngine::search_topk_with)'s early exit.
    by_contribution: Vec<Vec<(u32, u32)>>,
    /// Per-term IDF (`ln(n / df) + 1`), precomputed at build.
    idf: Vec<f64>,
}

/// A ranked search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Index into [`SearchEngine::pages`].
    pub page: usize,
    /// TF-IDF relevance score.
    pub score: f64,
}

/// One posting's score contribution.
#[inline]
fn contribution(tf: u32, idf: f64) -> f64 {
    (1.0 + f64::from(tf).ln()) * idf
}

/// Distinct lowercased tokens of one page in first-occurrence order with
/// term frequencies. Produces exactly the tokens of
/// [`tokenize`]`(text)` (ASCII tokens are lowercased into the reusable
/// `buf`, everything else falls back to `str::to_lowercase`) but without
/// per-repeat allocation or hashing: a page holds a few dozen distinct
/// tokens, so counting is a linear scan.
fn page_term_counts(text: &str, buf: &mut String, out: &mut Vec<(String, u32)>) {
    out.clear();
    for raw in text
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
    {
        buf.clear();
        if raw.is_ascii() {
            for b in raw.bytes() {
                buf.push(b.to_ascii_lowercase() as char);
            }
        } else {
            buf.push_str(&raw.to_lowercase());
        }
        match out.iter_mut().find(|(t, _)| t == buf) {
            Some((_, count)) => *count += 1,
            None => out.push((buf.clone(), 1)),
        }
    }
}

/// The `(score desc, page asc)` hit total order used everywhere.
#[inline]
fn hit_beats(score: f64, page: u32, best_score: f64, best_page: u32) -> bool {
    score > best_score || (score == best_score && page < best_page)
}

/// Merges partial hit lists (e.g. per-shard exact top-`k`s over disjoint
/// page sets) into the global top-`limit` under the canonical
/// `(score desc, page asc)` order. With exact per-shard scores this is
/// bit-identical to running the query against the union of the shards.
pub fn merge_hits(mut hits: Vec<SearchHit>, limit: usize) -> Vec<SearchHit> {
    hits.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.page.cmp(&b.page))
    });
    hits.truncate(limit);
    hits
}

/// One layer's term lists as seen by the top-k scanner: either the full
/// engine's global lists or one shard's slice of them. Term ids and page
/// ids are always global; a shard simply returns the subset of each list
/// whose pages it owns (empty when the term never occurs in the shard).
trait TermLists {
    /// Page-ascending postings for a global term id.
    fn page_ascending(&self, tid: u32) -> &[(u32, u32)];
    /// The same postings in `(tf desc, page asc)` contribution order.
    fn contribution_order(&self, tid: u32) -> &[(u32, u32)];
}

impl TermLists for SearchEngine {
    fn page_ascending(&self, tid: u32) -> &[(u32, u32)] {
        &self.postings[tid as usize]
    }

    fn contribution_order(&self, tid: u32) -> &[(u32, u32)] {
        &self.by_contribution[tid as usize]
    }
}

/// The early-exit top-`limit` scan over one set of term lists — the body
/// of [`SearchEngine::search_topk_with`], extracted so a shard's lists can
/// be scanned by the exact same code. Exactness does not depend on which
/// lists are supplied: every page first seen gets its full score in
/// `resolved` (query) term order, and the bound argument documented on
/// `search_topk_with` holds for any scan order.
fn topk_scan<L: TermLists>(
    lists: &L,
    idf: &[f64],
    resolved: &[u32],
    limit: usize,
    pages: usize,
    scratch: &mut SearchScratch,
) -> Vec<SearchHit> {
    // Scan order: distinct lists, rarest first (stable on equal
    // lengths), so the upper bound collapses as early as possible.
    // Each list carries its query multiplicity — a token repeated in
    // the query contributes that many times to a page's score, so
    // every upper bound below must scale by it too.
    let mut scan: Vec<(u32, u32)> = {
        let mut distinct: Vec<u32> = resolved.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        distinct
            .into_iter()
            .map(|t| (t, resolved.iter().filter(|&&r| r == t).count() as u32))
            .collect()
    };
    scan.sort_by_key(|&(t, _)| lists.page_ascending(t).len());
    // `exhausted[t]` once list `t` has been scanned to the end: a page
    // still unseen afterwards is provably absent from it, so scoring
    // can skip that term without a lookup.
    let mut exhausted: FnvMap<u32, bool> = scan.iter().map(|&(t, _)| (t, false)).collect();

    scratch.begin(pages);
    let mut tracker = TopHits::new(limit);
    for (li, &(tid, mult)) in scan.iter().enumerate() {
        // Best contribution still reachable from the lists after this
        // one (their contribution-sorted heads, times multiplicity).
        let rest_ub: f64 = scan[li + 1..]
            .iter()
            .map(|&(t, m)| {
                lists.contribution_order(t).first().map_or(0.0, |&(_, tf)| {
                    f64::from(m) * contribution(tf, idf[t as usize])
                })
            })
            .sum();
        let term_idf = idf[tid as usize];
        let mut completed = true;
        for &(page, tf) in lists.contribution_order(tid) {
            if tracker.is_full() {
                let ub = rest_ub + f64::from(mult) * contribution(tf, term_idf);
                let (kth_score, _) = tracker.worst();
                if ub < kth_score {
                    // No page drawn from this list's remainder can
                    // reach the boundary: within the list
                    // contributions only fall, deeper lists are
                    // already inside `rest_ub`, and the boundary
                    // score only rises from here — so the skip stays
                    // sound for the rest of the scan too. (Pages of
                    // the remainder that also sit in a later list
                    // still get scored there, via the lookup path.)
                    completed = false;
                    break;
                }
            }
            if scratch.mark[page as usize] == scratch.epoch {
                continue; // already scored on first sight
            }
            scratch.mark[page as usize] = scratch.epoch;
            // Full exact score, accumulated in query-term order: the
            // same addition sequence as the exhaustive path. The term
            // being scanned contributes its known tf; terms whose
            // lists were already exhausted cannot contain a page
            // first seen here; everything else is a binary search.
            let mut score = 0.0f64;
            for &t in resolved {
                if t == tid {
                    score += contribution(tf, term_idf);
                } else if !exhausted[&t] {
                    if let Ok(pos) = lists
                        .page_ascending(t)
                        .binary_search_by_key(&page, |&(p, _)| p)
                    {
                        let (_, tf_t) = lists.page_ascending(t)[pos];
                        score += contribution(tf_t, idf[t as usize]);
                    }
                }
            }
            tracker.offer(score, page);
        }
        if completed {
            exhausted.insert(tid, true);
        }
    }
    tracker.into_hits()
}

impl SearchEngine {
    /// Builds the index over a corpus of pages.
    ///
    /// Per-page tokenization (the hot part of world build at large corpus
    /// sizes) runs across worker threads; each page's counts come out in
    /// first-occurrence order — a function of the text alone — so the
    /// sequential page-order merge, and therefore the whole index, is
    /// identical regardless of thread count.
    pub fn build(pages: Vec<WebPage>) -> Self {
        let page_counts: Vec<Vec<(String, u32)>> = pages
            .par_iter()
            .map_init(String::new, |buf, page| {
                let mut counts = Vec::new();
                page_term_counts(&page.text, buf, &mut counts);
                counts
            })
            .collect();

        let mut terms: FnvMap<String, u32> = FnvMap::default();
        let mut postings: Vec<Vec<(u32, u32)>> = Vec::new();
        for (pi, counts) in page_counts.into_iter().enumerate() {
            for (tok, count) in counts {
                let next_id = postings.len() as u32;
                let id = *terms.entry(tok).or_insert(next_id);
                if id == next_id {
                    postings.push(Vec::new());
                }
                postings[id as usize].push((pi as u32, count));
            }
        }

        let n = pages.len() as f64;
        let idf: Vec<f64> = postings
            .iter()
            .map(|p| (n / p.len() as f64).ln() + 1.0)
            .collect();
        let by_contribution: Vec<Vec<(u32, u32)>> = postings
            .par_iter()
            .map(|p| {
                let mut sorted = p.clone();
                sorted.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                sorted
            })
            .collect();
        SearchEngine {
            pages,
            terms,
            postings,
            by_contribution,
            idf,
        }
    }

    /// Number of pages indexed.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The indexed pages.
    pub fn pages(&self) -> &[WebPage] {
        &self.pages
    }

    /// Page by index.
    pub fn page(&self, idx: usize) -> Option<&WebPage> {
        self.pages.get(idx)
    }

    /// Deduplicates page display names: returns each page's dense
    /// name id plus the distinct names in first-occurrence order.
    ///
    /// A corpus renders several pages per person and most display names
    /// verbatim, so the distinct-name set is a fraction of the page
    /// count. Name-comparison consumers (the harvest's agreement cache
    /// and its per-name comparator keys) key their work on the name id
    /// instead of the page id and skip the duplicates entirely.
    pub fn distinct_display_names(&self) -> (Vec<u32>, Vec<&str>) {
        let mut name_of_page = Vec::with_capacity(self.pages.len());
        let mut ids: FnvMap<&str, u32> = FnvMap::default();
        let mut names: Vec<&str> = Vec::new();
        for page in &self.pages {
            let next = names.len() as u32;
            let id = *ids.entry(&page.display_name).or_insert(next);
            if id == next {
                names.push(&page.display_name);
            }
            name_of_page.push(id);
        }
        (name_of_page, names)
    }

    /// Searches for pages matching the query, ranked by summed TF-IDF of
    /// the query terms. Returns at most `limit` hits.
    ///
    /// This mirrors a name search: querying `"Robert Smith"` scores pages
    /// mentioning both tokens highest, with rare surnames dominating.
    /// This is the exhaustive reference path: every posting of every
    /// query term is scanned and the full candidate set sorted. The
    /// accelerated paths ([`search_with`](SearchEngine::search_with),
    /// [`search_topk_with`](SearchEngine::search_topk_with)) are pinned
    /// bit-identical to it by property test.
    pub fn search(&self, query: &str, limit: usize) -> Vec<SearchHit> {
        let terms = tokenize(query);
        if terms.is_empty() || self.pages.is_empty() {
            return Vec::new();
        }
        let mut scores: HashMap<usize, f64> = HashMap::new();
        for term in &terms {
            if let Some(&tid) = self.terms.get(term) {
                let idf = self.idf[tid as usize];
                for &(page, tf) in &self.postings[tid as usize] {
                    *scores.entry(page as usize).or_insert(0.0) += contribution(tf, idf);
                }
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(page, score)| SearchHit { page, score })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.page.cmp(&b.page))
        });
        hits.truncate(limit);
        hits
    }

    /// Convenience: searches and returns the hit pages directly.
    pub fn search_pages(&self, query: &str, limit: usize) -> Vec<&WebPage> {
        self.search(query, limit)
            .into_iter()
            .filter_map(|h| self.pages.get(h.page))
            .collect()
    }

    /// A reusable scratch sized for this corpus; see
    /// [`search_with`](SearchEngine::search_with).
    pub fn scratch(&self) -> SearchScratch {
        SearchScratch {
            scores: vec![0.0; self.pages.len()],
            mark: vec![0; self.pages.len()],
            epoch: 0,
            touched: Vec::new(),
        }
    }

    /// An empty per-batch term cache; see
    /// [`search_with`](SearchEngine::search_with).
    pub fn term_cache(&self) -> TermCache {
        TermCache::default()
    }

    /// Resolves one query token to its term id through the cache.
    #[inline]
    fn resolve_term(&self, term: String, cache: &mut TermCache) -> Option<u32> {
        *cache
            .map
            .entry(term)
            .or_insert_with_key(|t| self.terms.get(t).copied())
    }

    /// [`search`](SearchEngine::search) with caller-provided scratch: the
    /// dense score accumulator replaces the per-call `HashMap`, and the
    /// term cache skips repeated token→term-id resolutions across queries
    /// of one batch (release names share a small token vocabulary, so the
    /// hit rate is high). Results are bit-identical to `search` — scores
    /// accumulate in the same term order and the final ranking comparator
    /// is a total order.
    pub fn search_with(
        &self,
        query: &str,
        limit: usize,
        scratch: &mut SearchScratch,
        cache: &mut TermCache,
    ) -> Vec<SearchHit> {
        let terms = tokenize(query);
        if terms.is_empty() || self.pages.is_empty() {
            return Vec::new();
        }
        scratch.begin(self.pages.len());
        for term in terms {
            if let Some(tid) = self.resolve_term(term, cache) {
                let idf = self.idf[tid as usize];
                for &(page, tf) in &self.postings[tid as usize] {
                    scratch.add(page as usize, contribution(tf, idf));
                }
            }
        }
        let mut hits: Vec<SearchHit> = scratch
            .touched
            .iter()
            .map(|&page| SearchHit {
                page: page as usize,
                score: scratch.scores[page as usize],
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.page.cmp(&b.page))
        });
        hits.truncate(limit);
        hits
    }

    /// Top-`limit` search with early exit — the harvest fast path.
    ///
    /// Exact, not approximate: returns precisely what
    /// [`search`](SearchEngine::search) returns (same pages, same
    /// bit-identical scores, same order), established as follows.
    ///
    /// * Term lists are scanned rarest-first in their pre-sorted
    ///   contribution-descending order, so the maximum score any *unseen*
    ///   page could still reach (`ub`: the current frontier contribution
    ///   of the active list plus the best contribution of every unscanned
    ///   list) only decreases.
    /// * A page's full score is computed the moment it is first seen, by
    ///   binary-searching every query term's page-ascending postings and
    ///   accumulating in query-term order — the exact float-addition
    ///   sequence of the exhaustive path.
    /// * Once `limit` candidates are held and `ub` falls strictly below
    ///   the current `limit`-th best score, no unseen page can enter the
    ///   result (ties at the boundary are impossible: they would require
    ///   `ub ==` the boundary score, which keeps the scan alive), so the
    ///   remaining postings — typically the long tail of a common
    ///   first-name list — are never touched.
    ///
    /// Selection is a bounded worst-out tracker instead of a full sort of
    /// every candidate, which is the other constant-factor win at harvest
    /// scale (hundreds of candidates, `limit` of eight).
    pub fn search_topk_with(
        &self,
        query: &str,
        limit: usize,
        scratch: &mut SearchScratch,
        cache: &mut TermCache,
    ) -> Vec<SearchHit> {
        if limit == 0 {
            return Vec::new();
        }
        let tokens = tokenize(query);
        if tokens.is_empty() || self.pages.is_empty() {
            return Vec::new();
        }
        // Query-order term ids (duplicates kept: they contribute twice,
        // exactly like the exhaustive accumulation).
        let resolved: Vec<u32> = tokens
            .into_iter()
            .filter_map(|t| self.resolve_term(t, cache))
            .collect();
        if resolved.is_empty() {
            return Vec::new();
        }
        topk_scan(self, &self.idf, &resolved, limit, self.pages.len(), scratch)
    }

    /// [`search_topk_with`](SearchEngine::search_topk_with) with one-shot
    /// scratch (convenience for tests and single queries).
    pub fn search_topk(&self, query: &str, limit: usize) -> Vec<SearchHit> {
        let mut scratch = self.scratch();
        let mut cache = self.term_cache();
        self.search_topk_with(query, limit, &mut scratch, &mut cache)
    }

    /// Batched multi-name queries: one scratch score map and one term
    /// cache amortized across the whole batch. `search_many(qs, l)[i]` is
    /// bit-identical to `search(qs[i], l)` for every `i`.
    pub fn search_many<S: AsRef<str>>(&self, queries: &[S], limit: usize) -> Vec<Vec<SearchHit>> {
        let mut scratch = self.scratch();
        let mut cache = self.term_cache();
        queries
            .iter()
            .map(|q| self.search_with(q.as_ref(), limit, &mut scratch, &mut cache))
            .collect()
    }
}

/// One shard's slice of the index: the postings of the pages it owns,
/// keyed by *global* term id through a dense local remap so shard lists
/// stay compact while sharing the engine-wide term table and IDF.
#[derive(Debug, Clone)]
struct EngineShard {
    /// Global term id → local list id (`u32::MAX` when the term never
    /// occurs in this shard).
    local_of_global: Vec<u32>,
    /// Local postings `(global page, tf)`, page-ascending (inherited from
    /// the global lists: filtering an ascending list keeps it ascending).
    postings: Vec<Vec<(u32, u32)>>,
    /// Local postings in `(tf desc, page asc)` contribution order.
    by_contribution: Vec<Vec<(u32, u32)>>,
    /// Number of pages owned by the shard.
    pages: usize,
}

const NO_LOCAL_TERM: u32 = u32::MAX;

impl TermLists for EngineShard {
    fn page_ascending(&self, tid: u32) -> &[(u32, u32)] {
        match self.local_of_global.get(tid as usize) {
            Some(&local) if local != NO_LOCAL_TERM => &self.postings[local as usize],
            _ => &[],
        }
    }

    fn contribution_order(&self, tid: u32) -> &[(u32, u32)] {
        match self.local_of_global.get(tid as usize) {
            Some(&local) if local != NO_LOCAL_TERM => &self.by_contribution[local as usize],
            _ => &[],
        }
    }
}

/// A document-partitioned view of a [`SearchEngine`]: every page is owned
/// by exactly one shard (keyed on its display name through a
/// [`ShardPlan`]), each shard holds only its own postings, and a query is
/// answered scatter-gather — exact top-`k` per shard, merged under the
/// global `(score desc, page asc)` order.
///
/// Sharing the base engine's term table and IDF keeps per-shard scores
/// bit-identical to the full engine's: a page's every term lives in its
/// own shard's lists, so its score accumulates the exact same float
/// sequence, and the global top-`k` is a subset of the per-shard top-`k`
/// union. [`search_topk_with`](ShardedSearchEngine::search_topk_with) is
/// therefore pinned bit-identical to
/// [`SearchEngine::search_topk_with`] by property test for every shard
/// count.
#[derive(Debug, Clone)]
pub struct ShardedSearchEngine<'a> {
    base: &'a SearchEngine,
    plan: ShardPlan,
    /// Owning shard of each page.
    shard_of_page: Vec<u32>,
    shards: Vec<EngineShard>,
}

impl<'a> ShardedSearchEngine<'a> {
    /// Partitions the base engine's postings by each page's display-name
    /// blocking key under `plan`.
    pub fn build(base: &'a SearchEngine, plan: ShardPlan) -> Self {
        let shard_of_page: Vec<u32> = base
            .pages
            .iter()
            .map(|p| plan.shard_of(&p.display_name) as u32)
            .collect();
        let n_terms = base.postings.len();
        let mut shards: Vec<EngineShard> = (0..plan.shards())
            .map(|_| EngineShard {
                local_of_global: vec![NO_LOCAL_TERM; n_terms],
                postings: Vec::new(),
                by_contribution: Vec::new(),
                pages: 0,
            })
            .collect();
        for &s in &shard_of_page {
            shards[s as usize].pages += 1;
        }
        for (tid, list) in base.postings.iter().enumerate() {
            for &(page, tf) in list {
                let shard = &mut shards[shard_of_page[page as usize] as usize];
                let mut local = shard.local_of_global[tid];
                if local == NO_LOCAL_TERM {
                    local = shard.postings.len() as u32;
                    shard.local_of_global[tid] = local;
                    shard.postings.push(Vec::new());
                }
                shard.postings[local as usize].push((page, tf));
            }
        }
        for shard in &mut shards {
            shard.by_contribution = shard
                .postings
                .par_iter()
                .map(|p| {
                    let mut sorted = p.clone();
                    sorted.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                    sorted
                })
                .collect();
        }
        ShardedSearchEngine {
            base,
            plan,
            shard_of_page,
            shards,
        }
    }

    /// The underlying unsharded engine (pages, term table, IDF).
    pub fn base(&self) -> &'a SearchEngine {
        self.base
    }

    /// The plan the partition was built under.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Owning shard of a page.
    pub fn shard_of_page(&self, page: usize) -> usize {
        self.shard_of_page[page] as usize
    }

    /// Number of pages owned by shard `shard`.
    pub fn pages_in_shard(&self, shard: usize) -> usize {
        self.shards[shard].pages
    }

    /// Exact top-`limit` over one shard's postings only: what that
    /// shard's worker can answer without touching shared state.
    pub fn search_topk_shard(
        &self,
        shard: usize,
        query: &str,
        limit: usize,
        scratch: &mut SearchScratch,
        cache: &mut TermCache,
    ) -> Vec<SearchHit> {
        match self.resolve(query, limit, cache) {
            Some(resolved) => topk_scan(
                &self.shards[shard],
                &self.base.idf,
                &resolved,
                limit,
                self.base.pages.len(),
                scratch,
            ),
            None => Vec::new(),
        }
    }

    /// Scatter-gather top-`limit`: exact per-shard top-`limit` from every
    /// shard, merged under `(score desc, page asc)`. Bit-identical to
    /// [`SearchEngine::search_topk_with`] on the base engine.
    pub fn search_topk_with(
        &self,
        query: &str,
        limit: usize,
        scratch: &mut SearchScratch,
        cache: &mut TermCache,
    ) -> Vec<SearchHit> {
        self.scatter_gather(query, limit, scratch, cache, None)
    }

    /// Scatter-gather over the surviving shards only: `alive[s] == false`
    /// drops shard `s`'s pages from the candidate pool entirely — the
    /// degraded-mode search behind the harvest's shard-loss tolerance.
    /// With every shard alive this is exactly
    /// [`search_topk_with`](ShardedSearchEngine::search_topk_with).
    pub fn search_topk_surviving(
        &self,
        query: &str,
        limit: usize,
        alive: &[bool],
        scratch: &mut SearchScratch,
        cache: &mut TermCache,
    ) -> Vec<SearchHit> {
        self.scatter_gather(query, limit, scratch, cache, Some(alive))
    }

    /// Shared query-token resolution against the base term table; `None`
    /// short-circuits the empty-query/empty-corpus/zero-limit cases the
    /// same way the unsharded paths do.
    fn resolve(&self, query: &str, limit: usize, cache: &mut TermCache) -> Option<Vec<u32>> {
        if limit == 0 || self.base.pages.is_empty() {
            return None;
        }
        let tokens = tokenize(query);
        if tokens.is_empty() {
            return None;
        }
        let resolved: Vec<u32> = tokens
            .into_iter()
            .filter_map(|t| self.base.resolve_term(t, cache))
            .collect();
        if resolved.is_empty() {
            None
        } else {
            Some(resolved)
        }
    }

    fn scatter_gather(
        &self,
        query: &str,
        limit: usize,
        scratch: &mut SearchScratch,
        cache: &mut TermCache,
        alive: Option<&[bool]>,
    ) -> Vec<SearchHit> {
        let resolved = match self.resolve(query, limit, cache) {
            Some(r) => r,
            None => return Vec::new(),
        };
        // Every page is owned by exactly one shard, so the partial lists
        // are disjoint and the merge needs no dedup. Any page of the true
        // top-`limit` beats `limit` rivals globally, hence also within
        // its own shard, so it survives its shard's exact top-`limit` and
        // reaches the merge.
        let mut merged: Vec<SearchHit> = Vec::new();
        for (si, shard) in self.shards.iter().enumerate() {
            if alive.is_some_and(|a| !a.get(si).copied().unwrap_or(true)) {
                continue;
            }
            merged.extend(topk_scan(
                shard,
                &self.base.idf,
                &resolved,
                limit,
                self.base.pages.len(),
                scratch,
            ));
        }
        merge_hits(merged, limit)
    }
}

/// Bounded best-`k` tracker under the `(score desc, page asc)` hit order:
/// a candidate enters only by beating the current worst member, so the
/// final contents are exactly the unique k-best set.
struct TopHits {
    k: usize,
    items: Vec<(f64, u32)>,
    /// Index of the current worst member once full.
    worst: usize,
}

impl TopHits {
    fn new(k: usize) -> Self {
        TopHits {
            k,
            items: Vec::with_capacity(k),
            worst: 0,
        }
    }

    #[inline]
    fn is_full(&self) -> bool {
        self.items.len() == self.k
    }

    /// The current worst `(score, page)`; only meaningful when full.
    #[inline]
    fn worst(&self) -> (f64, u32) {
        self.items[self.worst]
    }

    #[inline]
    fn offer(&mut self, score: f64, page: u32) {
        if self.items.len() < self.k {
            self.items.push((score, page));
            if self.items.len() == self.k {
                self.find_worst();
            }
        } else {
            let (ws, wp) = self.items[self.worst];
            if hit_beats(score, page, ws, wp) {
                self.items[self.worst] = (score, page);
                self.find_worst();
            }
        }
    }

    fn find_worst(&mut self) {
        let mut wi = 0;
        for i in 1..self.items.len() {
            let (s, p) = self.items[i];
            let (ws, wp) = self.items[wi];
            // `i` is worse than `wi` when `wi` beats it.
            if hit_beats(ws, wp, s, p) {
                wi = i;
            }
        }
        self.worst = wi;
    }

    fn into_hits(mut self) -> Vec<SearchHit> {
        self.items.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        self.items
            .into_iter()
            .map(|(score, page)| SearchHit {
                page: page as usize,
                score,
            })
            .collect()
    }
}

/// Reusable dense per-page score accumulator for
/// [`SearchEngine::search_with`]: generation-stamped so resetting between
/// queries is O(1) instead of O(pages).
#[derive(Debug, Clone)]
pub struct SearchScratch {
    scores: Vec<f64>,
    /// `scores[p]` is live iff `mark[p] == epoch`.
    mark: Vec<u32>,
    epoch: u32,
    /// Pages touched by the current query, in first-touch order.
    touched: Vec<u32>,
}

impl SearchScratch {
    fn begin(&mut self, pages: usize) {
        if self.scores.len() < pages {
            self.scores.resize(pages, 0.0);
            self.mark.resize(pages, 0);
        }
        self.touched.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped: stale marks could alias the fresh epoch.
            self.mark.fill(0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn add(&mut self, page: usize, score: f64) {
        if self.mark[page] == self.epoch {
            self.scores[page] += score;
        } else {
            self.mark[page] = self.epoch;
            self.scores[page] = score;
            self.touched.push(page as u32);
        }
    }
}

/// Per-batch memo of token → term id resolved against one
/// [`SearchEngine`]; negative lookups are cached too.
#[derive(Default)]
pub struct TermCache {
    map: FnvMap<String, Option<u32>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageKind;

    fn corpus() -> SearchEngine {
        let pages = vec![
            WebPage::render(
                0,
                Some(0),
                PageKind::Homepage,
                "Robert Smith",
                "CEO",
                "Microsoft",
                Some(5430.0),
            ),
            WebPage::render(
                1,
                Some(1),
                PageKind::Directory,
                "Alice Walker",
                "Manager",
                "Verizon",
                None,
            ),
            WebPage::render(
                2,
                Some(0),
                PageKind::PropertyRecord,
                "Robert Smith",
                "",
                "",
                Some(5430.0),
            ),
            WebPage::render(3, None, PageKind::News, "Robert Jones", "", "Acme", None),
        ];
        SearchEngine::build(pages)
    }

    #[test]
    fn name_search_ranks_both_token_pages_first() {
        let e = corpus();
        let hits = e.search("Robert Smith", 10);
        assert!(!hits.is_empty());
        // Pages 0 and 2 mention both tokens; page 3 only "Robert".
        let top2: Vec<usize> = hits.iter().take(2).map(|h| h.page).collect();
        assert!(top2.contains(&0) && top2.contains(&2), "hits: {hits:?}");
        let robert_jones = hits.iter().find(|h| h.page == 3).unwrap();
        assert!(robert_jones.score < hits[0].score);
    }

    #[test]
    fn unrelated_query_returns_nothing() {
        let e = corpus();
        assert!(e.search("zzyzx unknown", 10).is_empty());
        assert!(e.search("", 10).is_empty());
        assert!(e.search_topk("zzyzx unknown", 10).is_empty());
        assert!(e.search_topk("", 10).is_empty());
    }

    #[test]
    fn limit_respected() {
        let e = corpus();
        let hits = e.search("Robert", 1);
        assert_eq!(hits.len(), 1);
        assert_eq!(e.search_topk("Robert", 1).len(), 1);
        assert!(e.search_topk("Robert", 0).is_empty());
    }

    #[test]
    fn rare_terms_weigh_more() {
        let e = corpus();
        // "walker" appears once, "robert" in two pages: a query for Alice
        // Walker must put page 1 first.
        let hits = e.search("Alice Walker", 10);
        assert_eq!(hits[0].page, 1);
    }

    #[test]
    fn distinct_display_names_dedupe_and_align() {
        let e = corpus();
        let (ids, names) = e.distinct_display_names();
        assert_eq!(ids.len(), e.len());
        // Pages 0 and 2 are both "Robert Smith".
        assert_eq!(ids[0], ids[2]);
        assert_ne!(ids[0], ids[1]);
        assert_eq!(names.len(), 3);
        for (page, &id) in e.pages().iter().zip(&ids) {
            assert_eq!(page.display_name, names[id as usize]);
        }
        let empty = SearchEngine::build(vec![]);
        let (ids, names) = empty.distinct_display_names();
        assert!(ids.is_empty() && names.is_empty());
    }

    #[test]
    fn search_pages_resolves() {
        let e = corpus();
        let pages = e.search_pages("Verizon", 5);
        assert_eq!(pages.len(), 1);
        assert_eq!(pages[0].display_name, "Alice Walker");
    }

    #[test]
    fn empty_engine() {
        let e = SearchEngine::build(vec![]);
        assert!(e.is_empty());
        assert!(e.search("anything", 5).is_empty());
        assert!(e.search_topk("anything", 5).is_empty());
        assert!(e.search_many(&["anything"], 5)[0].is_empty());
    }

    #[test]
    fn search_many_matches_search_bit_for_bit() {
        let e = corpus();
        let queries = [
            "Robert Smith",
            "Alice Walker",
            "Robert",
            "Verizon",
            "Robert Smith", // repeat: exercises the warm term cache
            "zzyzx unknown",
            "",
            "Robert Jones Acme",
        ];
        for limit in [1usize, 2, 10] {
            let batched = e.search_many(&queries, limit);
            for (q, hits) in queries.iter().zip(&batched) {
                let single = e.search(q, limit);
                assert_eq!(hits.len(), single.len(), "query {q:?} limit {limit}");
                for (a, b) in hits.iter().zip(&single) {
                    assert_eq!(a.page, b.page, "query {q:?}");
                    assert_eq!(a.score.to_bits(), b.score.to_bits(), "query {q:?}");
                }
            }
        }
    }

    #[test]
    fn search_topk_matches_search_bit_for_bit() {
        let e = corpus();
        let queries = [
            "Robert Smith",
            "Alice Walker",
            "Robert",
            "Robert Robert Smith", // duplicate token: contributes twice
            "Verizon CEO",
            "Robert Jones Acme zzyzx",
            "smith",
        ];
        let mut scratch = e.scratch();
        let mut cache = e.term_cache();
        for limit in [1usize, 2, 3, 8, 100] {
            for q in &queries {
                let exhaustive = e.search(q, limit);
                let fast = e.search_topk_with(q, limit, &mut scratch, &mut cache);
                assert_eq!(fast.len(), exhaustive.len(), "query {q:?} limit {limit}");
                for (a, b) in fast.iter().zip(&exhaustive) {
                    assert_eq!(a.page, b.page, "query {q:?} limit {limit}");
                    assert_eq!(
                        a.score.to_bits(),
                        b.score.to_bits(),
                        "query {q:?} limit {limit}"
                    );
                }
            }
        }
    }

    #[test]
    fn topk_duplicate_query_tokens_scale_the_upper_bound() {
        // Regression: the early-exit upper bound must multiply each
        // list's head contribution by its query multiplicity. With
        // "robert robert smith" the smith-bearing pages max out at
        // 2·c_robert + c_smith < the 4·robert page's 8·c_robert-ish
        // score, and an unscaled bound exits before ever seeing it.
        let texts = [
            "smith robert",
            "smith robert",
            "robert robert robert robert",
            "robert robert robert",
            "robert",
            "robert",
        ];
        let pages: Vec<WebPage> = texts
            .iter()
            .enumerate()
            .map(|(i, t)| WebPage {
                id: i,
                person_id: None,
                display_name: String::new(),
                kind: PageKind::News,
                text: (*t).into(),
            })
            .collect();
        let e = SearchEngine::build(pages);
        for limit in [1usize, 2, 3, 6] {
            let exhaustive = e.search("robert robert smith", limit);
            let fast = e.search_topk("robert robert smith", limit);
            assert_eq!(fast.len(), exhaustive.len(), "limit {limit}");
            for (a, b) in fast.iter().zip(&exhaustive) {
                assert_eq!(a.page, b.page, "limit {limit}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "limit {limit}");
            }
        }
    }

    #[test]
    fn sharded_topk_matches_unsharded_bit_for_bit() {
        let e = corpus();
        let queries = [
            "Robert Smith",
            "Alice Walker",
            "Robert",
            "Robert Robert Smith",
            "Verizon CEO",
            "Robert Jones Acme zzyzx",
            "zzyzx unknown",
            "",
        ];
        for shards in 1..=5usize {
            for seed in [0u64, 7, 991] {
                let sharded = ShardedSearchEngine::build(&e, ShardPlan::new(shards, seed));
                assert_eq!(sharded.shard_count(), shards);
                let total: usize = (0..shards).map(|s| sharded.pages_in_shard(s)).sum();
                assert_eq!(total, e.len(), "every page owned exactly once");
                let mut scratch = e.scratch();
                let mut cache = e.term_cache();
                for limit in [1usize, 2, 3, 8] {
                    for q in &queries {
                        let full = e.search_topk(q, limit);
                        let split = sharded.search_topk_with(q, limit, &mut scratch, &mut cache);
                        assert_eq!(split.len(), full.len(), "query {q:?} shards {shards}");
                        for (a, b) in split.iter().zip(&full) {
                            assert_eq!(a.page, b.page, "query {q:?} shards {shards}");
                            assert_eq!(
                                a.score.to_bits(),
                                b.score.to_bits(),
                                "query {q:?} shards {shards}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn shard_assignment_follows_plan_keys() {
        let e = corpus();
        let plan = ShardPlan::new(3, 11);
        let sharded = ShardedSearchEngine::build(&e, plan);
        for (pi, page) in e.pages().iter().enumerate() {
            assert_eq!(sharded.shard_of_page(pi), plan.shard_of(&page.display_name));
        }
        // Same display name ⇒ same shard (pages 0 and 2 are both
        // "Robert Smith").
        assert_eq!(sharded.shard_of_page(0), sharded.shard_of_page(2));
    }

    #[test]
    fn surviving_search_drops_only_lost_shard_pages() {
        let e = corpus();
        let sharded = ShardedSearchEngine::build(&e, ShardPlan::new(3, 5));
        let mut scratch = e.scratch();
        let mut cache = e.term_cache();
        let all_alive = vec![true; 3];
        let full =
            sharded.search_topk_surviving("Robert Smith", 10, &all_alive, &mut scratch, &mut cache);
        assert_eq!(full, e.search_topk("Robert Smith", 10));
        for lost in 0..3usize {
            let mut alive = vec![true; 3];
            alive[lost] = false;
            let degraded =
                sharded.search_topk_surviving("Robert Smith", 10, &alive, &mut scratch, &mut cache);
            // Exactly the full result minus the lost shard's pages, with
            // surviving scores untouched.
            let expected: Vec<&SearchHit> = full
                .iter()
                .filter(|h| sharded.shard_of_page(h.page) != lost)
                .collect();
            assert_eq!(degraded.len(), expected.len(), "lost shard {lost}");
            for (a, b) in degraded.iter().zip(&expected) {
                assert_eq!(a.page, b.page, "lost shard {lost}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "lost shard {lost}");
            }
        }
    }

    #[test]
    fn scratch_survives_many_epochs() {
        let e = corpus();
        let mut scratch = e.scratch();
        let mut cache = e.term_cache();
        let reference = e.search("Robert Smith", 10);
        for _ in 0..100 {
            let hits = e.search_with("Robert Smith", 10, &mut scratch, &mut cache);
            assert_eq!(hits, reference);
            let topk = e.search_topk_with("Robert Smith", 10, &mut scratch, &mut cache);
            assert_eq!(topk, reference);
        }
    }
}
