//! Corpus-level fault injection: applies a [`FaultPlan`]'s page-level
//! faults to a rendered corpus, producing the dirty web the robustness
//! axis measures the attack against.

use crate::page::WebPage;
use fred_faults::{salt, Degradation, FaultPlan};

/// Applies a plan's page-level faults to a corpus, in place of the clean
/// pages: drops (tombstones), truncations, garbled text windows and
/// appended duplicates. Returns the corrupted pages plus the injection
/// report.
///
/// Positional invariants the index relies on are preserved: a dropped
/// page keeps its slot (id and position) but loses its name and text — a
/// tombstone, exactly what a dead link leaves behind — and duplicates are
/// appended at the tail with fresh sequential ids. Every decision is a
/// pure function of `(plan seed, fault site, page id)`, so the same plan
/// corrupts the same corpus identically regardless of call order, and a
/// zero-rate plan returns the input bit-identically.
pub fn corrupt_pages(pages: Vec<WebPage>, plan: &FaultPlan) -> (Vec<WebPage>, Degradation) {
    let mut deg = Degradation::default();
    let mut out = Vec::with_capacity(pages.len());
    let mut duplicates = Vec::new();
    for mut page in pages {
        let site = page.id as u64;
        if plan.targets_page(page.id) || plan.decide(plan.page_drop, salt::PAGE_DROP, site) {
            page.text.clear();
            page.display_name.clear();
            page.person_id = None;
            deg.pages_dropped += 1;
            out.push(page);
            continue;
        }
        if plan.decide(plan.page_truncate, salt::PAGE_TRUNCATE, site) {
            // Cut somewhere in the middle 15–85% of the text, snapped
            // back to a char boundary.
            let frac = 0.15 + 0.7 * plan.fraction(salt::PAGE_TRUNCATE_AT, site);
            let mut cut = (page.text.len() as f64 * frac) as usize;
            while cut > 0 && !page.text.is_char_boundary(cut) {
                cut -= 1;
            }
            page.text.truncate(cut);
            deg.pages_truncated += 1;
        }
        if plan.decide(plan.page_garble, salt::PAGE_GARBLE, site) {
            // Overwrite a window of the text with '?' — the display name
            // is left alone (linkage can still match the page; it is the
            // *facts* that rot), mirroring OCR / encoding damage.
            let start =
                (page.text.len() as f64 * plan.fraction(salt::PAGE_GARBLE_AT, site)) as usize;
            let width = page.text.len() / 5 + 1;
            page.text = page
                .text
                .char_indices()
                .map(|(i, c)| {
                    if i >= start && i < start + width && c.is_ascii_alphanumeric() {
                        '?'
                    } else {
                        c
                    }
                })
                .collect();
            deg.pages_garbled += 1;
        }
        if plan.decide(plan.page_duplicate, salt::PAGE_DUPLICATE, site) {
            duplicates.push(page.clone());
            deg.duplicates_added += 1;
        }
        out.push(page);
    }
    for mut dup in duplicates {
        dup.id = out.len();
        out.push(dup);
    }
    (out, deg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{build_corpus, CorpusConfig};
    use crate::index::SearchEngine;
    use fred_synth::person::{generate_population, PopulationConfig};

    fn corpus_pages() -> Vec<WebPage> {
        let people = generate_population(&PopulationConfig {
            size: 40,
            web_presence_rate: 1.0,
            ..PopulationConfig::default()
        });
        build_corpus(&people, &CorpusConfig::default())
            .pages()
            .to_vec()
    }

    #[test]
    fn zero_rate_plan_is_bit_identical_passthrough() {
        let pages = corpus_pages();
        let (out, deg) = corrupt_pages(pages.clone(), &FaultPlan::none());
        assert_eq!(out, pages);
        assert!(deg.is_clean());
        // A seeded plan with zero rates is a passthrough too.
        let (out, deg) = corrupt_pages(pages.clone(), &FaultPlan::uniform(99, 0.0));
        assert_eq!(out, pages);
        assert!(deg.is_clean());
    }

    #[test]
    fn corruption_is_deterministic_per_plan() {
        let pages = corpus_pages();
        let plan = FaultPlan::uniform(7, 0.25);
        let (a, deg_a) = corrupt_pages(pages.clone(), &plan);
        let (b, deg_b) = corrupt_pages(pages.clone(), &plan);
        assert_eq!(a, b);
        assert_eq!(deg_a, deg_b);
        assert!(!deg_a.is_clean());
        // A different seed corrupts differently.
        let (c, _) = corrupt_pages(pages, &FaultPlan::uniform(8, 0.25));
        assert_ne!(a, c);
    }

    #[test]
    fn dropped_pages_become_aligned_tombstones() {
        let pages = corpus_pages();
        let n = pages.len();
        let plan = FaultPlan {
            page_drop: 0.5,
            ..FaultPlan::uniform(3, 0.0)
        };
        let (out, deg) = corrupt_pages(pages, &plan);
        assert_eq!(out.len(), n);
        assert!(deg.pages_dropped > 0);
        let tombstones = out
            .iter()
            .filter(|p| p.text.is_empty() && p.display_name.is_empty())
            .count();
        assert_eq!(tombstones, deg.pages_dropped);
        // Positional id alignment survives: the index can still resolve
        // page `i` at slot `i`.
        let engine = SearchEngine::build(out);
        for i in 0..n {
            assert_eq!(engine.page(i).map(|p| p.id), Some(i));
        }
    }

    #[test]
    fn duplicates_are_appended_with_fresh_ids() {
        let pages = corpus_pages();
        let n = pages.len();
        let plan = FaultPlan {
            page_duplicate: 0.3,
            ..FaultPlan::uniform(5, 0.0)
        };
        let (out, deg) = corrupt_pages(pages, &plan);
        assert!(deg.duplicates_added > 0);
        assert_eq!(out.len(), n + deg.duplicates_added);
        for (i, p) in out.iter().enumerate() {
            assert_eq!(p.id, i);
        }
        // Each duplicate mirrors an original's text.
        for dup in &out[n..] {
            assert!(out[..n].iter().any(|p| p.text == dup.text));
        }
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let mut page = WebPage::render(
            0,
            None,
            crate::page::PageKind::Blog,
            "Ana Núñez-Ibárruri",
            "Director",
            "Café München GmbH",
            None,
        );
        // Pad with multibyte text so cuts land inside characters often.
        page.text.push_str(&"héllo wörld ".repeat(20));
        let n_originals = 64;
        for seed in 0..n_originals {
            let plan = FaultPlan {
                page_truncate: 1.0,
                ..FaultPlan::uniform(seed, 0.0)
            };
            let (out, deg) = corrupt_pages(vec![page.clone()], &plan);
            assert_eq!(deg.pages_truncated, 1);
            assert!(out[0].text.len() < page.text.len());
            // Would panic at build time if the cut split a char.
            let _ = out[0].text.to_lowercase();
        }
    }

    #[test]
    fn garbling_spares_the_display_name() {
        let pages = corpus_pages();
        let plan = FaultPlan {
            page_garble: 1.0,
            ..FaultPlan::uniform(11, 0.0)
        };
        let (out, deg) = corrupt_pages(pages.clone(), &plan);
        assert_eq!(deg.pages_garbled, pages.len());
        for (orig, got) in pages.iter().zip(&out) {
            assert_eq!(orig.display_name, got.display_name);
            assert_eq!(orig.text.len(), got.text.len());
        }
        assert!(out.iter().any(|p| p.text.contains('?')));
    }
}
