//! Corpus generation: from a ground-truth population to a searchable web.

use crate::index::SearchEngine;
use crate::noise::NameNoise;
use crate::page::{PageKind, WebPage};
use fred_synth::person::PersonProfile;
use fred_synth::rng::{coin, rng_from_seed};
use fred_synth::unique_names;
use rand::Rng;
use rayon::prelude::*;

/// Configuration of corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// RNG seed.
    pub seed: u64,
    /// Name-noise channel applied to every page's display name.
    pub noise: NameNoise,
    /// Minimum and maximum pages per person with web presence.
    pub pages_per_person: (usize, usize),
    /// Number of distractor pages about people outside the population
    /// (search-result noise).
    pub distractors: usize,
    /// Probability that a homepage mentions property holdings.
    pub homepage_property_rate: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0x3EB,
            noise: NameNoise::default(),
            pages_per_person: (1, 3),
            distractors: 50,
            homepage_property_rate: 0.7,
        }
    }
}

/// Everything [`WebPage::render`] needs for one page, drawn ahead of the
/// (parallel) render pass.
struct PageSpec<'a> {
    person_id: Option<usize>,
    kind: PageKind,
    display: String,
    title: &'a str,
    employer: &'a str,
    property: Option<f64>,
}

/// Generates the page corpus for a population and builds the search
/// engine over it.
///
/// Generation is split in two phases so the expensive part parallelizes
/// without disturbing the seeded world: every RNG draw happens in a first,
/// sequential pass — in exactly the order the one-pass builder made them,
/// which pins the generated corpus bit-for-bit across thread counts — and
/// the template rendering (the hot part of world build at large
/// populations) fans out across workers afterwards.
pub fn build_corpus(people: &[PersonProfile], config: &CorpusConfig) -> SearchEngine {
    let mut rng = rng_from_seed(config.seed);
    let mut specs: Vec<PageSpec<'_>> = Vec::new();
    let (lo, hi) = config.pages_per_person;
    let (lo, hi) = (lo.max(1), hi.max(lo.max(1)));
    for p in people {
        if !p.has_web_presence {
            continue;
        }
        let n_pages = rng.gen_range(lo..=hi);
        for _ in 0..n_pages {
            let kind = *fred_synth::rng::choice(&mut rng, &PageKind::ALL);
            let display = config.noise.corrupt(&mut rng, &p.name);
            let property = match kind {
                PageKind::PropertyRecord => Some(p.property_sqft),
                PageKind::Homepage if coin(&mut rng, config.homepage_property_rate) => {
                    Some(p.property_sqft)
                }
                _ => None,
            };
            specs.push(PageSpec {
                person_id: Some(p.id),
                kind,
                display,
                title: &p.title,
                employer: &p.employer,
                property,
            });
        }
    }
    // Distractors: pages about people who are not in the population.
    let distractor_names = unique_names(&mut rng, config.distractors);
    for name in distractor_names {
        let kind = *fred_synth::rng::choice(&mut rng, &PageKind::ALL);
        let titles = ["Clerk", "Manager", "Director", "Analyst", "CEO"];
        let employers = ["Smalltown Hardware", "Rivertown Times", "Bluefield LLC"];
        let title = titles[rng.gen_range(0..titles.len())];
        let employer = employers[rng.gen_range(0..employers.len())];
        let sqft = 500.0 + rng.gen::<f64>() * 4000.0;
        specs.push(PageSpec {
            person_id: None,
            kind,
            display: name,
            title,
            employer,
            property: Some(sqft),
        });
    }
    let pages: Vec<WebPage> = (0..specs.len())
        .into_par_iter()
        .map(|id| {
            let s = &specs[id];
            WebPage::render(
                id,
                s.person_id,
                s.kind,
                &s.display,
                s.title,
                s.employer,
                s.property,
            )
        })
        .collect();
    SearchEngine::build(pages)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_synth::person::{generate_population, PopulationConfig};

    fn population() -> Vec<PersonProfile> {
        generate_population(&PopulationConfig {
            size: 60,
            web_presence_rate: 1.0,
            ..PopulationConfig::default()
        })
    }

    #[test]
    fn corpus_covers_population() {
        let people = population();
        let engine = build_corpus(&people, &CorpusConfig::default());
        // Every person has 1-3 pages plus 50 distractors.
        let person_pages = engine
            .pages()
            .iter()
            .filter(|p| p.person_id.is_some())
            .count();
        assert!(person_pages >= people.len());
        assert!(person_pages <= 3 * people.len());
        let distractors = engine
            .pages()
            .iter()
            .filter(|p| p.person_id.is_none())
            .count();
        assert_eq!(distractors, 50);
    }

    #[test]
    fn searching_a_real_name_finds_their_pages() {
        let people = population();
        let engine = build_corpus(
            &people,
            &CorpusConfig {
                noise: NameNoise::none(),
                ..CorpusConfig::default()
            },
        );
        let mut found = 0;
        for p in &people {
            let hits = engine.search(&p.name, 5);
            if hits
                .iter()
                .any(|h| engine.page(h.page).unwrap().person_id == Some(p.id))
            {
                found += 1;
            }
        }
        // With noiseless names, search should find nearly everyone.
        assert!(
            found >= people.len() * 9 / 10,
            "found {found}/{}",
            people.len()
        );
    }

    #[test]
    fn web_presence_controls_coverage() {
        let mut people = population();
        for p in &mut people {
            p.has_web_presence = false;
        }
        let engine = build_corpus(&people, &CorpusConfig::default());
        assert!(engine.pages().iter().all(|p| p.person_id.is_none()));
    }

    #[test]
    fn deterministic_given_seed() {
        let people = population();
        let a = build_corpus(&people, &CorpusConfig::default());
        let b = build_corpus(&people, &CorpusConfig::default());
        assert_eq!(a.pages(), b.pages());
    }

    #[test]
    fn property_records_carry_ground_truth_sqft() {
        let people = population();
        let engine = build_corpus(
            &people,
            &CorpusConfig {
                noise: NameNoise::none(),
                ..CorpusConfig::default()
            },
        );
        for page in engine.pages() {
            if page.kind == PageKind::PropertyRecord {
                if let Some(pid) = page.person_id {
                    let truth = &people[pid];
                    let extracted = crate::extract::extract(page).property_sqft.unwrap();
                    assert!((extracted - truth.property_sqft).abs() < 1.0);
                }
            }
        }
    }
}
