//! Corpus generation: from a ground-truth population to a searchable web.

use crate::index::SearchEngine;
use crate::noise::NameNoise;
use crate::page::{PageKind, WebPage};
use fred_synth::person::PersonProfile;
use fred_synth::rng::{coin, rng_from_seed};
use fred_synth::unique_names;
use rand::Rng;
use rayon::prelude::*;

/// Configuration of corpus generation.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// RNG seed.
    pub seed: u64,
    /// Name-noise channel applied to every page's display name.
    pub noise: NameNoise,
    /// Minimum and maximum pages per person with web presence.
    pub pages_per_person: (usize, usize),
    /// Number of distractor pages about people outside the population
    /// (search-result noise).
    pub distractors: usize,
    /// Probability that a homepage mentions property holdings.
    pub homepage_property_rate: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0x3EB,
            noise: NameNoise::default(),
            pages_per_person: (1, 3),
            distractors: 50,
            homepage_property_rate: 0.7,
        }
    }
}

/// Everything [`WebPage::render`] needs for one page, drawn ahead of the
/// (parallel) render pass.
struct PageSpec<'a> {
    person_id: Option<usize>,
    kind: PageKind,
    display: String,
    title: &'a str,
    employer: &'a str,
    property: Option<f64>,
}

/// Generates the page corpus for a population and builds the search
/// engine over it.
///
/// Generation is split in two phases so the expensive part parallelizes
/// without disturbing the seeded world: every RNG draw happens in a first,
/// sequential pass — in exactly the order the one-pass builder made them,
/// which pins the generated corpus bit-for-bit across thread counts — and
/// the template rendering (the hot part of world build at large
/// populations) fans out across workers afterwards.
pub fn build_corpus(people: &[PersonProfile], config: &CorpusConfig) -> SearchEngine {
    let mut rng = rng_from_seed(config.seed);
    let mut specs: Vec<PageSpec<'_>> = Vec::new();
    let (lo, hi) = config.pages_per_person;
    let (lo, hi) = (lo.max(1), hi.max(lo.max(1)));
    for p in people {
        if !p.has_web_presence {
            continue;
        }
        let n_pages = rng.gen_range(lo..=hi);
        for _ in 0..n_pages {
            let kind = *fred_synth::rng::choice(&mut rng, &PageKind::ALL);
            let display = config.noise.corrupt(&mut rng, &p.name);
            let property = match kind {
                PageKind::PropertyRecord => Some(p.property_sqft),
                PageKind::Homepage if coin(&mut rng, config.homepage_property_rate) => {
                    Some(p.property_sqft)
                }
                _ => None,
            };
            specs.push(PageSpec {
                person_id: Some(p.id),
                kind,
                display,
                title: &p.title,
                employer: &p.employer,
                property,
            });
        }
    }
    // Distractors: pages about people who are not in the population.
    let distractor_names = unique_names(&mut rng, config.distractors);
    for name in distractor_names {
        let kind = *fred_synth::rng::choice(&mut rng, &PageKind::ALL);
        let titles = ["Clerk", "Manager", "Director", "Analyst", "CEO"];
        let employers = ["Smalltown Hardware", "Rivertown Times", "Bluefield LLC"];
        let title = titles[rng.gen_range(0..titles.len())];
        let employer = employers[rng.gen_range(0..employers.len())];
        let sqft = 500.0 + rng.gen::<f64>() * 4000.0;
        specs.push(PageSpec {
            person_id: None,
            kind,
            display: name,
            title,
            employer,
            property: Some(sqft),
        });
    }
    let pages: Vec<WebPage> = (0..specs.len())
        .into_par_iter()
        .map(|id| {
            let s = &specs[id];
            WebPage::render(
                id,
                s.person_id,
                s.kind,
                &s.display,
                s.title,
                s.employer,
                s.property,
            )
        })
        .collect();
    SearchEngine::build(pages)
}

/// Outcome of [`audit_property_pages`]: how many extractions were
/// checked against ground truth and how many hits were skipped, by
/// reason.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PropertyAudit {
    /// Property-carrying pages of tracked people whose extraction was
    /// compared against the person's true square footage.
    pub checked: usize,
    /// Hits skipped because their page id no longer resolves in the
    /// index (a stale link list after eviction).
    pub skipped_evicted: usize,
    /// Pages skipped because their template carries no square footage
    /// (news blurbs, directory entries, blogs).
    pub skipped_no_sqft: usize,
    /// Pages skipped because they describe nobody in the ground-truth
    /// population (distractors, or a person id out of range).
    pub skipped_untracked: usize,
    /// Largest `|extracted − truth|` across the checked pages.
    pub max_abs_error: f64,
}

/// Ground-truth audit of property extraction over a set of page ids:
/// resolves each page, extracts its square footage and compares it to
/// the owning person's true figure.
///
/// A page id evicted from the index, a template that never carries
/// square footage, or a page about nobody in the population is *skipped
/// and counted* instead of unwrapped — all three are routine in a
/// harvest audit (stale link lists, news/directory hits, distractor
/// pages), and each used to panic it.
pub fn audit_property_pages(
    engine: &SearchEngine,
    page_ids: impl IntoIterator<Item = usize>,
    people: &[PersonProfile],
) -> PropertyAudit {
    let mut audit = PropertyAudit::default();
    for id in page_ids {
        let Some(page) = engine.page(id) else {
            audit.skipped_evicted += 1;
            continue;
        };
        let Some(extracted) = crate::extract::extract(page).property_sqft else {
            audit.skipped_no_sqft += 1;
            continue;
        };
        let Some(person) = page.person_id.and_then(|pid| people.get(pid)) else {
            audit.skipped_untracked += 1;
            continue;
        };
        audit.checked += 1;
        audit.max_abs_error = audit
            .max_abs_error
            .max((extracted - person.property_sqft).abs());
    }
    audit
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_synth::person::{generate_population, PopulationConfig};

    fn population() -> Vec<PersonProfile> {
        generate_population(&PopulationConfig {
            size: 60,
            web_presence_rate: 1.0,
            ..PopulationConfig::default()
        })
    }

    #[test]
    fn corpus_covers_population() {
        let people = population();
        let engine = build_corpus(&people, &CorpusConfig::default());
        // Every person has 1-3 pages plus 50 distractors.
        let person_pages = engine
            .pages()
            .iter()
            .filter(|p| p.person_id.is_some())
            .count();
        assert!(person_pages >= people.len());
        assert!(person_pages <= 3 * people.len());
        let distractors = engine
            .pages()
            .iter()
            .filter(|p| p.person_id.is_none())
            .count();
        assert_eq!(distractors, 50);
    }

    #[test]
    fn searching_a_real_name_finds_their_pages() {
        let people = population();
        let engine = build_corpus(
            &people,
            &CorpusConfig {
                noise: NameNoise::none(),
                ..CorpusConfig::default()
            },
        );
        let mut found = 0;
        for p in &people {
            let hits = engine.search(&p.name, 5);
            // A hit that no longer resolves counts as a miss, not a
            // panic (regression: this used to unwrap the page lookup).
            if hits.iter().any(|h| {
                engine
                    .page(h.page)
                    .is_some_and(|page| page.person_id == Some(p.id))
            }) {
                found += 1;
            }
        }
        // With noiseless names, search should find nearly everyone.
        assert!(
            found >= people.len() * 9 / 10,
            "found {found}/{}",
            people.len()
        );
    }

    #[test]
    fn web_presence_controls_coverage() {
        let mut people = population();
        for p in &mut people {
            p.has_web_presence = false;
        }
        let engine = build_corpus(&people, &CorpusConfig::default());
        assert!(engine.pages().iter().all(|p| p.person_id.is_none()));
    }

    #[test]
    fn deterministic_given_seed() {
        let people = population();
        let a = build_corpus(&people, &CorpusConfig::default());
        let b = build_corpus(&people, &CorpusConfig::default());
        assert_eq!(a.pages(), b.pages());
    }

    #[test]
    fn property_records_carry_ground_truth_sqft() {
        let people = population();
        let engine = build_corpus(
            &people,
            &CorpusConfig {
                noise: NameNoise::none(),
                ..CorpusConfig::default()
            },
        );
        let audit = audit_property_pages(&engine, 0..engine.len(), &people);
        // Every person has pages and property records exist; the
        // extracted figures agree with ground truth to template
        // precision (%.0f rendering).
        assert!(audit.checked > 0, "{audit:?}");
        assert_eq!(audit.skipped_evicted, 0);
        assert!(audit.max_abs_error < 1.0, "{audit:?}");
        // Distractors carry property but belong to nobody.
        assert!(audit.skipped_untracked > 0, "{audit:?}");
    }

    #[test]
    fn audit_skips_evicted_pages_and_sqft_less_templates() {
        let people = population();
        let engine = build_corpus(
            &people,
            &CorpusConfig {
                noise: NameNoise::none(),
                ..CorpusConfig::default()
            },
        );
        // A stale link list: two ids beyond the corpus simulate pages
        // evicted from the index since the links were resolved.
        // (Regression: either used to panic the audit — the page lookup
        // and the sqft extraction were both unwrapped.)
        let stale = [0, engine.len() + 7, engine.len() + 8];
        let audit = audit_property_pages(&engine, stale.iter().copied(), &people);
        assert_eq!(audit.skipped_evicted, 2);
        assert_eq!(
            audit.checked + audit.skipped_no_sqft + audit.skipped_untracked,
            1
        );
        // Templates without square footage (news, directory, blog) are
        // skipped and counted, never unwrapped.
        let news_ids: Vec<usize> = engine
            .pages()
            .iter()
            .filter(|p| p.kind == PageKind::News)
            .map(|p| p.id)
            .collect();
        assert!(!news_ids.is_empty());
        let audit = audit_property_pages(&engine, news_ids.iter().copied(), &people);
        assert_eq!(audit.checked, 0);
        assert_eq!(audit.skipped_no_sqft, news_ids.len());
        assert_eq!(audit.max_abs_error, 0.0);
    }
}
