//! # fred-web — the synthetic web
//!
//! The paper's adversary harvests auxiliary data "from a multitude of
//! sources such as the web (homepages, blogs etc)". Real web data is not
//! available, so this crate builds the closest synthetic equivalent that
//! exercises the same code path:
//!
//! * [`page`] — templated person pages of four kinds (directory entries,
//!   homepages, news blurbs, property records), each carrying a different
//!   subset of facts;
//! * [`noise`] — a name-noise channel (nicknames, initials, typos,
//!   honorifics, reordering) between the enterprise name and the web name;
//! * [`index`] — an inverted-index search engine with TF-IDF ranking (the
//!   adversary's "index into the web");
//! * [`extract`] — semi-structured attribute extraction back into
//!   [`extract::AuxRecord`]s (the paper's Table IV rows);
//! * [`corpus`] — ties a `fred-synth` population to a searchable corpus.
//!
//! ## Example
//!
//! ```
//! use fred_synth::{generate_population, PopulationConfig};
//! use fred_web::{build_corpus, CorpusConfig, extract::extract};
//!
//! let people = generate_population(&PopulationConfig { size: 30, web_presence_rate: 1.0, ..Default::default() });
//! let engine = build_corpus(&people, &CorpusConfig::default());
//! let hits = engine.search(&people[0].name, 5);
//! assert!(!hits.is_empty());
//! let record = extract(engine.page(hits[0].page).unwrap());
//! assert!(!record.name.is_empty());
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod corrupt;
pub mod extract;
pub mod index;
pub mod noise;
pub mod page;

pub use corpus::{audit_property_pages, build_corpus, CorpusConfig, PropertyAudit};
pub use corrupt::corrupt_pages;
pub use extract::{consolidate, extract, extract_checked, title_seniority, AuxRecord};
pub use index::{
    merge_hits, SearchEngine, SearchHit, SearchScratch, ShardedSearchEngine, TermCache,
};
pub use noise::NameNoise;
pub use page::{tokenize, PageKind, WebPage};
