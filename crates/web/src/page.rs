//! Web pages: templated documents about people.

use std::fmt;

/// The kind of page, which determines its template and which facts it
/// carries (real web sources are similarly uneven: a directory entry has a
/// title but no property records, a news blurb may have neither).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// Staff-directory entry: name, title, employer. No property data.
    Directory,
    /// Personal homepage: name, title, employer, property hints.
    Homepage,
    /// Local-news blurb: name and employer; title sometimes.
    News,
    /// County property-record listing: name and square footage only.
    PropertyRecord,
    /// First-person blog post: title and employer in prose ("blogs" are
    /// called out by the paper as a harvest source). No property data.
    Blog,
}

impl PageKind {
    /// All kinds.
    pub const ALL: [PageKind; 5] = [
        PageKind::Directory,
        PageKind::Homepage,
        PageKind::News,
        PageKind::PropertyRecord,
        PageKind::Blog,
    ];
}

impl fmt::Display for PageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PageKind::Directory => "directory",
            PageKind::Homepage => "homepage",
            PageKind::News => "news",
            PageKind::PropertyRecord => "property-record",
            PageKind::Blog => "blog",
        };
        f.write_str(s)
    }
}

/// One web page in the corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct WebPage {
    /// Corpus-unique page id.
    pub id: usize,
    /// Ground-truth person id, if the page is about a real person in the
    /// population (`None` for distractor pages). Hidden from the adversary;
    /// used only for evaluation.
    pub person_id: Option<usize>,
    /// The (possibly noisy) name as printed on the page.
    pub display_name: String,
    /// Page kind.
    pub kind: PageKind,
    /// Full rendered text.
    pub text: String,
}

impl WebPage {
    /// Renders a page of the given kind from its facts.
    ///
    /// Templates intentionally vary phrasing per kind so that extraction
    /// has to handle more than one format.
    pub fn render(
        id: usize,
        person_id: Option<usize>,
        kind: PageKind,
        display_name: &str,
        title: &str,
        employer: &str,
        property_sqft: Option<f64>,
    ) -> WebPage {
        let text = match kind {
            PageKind::Directory => format!(
                "STAFF DIRECTORY\nName: {display_name}\nPosition: {title}\nOrganization: {employer}\nOffice hours by appointment."
            ),
            PageKind::Homepage => {
                let property = property_sqft
                    .map(|s| format!(" We recently moved into our {:.0} sq ft home.", s))
                    .unwrap_or_default();
                format!(
                    "Welcome to the homepage of {display_name}. I work as a {title} at {employer}.{property} Thanks for visiting!"
                )
            }
            PageKind::News => format!(
                "LOCAL NEWS — {display_name} of {employer} spoke at the community fundraiser last Saturday. \
                 The event raised over $12,000 for the public library."
            ),
            PageKind::PropertyRecord => {
                let sqft = property_sqft.unwrap_or(0.0);
                format!(
                    "COUNTY PROPERTY RECORDS\nOwner: {display_name}\nParcel improvement: {sqft:.0} sq ft\nAssessment year: 2007."
                )
            }
            PageKind::Blog => format!(
                "About me — {display_name} here. By day I'm a {title}, paying my dues at {employer}; \
                 by night I blog about gardening and chess."
            ),
        };
        WebPage {
            id,
            person_id,
            display_name: display_name.to_owned(),
            kind,
            text,
        }
    }

    /// Lowercased alphanumeric tokens of the page text (the search unit).
    pub fn tokens(&self) -> Vec<String> {
        tokenize(&self.text)
    }
}

/// Splits text into lowercased alphanumeric tokens.
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_pages_have_title_no_property() {
        let p = WebPage::render(
            0,
            Some(1),
            PageKind::Directory,
            "Robert Smith",
            "Director",
            "Verizon",
            Some(2000.0),
        );
        assert!(p.text.contains("Position: Director"));
        assert!(!p.text.contains("sq ft"));
    }

    #[test]
    fn homepage_carries_property_when_present() {
        let p = WebPage::render(
            0,
            None,
            PageKind::Homepage,
            "Alice Walker",
            "CEO",
            "Deutsche Bank",
            Some(3560.0),
        );
        assert!(p.text.contains("3560 sq ft"));
        assert!(p.text.contains("CEO at Deutsche Bank"));
        let no_prop = WebPage::render(
            0,
            None,
            PageKind::Homepage,
            "Alice Walker",
            "CEO",
            "Deutsche Bank",
            None,
        );
        assert!(!no_prop.text.contains("sq ft"));
    }

    #[test]
    fn property_record_has_sqft() {
        let p = WebPage::render(
            0,
            Some(2),
            PageKind::PropertyRecord,
            "Bob Lee",
            "",
            "",
            Some(1234.0),
        );
        assert!(p.text.contains("1234 sq ft"));
        assert!(p.text.contains("Owner: Bob Lee"));
    }

    #[test]
    fn blog_carries_title_and_employer_in_prose() {
        let p = WebPage::render(
            0,
            Some(4),
            PageKind::Blog,
            "Wei Chen",
            "Director",
            "Verizon",
            Some(999.0),
        );
        assert!(p.text.contains("I'm a Director"));
        assert!(p.text.contains("at Verizon"));
        assert!(!p.text.contains("sq ft"));
    }

    #[test]
    fn tokenization() {
        assert_eq!(
            tokenize("Hello, World! 123 sq-ft."),
            vec!["hello", "world", "123", "sq", "ft"]
        );
        assert!(tokenize("").is_empty());
        let p = WebPage::render(0, None, PageKind::News, "Wei Chen", "", "NYU", None);
        assert!(p.tokens().contains(&"wei".to_string()));
        assert!(p.tokens().contains(&"nyu".to_string()));
    }
}
