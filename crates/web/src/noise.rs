//! Name-noise models: how a person's name mutates on the open web.

use fred_linkage::NICKNAMES;
use fred_synth::rng::coin;
use rand::Rng;

/// Configuration of the name-noise channel.
#[derive(Debug, Clone)]
pub struct NameNoise {
    /// Probability of replacing the first name with a nickname (when one
    /// exists in the table).
    pub nickname_rate: f64,
    /// Probability of reducing the first name to an initial ("R. Smith").
    pub initial_rate: f64,
    /// Probability of injecting one typo (adjacent transposition, deletion
    /// or substitution) into the surname.
    pub typo_rate: f64,
    /// Probability of prefixing an honorific.
    pub title_rate: f64,
    /// Probability of rendering "Last, First" order.
    pub reorder_rate: f64,
}

impl Default for NameNoise {
    fn default() -> Self {
        NameNoise {
            nickname_rate: 0.2,
            initial_rate: 0.1,
            typo_rate: 0.08,
            title_rate: 0.15,
            reorder_rate: 0.1,
        }
    }
}

impl NameNoise {
    /// A noiseless channel (names appear verbatim).
    pub fn none() -> Self {
        NameNoise {
            nickname_rate: 0.0,
            initial_rate: 0.0,
            typo_rate: 0.0,
            title_rate: 0.0,
            reorder_rate: 0.0,
        }
    }

    /// A heavy-noise channel for stress tests.
    pub fn heavy() -> Self {
        NameNoise {
            nickname_rate: 0.4,
            initial_rate: 0.3,
            typo_rate: 0.3,
            title_rate: 0.3,
            reorder_rate: 0.3,
        }
    }

    /// Uniformly scales all rates by `f` (clamped to `[0, 1]`).
    pub fn scaled(&self, f: f64) -> Self {
        let s = |r: f64| (r * f).clamp(0.0, 1.0);
        NameNoise {
            nickname_rate: s(self.nickname_rate),
            initial_rate: s(self.initial_rate),
            typo_rate: s(self.typo_rate),
            title_rate: s(self.title_rate),
            reorder_rate: s(self.reorder_rate),
        }
    }

    /// Applies the noise channel to a `"First Last"` name.
    pub fn corrupt<R: Rng>(&self, rng: &mut R, name: &str) -> String {
        let mut parts: Vec<String> = name.split_whitespace().map(str::to_owned).collect();
        if parts.is_empty() {
            return name.to_owned();
        }
        // Nickname substitution on the first token.
        if parts.len() >= 2 && coin(rng, self.nickname_rate) {
            let lower = parts[0].to_lowercase();
            let nicks: Vec<&str> = NICKNAMES
                .iter()
                .filter(|&&(_, full)| full == lower)
                .map(|&(nick, _)| nick)
                .collect();
            if !nicks.is_empty() {
                let nick = nicks[rng.gen_range(0..nicks.len())];
                parts[0] = capitalize(nick);
            }
        }
        // Initialization of the first token.
        if parts.len() >= 2 && coin(rng, self.initial_rate) {
            let initial: String = parts[0].chars().take(1).collect();
            parts[0] = format!("{initial}.");
        }
        // Typo in the last token.
        if coin(rng, self.typo_rate) {
            let last = parts.len() - 1;
            parts[last] = inject_typo(rng, &parts[last]);
        }
        // Reorder "Last, First".
        let mut rendered = if parts.len() >= 2 && coin(rng, self.reorder_rate) {
            let last = parts.pop().expect("len >= 2");
            format!("{last}, {}", parts.join(" "))
        } else {
            parts.join(" ")
        };
        // Honorific.
        if coin(rng, self.title_rate) {
            let titles = ["Dr.", "Mr.", "Ms.", "Prof."];
            rendered = format!("{} {rendered}", titles[rng.gen_range(0..titles.len())]);
        }
        rendered
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Injects one character-level typo: transpose, delete or substitute.
fn inject_typo<R: Rng>(rng: &mut R, word: &str) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.len() < 3 {
        return word.to_owned();
    }
    // Never touch the first character so blocking keys stay usable more
    // often than not (mirrors how real typos cluster word-internally).
    let pos = rng.gen_range(1..chars.len() - 1);
    let mut out = chars.clone();
    match rng.gen_range(0..3) {
        0 => out.swap(pos, pos + 1),
        1 => {
            out.remove(pos);
        }
        _ => {
            let sub = (b'a' + rng.gen_range(0..26u8)) as char;
            out[pos] = sub;
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_synth::rng_from_seed;

    #[test]
    fn no_noise_is_identity() {
        let mut rng = rng_from_seed(1);
        let noise = NameNoise::none();
        for name in ["Robert Smith", "Alice", "Wei Chen"] {
            assert_eq!(noise.corrupt(&mut rng, name), name);
        }
    }

    #[test]
    fn heavy_noise_changes_most_names() {
        let mut rng = rng_from_seed(2);
        let noise = NameNoise::heavy();
        let changed = (0..200)
            .filter(|_| noise.corrupt(&mut rng, "Robert Smith") != "Robert Smith")
            .count();
        assert!(changed > 120, "only {changed}/200 corrupted");
    }

    #[test]
    fn nicknames_come_from_the_table() {
        let mut rng = rng_from_seed(3);
        let noise = NameNoise {
            nickname_rate: 1.0,
            ..NameNoise::none()
        };
        let mut seen_nick = false;
        for _ in 0..50 {
            let c = noise.corrupt(&mut rng, "Robert Smith");
            let first = c.split_whitespace().next().unwrap().to_lowercase();
            if first != "robert" {
                assert!(
                    NICKNAMES
                        .iter()
                        .any(|&(nick, full)| nick == first && full == "robert"),
                    "unexpected nickname {first}"
                );
                seen_nick = true;
            }
        }
        assert!(seen_nick);
    }

    #[test]
    fn initials_form() {
        let mut rng = rng_from_seed(4);
        let noise = NameNoise {
            initial_rate: 1.0,
            ..NameNoise::none()
        };
        let c = noise.corrupt(&mut rng, "Robert Smith");
        assert_eq!(c, "R. Smith");
    }

    #[test]
    fn reorder_form() {
        let mut rng = rng_from_seed(5);
        let noise = NameNoise {
            reorder_rate: 1.0,
            ..NameNoise::none()
        };
        let c = noise.corrupt(&mut rng, "Robert Smith");
        assert_eq!(c, "Smith, Robert");
    }

    #[test]
    fn typos_are_single_edits() {
        let mut rng = rng_from_seed(6);
        let noise = NameNoise {
            typo_rate: 1.0,
            ..NameNoise::none()
        };
        for _ in 0..100 {
            let c = noise.corrupt(&mut rng, "Robert Smith");
            let last = c.split_whitespace().last().unwrap();
            let d = fred_linkage::damerau_osa(last, "Smith");
            assert!(d <= 1, "typo produced distance {d}: {last}");
        }
    }

    #[test]
    fn short_words_never_typod() {
        let mut rng = rng_from_seed(7);
        let noise = NameNoise {
            typo_rate: 1.0,
            ..NameNoise::none()
        };
        assert_eq!(noise.corrupt(&mut rng, "Al Bo"), "Al Bo");
    }

    #[test]
    fn scaling() {
        let half = NameNoise::default().scaled(0.5);
        assert!((half.nickname_rate - 0.1).abs() < 1e-12);
        let capped = NameNoise::heavy().scaled(10.0);
        assert_eq!(capped.typo_rate, 1.0);
    }
}
