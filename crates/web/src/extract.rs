//! Attribute extraction: semi-structured parsing of page text back into
//! the auxiliary facts the adversary needs (paper Table IV's columns).

use crate::page::{PageKind, WebPage};
use fred_faults::InputDefect;

/// An auxiliary record extracted from one page — the programmatic analog
/// of one row of the paper's Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct AuxRecord {
    /// The page the record came from.
    pub page_id: usize,
    /// Name as printed on the page (noisy).
    pub name: String,
    /// Job title, when the page carries one.
    pub title: Option<String>,
    /// Employer, when the page carries one.
    pub employer: Option<String>,
    /// Employment seniority level 1..=4 inferred from the title keywords,
    /// when a title was found.
    pub seniority_level: Option<u8>,
    /// Property holdings in square feet, when the page carries them.
    pub property_sqft: Option<f64>,
}

/// Maps a job title to a seniority level 1..=4 by keyword — the domain
/// knowledge the paper's adversary applies to the Employment column.
pub fn title_seniority(title: &str) -> Option<u8> {
    let t = title.to_lowercase();
    // Most-senior keywords first so "assistant professor" and "assistant"
    // resolve correctly.
    if t.contains("ceo") || t.contains("chief") || t.contains("chair") || t.contains("president") {
        Some(4)
    } else if t.contains("director")
        || (t.contains("professor") && !t.contains("assistant") && !t.contains("associate"))
        || t.contains("vp")
    {
        Some(3)
    } else if t.contains("manager") || t.contains("associate") {
        Some(2)
    } else if t.contains("assistant") || t.contains("analyst") || t.contains("intern") {
        Some(1)
    } else {
        None
    }
}

/// Extracts an [`AuxRecord`] from a page.
///
/// Extraction is template-aware but intentionally lossy in exactly the ways
/// the page kinds are: news blurbs yield no title or property, directory
/// entries no property, and so on.
pub fn extract(page: &WebPage) -> AuxRecord {
    let mut record = AuxRecord {
        page_id: page.id,
        name: page.display_name.clone(),
        title: None,
        employer: None,
        seniority_level: None,
        property_sqft: None,
    };
    match page.kind {
        PageKind::Directory => {
            record.title = field_after(&page.text, "Position:");
            record.employer = field_after(&page.text, "Organization:");
        }
        PageKind::Homepage => {
            // "I work as a {title} at {employer}."
            if let Some(rest) = page.text.split("work as a ").nth(1) {
                if let Some(stop) = rest.find(" at ") {
                    record.title = Some(rest[..stop].trim().to_owned());
                    let after = &rest[stop + 4..];
                    let end = after.find('.').unwrap_or(after.len());
                    record.employer = Some(after[..end].trim().to_owned());
                }
            }
            record.property_sqft = sqft_before(&page.text, "sq ft");
        }
        PageKind::News => {
            // "{name} of {employer} spoke at ..."
            if let Some(rest) = page.text.split(" of ").nth(1) {
                if let Some(stop) = rest.find(" spoke at") {
                    record.employer = Some(rest[..stop].trim().to_owned());
                }
            }
        }
        PageKind::PropertyRecord => {
            record.property_sqft = sqft_before(&page.text, "sq ft");
        }
        PageKind::Blog => {
            // "By day I'm a {title}, paying my dues at {employer};"
            if let Some(rest) = page.text.split("I'm a ").nth(1) {
                if let Some(stop) = rest.find(',') {
                    record.title = Some(rest[..stop].trim().to_owned());
                }
            }
            if let Some(rest) = page.text.split(" dues at ").nth(1) {
                let end = rest.find(';').unwrap_or(rest.len());
                record.employer = Some(rest[..end].trim().to_owned());
            }
        }
    }
    record.seniority_level = record.title.as_deref().and_then(title_seniority);
    record
}

/// Checked variant of [`extract`] for dirty corpora: instead of parsing
/// whatever survives on a damaged page, it rejects pages whose template
/// frame is no longer intact — so a tolerant caller can *skip and count*
/// the page rather than fuse garbage.
///
/// Rejections map onto the shared taxonomy: a page with no name or text
/// at all (a tombstone) is a [`MalformedPage`](InputDefect::MalformedPage);
/// a page whose kind-specific head or tail marker is cut off is a
/// [`TruncatedPage`](InputDefect::TruncatedPage). On every cleanly
/// rendered page this returns exactly `Ok(extract(page))` (a non-finite
/// square footage is additionally dropped, defensively — templates never
/// render one).
pub fn extract_checked(page: &WebPage) -> Result<AuxRecord, InputDefect> {
    if page.display_name.trim().is_empty() || page.text.trim().is_empty() {
        return Err(InputDefect::MalformedPage);
    }
    // Each template has a fixed head and tail; truncation or a garble
    // window over either boundary breaks the frame.
    let (head, tail) = match page.kind {
        PageKind::Directory => ("STAFF DIRECTORY", "Office hours by appointment."),
        PageKind::Homepage => ("Welcome to the homepage of", "Thanks for visiting!"),
        PageKind::News => ("LOCAL NEWS", "public library."),
        PageKind::PropertyRecord => ("COUNTY PROPERTY RECORDS", "Assessment year:"),
        PageKind::Blog => ("About me", "gardening and chess."),
    };
    if !page.text.starts_with(head) || !page.text.contains(tail) {
        return Err(InputDefect::TruncatedPage);
    }
    let mut record = extract(page);
    if record.property_sqft.is_some_and(|s| !s.is_finite()) {
        record.property_sqft = None;
    }
    Ok(record)
}

/// Merges several extractions about the same person into one consolidated
/// record: first non-missing title/employer, maximum seniority, mean of the
/// property figures (a real adversary would reconcile sources similarly).
pub fn consolidate(records: &[AuxRecord]) -> Option<AuxRecord> {
    let first = records.first()?;
    let mut out = AuxRecord {
        page_id: first.page_id,
        name: first.name.clone(),
        title: None,
        employer: None,
        seniority_level: None,
        property_sqft: None,
    };
    let mut sqfts = Vec::new();
    for r in records {
        if out.title.is_none() {
            out.title = r.title.clone();
        }
        if out.employer.is_none() {
            out.employer = r.employer.clone();
        }
        out.seniority_level = match (out.seniority_level, r.seniority_level) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        if let Some(s) = r.property_sqft {
            sqfts.push(s);
        }
    }
    if !sqfts.is_empty() {
        out.property_sqft = Some(sqfts.iter().sum::<f64>() / sqfts.len() as f64);
    }
    Some(out)
}

fn field_after(text: &str, label: &str) -> Option<String> {
    let start = text.find(label)? + label.len();
    let rest = &text[start..];
    let end = rest.find('\n').unwrap_or(rest.len());
    let value = rest[..end].trim();
    (!value.is_empty()).then(|| value.to_owned())
}

/// Finds the number immediately preceding `unit` in the text.
fn sqft_before(text: &str, unit: &str) -> Option<f64> {
    let pos = text.find(unit)?;
    let before = text[..pos].trim_end();
    let start = before
        .rfind(|c: char| !(c.is_ascii_digit() || c == '.' || c == ','))
        .map(|i| i + 1)
        .unwrap_or(0);
    let num: String = before[start..].chars().filter(|c| *c != ',').collect();
    num.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::WebPage;

    #[test]
    fn directory_extraction() {
        let p = WebPage::render(
            7,
            Some(1),
            PageKind::Directory,
            "Alice Walker",
            "Assistant Professor",
            "NYU",
            None,
        );
        let r = extract(&p);
        assert_eq!(r.title.as_deref(), Some("Assistant Professor"));
        assert_eq!(r.employer.as_deref(), Some("NYU"));
        assert_eq!(r.seniority_level, Some(1));
        assert_eq!(r.property_sqft, None);
        assert_eq!(r.page_id, 7);
    }

    #[test]
    fn homepage_extraction() {
        let p = WebPage::render(
            0,
            None,
            PageKind::Homepage,
            "Robert Smith",
            "CEO",
            "Microsoft",
            Some(5430.0),
        );
        let r = extract(&p);
        assert_eq!(r.title.as_deref(), Some("CEO"));
        assert_eq!(r.employer.as_deref(), Some("Microsoft"));
        assert_eq!(r.seniority_level, Some(4));
        assert_eq!(r.property_sqft, Some(5430.0));
    }

    #[test]
    fn news_extraction_only_employer() {
        let p = WebPage::render(
            0,
            None,
            PageKind::News,
            "Wei Chen",
            "Director",
            "General Electric",
            Some(2000.0),
        );
        let r = extract(&p);
        assert_eq!(r.employer.as_deref(), Some("General Electric"));
        assert_eq!(r.title, None);
        assert_eq!(r.property_sqft, None);
    }

    #[test]
    fn property_record_extraction() {
        let p = WebPage::render(
            0,
            Some(3),
            PageKind::PropertyRecord,
            "Bob Lee",
            "",
            "",
            Some(1234.0),
        );
        let r = extract(&p);
        assert_eq!(r.property_sqft, Some(1234.0)); // template renders %.0f
        assert_eq!(r.title, None);
    }

    #[test]
    fn blog_extraction() {
        let p = WebPage::render(
            3,
            Some(7),
            PageKind::Blog,
            "Wei Chen",
            "Manager",
            "Verizon",
            None,
        );
        let r = extract(&p);
        assert_eq!(r.title.as_deref(), Some("Manager"));
        assert_eq!(r.employer.as_deref(), Some("Verizon"));
        assert_eq!(r.seniority_level, Some(2));
        assert_eq!(r.property_sqft, None);
    }

    #[test]
    fn title_seniority_mapping() {
        assert_eq!(title_seniority("CEO"), Some(4));
        assert_eq!(title_seniority("Department Chair"), Some(4));
        assert_eq!(title_seniority("Director of Engineering"), Some(3));
        assert_eq!(title_seniority("Professor"), Some(3));
        assert_eq!(title_seniority("Associate Professor"), Some(2));
        assert_eq!(title_seniority("Manager"), Some(2));
        assert_eq!(title_seniority("Assistant Professor"), Some(1));
        assert_eq!(title_seniority("Analyst"), Some(1));
        assert_eq!(title_seniority("Wizard"), None);
    }

    #[test]
    fn extract_checked_accepts_every_clean_template() {
        for (i, kind) in PageKind::ALL.into_iter().enumerate() {
            let p = WebPage::render(
                i,
                Some(i),
                kind,
                "Alice Walker",
                "Director",
                "NYU",
                Some(2200.0),
            );
            let checked = extract_checked(&p).unwrap_or_else(|e| panic!("{kind}: {e}"));
            // Exact agreement with the lossy extractor on intact pages.
            assert_eq!(checked, extract(&p), "{kind}");
        }
    }

    #[test]
    fn extract_checked_rejects_truncated_pages() {
        // Regression: truncated pages used to be parsed as if intact,
        // feeding half-fields into consolidation.
        for (i, kind) in PageKind::ALL.into_iter().enumerate() {
            let mut p = WebPage::render(
                i,
                Some(i),
                kind,
                "Alice Walker",
                "Director",
                "NYU",
                Some(2200.0),
            );
            p.text.truncate(p.text.len() / 2);
            assert_eq!(
                extract_checked(&p),
                Err(InputDefect::TruncatedPage),
                "{kind}"
            );
        }
    }

    #[test]
    fn extract_checked_rejects_tombstones_and_blank_names() {
        let mut p = WebPage::render(0, None, PageKind::News, "Wei Chen", "Director", "NYU", None);
        p.text.clear();
        assert_eq!(extract_checked(&p), Err(InputDefect::MalformedPage));
        let mut q = WebPage::render(1, None, PageKind::News, "Wei Chen", "Director", "NYU", None);
        q.display_name = "   ".into();
        assert_eq!(extract_checked(&q), Err(InputDefect::MalformedPage));
    }

    #[test]
    fn consolidation_merges_sources() {
        let dir = extract(&WebPage::render(
            0,
            Some(1),
            PageKind::Directory,
            "R. Smith",
            "Manager",
            "Verizon",
            None,
        ));
        let prop = extract(&WebPage::render(
            1,
            Some(1),
            PageKind::PropertyRecord,
            "Robert Smith",
            "",
            "",
            Some(2000.0),
        ));
        let prop2 = extract(&WebPage::render(
            2,
            Some(1),
            PageKind::PropertyRecord,
            "Robert Smith",
            "",
            "",
            Some(2400.0),
        ));
        let merged = consolidate(&[dir, prop, prop2]).unwrap();
        assert_eq!(merged.title.as_deref(), Some("Manager"));
        assert_eq!(merged.seniority_level, Some(2));
        assert_eq!(merged.property_sqft, Some(2200.0));
        assert!(consolidate(&[]).is_none());
    }
}
