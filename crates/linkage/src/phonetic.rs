//! Phonetic encodings: Soundex and a Metaphone-style simplified code.
//!
//! Phonetic codes power blocking (candidate generation) — two spellings of
//! the same surname usually share a code even when edit distance is large.

/// American Soundex: first letter plus three digits.
///
/// Returns `None` for inputs with no ASCII-alphabetic characters.
pub fn soundex(s: &str) -> Option<String> {
    let letters: Vec<char> = s
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase())
        .collect();
    let first = *letters.first()?;

    fn code(c: char) -> u8 {
        match c {
            'B' | 'F' | 'P' | 'V' => 1,
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => 2,
            'D' | 'T' => 3,
            'L' => 4,
            'M' | 'N' => 5,
            'R' => 6,
            _ => 0, // vowels + H, W, Y
        }
    }

    let mut out = String::with_capacity(4);
    out.push(first);
    let mut last_code = code(first);
    for &c in &letters[1..] {
        let k = code(c);
        // H and W are transparent: they do not reset the previous code.
        if c == 'H' || c == 'W' {
            continue;
        }
        if k != 0 && k != last_code {
            out.push((b'0' + k) as char);
            if out.len() == 4 {
                break;
            }
        }
        last_code = k;
    }
    while out.len() < 4 {
        out.push('0');
    }
    Some(out)
}

/// A simplified Metaphone-style consonant-skeleton code: maps the word to a
/// compact phonetic consonant string (length-capped at 6). Coarser than
/// real Metaphone but distinguishes more than Soundex while still merging
/// common spelling variants.
pub fn phonetic_skeleton(s: &str) -> Option<String> {
    let lower: Vec<char> = s
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_lowercase())
        .collect();
    if lower.is_empty() {
        return None;
    }
    let mut out = String::new();
    let mut i = 0;
    while i < lower.len() && out.len() < 6 {
        let c = lower[i];
        let next = lower.get(i + 1).copied();
        let mapped: Option<char> = match c {
            // Digraph handling first.
            'p' if next == Some('h') => {
                i += 1;
                Some('f')
            }
            's' if next == Some('h') => {
                i += 1;
                Some('x') // "sh" sound
            }
            'c' if next == Some('h') => {
                i += 1;
                Some('x')
            }
            'c' if matches!(next, Some('e') | Some('i') | Some('y')) => Some('s'),
            'c' => Some('k'),
            'q' => Some('k'),
            'x' => Some('k'),
            'g' if next == Some('h') => {
                i += 1;
                Some('k')
            }
            'd' if next == Some('g') => {
                i += 1;
                Some('j')
            }
            'z' => Some('s'),
            'w' | 'h' | 'y' => None,
            'a' | 'e' | 'i' | 'o' | 'u' => {
                if out.is_empty() {
                    Some('a') // leading vowel kept as canonical 'a'
                } else {
                    None
                }
            }
            other => Some(other),
        };
        if let Some(m) = mapped {
            // Collapse doubled output codes.
            if !out.ends_with(m) {
                out.push(m);
            }
        }
        i += 1;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soundex_textbook_values() {
        assert_eq!(soundex("Robert").as_deref(), Some("R163"));
        assert_eq!(soundex("Rupert").as_deref(), Some("R163"));
        assert_eq!(soundex("Ashcraft").as_deref(), Some("A261"));
        assert_eq!(soundex("Ashcroft").as_deref(), Some("A261"));
        assert_eq!(soundex("Tymczak").as_deref(), Some("T522"));
        assert_eq!(soundex("Pfister").as_deref(), Some("P236"));
        assert_eq!(soundex("Honeyman").as_deref(), Some("H555"));
    }

    #[test]
    fn soundex_merges_spelling_variants() {
        assert_eq!(soundex("Smith"), soundex("Smyth"));
        assert_eq!(soundex("Ganta"), soundex("Gantha"));
    }

    #[test]
    fn soundex_edge_cases() {
        assert_eq!(soundex(""), None);
        assert_eq!(soundex("123"), None);
        assert_eq!(soundex("A").as_deref(), Some("A000"));
        assert_eq!(soundex("  o'Brien ").as_deref(), Some("O165"));
        // Case-insensitive.
        assert_eq!(soundex("ROBERT"), soundex("robert"));
    }

    #[test]
    fn skeleton_merges_phonetic_variants() {
        assert_eq!(phonetic_skeleton("Philip"), phonetic_skeleton("Filip"));
        assert_eq!(
            phonetic_skeleton("Catherine"),
            phonetic_skeleton("Katherine")
        );
        assert_eq!(phonetic_skeleton("Zara"), phonetic_skeleton("Sara"));
    }

    #[test]
    fn skeleton_distinguishes_different_names() {
        assert_ne!(phonetic_skeleton("Robert"), phonetic_skeleton("Alice"));
        assert_ne!(phonetic_skeleton("Ganta"), phonetic_skeleton("Acharya"));
    }

    #[test]
    fn skeleton_edge_cases() {
        assert_eq!(phonetic_skeleton(""), None);
        assert_eq!(phonetic_skeleton("!!!"), None);
        assert!(phonetic_skeleton("Aeiou").is_some());
        // Length capped.
        let code = phonetic_skeleton("Brobdingnagian").unwrap();
        assert!(code.len() <= 6);
    }

    #[test]
    fn skeleton_collapses_doubles() {
        assert_eq!(phonetic_skeleton("Bobby"), phonetic_skeleton("Boby"));
        assert_eq!(phonetic_skeleton("Anna"), phonetic_skeleton("Ana"));
    }
}
