//! Name normalization: the preprocessing step before any comparison.
//!
//! Web pages spell the same person many ways — `"Dr. Robert K. Smith"`,
//! `"smith, robert"`, `"Bob Smith"`. Normalization lowercases, strips
//! punctuation and titles, expands common nicknames and produces both a
//! token list and a canonical sorted form.

use std::collections::HashMap;

/// Common English nickname → formal-name expansions used by
/// [`NameNormalizer`].
pub const NICKNAMES: &[(&str, &str)] = &[
    ("bob", "robert"),
    ("bobby", "robert"),
    ("rob", "robert"),
    ("bert", "robert"),
    ("bill", "william"),
    ("billy", "william"),
    ("will", "william"),
    ("liz", "elizabeth"),
    ("beth", "elizabeth"),
    ("betty", "elizabeth"),
    ("dick", "richard"),
    ("rick", "richard"),
    ("rich", "richard"),
    ("jim", "james"),
    ("jimmy", "james"),
    ("mike", "michael"),
    ("mick", "michael"),
    ("tom", "thomas"),
    ("tommy", "thomas"),
    ("tony", "anthony"),
    ("chris", "christine"),
    ("christy", "christine"),
    ("tina", "christine"),
    ("kate", "katherine"),
    ("kathy", "katherine"),
    ("katie", "katherine"),
    ("alex", "alexander"),
    ("sandy", "alexander"),
    ("dan", "daniel"),
    ("danny", "daniel"),
    ("dave", "david"),
    ("ed", "edward"),
    ("eddie", "edward"),
    ("ted", "edward"),
    ("joe", "joseph"),
    ("joey", "joseph"),
    ("meg", "margaret"),
    ("peggy", "margaret"),
    ("ali", "alice"),
    ("sam", "samuel"),
    ("steve", "steven"),
    ("sue", "susan"),
    ("suzy", "susan"),
    ("pat", "patricia"),
    ("patty", "patricia"),
    ("andy", "andrew"),
    ("drew", "andrew"),
    ("nick", "nicholas"),
    ("matt", "matthew"),
    ("greg", "gregory"),
    ("jen", "jennifer"),
    ("jenny", "jennifer"),
    ("becky", "rebecca"),
    ("vicky", "victoria"),
];

/// Honorifics and suffixes dropped during normalization.
const TITLES: &[&str] = &[
    "mr",
    "mrs",
    "ms",
    "miss",
    "dr",
    "prof",
    "professor",
    "sir",
    "madam",
    "jr",
    "sr",
    "ii",
    "iii",
    "iv",
    "phd",
    "md",
    "esq",
];

/// A configurable name normalizer.
#[derive(Debug, Clone)]
pub struct NameNormalizer {
    nicknames: HashMap<String, String>,
    expand_nicknames: bool,
}

/// Every derived linkage key of one name, computed once per record by
/// [`NameNormalizer::prepare`] and reused across all of that record's
/// candidate pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedName {
    /// Normalized tokens in original order.
    pub tokens: Vec<String>,
    /// Tokens joined in original order (feed to order-sensitive
    /// comparators like Jaro-Winkler).
    pub joined: String,
    /// Tokens sorted and joined (order-insensitive canonical form).
    pub canonical: String,
    /// Soundex code of the last token, when computable.
    pub surname_soundex: Option<String>,
}

impl Default for NameNormalizer {
    fn default() -> Self {
        NameNormalizer::new()
    }
}

impl NameNormalizer {
    /// Creates a normalizer with the built-in nickname table.
    pub fn new() -> Self {
        NameNormalizer {
            nicknames: NICKNAMES
                .iter()
                .map(|&(nick, full)| (nick.to_owned(), full.to_owned()))
                .collect(),
            expand_nicknames: true,
        }
    }

    /// Disables nickname expansion (for ablation experiments).
    pub fn without_nicknames(mut self) -> Self {
        self.expand_nicknames = false;
        self
    }

    /// Adds a custom nickname expansion.
    pub fn with_nickname(mut self, nick: &str, full: &str) -> Self {
        self.nicknames
            .insert(nick.to_lowercase(), full.to_lowercase());
        self
    }

    /// Normalizes a raw name into cleaned tokens, in original order.
    ///
    /// Steps: lowercase → strip non-alphanumeric (commas, periods,
    /// apostrophes) → drop titles/suffixes → expand nicknames.
    pub fn tokens(&self, raw: &str) -> Vec<String> {
        let mut out = Vec::new();
        for token in raw.split(|c: char| !c.is_alphanumeric() && c != '\'') {
            let cleaned: String = token
                .chars()
                .filter(|c| c.is_alphanumeric())
                .collect::<String>()
                .to_lowercase();
            if cleaned.is_empty() || TITLES.contains(&cleaned.as_str()) {
                continue;
            }
            let expanded = if self.expand_nicknames {
                self.nicknames.get(&cleaned).cloned().unwrap_or(cleaned)
            } else {
                cleaned
            };
            out.push(expanded);
        }
        out
    }

    /// Canonical form: normalized tokens sorted and joined with single
    /// spaces. `"Smith, Dr. Robert"` and `"Bob Smith"` both canonicalize to
    /// `"robert smith"`.
    pub fn canonical(&self, raw: &str) -> String {
        let mut tokens = self.tokens(raw);
        tokens.sort();
        tokens.join(" ")
    }

    /// Normalized tokens joined in original order (no sorting) — the form
    /// to feed order-sensitive comparators like Jaro-Winkler.
    pub fn joined(&self, raw: &str) -> String {
        self.tokens(raw).join(" ")
    }

    /// Precomputes every derived key for one raw name: the comparison and
    /// blocking hot paths then read cached fields instead of re-running
    /// normalize/tokenize/Soundex once per candidate *pair*.
    pub fn prepare(&self, raw: &str) -> PreparedName {
        let tokens = self.tokens(raw);
        let joined = tokens.join(" ");
        let mut sorted = tokens.clone();
        sorted.sort();
        let canonical = sorted.join(" ");
        let surname_soundex = tokens.last().and_then(|t| crate::phonetic::soundex(t));
        PreparedName {
            tokens,
            joined,
            canonical,
            surname_soundex,
        }
    }

    /// [`prepare`](Self::prepare) over a whole record list — the batch
    /// entry point the linker and blocking layers share.
    pub fn prepare_all(&self, names: &[String]) -> Vec<PreparedName> {
        names.iter().map(|n| self.prepare(n)).collect()
    }

    /// Whether a token looks like a bare initial (single letter).
    pub fn is_initial(token: &str) -> bool {
        token.chars().count() == 1 && token.chars().all(|c| c.is_alphabetic())
    }

    /// Compatibility of two token lists under initial-matching: every
    /// initial matches any token with that first letter; full tokens must
    /// appear in the other list. Used as a high-precision pre-filter.
    pub fn tokens_compatible(a: &[String], b: &[String]) -> bool {
        let ok = |xs: &[String], ys: &[String]| {
            xs.iter().all(|x| {
                if Self::is_initial(x) {
                    ys.iter().any(|y| y.chars().next() == x.chars().next())
                } else {
                    ys.iter().any(|y| {
                        y == x || (Self::is_initial(y) && y.chars().next() == x.chars().next())
                    })
                }
            })
        };
        ok(a, b) && ok(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_titles_punctuation_case() {
        let n = NameNormalizer::new();
        assert_eq!(
            n.tokens("Dr. Robert K. Smith, Jr."),
            vec!["robert", "k", "smith"]
        );
        assert_eq!(n.joined("SMITH, Robert"), "smith robert");
        assert_eq!(n.canonical("SMITH, Robert"), "robert smith");
    }

    #[test]
    fn nickname_expansion() {
        let n = NameNormalizer::new();
        assert_eq!(n.canonical("Bob Smith"), n.canonical("Robert Smith"));
        assert_eq!(n.canonical("Liz Jones"), n.canonical("Elizabeth Jones"));
        let off = NameNormalizer::new().without_nicknames();
        assert_ne!(off.canonical("Bob Smith"), off.canonical("Robert Smith"));
    }

    #[test]
    fn custom_nicknames() {
        let n = NameNormalizer::new().with_nickname("ranjit", "srivatsava");
        assert_eq!(n.canonical("Ranjit Ganta"), "ganta srivatsava");
    }

    #[test]
    fn apostrophes_and_hyphens() {
        let n = NameNormalizer::new();
        assert_eq!(n.tokens("O'Brien"), vec!["o'brien".replace('\'', "")]);
        assert_eq!(n.tokens("Mary-Jane Watson"), vec!["mary", "jane", "watson"]);
    }

    #[test]
    fn empty_and_junk() {
        let n = NameNormalizer::new();
        assert!(n.tokens("").is_empty());
        assert!(n.tokens("...  ,, ").is_empty());
        assert!(n.tokens("Dr. Prof.").is_empty());
        assert_eq!(n.canonical(""), "");
    }

    #[test]
    fn initials() {
        assert!(NameNormalizer::is_initial("r"));
        assert!(!NameNormalizer::is_initial("ro"));
        assert!(!NameNormalizer::is_initial("1"));
    }

    #[test]
    fn initial_compatibility() {
        let n = NameNormalizer::new();
        let a = n.tokens("R. Ganta");
        let b = n.tokens("Ranjit Ganta");
        assert!(NameNormalizer::tokens_compatible(&a, &b));
        let c = n.tokens("S. Ganta");
        assert!(!NameNormalizer::tokens_compatible(&c, &b));
        // Full-token mismatch fails.
        let d = n.tokens("Ranjit Gupta");
        assert!(!NameNormalizer::tokens_compatible(&d, &b));
    }

    #[test]
    fn canonical_is_order_insensitive() {
        let n = NameNormalizer::new();
        assert_eq!(n.canonical("Ganta, Ranjit"), n.canonical("Ranjit Ganta"));
    }
}
