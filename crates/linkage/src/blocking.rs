//! Blocking: cheap candidate-pair generation before expensive comparison.
//!
//! Comparing every release record against every web record is quadratic;
//! blocking buckets records by a cheap key (first letter, Soundex of the
//! last token, …) and only compares within buckets. Sorted-neighbourhood
//! instead slides a fixed window over records sorted by key.

use crate::normalize::{NameNormalizer, PreparedName};
use std::collections::{BTreeMap, HashMap};

/// Strategy for generating candidate pairs between two name lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blocking {
    /// Compare every left record with every right record.
    Full,
    /// Block on the first letter of the first normalized token.
    FirstLetter,
    /// Block on the Soundex code of the last normalized token (surname).
    SurnameSoundex,
    /// Sorted-neighbourhood over the canonical name with the given window
    /// (measured in *distinct* canonical keys, so exact-duplicate names
    /// always pair regardless of how many records share the key).
    SortedNeighbourhood(usize),
}

/// Lazily generated candidate `(left_index, right_index)` pairs.
///
/// `Blocking::Full` streams the cartesian product by index arithmetic —
/// nothing is materialized, so an `n × m` corpus no longer risks a
/// `with_capacity` overflow or an O(n·m) allocation before the first
/// comparison runs. The blocked strategies materialize their (already
/// sub-quadratic) pair lists.
#[derive(Debug)]
pub enum CandidatePairs {
    /// Lazy cartesian product.
    Full {
        /// Left list length.
        n_left: usize,
        /// Right list length.
        n_right: usize,
        /// Cursor: next left index.
        i: usize,
        /// Cursor: next right index.
        j: usize,
    },
    /// Pre-computed pair list from a blocked strategy.
    Materialized(std::vec::IntoIter<(usize, usize)>),
}

impl Iterator for CandidatePairs {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        match self {
            CandidatePairs::Full {
                n_left,
                n_right,
                i,
                j,
            } => {
                if *i >= *n_left || *n_right == 0 {
                    return None;
                }
                let pair = (*i, *j);
                *j += 1;
                if *j == *n_right {
                    *j = 0;
                    *i += 1;
                }
                Some(pair)
            }
            CandidatePairs::Materialized(iter) => iter.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            CandidatePairs::Full {
                n_left,
                n_right,
                i,
                j,
            } => {
                let remaining = n_left
                    .saturating_sub(*i)
                    .checked_mul(*n_right)
                    .map(|t| t.saturating_sub(*j));
                // A `None` upper bound (usize overflow) keeps `collect`
                // from attempting an absurd up-front reservation.
                (remaining.unwrap_or(usize::MAX).min(1 << 16), remaining)
            }
            CandidatePairs::Materialized(iter) => iter.size_hint(),
        }
    }
}

/// Generates candidate pairs for two lists of raw names under the chosen
/// strategy, materialized into a `Vec`.
///
/// Prefer [`candidate_pairs_iter`] (or prepare the names once with
/// [`NameNormalizer::prepare`] and use [`candidate_pairs_prepared`]) in
/// hot paths: `Blocking::Full` then streams pairs instead of allocating
/// the full cartesian product.
pub fn candidate_pairs(
    strategy: Blocking,
    normalizer: &NameNormalizer,
    left: &[String],
    right: &[String],
) -> Vec<(usize, usize)> {
    candidate_pairs_iter(strategy, normalizer, left, right).collect()
}

/// Lazy variant of [`candidate_pairs`].
pub fn candidate_pairs_iter(
    strategy: Blocking,
    normalizer: &NameNormalizer,
    left: &[String],
    right: &[String],
) -> CandidatePairs {
    if strategy == Blocking::Full {
        // No keys needed: skip normalization entirely.
        return CandidatePairs::Full {
            n_left: left.len(),
            n_right: right.len(),
            i: 0,
            j: 0,
        };
    }
    candidate_pairs_prepared(
        strategy,
        &normalizer.prepare_all(left),
        &normalizer.prepare_all(right),
    )
}

/// Candidate pairs over names already prepared with
/// [`NameNormalizer::prepare`] — every blocking key is read from the
/// per-record cache instead of re-derived per pair.
pub fn candidate_pairs_prepared(
    strategy: Blocking,
    left: &[PreparedName],
    right: &[PreparedName],
) -> CandidatePairs {
    match strategy {
        Blocking::Full => CandidatePairs::Full {
            n_left: left.len(),
            n_right: right.len(),
            i: 0,
            j: 0,
        },
        Blocking::FirstLetter => block_by(left, right, |p| {
            p.tokens
                .first()
                .and_then(|t| t.chars().next())
                .map(|c| c.to_string())
        }),
        Blocking::SurnameSoundex => block_by(left, right, |p| p.surname_soundex.clone()),
        Blocking::SortedNeighbourhood(window) => sorted_neighbourhood(left, right, window.max(1)),
    }
}

fn block_by(
    left: &[PreparedName],
    right: &[PreparedName],
    key: impl Fn(&PreparedName) -> Option<String>,
) -> CandidatePairs {
    let mut right_blocks: HashMap<String, Vec<usize>> = HashMap::new();
    for (j, name) in right.iter().enumerate() {
        if let Some(k) = key(name) {
            right_blocks.entry(k).or_default().push(j);
        }
    }
    let mut out = Vec::new();
    for (i, name) in left.iter().enumerate() {
        if let Some(k) = key(name) {
            if let Some(js) = right_blocks.get(&k) {
                out.extend(js.iter().map(|&j| (i, j)));
            }
        }
    }
    CandidatePairs::Materialized(out.into_iter())
}

fn sorted_neighbourhood(
    left: &[PreparedName],
    right: &[PreparedName],
    window: usize,
) -> CandidatePairs {
    // Bucket both sides by canonical key, then pair left/right records
    // whose *distinct keys* fall within `window` positions of each other
    // in sort order. Records sharing a key are always paired (distance
    // zero), so exact duplicates can never fall outside the window.
    let mut by_key: BTreeMap<&str, (Vec<usize>, Vec<usize>)> = BTreeMap::new();
    for (i, p) in left.iter().enumerate() {
        by_key.entry(p.canonical.as_str()).or_default().0.push(i);
    }
    for (j, p) in right.iter().enumerate() {
        by_key.entry(p.canonical.as_str()).or_default().1.push(j);
    }
    let buckets: Vec<&(Vec<usize>, Vec<usize>)> = by_key.values().collect();
    let mut out = Vec::new();
    for (pos, bucket) in buckets.iter().enumerate() {
        let hi = (pos + window + 1).min(buckets.len());
        for (offset, other) in buckets[pos..hi].iter().enumerate() {
            for &i in &bucket.0 {
                for &j in &other.1 {
                    out.push((i, j));
                }
            }
            if offset > 0 {
                for &i in &other.0 {
                    for &j in &bucket.1 {
                        out.push((i, j));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    CandidatePairs::Materialized(out.into_iter())
}

/// Reduction ratio of a blocking run: `1 - candidates / (|L| * |R|)`.
/// Computed in floating point so huge corpora cannot overflow.
pub fn reduction_ratio(candidates: usize, left: usize, right: usize) -> f64 {
    let full = left as f64 * right as f64;
    if full == 0.0 {
        return 0.0;
    }
    1.0 - candidates as f64 / full
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn full_blocking_is_cartesian() {
        let n = NameNormalizer::new();
        let left = names(&["a", "b"]);
        let right = names(&["x", "y", "z"]);
        let pairs = candidate_pairs(Blocking::Full, &n, &left, &right);
        assert_eq!(pairs.len(), 6);
    }

    #[test]
    fn first_letter_blocks() {
        let n = NameNormalizer::new();
        let left = names(&["Alice Zhu", "Robert Smith"]);
        let right = names(&["alice zhu", "Amanda Jones", "Robert smith"]);
        let pairs = candidate_pairs(Blocking::FirstLetter, &n, &left, &right);
        // Alice matches alice+Amanda; Robert matches Robert.
        assert!(pairs.contains(&(0, 0)));
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 2)));
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn surname_soundex_blocks_spelling_variants() {
        let n = NameNormalizer::new();
        let left = names(&["John Smith"]);
        let right = names(&["Jon Smyth", "John Adams"]);
        let pairs = candidate_pairs(Blocking::SurnameSoundex, &n, &left, &right);
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn sorted_neighbourhood_finds_close_keys() {
        let n = NameNormalizer::new();
        let left = names(&["aa", "zz"]);
        let right = names(&["ab", "zy"]);
        let pairs = candidate_pairs(Blocking::SortedNeighbourhood(1), &n, &left, &right);
        assert!(
            pairs.contains(&(0, 0)),
            "close keys must pair, got {pairs:?}"
        );
        assert!(
            pairs.contains(&(1, 1)),
            "close keys must pair, got {pairs:?}"
        );
        // Keys at opposite ends of the sort order stay unpaired.
        assert!(!pairs.contains(&(0, 1)));
        assert!(!pairs.contains(&(1, 0)));
    }

    #[test]
    fn sorted_neighbourhood_window_grows_candidates() {
        let n = NameNormalizer::new();
        let left = names(&["aa", "bb", "cc", "dd"]);
        let right = names(&["ab", "bc", "cd", "de"]);
        let small = candidate_pairs(Blocking::SortedNeighbourhood(1), &n, &left, &right).len();
        let large = candidate_pairs(Blocking::SortedNeighbourhood(8), &n, &left, &right).len();
        assert!(large > small);
        assert_eq!(large, 16); // window covers everything -> full cartesian
    }

    #[test]
    fn blocking_reduces_candidates() {
        let n = NameNormalizer::new();
        let left: Vec<String> = (0..26)
            .map(|i| format!("{}name Surname{i}", (b'a' + i as u8) as char))
            .collect();
        let right = left.clone();
        let full = candidate_pairs(Blocking::Full, &n, &left, &right).len();
        let blocked = candidate_pairs(Blocking::FirstLetter, &n, &left, &right).len();
        assert!(blocked < full / 10);
        let rr = reduction_ratio(blocked, left.len(), right.len());
        assert!(rr > 0.9, "reduction ratio {rr}");
    }

    #[test]
    fn empty_names_are_skipped() {
        let n = NameNormalizer::new();
        let left = names(&["", "Robert Smith"]);
        let right = names(&["Robert Smith", ""]);
        let pairs = candidate_pairs(Blocking::SurnameSoundex, &n, &left, &right);
        assert_eq!(pairs, vec![(1, 0)]);
    }

    #[test]
    fn full_blocking_streams_lazily() {
        let n = NameNormalizer::new();
        let left = names(&["a", "b", "c"]);
        let right = names(&["x", "y"]);
        let mut iter = candidate_pairs_iter(Blocking::Full, &n, &left, &right);
        assert_eq!(iter.size_hint().1, Some(6));
        assert_eq!(iter.next(), Some((0, 0)));
        assert_eq!(iter.next(), Some((0, 1)));
        assert_eq!(iter.next(), Some((1, 0)));
        assert_eq!(iter.by_ref().count(), 3);
        assert_eq!(iter.next(), None);
        // Empty sides terminate immediately.
        assert_eq!(
            candidate_pairs_iter(Blocking::Full, &n, &[], &right).count(),
            0
        );
        assert_eq!(
            candidate_pairs_iter(Blocking::Full, &n, &left, &[]).count(),
            0
        );
    }

    #[test]
    fn no_strategy_misses_an_exact_duplicate_pair() {
        // Duplicate names on both sides, including a repeated run that a
        // record-level sorted-neighbourhood window would split.
        let n = NameNormalizer::new();
        let left = names(&[
            "Robert Smith",
            "Robert Smith",
            "Alice Walker",
            "Robert Smith",
            "Wei Zhang",
        ]);
        let right = names(&[
            "robert smith",
            "Alice Walker",
            "ROBERT SMITH",
            "Priya Patel",
            "robert smith",
        ]);
        for strategy in [
            Blocking::Full,
            Blocking::FirstLetter,
            Blocking::SurnameSoundex,
            Blocking::SortedNeighbourhood(1),
        ] {
            let pairs = candidate_pairs(strategy, &n, &left, &right);
            for (i, l) in left.iter().enumerate() {
                for (j, r) in right.iter().enumerate() {
                    if l.to_lowercase() == r.to_lowercase() {
                        assert!(
                            pairs.contains(&(i, j)),
                            "{strategy:?} missed exact duplicate ({i}, {j})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn reduction_ratio_edges() {
        assert_eq!(reduction_ratio(0, 0, 10), 0.0);
        assert_eq!(reduction_ratio(100, 10, 10), 0.0);
        assert_eq!(reduction_ratio(0, 10, 10), 1.0);
    }
}
