//! Blocking: cheap candidate-pair generation before expensive comparison.
//!
//! Comparing every release record against every web record is quadratic;
//! blocking buckets records by a cheap key (first letter, Soundex of the
//! last token, …) and only compares within buckets. Sorted-neighbourhood
//! instead slides a fixed window over records sorted by key.

use crate::normalize::NameNormalizer;
use crate::phonetic::soundex;
use std::collections::HashMap;

/// Strategy for generating candidate pairs between two name lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blocking {
    /// Compare every left record with every right record.
    Full,
    /// Block on the first letter of the first normalized token.
    FirstLetter,
    /// Block on the Soundex code of the last normalized token (surname).
    SurnameSoundex,
    /// Sorted-neighbourhood over the canonical name with the given window.
    SortedNeighbourhood(usize),
}

/// Generates candidate `(left_index, right_index)` pairs for two lists of
/// raw names under the chosen strategy.
pub fn candidate_pairs(
    strategy: Blocking,
    normalizer: &NameNormalizer,
    left: &[String],
    right: &[String],
) -> Vec<(usize, usize)> {
    match strategy {
        Blocking::Full => {
            let mut out = Vec::with_capacity(left.len() * right.len());
            for i in 0..left.len() {
                for j in 0..right.len() {
                    out.push((i, j));
                }
            }
            out
        }
        Blocking::FirstLetter => block_by(left, right, |raw| {
            normalizer
                .tokens(raw)
                .first()
                .and_then(|t| t.chars().next())
                .map(|c| c.to_string())
        }),
        Blocking::SurnameSoundex => block_by(left, right, |raw| {
            normalizer.tokens(raw).last().and_then(|t| soundex(t))
        }),
        Blocking::SortedNeighbourhood(window) => {
            sorted_neighbourhood(normalizer, left, right, window.max(1))
        }
    }
}

fn block_by(
    left: &[String],
    right: &[String],
    key: impl Fn(&str) -> Option<String>,
) -> Vec<(usize, usize)> {
    let mut right_blocks: HashMap<String, Vec<usize>> = HashMap::new();
    for (j, name) in right.iter().enumerate() {
        if let Some(k) = key(name) {
            right_blocks.entry(k).or_default().push(j);
        }
    }
    let mut out = Vec::new();
    for (i, name) in left.iter().enumerate() {
        if let Some(k) = key(name) {
            if let Some(js) = right_blocks.get(&k) {
                out.extend(js.iter().map(|&j| (i, j)));
            }
        }
    }
    out
}

fn sorted_neighbourhood(
    normalizer: &NameNormalizer,
    left: &[String],
    right: &[String],
    window: usize,
) -> Vec<(usize, usize)> {
    // Merge both sides into one key-sorted sequence, then pair left/right
    // records that fall within `window` positions of each other.
    #[derive(Clone)]
    struct Entry {
        key: String,
        side: bool, // false = left, true = right
        index: usize,
    }
    let mut entries: Vec<Entry> = Vec::with_capacity(left.len() + right.len());
    for (i, name) in left.iter().enumerate() {
        entries.push(Entry { key: normalizer.canonical(name), side: false, index: i });
    }
    for (j, name) in right.iter().enumerate() {
        entries.push(Entry { key: normalizer.canonical(name), side: true, index: j });
    }
    entries.sort_by(|a, b| a.key.cmp(&b.key));
    let mut out = Vec::new();
    for (pos, e) in entries.iter().enumerate() {
        let hi = (pos + window + 1).min(entries.len());
        for other in &entries[pos + 1..hi] {
            match (e.side, other.side) {
                (false, true) => out.push((e.index, other.index)),
                (true, false) => out.push((other.index, e.index)),
                _ => {}
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Reduction ratio of a blocking run: `1 - candidates / (|L| * |R|)`.
pub fn reduction_ratio(candidates: usize, left: usize, right: usize) -> f64 {
    let full = left * right;
    if full == 0 {
        return 0.0;
    }
    1.0 - candidates as f64 / full as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn full_blocking_is_cartesian() {
        let n = NameNormalizer::new();
        let left = names(&["a", "b"]);
        let right = names(&["x", "y", "z"]);
        let pairs = candidate_pairs(Blocking::Full, &n, &left, &right);
        assert_eq!(pairs.len(), 6);
    }

    #[test]
    fn first_letter_blocks() {
        let n = NameNormalizer::new();
        let left = names(&["Alice Zhu", "Robert Smith"]);
        let right = names(&["alice zhu", "Amanda Jones", "Robert smith"]);
        let pairs = candidate_pairs(Blocking::FirstLetter, &n, &left, &right);
        // Alice matches alice+Amanda; Robert matches Robert.
        assert!(pairs.contains(&(0, 0)));
        assert!(pairs.contains(&(0, 1)));
        assert!(pairs.contains(&(1, 2)));
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn surname_soundex_blocks_spelling_variants() {
        let n = NameNormalizer::new();
        let left = names(&["John Smith"]);
        let right = names(&["Jon Smyth", "John Adams"]);
        let pairs = candidate_pairs(Blocking::SurnameSoundex, &n, &left, &right);
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn sorted_neighbourhood_finds_close_keys() {
        let n = NameNormalizer::new();
        let left = names(&["aa", "zz"]);
        let right = names(&["ab", "zy"]);
        let pairs = candidate_pairs(Blocking::SortedNeighbourhood(1), &n, &left, &right);
        assert!(pairs.contains(&(0, 0)), "close keys must pair, got {pairs:?}");
        assert!(pairs.contains(&(1, 1)), "close keys must pair, got {pairs:?}");
        // Keys at opposite ends of the sort order stay unpaired.
        assert!(!pairs.contains(&(0, 1)));
        assert!(!pairs.contains(&(1, 0)));
    }

    #[test]
    fn sorted_neighbourhood_window_grows_candidates() {
        let n = NameNormalizer::new();
        let left = names(&["aa", "bb", "cc", "dd"]);
        let right = names(&["ab", "bc", "cd", "de"]);
        let small = candidate_pairs(Blocking::SortedNeighbourhood(1), &n, &left, &right).len();
        let large = candidate_pairs(Blocking::SortedNeighbourhood(8), &n, &left, &right).len();
        assert!(large > small);
        assert_eq!(large, 16); // window covers everything -> full cartesian
    }

    #[test]
    fn blocking_reduces_candidates() {
        let n = NameNormalizer::new();
        let left: Vec<String> = (0..26)
            .map(|i| format!("{}name Surname{i}", (b'a' + i as u8) as char))
            .collect();
        let right = left.clone();
        let full = candidate_pairs(Blocking::Full, &n, &left, &right).len();
        let blocked = candidate_pairs(Blocking::FirstLetter, &n, &left, &right).len();
        assert!(blocked < full / 10);
        let rr = reduction_ratio(blocked, left.len(), right.len());
        assert!(rr > 0.9, "reduction ratio {rr}");
    }

    #[test]
    fn empty_names_are_skipped() {
        let n = NameNormalizer::new();
        let left = names(&["", "Robert Smith"]);
        let right = names(&["Robert Smith", ""]);
        let pairs = candidate_pairs(Blocking::SurnameSoundex, &n, &left, &right);
        assert_eq!(pairs, vec![(1, 0)]);
    }

    #[test]
    fn reduction_ratio_edges() {
        assert_eq!(reduction_ratio(0, 0, 10), 0.0);
        assert_eq!(reduction_ratio(100, 10, 10), 0.0);
        assert_eq!(reduction_ratio(0, 10, 10), 1.0);
    }
}
