//! Token-level TF-IDF cosine similarity.
//!
//! Edit distances treat a name as one string; token TF-IDF treats it as a
//! bag of words weighted by corpus rarity, which is the right model when
//! comparing multi-token fields (employers, page snippets, full "First
//! Middle Last" names) where a rare surname should count far more than a
//! ubiquitous "the" or "inc".

use std::collections::HashMap;

/// A TF-IDF vectorizer fitted on a corpus of documents.
#[derive(Debug, Clone)]
pub struct TfIdf {
    /// Document frequency per token.
    df: HashMap<String, usize>,
    /// Number of documents fitted.
    n_docs: usize,
}

fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

impl TfIdf {
    /// Fits document frequencies on a corpus.
    pub fn fit<S: AsRef<str>>(corpus: &[S]) -> Self {
        let mut df: HashMap<String, usize> = HashMap::new();
        for doc in corpus {
            let mut seen: Vec<String> = tokenize(doc.as_ref());
            seen.sort();
            seen.dedup();
            for tok in seen {
                *df.entry(tok).or_insert(0) += 1;
            }
        }
        TfIdf {
            df,
            n_docs: corpus.len(),
        }
    }

    /// Number of fitted documents.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Inverse document frequency of a token. Unseen tokens get the
    /// maximum IDF (they are maximally discriminative).
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.df.get(token).copied().unwrap_or(0);
        ((self.n_docs as f64 + 1.0) / (df as f64 + 1.0)).ln() + 1.0
    }

    /// Sparse TF-IDF vector of a text.
    pub fn vectorize(&self, text: &str) -> HashMap<String, f64> {
        let mut tf: HashMap<String, f64> = HashMap::new();
        for tok in tokenize(text) {
            *tf.entry(tok).or_insert(0.0) += 1.0;
        }
        for (tok, v) in tf.iter_mut() {
            *v = (1.0 + v.ln()) * self.idf(tok);
        }
        tf
    }

    /// Cosine similarity of two texts under the fitted weights, in
    /// `[0, 1]`.
    pub fn cosine(&self, a: &str, b: &str) -> f64 {
        let va = self.vectorize(a);
        let vb = self.vectorize(b);
        if va.is_empty() && vb.is_empty() {
            return 1.0;
        }
        let dot: f64 = va
            .iter()
            .filter_map(|(tok, &wa)| vb.get(tok).map(|&wb| wa * wb))
            .sum();
        let na: f64 = va.values().map(|w| w * w).sum::<f64>().sqrt();
        let nb: f64 = vb.values().map(|w| w * w).sum::<f64>().sqrt();
        if na == 0.0 || nb == 0.0 {
            return 0.0;
        }
        (dot / (na * nb)).clamp(0.0, 1.0)
    }

    /// Ranks `candidates` by cosine similarity to `query`, descending.
    /// Returns `(index, score)` pairs.
    pub fn rank<S: AsRef<str>>(&self, query: &str, candidates: &[S]) -> Vec<(usize, f64)> {
        let mut scored: Vec<(usize, f64)> = candidates
            .iter()
            .enumerate()
            .map(|(i, c)| (i, self.cosine(query, c.as_ref())))
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<&'static str> {
        vec![
            "robert smith works at microsoft",
            "alice walker deutsche bank ceo",
            "the quick brown fox",
            "robert jones at the verizon store",
            "christine lee nyu assistant",
        ]
    }

    #[test]
    fn identity_and_disjoint() {
        let t = TfIdf::fit(&corpus());
        assert!((t.cosine("robert smith", "robert smith") - 1.0).abs() < 1e-9);
        assert_eq!(t.cosine("robert", "christine"), 0.0);
        assert!((t.cosine("", "") - 1.0).abs() < 1e-12);
        assert_eq!(t.cosine("robert", ""), 0.0);
    }

    #[test]
    fn rare_tokens_dominate() {
        let t = TfIdf::fit(&corpus());
        // "smith" is rarer than "the" in the corpus; sharing "smith"
        // scores far higher than sharing "the".
        let share_rare = t.cosine("smith consulting", "smith holdings");
        let share_common = t.cosine("the consulting", "the holdings");
        assert!(
            share_rare > share_common + 0.05,
            "{share_rare} vs {share_common}"
        );
        assert!(t.idf("smith") > t.idf("the"));
    }

    #[test]
    fn unseen_tokens_get_max_idf() {
        let t = TfIdf::fit(&corpus());
        assert!(t.idf("zzyzx") >= t.idf("smith"));
    }

    #[test]
    fn symmetry_and_bounds() {
        let t = TfIdf::fit(&corpus());
        for (a, b) in [
            ("robert smith", "smith robert"),
            ("alice walker", "alice who"),
            ("x", "y z"),
        ] {
            let ab = t.cosine(a, b);
            let ba = t.cosine(b, a);
            assert!((ab - ba).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&ab));
        }
        // Token order does not matter.
        assert!((t.cosine("robert smith", "smith robert") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ranking() {
        let t = TfIdf::fit(&corpus());
        let candidates = [
            "robert smith microsoft",
            "alice walker",
            "robert jones verizon",
        ];
        let ranked = t.rank("robert smith", &candidates);
        assert_eq!(ranked[0].0, 0);
        assert!(ranked[0].1 > ranked[1].1);
        // Both Roberts beat Alice.
        assert_eq!(ranked[2].0, 1);
    }

    #[test]
    fn fit_on_empty_corpus() {
        let t = TfIdf::fit::<&str>(&[]);
        assert_eq!(t.n_docs(), 0);
        // Still usable: every token unseen, cosine well-defined.
        assert!((t.cosine("a b", "a b") - 1.0).abs() < 1e-9);
    }
}
