//! # fred-linkage — record-linkage framework
//!
//! The adversary's harvesting step "uses the identifiers present in the
//! release to collect auxiliary information about the individuals" (paper
//! Section I). On the real web, names are noisy; this crate provides the
//! full programmatic equivalent of that lookup:
//!
//! * string comparators — [`edit`] (Levenshtein, OSA), [`jaro`]
//!   (Jaro/Jaro-Winkler), [`ngram`] (Jaccard/Dice/cosine) and [`phonetic`]
//!   (Soundex, consonant skeletons);
//! * [`normalize`] — titles, punctuation, nicknames, initials;
//! * [`blocking`] — candidate generation (first-letter, surname-Soundex,
//!   sorted neighbourhood);
//! * [`fellegi_sunter`] — the probabilistic linkage model with EM
//!   parameter estimation;
//! * [`agreement`] — batch-rate classification: per-record comparator
//!   keys, a model-derived score floor that prunes hopeless pairs before
//!   any string comparison, and a reusable decided-pair memo;
//! * [`linker`] — the end-to-end pipeline with one-to-one assignment and
//!   precision/recall evaluation.
//!
//! ## Example
//!
//! ```
//! use fred_linkage::Linker;
//!
//! let release = vec!["Robert Smith".to_string(), "Christine Lee".to_string()];
//! let web = vec!["Dr. Bob Smith".to_string(), "christine lee".to_string()];
//! let links = Linker::new().link(&release, &web);
//! assert_eq!(links.len(), 2);
//! assert_eq!(links[0].right, 0); // Bob == Robert after normalization
//! ```

#![warn(missing_docs)]

pub mod agreement;
pub mod blocking;
pub mod edit;
pub mod fellegi_sunter;
pub mod jaro;
pub mod linker;
pub mod ngram;
pub mod normalize;
pub mod phonetic;
pub mod tfidf;

pub use agreement::{AgreementCache, AgreementScratch, LinkKey, ScoreFloor};
pub use blocking::{
    candidate_pairs, candidate_pairs_iter, candidate_pairs_prepared, reduction_ratio, Blocking,
    CandidatePairs,
};
pub use edit::{damerau_osa, levenshtein, levenshtein_similarity};
pub use fellegi_sunter::{Decision, FellegiSunter, FieldParams};
pub use jaro::{jaro, jaro_winkler, jaro_winkler_with};
pub use linker::{
    compare_names, compare_prepared, default_name_model, evaluate, Link, LinkageQuality, Linker,
    LinkerConfig, NameFeatures,
};
pub use ngram::{bigrams_sorted, cosine, dice, dice_sorted_bigrams, jaccard, ngrams};
pub use normalize::{NameNormalizer, PreparedName, NICKNAMES};
pub use phonetic::{phonetic_skeleton, soundex};
pub use tfidf::TfIdf;
