//! Batch-rate agreement classification: precomputed comparator keys, a
//! model-derived score floor that prunes hopeless pairs, and a memo of
//! decided pairs.
//!
//! The harvest loop classifies every (release name, search hit) pair
//! through the five-field name model. Three observations make that loop
//! cheap without changing a single decision:
//!
//! * **Comparator keys** ([`LinkKey`]) — everything the comparators
//!   re-derive per *pair* (scalar buffers for Jaro-Winkler and
//!   Levenshtein, the padded-bigram multiset for Dice) is a pure function
//!   of one name, so it is computed once per *record* and reused across
//!   all of that record's pairs.
//! * **Score floor** ([`ScoreFloor`]) — the Fellegi-Sunter weight each
//!   still-unevaluated field could contribute is bounded by its
//!   precomputed agreement/disagreement weights. Fields are evaluated
//!   cheapest first (cached Soundex equality and token compatibility cost
//!   nothing), and the moment no completion of the remaining fields can
//!   cross a decision threshold the classification short-circuits: a pair
//!   that cannot reach the match band is rejected *before any string
//!   comparator runs*, and one that cannot fall below it is accepted
//!   without the expensive tail (with the default name model that skips
//!   Jaro-Winkler for clear non-matches and both Levenshtein and
//!   Jaro-Winkler for clear matches).
//! * **Agreement memo** ([`AgreementCache`]) — web corpora repeat display
//!   names (several pages per person, most rendered verbatim), so the
//!   same (query, page-name) pair is classified again and again. The
//!   cache keys on caller-assigned dense ids for the prepared query
//!   token sequence and the hit page's (deduplicated) display name and
//!   replays the decision.
//!
//! All three layers are exact: the pruned path either evaluates every
//! field and delegates the final decision to
//! [`FellegiSunter::classify`] over the same agreement vector the
//! reference builds, or stops on a bound that holds with a safety margin
//! wider than any float-reassociation error — so its decisions are
//! pinned identical to `model.classify(&compare_prepared(a, b)
//! .agreement_vector())` (property-tested at the harvest level).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::edit::{levenshtein_similarity_chars, EditScratch};
use crate::fellegi_sunter::{Decision, FellegiSunter};
use crate::jaro::{jaro_winkler_chars, JaroScratch};
use crate::linker::{DICE_AGREE, JARO_WINKLER_AGREE, LEVENSHTEIN_AGREE};
use crate::ngram::{bigrams_sorted, dice_sorted_bigrams};
use crate::normalize::{NameNormalizer, PreparedName};

/// Number of fields in the name model this module accelerates (the
/// [`crate::linker::NameFeatures`] agreement vector).
pub const NAME_FIELDS: usize = 5;

/// Safety margin on the prune bounds: wider than any error the
/// float-summation reorder between the staged partial sums and the
/// reference's field-order sum can introduce (weights are O(10), so
/// reassociation error is O(1e-15)), yet far below the weight quanta of
/// any real m/u configuration.
const PRUNE_MARGIN: f64 = 1e-9;

/// Every derived comparator input of one name, computed once per record:
/// the [`PreparedName`] linkage keys plus the scalar buffers and the
/// sorted padded-bigram multiset the string comparators consume.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkKey {
    prepared: PreparedName,
    joined_chars: Vec<char>,
    canonical_chars: Vec<char>,
    bigrams: Vec<u64>,
}

impl LinkKey {
    /// Builds the comparator keys from an already-prepared name.
    pub fn new(prepared: PreparedName) -> LinkKey {
        let joined_chars = prepared.joined.chars().collect();
        let canonical_chars = prepared.canonical.chars().collect();
        let bigrams = bigrams_sorted(&prepared.canonical);
        LinkKey {
            prepared,
            joined_chars,
            canonical_chars,
            bigrams,
        }
    }

    /// Normalizes a raw name and builds its comparator keys.
    pub fn prepare(normalizer: &NameNormalizer, raw: &str) -> LinkKey {
        LinkKey::new(normalizer.prepare(raw))
    }

    /// The underlying linkage keys.
    pub fn prepared(&self) -> &PreparedName {
        &self.prepared
    }
}

/// Field-evaluation order of the staged classifier: cached-key fields
/// first (surname Soundex, token compatibility), then the string
/// comparators cheapest-first (Dice over precomputed bigrams,
/// Levenshtein, Jaro-Winkler). Entries are indices into the model's
/// field order.
const EVAL_ORDER: [usize; NAME_FIELDS] = [3, 4, 1, 2, 0];

/// Index of the first string comparator in [`EVAL_ORDER`] — the stage the
/// "before any string comparison" floor check runs at.
const FIRST_STRING_STAGE: usize = 2;

/// A Fellegi-Sunter model plus the precomputed per-comparator weight
/// bounds that let [`ScoreFloor::classify`] stop early. See the module
/// docs for the soundness argument.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreFloor {
    model: FellegiSunter,
    /// Agreement / disagreement weight per model field.
    agree_w: [f64; NAME_FIELDS],
    disagree_w: [f64; NAME_FIELDS],
    /// `max_after[s]` / `min_after[s]`: largest / smallest total weight
    /// the fields at stages `>= s` of [`EVAL_ORDER`] can still
    /// contribute.
    max_after: [f64; NAME_FIELDS + 1],
    min_after: [f64; NAME_FIELDS + 1],
}

impl ScoreFloor {
    /// Precomputes the floor for a five-field name model.
    ///
    /// # Panics
    ///
    /// Panics when the model does not have exactly [`NAME_FIELDS`]
    /// fields.
    pub fn new(model: &FellegiSunter) -> ScoreFloor {
        assert_eq!(
            model.field_count(),
            NAME_FIELDS,
            "ScoreFloor accelerates the {NAME_FIELDS}-field name model"
        );
        let mut agree_w = [0.0; NAME_FIELDS];
        let mut disagree_w = [0.0; NAME_FIELDS];
        for (f, params) in model.fields().iter().enumerate() {
            agree_w[f] = params.agreement_weight();
            disagree_w[f] = params.disagreement_weight();
        }
        let mut max_after = [0.0; NAME_FIELDS + 1];
        let mut min_after = [0.0; NAME_FIELDS + 1];
        for s in (0..NAME_FIELDS).rev() {
            let f = EVAL_ORDER[s];
            max_after[s] = max_after[s + 1] + agree_w[f].max(disagree_w[f]);
            min_after[s] = min_after[s + 1] + agree_w[f].min(disagree_w[f]);
        }
        ScoreFloor {
            model: model.clone(),
            agree_w,
            disagree_w,
            max_after,
            min_after,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &FellegiSunter {
        &self.model
    }

    #[inline]
    fn weight_of(&self, field: usize, agrees: bool) -> f64 {
        if agrees {
            self.agree_w[field]
        } else {
            self.disagree_w[field]
        }
    }

    /// Decision forced by the bounds after the first `stage` stages
    /// contributed `w`, if any: when even full agreement of the remaining
    /// fields stays below the lower threshold the pair is a
    /// [`Decision::NonMatch`], and when even full disagreement stays
    /// above the upper threshold it is a [`Decision::Match`].
    #[inline]
    fn forced(&self, w: f64, stage: usize) -> Option<Decision> {
        if w + self.max_after[stage] < self.model.lower() - PRUNE_MARGIN {
            Some(Decision::NonMatch)
        } else if w + self.min_after[stage] > self.model.upper() + PRUNE_MARGIN {
            Some(Decision::Match)
        } else {
            None
        }
    }

    /// Classifies a pair of comparator keys, short-circuiting on the
    /// precomputed bounds. Returns exactly what
    /// [`FellegiSunter::classify`] returns for the pair's full agreement
    /// vector.
    pub fn classify(&self, a: &LinkKey, b: &LinkKey, scratch: &mut AgreementScratch) -> Decision {
        let (pa, pb) = (&a.prepared, &b.prepared);
        let mut agreement = [false; NAME_FIELDS];
        // Equal normalized names: every comparator scores 1.0, so the
        // continuous bits all agree and only the cached-key bits need a
        // look. (Soundex equality still requires a code on both sides.)
        if pa.joined == pb.joined {
            agreement[0] = true;
            agreement[1] = true;
            agreement[2] = true;
            agreement[3] = pa.surname_soundex.is_some();
            agreement[4] = true;
            return self.model.classify(&agreement);
        }
        // Stages 0-1: the cached-key fields.
        agreement[3] = match (&pa.surname_soundex, &pb.surname_soundex) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        };
        agreement[4] = NameNormalizer::tokens_compatible(&pa.tokens, &pb.tokens);
        let mut w = self.weight_of(3, agreement[3]) + self.weight_of(4, agreement[4]);
        // The headline floor check: prune before any string comparator.
        if let Some(decision) = self.forced(w, FIRST_STRING_STAGE) {
            scratch.prunes += 1;
            return decision;
        }
        // Stage 2: Dice over the precomputed bigram multisets.
        agreement[1] = dice_sorted_bigrams(&a.bigrams, &b.bigrams) >= DICE_AGREE;
        w += self.weight_of(1, agreement[1]);
        if let Some(decision) = self.forced(w, FIRST_STRING_STAGE + 1) {
            scratch.prunes += 1;
            return decision;
        }
        // Stage 3: Levenshtein on the canonical forms.
        agreement[2] =
            levenshtein_similarity_chars(&a.canonical_chars, &b.canonical_chars, &mut scratch.edit)
                >= LEVENSHTEIN_AGREE;
        w += self.weight_of(2, agreement[2]);
        if let Some(decision) = self.forced(w, FIRST_STRING_STAGE + 2) {
            scratch.prunes += 1;
            return decision;
        }
        // Stage 4: Jaro-Winkler on the order-preserving forms. The vector
        // is now complete, so the model classifies it exactly as the
        // unpruned reference would.
        agreement[0] = jaro_winkler_chars(&a.joined_chars, &b.joined_chars, &mut scratch.jaro)
            >= JARO_WINKLER_AGREE;
        self.model.classify(&agreement)
    }
}

/// Reusable comparator buffers for [`ScoreFloor::classify`] — one per
/// worker, not per pair — plus a running tally of floor prunes, read by
/// the harvest's observability hooks.
#[derive(Debug, Clone, Default)]
pub struct AgreementScratch {
    jaro: JaroScratch,
    edit: EditScratch,
    prunes: u64,
}

impl AgreementScratch {
    /// Number of classifications the score floor short-circuited before
    /// the full comparator chain ran (monotone over the scratch's life).
    pub fn prunes(&self) -> u64 {
        self.prunes
    }
}

/// Multiplicative mixer for the packed pair key: the ids are dense and
/// sequential, so SipHash buys nothing over one multiply.
#[derive(Default)]
struct PairHasher(u64);

impl Hasher for PairHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u64(&mut self, x: u64) {
        self.0 = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// A reusable memo of classified pairs, keyed by caller-assigned dense
/// ids: the prepared *query* token sequence on the left, the prepared
/// candidate record (for the harvest: the hit page's deduplicated display
/// name) on the right. The caller owns the id assignment and must keep it
/// bijective with the prepared names — two ids may be equal only when the
/// [`LinkKey`]s they denote are.
#[derive(Debug, Clone, Default)]
pub struct AgreementCache {
    map: HashMap<u64, Decision, BuildHasherDefault<PairHasher>>,
    lookups: u64,
    hits: u64,
}

impl AgreementCache {
    /// Creates an empty cache.
    pub fn new() -> AgreementCache {
        AgreementCache::default()
    }

    /// Classifies `(left, right)` through the floor, replaying the memo
    /// when the pair (by id) was classified before.
    pub fn classify(
        &mut self,
        left_id: u32,
        right_id: u32,
        floor: &ScoreFloor,
        left: &LinkKey,
        right: &LinkKey,
        scratch: &mut AgreementScratch,
    ) -> Decision {
        let key = (u64::from(left_id) << 32) | u64::from(right_id);
        self.lookups += 1;
        if let Some(&decision) = self.map.get(&key) {
            self.hits += 1;
            return decision;
        }
        let decision = floor.classify(left, right, scratch);
        self.map.insert(key, decision);
        decision
    }

    /// Number of memoized pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total classify calls routed through the memo.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Lookups served from the memo without re-classifying.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Fraction of lookups served from the memo.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / self.lookups as f64
    }

    /// Drops every memoized pair (id spaces may be reused afterwards).
    pub fn clear(&mut self) {
        self.map.clear();
        self.lookups = 0;
        self.hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linker::{compare_prepared, default_name_model};

    /// Names that exercise every decision band against each other:
    /// identical, nickname/reorder variants, typos, unrelated, initials,
    /// empty and junk.
    const NAMES: &[&str] = &[
        "Robert Smith",
        "robert smith",
        "Smith, Bob",
        "Dr. Robret Smith",
        "R. Smith",
        "Roberta Smith",
        "Robert Smyth",
        "Robert Jones",
        "Alice Walker",
        "alice m walker",
        "Wei Zhang",
        "Priya Patel",
        "Katherine O'Hara",
        "Kathy Ohara",
        "Alice Smith 17",
        "Alice Smith 203",
        "",
        "...  ,,",
        "Dr. Prof.",
        "X",
    ];

    fn reference_decision(model: &FellegiSunter, a: &PreparedName, b: &PreparedName) -> Decision {
        model.classify(&compare_prepared(a, b).agreement_vector())
    }

    #[test]
    fn floor_matches_reference_on_every_pair() {
        let normalizer = NameNormalizer::new();
        let model = default_name_model();
        let floor = ScoreFloor::new(&model);
        let mut scratch = AgreementScratch::default();
        let keys: Vec<LinkKey> = NAMES
            .iter()
            .map(|n| LinkKey::prepare(&normalizer, n))
            .collect();
        for a in &keys {
            for b in &keys {
                let expected = reference_decision(&model, a.prepared(), b.prepared());
                let got = floor.classify(a, b, &mut scratch);
                assert_eq!(
                    got,
                    expected,
                    "{:?} vs {:?}",
                    a.prepared().joined,
                    b.prepared().joined
                );
            }
        }
    }

    #[test]
    fn floor_matches_reference_under_odd_models() {
        use crate::fellegi_sunter::FieldParams;
        let normalizer = NameNormalizer::new();
        let mut scratch = AgreementScratch::default();
        // Degenerate thresholds and skewed fields stress both prune
        // directions (always-NonMatch, always-Match, no-prune).
        let models = [
            FellegiSunter::new(vec![FieldParams::new(0.9, 0.1); NAME_FIELDS], -100.0, -90.0),
            FellegiSunter::new(vec![FieldParams::new(0.9, 0.1); NAME_FIELDS], 90.0, 100.0),
            FellegiSunter::new(vec![FieldParams::new(0.5, 0.5); NAME_FIELDS], 0.0, 0.0),
            default_name_model(),
        ];
        let keys: Vec<LinkKey> = NAMES
            .iter()
            .map(|n| LinkKey::prepare(&normalizer, n))
            .collect();
        for model in &models {
            let floor = ScoreFloor::new(model);
            for a in &keys {
                for b in &keys {
                    assert_eq!(
                        floor.classify(a, b, &mut scratch),
                        reference_decision(model, a.prepared(), b.prepared()),
                    );
                }
            }
        }
    }

    #[test]
    fn cache_replays_decisions_and_counts_hits() {
        let normalizer = NameNormalizer::new();
        let floor = ScoreFloor::new(&default_name_model());
        let mut scratch = AgreementScratch::default();
        let mut cache = AgreementCache::new();
        let a = LinkKey::prepare(&normalizer, "Robert Smith");
        let b = LinkKey::prepare(&normalizer, "Dr. Bob Smith");
        let first = cache.classify(0, 0, &floor, &a, &b, &mut scratch);
        let second = cache.classify(0, 0, &floor, &a, &b, &mut scratch);
        assert_eq!(first, second);
        assert_eq!(cache.len(), 1);
        assert!(cache.hit_rate() > 0.49);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hit_rate(), 0.0);
    }

    #[test]
    #[should_panic(expected = "5-field")]
    fn floor_rejects_wrong_arity() {
        use crate::fellegi_sunter::FieldParams;
        ScoreFloor::new(&FellegiSunter::new(
            vec![FieldParams::new(0.9, 0.1)],
            0.0,
            1.0,
        ));
    }
}
