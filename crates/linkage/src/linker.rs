//! The end-to-end name linker: normalize → block → compare → score →
//! classify → one-to-one assignment.
//!
//! This is the programmatic stand-in for the paper's manual "use the
//! customer names present in the release to search for additional
//! information" step: given release identifiers and web-record names, it
//! returns the best match per release record.

use crate::blocking::{candidate_pairs_prepared, Blocking};
use crate::edit::levenshtein_similarity;
use crate::fellegi_sunter::{Decision, FellegiSunter, FieldParams};
use crate::jaro::jaro_winkler;
use crate::ngram::dice;
use crate::normalize::{NameNormalizer, PreparedName};

/// Similarity feature vector for a pair of names.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NameFeatures {
    /// Jaro-Winkler on the order-preserving normalized form.
    pub jaro_winkler: f64,
    /// Bigram Dice on the canonical (sorted-token) form.
    pub dice_bigram: f64,
    /// Levenshtein similarity on the canonical form.
    pub levenshtein: f64,
    /// Whether the surname (last token) Soundex codes agree.
    pub surname_phonetic: bool,
    /// Whether token sets are compatible under initial-matching.
    pub tokens_compatible: bool,
}

/// Computes the feature vector for two raw names.
///
/// Convenience wrapper that normalizes both names on the spot; batch
/// callers should [`NameNormalizer::prepare`] each record once and use
/// [`compare_prepared`] so tokenization/Soundex run per record, not per
/// pair.
pub fn compare_names(normalizer: &NameNormalizer, a: &str, b: &str) -> NameFeatures {
    compare_prepared(&normalizer.prepare(a), &normalizer.prepare(b))
}

/// Computes the feature vector from per-record cached keys.
pub fn compare_prepared(a: &PreparedName, b: &PreparedName) -> NameFeatures {
    let surname_phonetic = match (&a.surname_soundex, &b.surname_soundex) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    };
    NameFeatures {
        jaro_winkler: jaro_winkler(&a.joined, &b.joined),
        dice_bigram: dice(&a.canonical, &b.canonical, 2),
        levenshtein: levenshtein_similarity(&a.canonical, &b.canonical),
        surname_phonetic,
        tokens_compatible: NameNormalizer::tokens_compatible(&a.tokens, &b.tokens),
    }
}

/// Agreement cut-off on [`NameFeatures::jaro_winkler`] (field 0 of the
/// five-field name model).
pub const JARO_WINKLER_AGREE: f64 = 0.85;
/// Agreement cut-off on [`NameFeatures::dice_bigram`] (field 1).
pub const DICE_AGREE: f64 = 0.6;
/// Agreement cut-off on [`NameFeatures::levenshtein`] (field 2).
pub const LEVENSHTEIN_AGREE: f64 = 0.7;

impl NameFeatures {
    /// Binary agreement vector for the Fellegi-Sunter scorer, thresholding
    /// the continuous similarities at conventional cut-offs.
    pub fn agreement_vector(&self) -> Vec<bool> {
        vec![
            self.jaro_winkler >= JARO_WINKLER_AGREE,
            self.dice_bigram >= DICE_AGREE,
            self.levenshtein >= LEVENSHTEIN_AGREE,
            self.surname_phonetic,
            self.tokens_compatible,
        ]
    }

    /// Blended continuous score in `[0, 1]` (used for ranking candidates
    /// within the same decision class).
    pub fn blended(&self) -> f64 {
        0.4 * self.jaro_winkler
            + 0.25 * self.dice_bigram
            + 0.15 * self.levenshtein
            + 0.1 * f64::from(self.surname_phonetic)
            + 0.1 * f64::from(self.tokens_compatible)
    }
}

/// One linked pair in the linker's output.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// Index into the left (release) list.
    pub left: usize,
    /// Index into the right (web) list.
    pub right: usize,
    /// Fellegi-Sunter log2 weight.
    pub weight: f64,
    /// Continuous blended similarity.
    pub score: f64,
    /// Classification decision.
    pub decision: Decision,
}

/// Configuration for [`Linker`].
#[derive(Debug, Clone)]
pub struct LinkerConfig {
    /// Blocking strategy.
    pub blocking: Blocking,
    /// Fellegi-Sunter model over the 5 name features.
    pub model: FellegiSunter,
    /// Keep [`Decision::Possible`] pairs in the output.
    pub keep_possible: bool,
}

impl Default for LinkerConfig {
    fn default() -> Self {
        LinkerConfig {
            blocking: Blocking::SurnameSoundex,
            model: default_name_model(),
            keep_possible: true,
        }
    }
}

/// The default five-field name-matching model: m/u values follow the
/// conventional pattern for person names (high agreement among matches,
/// near-random among non-matches).
pub fn default_name_model() -> FellegiSunter {
    FellegiSunter::new(
        vec![
            FieldParams::new(0.92, 0.02), // jaro-winkler >= 0.85
            FieldParams::new(0.90, 0.02), // dice >= 0.6
            FieldParams::new(0.85, 0.02), // levenshtein >= 0.7
            FieldParams::new(0.95, 0.08), // surname soundex
            FieldParams::new(0.90, 0.01), // token compatibility
        ],
        0.0,
        8.0,
    )
}

/// The end-to-end linker.
#[derive(Debug, Clone, Default)]
pub struct Linker {
    normalizer: NameNormalizer,
    config: LinkerConfig,
}

impl Linker {
    /// Creates a linker with the default configuration.
    pub fn new() -> Self {
        Linker::default()
    }

    /// Overrides the configuration.
    pub fn with_config(mut self, config: LinkerConfig) -> Self {
        self.config = config;
        self
    }

    /// Overrides the normalizer.
    pub fn with_normalizer(mut self, normalizer: NameNormalizer) -> Self {
        self.normalizer = normalizer;
        self
    }

    /// Scores all candidate pairs (post-blocking) between two name lists.
    ///
    /// Each name is normalized/tokenized/Soundexed exactly once; the pair
    /// loop — streamed lazily, so `Blocking::Full` never materializes the
    /// cartesian index set — then reads cached keys only.
    pub fn score_pairs(&self, left: &[String], right: &[String]) -> Vec<Link> {
        let prep_left = self.normalizer.prepare_all(left);
        let prep_right = self.normalizer.prepare_all(right);
        let pairs = candidate_pairs_prepared(self.config.blocking, &prep_left, &prep_right);
        let mut out = Vec::new();
        for (i, j) in pairs {
            let features = compare_prepared(&prep_left[i], &prep_right[j]);
            let agreement = features.agreement_vector();
            let weight = self.config.model.weight(&agreement);
            let decision = self.config.model.classify(&agreement);
            if decision == Decision::NonMatch {
                continue;
            }
            if decision == Decision::Possible && !self.config.keep_possible {
                continue;
            }
            out.push(Link {
                left: i,
                right: j,
                weight,
                score: features.blended(),
                decision,
            });
        }
        out
    }

    /// Links two name lists one-to-one: each left record gets at most one
    /// right record and vice versa, assigned greedily by descending
    /// `(weight, score)`.
    pub fn link(&self, left: &[String], right: &[String]) -> Vec<Link> {
        let mut links = self.score_pairs(left, right);
        links.sort_by(|a, b| {
            b.weight
                .partial_cmp(&a.weight)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(a.left.cmp(&b.left))
                .then(a.right.cmp(&b.right))
        });
        let mut used_left = vec![false; left.len()];
        let mut used_right = vec![false; right.len()];
        let mut out = Vec::new();
        for link in links {
            if used_left[link.left] || used_right[link.right] {
                continue;
            }
            used_left[link.left] = true;
            used_right[link.right] = true;
            out.push(link);
        }
        out.sort_by_key(|l| l.left);
        out
    }
}

/// Precision/recall of a set of links against ground truth pairs.
pub fn evaluate(links: &[Link], truth: &[(usize, usize)]) -> LinkageQuality {
    let predicted: Vec<(usize, usize)> = links.iter().map(|l| (l.left, l.right)).collect();
    let tp = predicted.iter().filter(|p| truth.contains(p)).count();
    let precision = if predicted.is_empty() {
        0.0
    } else {
        tp as f64 / predicted.len() as f64
    };
    let recall = if truth.is_empty() {
        0.0
    } else {
        tp as f64 / truth.len() as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    LinkageQuality {
        precision,
        recall,
        f1,
        true_positives: tp,
    }
}

/// Linkage quality summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkageQuality {
    /// Fraction of predicted links that are correct.
    pub precision: f64,
    /// Fraction of true links recovered.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
    /// Correct link count.
    pub true_positives: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn features_for_identical_names() {
        let n = NameNormalizer::new();
        let f = compare_names(&n, "Robert Smith", "robert smith");
        assert_eq!(f.jaro_winkler, 1.0);
        assert_eq!(f.dice_bigram, 1.0);
        assert!(f.surname_phonetic);
        assert!(f.tokens_compatible);
        assert!(f.agreement_vector().iter().all(|&b| b));
    }

    #[test]
    fn features_for_nickname_and_reorder() {
        let n = NameNormalizer::new();
        let f = compare_names(&n, "Smith, Bob", "Robert Smith");
        // Canonical forms agree exactly thanks to nickname expansion.
        assert_eq!(f.dice_bigram, 1.0);
        assert!(f.tokens_compatible);
    }

    #[test]
    fn linker_matches_clean_lists() {
        let release = names(&["Alice Walker", "Robert Smith", "Christine Lee"]);
        let web = names(&["christine lee", "alice walker", "robert smith"]);
        let links = Linker::new().link(&release, &web);
        assert_eq!(links.len(), 3);
        let truth = vec![(0, 1), (1, 2), (2, 0)];
        let q = evaluate(&links, &truth);
        assert_eq!(q.precision, 1.0);
        assert_eq!(q.recall, 1.0);
    }

    #[test]
    fn linker_survives_typos_and_titles() {
        let release = names(&["Robert Smith", "Katherine O'Hara"]);
        let web = names(&["Dr. Robret Smith", "Kathy Ohara"]);
        let links = Linker::new().link(&release, &web);
        let q = evaluate(&links, &[(0, 0), (1, 1)]);
        assert_eq!(q.recall, 1.0, "links: {links:?}");
    }

    #[test]
    fn linker_rejects_unrelated_names() {
        let release = names(&["Robert Smith"]);
        let web = names(&["Wei Zhang", "Priya Patel"]);
        let links = Linker::new()
            .with_config(LinkerConfig {
                blocking: Blocking::Full,
                model: default_name_model(),
                keep_possible: false,
            })
            .link(&release, &web);
        assert!(links.is_empty(), "got {links:?}");
    }

    #[test]
    fn one_to_one_assignment_prefers_best() {
        // Two release records compete for one web record; the exact match
        // must win and the other stays unlinked (no double assignment).
        let release = names(&["Robert Smith", "Roberta Smith"]);
        let web = names(&["Robert Smith"]);
        let links = Linker::new().link(&release, &web);
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].left, 0);
    }

    #[test]
    fn keep_possible_flag() {
        let release = names(&["R. Smith"]);
        let web = names(&["Robert Smith"]);
        let strict = Linker::new()
            .with_config(LinkerConfig {
                blocking: Blocking::Full,
                model: default_name_model(),
                keep_possible: false,
            })
            .link(&release, &web);
        let lenient = Linker::new()
            .with_config(LinkerConfig {
                blocking: Blocking::Full,
                model: default_name_model(),
                keep_possible: true,
            })
            .link(&release, &web);
        assert!(lenient.len() >= strict.len());
    }

    #[test]
    fn evaluate_edge_cases() {
        let q = evaluate(&[], &[]);
        assert_eq!(q.precision, 0.0);
        assert_eq!(q.recall, 0.0);
        assert_eq!(q.f1, 0.0);
    }

    #[test]
    fn scored_pairs_expose_weights() {
        let release = names(&["Robert Smith"]);
        let web = names(&["Robert Smith", "Robert Smyth"]);
        let linker = Linker::new().with_config(LinkerConfig {
            blocking: Blocking::Full,
            model: default_name_model(),
            keep_possible: true,
        });
        let scored = linker.score_pairs(&release, &web);
        assert!(scored.len() >= 2);
        let exact = scored.iter().find(|l| l.right == 0).unwrap();
        let fuzzy = scored.iter().find(|l| l.right == 1).unwrap();
        assert!(exact.weight >= fuzzy.weight);
    }
}
