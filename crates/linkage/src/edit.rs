//! Edit-distance string comparators.

/// Levenshtein distance (insertions, deletions, substitutions), computed
/// with a two-row dynamic program over Unicode scalar values.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    levenshtein_chars(&a, &b, &mut EditScratch::default())
}

/// Reusable DP rows for [`levenshtein_chars`], hoisted out of the per-call
/// path so batch comparators allocate them once.
#[derive(Debug, Clone, Default)]
pub struct EditScratch {
    prev: Vec<usize>,
    curr: Vec<usize>,
}

/// [`levenshtein`] over pre-collected scalar slices with caller-provided
/// scratch — same dynamic program, same distance, no per-call allocation.
pub fn levenshtein_chars(a: &[char], b: &[char], scratch: &mut EditScratch) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    scratch.prev.clear();
    scratch.prev.extend(0..=b.len());
    scratch.curr.clear();
    scratch.curr.resize(b.len() + 1, 0);
    let (mut prev, mut curr) = (&mut scratch.prev, &mut scratch.curr);
    for (i, &ca) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Normalized Levenshtein similarity over pre-collected scalar slices
/// (see [`levenshtein_similarity`]; identical value by identical
/// expression).
pub fn levenshtein_similarity_chars(a: &[char], b: &[char], scratch: &mut EditScratch) -> f64 {
    let max_len = a.len().max(b.len());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein_chars(a, b, scratch) as f64 / max_len as f64
}

/// Optimal string alignment distance: Levenshtein plus transposition of two
/// adjacent characters (each substring may be edited at most once).
pub fn damerau_osa(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let w = b.len() + 1;
    let mut d = vec![0usize; (a.len() + 1) * w];
    for i in 0..=a.len() {
        d[i * w] = i;
    }
    for (j, cell) in d.iter_mut().enumerate().take(b.len() + 1) {
        *cell = j;
    }
    for i in 1..=a.len() {
        for j in 1..=b.len() {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[(i - 1) * w + j] + 1)
                .min(d[i * w + j - 1] + 1)
                .min(d[(i - 1) * w + j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[(i - 2) * w + j - 2] + 1);
            }
            d[i * w + j] = best;
        }
    }
    d[a.len() * w + b.len()]
}

/// Normalized Levenshtein similarity in `[0, 1]`:
/// `1 - distance / max(len_a, len_b)`. Two empty strings are fully similar.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn unicode_is_per_scalar() {
        assert_eq!(levenshtein("café", "cafe"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn osa_counts_transpositions_once() {
        assert_eq!(levenshtein("ca", "ac"), 2);
        assert_eq!(damerau_osa("ca", "ac"), 1);
        assert_eq!(damerau_osa("robert", "robret"), 1); // adjacent swap
        assert_eq!(damerau_osa("kitten", "sitting"), 3);
        assert_eq!(damerau_osa("", "ab"), 2);
    }

    #[test]
    fn symmetry() {
        let pairs = [("ganta", "gupta"), ("alice", "alicia"), ("x", "")];
        for (a, b) in pairs {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert_eq!(damerau_osa(a, b), damerau_osa(b, a));
        }
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let words = ["robert", "rupert", "rober", "robber", ""];
        for a in words {
            for b in words {
                for c in words {
                    assert!(
                        levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c),
                        "triangle violated for ({a}, {b}, {c})"
                    );
                }
            }
        }
    }

    #[test]
    fn normalized_similarity() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("robert", "rupert");
        assert!(s > 0.4 && s < 0.8, "got {s}");
    }
}
