//! Character n-gram set similarities (Jaccard, Dice, cosine).

use std::collections::HashMap;

/// Multiset of character n-grams of a string, with `#` padding at both ends
/// (so single-character strings still produce grams for `n >= 2`).
pub fn ngrams(s: &str, n: usize) -> HashMap<String, usize> {
    let mut out = HashMap::new();
    if n == 0 {
        return out;
    }
    let padded: Vec<char> = std::iter::repeat_n('#', n - 1)
        .chain(s.chars())
        .chain(std::iter::repeat_n('#', n - 1))
        .collect();
    if padded.len() < n {
        return out;
    }
    for w in padded.windows(n) {
        let gram: String = w.iter().collect();
        *out.entry(gram).or_insert(0) += 1;
    }
    out
}

fn intersection_size(a: &HashMap<String, usize>, b: &HashMap<String, usize>) -> usize {
    a.iter()
        .map(|(g, &ca)| ca.min(b.get(g).copied().unwrap_or(0)))
        .sum()
}

fn total(a: &HashMap<String, usize>) -> usize {
    a.values().sum()
}

/// Jaccard similarity of n-gram multisets: `|A ∩ B| / |A ∪ B|`.
pub fn jaccard(a: &str, b: &str, n: usize) -> f64 {
    let (ga, gb) = (ngrams(a, n), ngrams(b, n));
    let inter = intersection_size(&ga, &gb);
    let union = total(&ga) + total(&gb) - inter;
    if union == 0 {
        return 1.0;
    }
    inter as f64 / union as f64
}

/// Sørensen-Dice coefficient of n-gram multisets: `2|A ∩ B| / (|A| + |B|)`.
pub fn dice(a: &str, b: &str, n: usize) -> f64 {
    let (ga, gb) = (ngrams(a, n), ngrams(b, n));
    let denom = total(&ga) + total(&gb);
    if denom == 0 {
        return 1.0;
    }
    2.0 * intersection_size(&ga, &gb) as f64 / denom as f64
}

/// The padded character bigrams of a string as a *sorted multiset* of
/// packed `u64`s (each gram's two scalars in the high/low halves) — the
/// precomputable comparator key behind [`dice_sorted_bigrams`].
///
/// The multiset is exactly the one [`ngrams`]`(s, 2)` counts: same `#`
/// padding, same windows; only the representation differs (a sorted
/// vector with duplicates instead of a hash multiset), so set arithmetic
/// becomes an allocation-free linear merge.
pub fn bigrams_sorted(s: &str) -> Vec<u64> {
    let mut prev = '#';
    let mut out: Vec<u64> = s
        .chars()
        .chain(std::iter::once('#'))
        .map(|c| {
            let packed = ((prev as u64) << 32) | c as u64;
            prev = c;
            packed
        })
        .collect();
    out.sort_unstable();
    out
}

/// Sørensen-Dice over two [`bigrams_sorted`] keys.
///
/// Returns the *identical* `f64` that [`dice`]`(a, b, 2)` returns for the
/// underlying strings: the intersection and total sizes are the same
/// integers (a linear merge over sorted multisets computes the same
/// `Σ min(count_a, count_b)`), and the final expression is unchanged.
pub fn dice_sorted_bigrams(a: &[u64], b: &[u64]) -> f64 {
    let denom = a.len() + b.len();
    if denom == 0 {
        return 1.0;
    }
    let mut inter = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                inter += 1;
                i += 1;
                j += 1;
            }
        }
    }
    2.0 * inter as f64 / denom as f64
}

/// Cosine similarity of n-gram count vectors.
pub fn cosine(a: &str, b: &str, n: usize) -> f64 {
    let (ga, gb) = (ngrams(a, n), ngrams(b, n));
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let dot: f64 = ga
        .iter()
        .map(|(g, &ca)| ca as f64 * gb.get(g).copied().unwrap_or(0) as f64)
        .sum();
    let na: f64 = ga.values().map(|&c| (c * c) as f64).sum::<f64>().sqrt();
    let nb: f64 = gb.values().map(|&c| (c * c) as f64).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigrams_with_padding() {
        let g = ngrams("ab", 2);
        // #a, ab, b#
        assert_eq!(g.len(), 3);
        assert_eq!(g["ab"], 1);
        assert_eq!(g["#a"], 1);
        assert_eq!(g["b#"], 1);
    }

    #[test]
    fn repeated_grams_counted() {
        let g = ngrams("aaa", 2);
        assert_eq!(g["aa"], 2);
    }

    #[test]
    fn single_char_with_bigrams() {
        let g = ngrams("a", 2);
        assert_eq!(g.len(), 2); // #a, a#
    }

    #[test]
    fn zero_n_is_empty() {
        assert!(ngrams("abc", 0).is_empty());
        assert_eq!(jaccard("abc", "abc", 0), 1.0);
    }

    #[test]
    fn identity_scores_one() {
        for f in [jaccard, dice, cosine] {
            assert!((f("robert", "robert", 2) - 1.0).abs() < 1e-12);
            assert!((f("", "", 2) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn disjoint_scores_zero() {
        assert_eq!(jaccard("aaa", "bbb", 2), 0.0);
        assert_eq!(dice("aaa", "bbb", 2), 0.0);
        assert_eq!(cosine("aaa", "bbb", 2), 0.0);
    }

    #[test]
    fn dice_geq_jaccard() {
        // Dice >= Jaccard always (equality iff 0 or 1).
        let pairs = [("robert", "rupert"), ("night", "nacht"), ("ab", "ba")];
        for (a, b) in pairs {
            let j = jaccard(a, b, 2);
            let d = dice(a, b, 2);
            assert!(d >= j, "dice {d} < jaccard {j} for ({a}, {b})");
        }
    }

    #[test]
    fn similar_names_score_high() {
        assert!(dice("christine", "christina", 2) > 0.7);
        assert!(jaccard("christine", "christina", 2) > 0.5);
        assert!(cosine("christine", "christina", 2) > 0.7);
        assert!(dice("christine", "robert", 2) < 0.3);
    }

    #[test]
    fn symmetry_and_bounds() {
        let words = ["", "a", "bob", "robert", "roberto"];
        for a in words {
            for b in words {
                for f in [jaccard, dice, cosine] {
                    let s1 = f(a, b, 2);
                    let s2 = f(b, a, 2);
                    assert!((s1 - s2).abs() < 1e-12);
                    assert!((0.0..=1.0 + 1e-12).contains(&s1));
                }
            }
        }
    }
}
