//! The Fellegi-Sunter probabilistic record-linkage model.
//!
//! Each candidate pair is compared on several fields, producing a binary
//! agreement vector. Field `f` contributes `log2(m_f / u_f)` when it agrees
//! and `log2((1-m_f) / (1-u_f))` when it disagrees, where `m_f` is the
//! probability of agreement among true matches and `u_f` among true
//! non-matches. The summed weight is classified against two thresholds into
//! Match / Possible / NonMatch. Parameters can be supplied or estimated
//! from unlabeled data with EM.

use std::fmt;

/// Classification decision for a candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Confidently the same entity.
    Match,
    /// Undecided; would go to clerical review in a production system.
    Possible,
    /// Confidently different entities.
    NonMatch,
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Decision::Match => "match",
            Decision::Possible => "possible",
            Decision::NonMatch => "non-match",
        };
        f.write_str(s)
    }
}

/// Per-field m/u parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldParams {
    /// P(field agrees | pair is a true match).
    pub m: f64,
    /// P(field agrees | pair is a true non-match).
    pub u: f64,
}

impl FieldParams {
    /// Creates parameters, clamping into the open interval `(0, 1)` so the
    /// log-weights stay finite.
    pub fn new(m: f64, u: f64) -> Self {
        FieldParams {
            m: clamp_prob(m),
            u: clamp_prob(u),
        }
    }

    /// Weight contributed on agreement: `log2(m/u)`.
    pub fn agreement_weight(&self) -> f64 {
        (self.m / self.u).log2()
    }

    /// Weight contributed on disagreement: `log2((1-m)/(1-u))`.
    pub fn disagreement_weight(&self) -> f64 {
        ((1.0 - self.m) / (1.0 - self.u)).log2()
    }
}

fn clamp_prob(p: f64) -> f64 {
    p.clamp(1e-6, 1.0 - 1e-6)
}

/// A Fellegi-Sunter scorer: per-field parameters plus the two decision
/// thresholds on the summed log-weight.
#[derive(Debug, Clone, PartialEq)]
pub struct FellegiSunter {
    fields: Vec<FieldParams>,
    upper: f64,
    lower: f64,
}

impl FellegiSunter {
    /// Creates a model. `upper >= lower`; weights above `upper` classify as
    /// [`Decision::Match`], below `lower` as [`Decision::NonMatch`].
    pub fn new(fields: Vec<FieldParams>, lower: f64, upper: f64) -> Self {
        let (lower, upper) = if lower <= upper {
            (lower, upper)
        } else {
            (upper, lower)
        };
        FellegiSunter {
            fields,
            lower,
            upper,
        }
    }

    /// Number of comparison fields.
    pub fn field_count(&self) -> usize {
        self.fields.len()
    }

    /// Per-field parameters.
    pub fn fields(&self) -> &[FieldParams] {
        &self.fields
    }

    /// The lower decision threshold: summed weights `<= lower` classify as
    /// [`Decision::NonMatch`].
    pub fn lower(&self) -> f64 {
        self.lower
    }

    /// The upper decision threshold: summed weights `>= upper` classify as
    /// [`Decision::Match`].
    pub fn upper(&self) -> f64 {
        self.upper
    }

    /// Total log2-weight of an agreement vector (`true` = field agrees).
    ///
    /// Panics in debug builds if the vector length differs from the model.
    pub fn weight(&self, agreement: &[bool]) -> f64 {
        debug_assert_eq!(agreement.len(), self.fields.len());
        self.fields
            .iter()
            .zip(agreement)
            .map(|(f, &a)| {
                if a {
                    f.agreement_weight()
                } else {
                    f.disagreement_weight()
                }
            })
            .sum()
    }

    /// Classifies an agreement vector.
    pub fn classify(&self, agreement: &[bool]) -> Decision {
        let w = self.weight(agreement);
        if w >= self.upper {
            Decision::Match
        } else if w <= self.lower {
            Decision::NonMatch
        } else {
            Decision::Possible
        }
    }

    /// Match probability of an agreement vector given a prior match rate
    /// `p`: posterior via Bayes over the naive-Bayes likelihoods.
    pub fn match_probability(&self, agreement: &[bool], prior: f64) -> f64 {
        let prior = clamp_prob(prior);
        let mut like_m = 1.0;
        let mut like_u = 1.0;
        for (f, &a) in self.fields.iter().zip(agreement) {
            like_m *= if a { f.m } else { 1.0 - f.m };
            like_u *= if a { f.u } else { 1.0 - f.u };
        }
        prior * like_m / (prior * like_m + (1.0 - prior) * like_u)
    }

    /// Estimates m/u parameters from unlabeled agreement vectors with EM,
    /// assuming conditional independence of fields. Returns the fitted
    /// model (thresholds copied from `self`) and the estimated match prior.
    pub fn fit_em(
        &self,
        vectors: &[Vec<bool>],
        iterations: usize,
        initial_prior: f64,
    ) -> (FellegiSunter, f64) {
        let nf = self.fields.len();
        let mut m: Vec<f64> = self.fields.iter().map(|f| f.m).collect();
        let mut u: Vec<f64> = self.fields.iter().map(|f| f.u).collect();
        let mut prior = clamp_prob(initial_prior);
        if vectors.is_empty() {
            return (self.clone(), prior);
        }
        for _ in 0..iterations {
            // E-step: responsibility of the match class per vector.
            let mut resp = Vec::with_capacity(vectors.len());
            for v in vectors {
                let mut lm = prior;
                let mut lu = 1.0 - prior;
                for f in 0..nf {
                    lm *= if v[f] { m[f] } else { 1.0 - m[f] };
                    lu *= if v[f] { u[f] } else { 1.0 - u[f] };
                }
                resp.push(lm / (lm + lu).max(1e-300));
            }
            // M-step.
            let total_r: f64 = resp.iter().sum();
            let total = vectors.len() as f64;
            prior = clamp_prob(total_r / total);
            for f in 0..nf {
                let mut agree_m = 0.0;
                let mut agree_u = 0.0;
                for (v, &r) in vectors.iter().zip(&resp) {
                    if v[f] {
                        agree_m += r;
                        agree_u += 1.0 - r;
                    }
                }
                m[f] = clamp_prob(agree_m / total_r.max(1e-300));
                u[f] = clamp_prob(agree_u / (total - total_r).max(1e-300));
            }
        }
        let fields = m
            .into_iter()
            .zip(u)
            .map(|(m, u)| FieldParams::new(m, u))
            .collect();
        (FellegiSunter::new(fields, self.lower, self.upper), prior)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> FellegiSunter {
        FellegiSunter::new(
            vec![
                FieldParams::new(0.95, 0.01), // surname agreement
                FieldParams::new(0.9, 0.05),  // given-name agreement
                FieldParams::new(0.8, 0.1),   // employer agreement
            ],
            0.0,
            6.0,
        )
    }

    #[test]
    fn weights_have_expected_signs() {
        let f = FieldParams::new(0.9, 0.05);
        assert!(f.agreement_weight() > 0.0);
        assert!(f.disagreement_weight() < 0.0);
    }

    #[test]
    fn full_agreement_classifies_match() {
        let m = model();
        assert_eq!(m.classify(&[true, true, true]), Decision::Match);
        assert_eq!(m.classify(&[false, false, false]), Decision::NonMatch);
    }

    #[test]
    fn weight_monotone_in_agreements() {
        let m = model();
        let w0 = m.weight(&[false, false, false]);
        let w1 = m.weight(&[true, false, false]);
        let w2 = m.weight(&[true, true, false]);
        let w3 = m.weight(&[true, true, true]);
        assert!(w0 < w1 && w1 < w2 && w2 < w3);
    }

    #[test]
    fn possible_band() {
        // Surname disagreement plus two weaker agreements lands between the
        // thresholds for this model.
        let m = model();
        let w = m.weight(&[false, true, true]);
        assert!(w > 0.0 && w < 6.0, "weight {w} expected in band");
        assert_eq!(m.classify(&[false, true, true]), Decision::Possible);
    }

    #[test]
    fn probabilities_are_calibrated_extremes() {
        let m = model();
        let p_hi = m.match_probability(&[true, true, true], 0.1);
        let p_lo = m.match_probability(&[false, false, false], 0.1);
        assert!(p_hi > 0.95, "got {p_hi}");
        assert!(p_lo < 0.01, "got {p_lo}");
    }

    #[test]
    fn prior_shifts_posterior() {
        let m = model();
        let skeptical = m.match_probability(&[true, true, false], 0.001);
        let credulous = m.match_probability(&[true, true, false], 0.5);
        assert!(credulous > skeptical);
    }

    #[test]
    fn extreme_params_stay_finite() {
        let f = FieldParams::new(1.0, 0.0);
        assert!(f.agreement_weight().is_finite());
        assert!(f.disagreement_weight().is_finite());
    }

    #[test]
    fn thresholds_swap_if_reversed() {
        let m = FellegiSunter::new(vec![FieldParams::new(0.9, 0.1)], 5.0, -5.0);
        // lower must be <= upper after construction.
        assert_eq!(m.classify(&[true]), Decision::Possible);
    }

    #[test]
    fn em_separates_planted_mixture() {
        // Plant a mixture: 20% matches with high agreement, 80% non-matches
        // with low agreement; EM should recover m >> u per field.
        let mut vectors = Vec::new();
        // Deterministic pseudo-random pattern (LCG) to avoid rand dep here.
        let mut state = 42u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64
        };
        for i in 0..1000 {
            let is_match = i % 5 == 0;
            let v: Vec<bool> = (0..3)
                .map(|_| {
                    let r = next();
                    if is_match {
                        r < 0.9
                    } else {
                        r < 0.08
                    }
                })
                .collect();
            vectors.push(v);
        }
        let start = FellegiSunter::new(
            vec![
                FieldParams::new(0.7, 0.3),
                FieldParams::new(0.7, 0.3),
                FieldParams::new(0.7, 0.3),
            ],
            0.0,
            4.0,
        );
        let (fitted, prior) = start.fit_em(&vectors, 50, 0.5);
        assert!((prior - 0.2).abs() < 0.06, "prior {prior}");
        for f in fitted.fields() {
            assert!(f.m > 0.75, "m {} too low", f.m);
            assert!(f.u < 0.2, "u {} too high", f.u);
        }
    }

    #[test]
    fn em_with_no_data_is_identity() {
        let m = model();
        let (fitted, prior) = m.fit_em(&[], 10, 0.3);
        assert_eq!(fitted, m);
        assert!((prior - 0.3).abs() < 1e-9);
    }
}
