//! Jaro and Jaro-Winkler similarity — the standard comparators for short
//! person-name strings in record linkage.

/// Reusable buffers for [`jaro_chars`]: the match bookkeeping vectors the
/// plain [`jaro`] allocates per call, hoisted out so batch comparators
/// (one query against many candidate names) pay for them once.
#[derive(Debug, Clone, Default)]
pub struct JaroScratch {
    b_matched: Vec<bool>,
    a_matches: Vec<char>,
    b_matches: Vec<char>,
}

/// Jaro similarity in `[0, 1]`.
///
/// Matches are characters equal within a window of
/// `max(len_a, len_b)/2 - 1`; the score combines match counts and
/// transpositions. Two empty strings score 1.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    jaro_chars(&a, &b, &mut JaroScratch::default())
}

/// [`jaro`] over pre-collected scalar slices with caller-provided
/// scratch — the batch entry point. Bit-identical to [`jaro`] on the
/// strings the slices were collected from: the same algorithm runs over
/// the same scalars, only the allocations moved.
pub fn jaro_chars(a: &[char], b: &[char], scratch: &mut JaroScratch) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    scratch.b_matched.clear();
    scratch.b_matched.resize(b.len(), false);
    scratch.a_matches.clear();
    scratch.b_matches.clear();
    let b_matched = &mut scratch.b_matched;
    let a_matches = &mut scratch.a_matches;
    let b_matches = &mut scratch.b_matches;
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == ca {
                b_matched[j] = true;
                a_matches.push(ca);
                break;
            }
        }
    }
    if a_matches.is_empty() {
        return 0.0;
    }
    for (j, &cb) in b.iter().enumerate() {
        if b_matched[j] {
            b_matches.push(cb);
        }
    }
    let m = a_matches.len() as f64;
    let t = a_matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity: Jaro boosted by up to 4 characters of common
/// prefix with scaling factor `p = 0.1` (the standard constant).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    jaro_winkler_with(a, b, 0.1)
}

/// Jaro-Winkler with an explicit prefix scaling factor `p` (clamped to the
/// valid `[0, 0.25]` range so the score cannot exceed 1).
pub fn jaro_winkler_with(a: &str, b: &str, p: f64) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    jaro_winkler_chars_with(&a, &b, p, &mut JaroScratch::default())
}

/// [`jaro_winkler`] over pre-collected scalar slices with caller-provided
/// scratch (bit-identical; see [`jaro_chars`]).
pub fn jaro_winkler_chars(a: &[char], b: &[char], scratch: &mut JaroScratch) -> f64 {
    jaro_winkler_chars_with(a, b, 0.1, scratch)
}

/// [`jaro_winkler_with`] over pre-collected scalar slices.
pub fn jaro_winkler_chars_with(a: &[char], b: &[char], p: f64, scratch: &mut JaroScratch) -> f64 {
    let p = p.clamp(0.0, 0.25);
    let j = jaro_chars(a, b, scratch);
    let prefix = a
        .iter()
        .zip(b.iter())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * p * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-3
    }

    #[test]
    fn textbook_values() {
        // Canonical examples from the record-linkage literature.
        assert!(close(jaro("MARTHA", "MARHTA"), 0.944));
        assert!(close(jaro("DIXON", "DICKSONX"), 0.767));
        assert!(close(jaro("JELLYFISH", "SMELLYFISH"), 0.896));
        assert!(close(jaro_winkler("MARTHA", "MARHTA"), 0.961));
        assert!(close(jaro_winkler("DIXON", "DICKSONX"), 0.813));
    }

    #[test]
    fn identity_and_disjoint() {
        assert_eq!(jaro("robert", "robert"), 1.0);
        assert_eq!(jaro_winkler("robert", "robert"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("martha", "marhta"), ("dwayne", "duane"), ("", "x")] {
            assert!(close(jaro(a, b), jaro(b, a)));
            assert!(close(jaro_winkler(a, b), jaro_winkler(b, a)));
        }
    }

    #[test]
    fn winkler_boosts_common_prefix() {
        // Same Jaro-level difference, but one pair shares a prefix.
        let plain = jaro("abcdef", "abcdxy");
        let boosted = jaro_winkler("abcdef", "abcdxy");
        assert!(boosted > plain);
        // No shared prefix: no boost.
        let a = jaro("xbcdef", "ybcdef");
        let b = jaro_winkler("xbcdef", "ybcdef");
        assert!(close(a, b));
    }

    #[test]
    fn scores_bounded() {
        let words = ["", "a", "ab", "robert", "rupert", "bobby", "roberto"];
        for a in words {
            for b in words {
                let j = jaro(a, b);
                let jw = jaro_winkler(a, b);
                assert!((0.0..=1.0).contains(&j), "jaro({a},{b})={j}");
                assert!((0.0..=1.0).contains(&jw), "jw({a},{b})={jw}");
                assert!(jw >= j - 1e-12, "winkler must not reduce score");
            }
        }
    }

    #[test]
    fn custom_prefix_factor_clamped() {
        // p beyond 0.25 would let scores exceed 1; must be clamped.
        let s = jaro_winkler_with("aaaa", "aaab", 5.0);
        assert!(s <= 1.0);
    }
}
