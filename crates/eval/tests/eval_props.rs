//! Property tests pinning the eval math: chance-level AUC for a blind
//! adversary, ceiling behaviour under perfect separation, invariance
//! under strictly monotone score transforms, and determinism under ties.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fred_eval::{epsilon_ceiling, evaluate_scores, EvalReport};

/// Draws `n` scores from the same uniform distribution for both
/// populations — an adversary with no signal.
fn blind_scores(seed: u64, n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut draw = |_: usize| rng.gen_range(0.0..1.0f64);
    let targets: Vec<f64> = (0..n).map(&mut draw).collect();
    let decoys: Vec<f64> = (0..n).map(&mut draw).collect();
    (targets, decoys)
}

/// The order-dependent pieces of a report (thresholds are score-valued
/// and *should* change under a transform; everything else must not).
fn shape(report: &EvalReport) -> (Vec<(f64, f64)>, f64, f64, f64) {
    (
        report.roc.iter().map(|p| (p.fpr, p.tpr)).collect(),
        report.auc,
        report.tpr_at_low_fpr,
        report.epsilon,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A seeded random-score adversary sits at chance level: AUC ≈ 0.5
    /// (3-sigma band for 400-vs-400 samples) and ε stays far below the
    /// perfect-separation ceiling.
    #[test]
    fn random_scores_are_chance_level(seed in 0u64..u64::MAX) {
        let (targets, decoys) = blind_scores(seed, 400);
        let report = evaluate_scores(&targets, &decoys).unwrap();
        prop_assert!(
            (report.auc - 0.5).abs() < 0.15,
            "blind adversary AUC {} strayed from 0.5", report.auc
        );
        prop_assert!(report.epsilon.is_finite());
        prop_assert!(report.epsilon < epsilon_ceiling(400, 400) / 2.0);
    }

    /// Perfectly separated scores reach AUC = 1.0 exactly and the
    /// maximal *finite* ε — the +1/2-corrected ceiling, never ∞.
    #[test]
    fn separated_scores_reach_auc_one_and_the_epsilon_ceiling(
        seed in 0u64..u64::MAX,
        n_targets in 2usize..60,
        n_decoys in 2usize..60,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let decoys: Vec<f64> = (0..n_decoys).map(|_| rng.gen_range(0.0..1.0)).collect();
        let targets: Vec<f64> = (0..n_targets).map(|_| rng.gen_range(2.0..3.0)).collect();
        let report = evaluate_scores(&targets, &decoys).unwrap();
        prop_assert!((report.auc - 1.0).abs() < 1e-12, "auc = {}", report.auc);
        prop_assert_eq!(report.tpr_at_low_fpr, 1.0);
        prop_assert!(report.epsilon.is_finite());
        prop_assert_eq!(report.epsilon, epsilon_ceiling(n_targets, n_decoys));
    }

    /// Every metric depends on scores only through their ordering, so a
    /// strictly increasing transform leaves the report bit-identical.
    /// Integer-valued scores and integer affine coefficients keep f64
    /// arithmetic exact, so the transform provably preserves ordering
    /// and distinctness.
    #[test]
    fn metrics_invariant_under_monotone_transform(
        seed in 0u64..u64::MAX,
        scale in 1u32..64,
        shift in -1000i32..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut draw = |n: usize| -> Vec<f64> {
            (0..n).map(|_| f64::from(rng.gen_range(0..4096u32))).collect()
        };
        let targets = draw(50);
        let decoys = draw(70);
        let transform = |s: &f64| s * f64::from(scale) + f64::from(shift);
        let base = evaluate_scores(&targets, &decoys).unwrap();
        let mapped = evaluate_scores(
            &targets.iter().map(transform).collect::<Vec<_>>(),
            &decoys.iter().map(transform).collect::<Vec<_>>(),
        )
        .unwrap();
        prop_assert_eq!(shape(&base), shape(&mapped));
    }

    /// Ties flip together and input order is irrelevant: scores drawn
    /// from a 4-value alphabet produce the same report under any
    /// permutation, and re-running is bit-identical.
    #[test]
    fn tied_scores_evaluate_deterministically(
        seed in 0u64..u64::MAX,
        rot_t in 1usize..39,
        rot_d in 1usize..29,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut draw = |n: usize| -> Vec<f64> {
            (0..n).map(|_| f64::from(rng.gen_range(0..4u32))).collect()
        };
        let targets = draw(40);
        let decoys = draw(30);
        let base = evaluate_scores(&targets, &decoys).unwrap();
        prop_assert_eq!(&base, &evaluate_scores(&targets, &decoys).unwrap());
        let mut targets_rot = targets.clone();
        targets_rot.rotate_left(rot_t);
        let mut decoys_rot = decoys.clone();
        decoys_rot.rotate_left(rot_d);
        prop_assert_eq!(&base, &evaluate_scores(&targets_rot, &decoys_rot).unwrap());
    }
}
