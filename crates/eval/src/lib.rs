//! Hypothesis-testing adversary metrics over the composition attack.
//!
//! The sweep reports disclosure dollars; this crate reports how
//! confidently the adversary can *distinguish a target from a decoy* —
//! the framing of "Privacy against a Hypothesis Testing Adversary". Each
//! row (core target or matched decoy) is pushed through the identical
//! scoring path ([`identifiability_score`] over its
//! [`TargetIntersection`]), the decision threshold is swept over every
//! distinct score, and the resulting (FPR, TPR) curve is distilled into
//! three gated numbers:
//!
//! - **AUC** — trapezoidal area under the ROC curve; 0.5 is a blind
//!   adversary, 1.0 perfect separation.
//! - **TPR@FPR=10⁻³** ([`LOW_FPR`]) — the highest true-positive rate at
//!   essentially zero false positives, the operating point a real
//!   re-identification campaign runs at. With a decoy population smaller
//!   than 1000 this is the TPR at FPR = 0 exactly.
//! - **empirical ε** — `max` over thresholds of `ln((1−FNR)/FPR)`, the
//!   largest likelihood-ratio bound the observed (FPR, FNR) pairs
//!   witness, directly comparable to a differential-privacy ε.
//!
//! ## The finite-ε convention
//!
//! A perfect threshold has FPR = 0 and the raw ratio is +∞; a NaN or ∞
//! would sail straight through the bench's strict-monotonicity gates
//! (every NaN comparison is false), so both rates are Laplace-corrected
//! with the +1/2 rule before the log: `FPR' = (FP + 1/2)/(D + 1)`,
//! `FNR' = (FN + 1/2)/(T + 1)` for `T` targets and `D` decoys. Every
//! emitted ε is therefore finite and capped at [`epsilon_ceiling`] —
//! the corrected value of a perfect separator — which grows only
//! logarithmically in the population sizes.
//!
//! ## Determinism
//!
//! Ties are handled deterministically by construction: thresholds are
//! the distinct scores themselves (sorted by `f64::total_cmp`), and the
//! classifier is `score >= threshold`, so equal scores always flip
//! together and the output is invariant under permutation of the inputs.
//! Every metric depends on the scores only through their ordering, so
//! any strictly increasing transform of the scores leaves the report
//! bit-identical (pinned by property test).

use fred_composition::TargetIntersection;

/// The low-FPR operating point the `tpr_at_fpr3` column reports.
pub const LOW_FPR: f64 = 1e-3;

/// Why an evaluation could not be computed.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// One of the populations was empty — the hypothesis test needs
    /// both classes.
    EmptyPopulation(&'static str),
    /// A score was NaN or infinite; poisoned inputs are rejected at the
    /// door instead of corrupting the curve.
    NonFiniteScore {
        /// Which population carried the bad score.
        population: &'static str,
        /// Index into that population's score slice.
        index: usize,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::EmptyPopulation(which) => {
                write!(f, "eval needs a non-empty {which} population")
            }
            EvalError::NonFiniteScore { population, index } => {
                write!(f, "non-finite score at {population}[{index}]")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Convenience alias for eval results.
pub type Result<T> = std::result::Result<T, EvalError>;

/// One operating point of the threshold sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct RocPoint {
    /// Decision threshold (classifier: "target" iff `score >= threshold`).
    /// `+∞` for the all-negative anchor at (0, 0).
    pub threshold: f64,
    /// False-positive rate: decoys at or above the threshold.
    pub fpr: f64,
    /// True-positive rate: targets at or above the threshold.
    pub tpr: f64,
}

/// The distilled hypothesis-testing report for one population pair.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Number of target scores.
    pub targets: usize,
    /// Number of decoy scores.
    pub decoys: usize,
    /// The full ROC curve, ascending in FPR, from the (0, 0) anchor to
    /// (1, 1) at the lowest score.
    pub roc: Vec<RocPoint>,
    /// Trapezoidal area under the ROC curve.
    pub auc: f64,
    /// Highest TPR among thresholds with FPR ≤ [`LOW_FPR`].
    pub tpr_at_low_fpr: f64,
    /// `max` over thresholds of `ln((1−FNR')/FPR')` with +1/2-corrected
    /// rates — always finite, at most [`epsilon_ceiling`].
    pub epsilon: f64,
}

/// The largest ε [`evaluate_scores`] can emit for the given population
/// sizes: the +1/2-corrected likelihood ratio of a perfect separator
/// (FP = 0, FN = 0). Every emitted ε is ≤ this, and a perfectly
/// separated score set reaches it exactly (pinned by property test).
pub fn epsilon_ceiling(targets: usize, decoys: usize) -> f64 {
    corrected_epsilon(targets, 0, targets, decoys)
}

/// `ln((1−FNR')/FPR')` with the +1/2 Laplace correction applied to both
/// rates: `FNR' = (FN + 1/2)/(T + 1)`, `FPR' = (FP + 1/2)/(D + 1)`.
fn corrected_epsilon(tp: usize, fp: usize, targets: usize, decoys: usize) -> f64 {
    let fnr = (targets - tp) as f64 + 0.5;
    let tpr_corrected = 1.0 - fnr / (targets as f64 + 1.0);
    let fpr_corrected = (fp as f64 + 0.5) / (decoys as f64 + 1.0);
    (tpr_corrected / fpr_corrected).ln()
}

/// Sweeps the decision threshold over every distinct score and distills
/// the ROC curve, AUC, TPR@[`LOW_FPR`] and the empirical ε.
///
/// Rejects empty populations and non-finite scores instead of emitting
/// poisoned metrics. Output is deterministic: invariant under
/// permutation of either slice, and equal scores always classify
/// together (the threshold set is the distinct scores themselves).
pub fn evaluate_scores(target_scores: &[f64], decoy_scores: &[f64]) -> Result<EvalReport> {
    if target_scores.is_empty() {
        return Err(EvalError::EmptyPopulation("target"));
    }
    if decoy_scores.is_empty() {
        return Err(EvalError::EmptyPopulation("decoy"));
    }
    for (population, scores) in [("target", target_scores), ("decoy", decoy_scores)] {
        if let Some(index) = scores.iter().position(|s| !s.is_finite()) {
            return Err(EvalError::NonFiniteScore { population, index });
        }
    }

    // Sorted copies make each threshold's counts a binary search instead
    // of a scan; descending thresholds walk the curve from (0, 0) to
    // (1, 1).
    let mut targets_sorted = target_scores.to_vec();
    let mut decoys_sorted = decoy_scores.to_vec();
    targets_sorted.sort_by(f64::total_cmp);
    decoys_sorted.sort_by(f64::total_cmp);

    let mut thresholds: Vec<f64> = targets_sorted
        .iter()
        .chain(decoys_sorted.iter())
        .copied()
        .collect();
    thresholds.sort_by(f64::total_cmp);
    thresholds.dedup_by(|a, b| a.total_cmp(b).is_eq());
    thresholds.reverse();

    let at_or_above = |sorted: &[f64], t: f64| -> usize {
        // First index with value >= t; everything from there counts.
        sorted.len() - sorted.partition_point(|&s| s < t)
    };

    let n_targets = target_scores.len();
    let n_decoys = decoy_scores.len();
    let mut roc = Vec::with_capacity(thresholds.len() + 1);
    roc.push(RocPoint {
        threshold: f64::INFINITY,
        fpr: 0.0,
        tpr: 0.0,
    });
    let mut epsilon = corrected_epsilon(0, 0, n_targets, n_decoys);
    let mut tpr_at_low_fpr = 0.0f64;
    for &t in &thresholds {
        let tp = at_or_above(&targets_sorted, t);
        let fp = at_or_above(&decoys_sorted, t);
        let tpr = tp as f64 / n_targets as f64;
        let fpr = fp as f64 / n_decoys as f64;
        if fpr <= LOW_FPR && tpr > tpr_at_low_fpr {
            tpr_at_low_fpr = tpr;
        }
        epsilon = epsilon.max(corrected_epsilon(tp, fp, n_targets, n_decoys));
        roc.push(RocPoint {
            threshold: t,
            fpr,
            tpr,
        });
    }

    let mut auc = 0.0f64;
    for pair in roc.windows(2) {
        auc += (pair[1].fpr - pair[0].fpr) * (pair[0].tpr + pair[1].tpr) / 2.0;
    }

    Ok(EvalReport {
        targets: n_targets,
        decoys: n_decoys,
        roc,
        auc,
        tpr_at_low_fpr,
        epsilon,
    })
}

/// The adversary's per-row identifiability score over a composed
/// intersection — computed by the *identical* path for core targets and
/// decoys, which is what makes the hypothesis test honest.
///
/// Evidence compounds per release seen: `sources_seen · ln(n/|C|)` for
/// candidate set `C` (a row pinned to one candidate across three
/// releases scores three times a single-release pin), plus a bounded
/// feasible-box term `1/(1+w̄)` so narrower QI boxes break score ties
/// between rows with equal candidate counts. A row absent from every
/// release scores 0 — the adversary learned nothing.
///
/// Always finite: candidate counts are clamped to ≥ 1 and the width
/// term is in (0, 1].
pub fn identifiability_score(inter: &TargetIntersection, n_master: usize) -> f64 {
    if inter.sources_seen == 0 {
        return 0.0;
    }
    let candidates = inter.candidates().max(1) as f64;
    let linkage = (n_master.max(1) as f64 / candidates).ln();
    let width_evidence = match inter.mean_feasible_width() {
        Some(width) if width.is_finite() && width >= 0.0 => 1.0 / (1.0 + width),
        _ => 0.0,
    };
    inter.sources_seen as f64 * linkage + width_evidence
}

/// Scores a batch of intersections (index-aligned with the input).
pub fn score_rows(inters: &[TargetIntersection], n_master: usize) -> Vec<f64> {
    inters
        .iter()
        .map(|inter| identifiability_score(inter, n_master))
        .collect()
}

/// Scores both populations through [`identifiability_score`] and runs
/// the threshold sweep — the one-call form the bench stage uses.
pub fn evaluate_intersections(
    targets: &[TargetIntersection],
    decoys: &[TargetIntersection],
    n_master: usize,
) -> Result<EvalReport> {
    evaluate_scores(
        &score_rows(targets, n_master),
        &score_rows(decoys, n_master),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfectly_separated_scores_reach_the_ceiling() {
        let targets = [10.0, 11.0, 12.0];
        let decoys = [1.0, 2.0, 3.0, 4.0];
        let report = evaluate_scores(&targets, &decoys).unwrap();
        assert!((report.auc - 1.0).abs() < 1e-12, "auc = {}", report.auc);
        assert_eq!(report.tpr_at_low_fpr, 1.0);
        let ceiling = epsilon_ceiling(3, 4);
        assert!(
            (report.epsilon - ceiling).abs() < 1e-12,
            "epsilon {} vs ceiling {ceiling}",
            report.epsilon
        );
        assert!(report.epsilon.is_finite());
    }

    #[test]
    fn inverted_scores_auc_zero() {
        let report = evaluate_scores(&[1.0, 2.0], &[10.0, 11.0]).unwrap();
        assert!(report.auc.abs() < 1e-12, "auc = {}", report.auc);
        assert_eq!(report.tpr_at_low_fpr, 0.0);
    }

    #[test]
    fn identical_scores_are_chance() {
        // Every row ties: one threshold classifies everything positive,
        // so the ROC is the diagonal's endpoints and AUC is 1/2.
        let report = evaluate_scores(&[5.0, 5.0, 5.0], &[5.0, 5.0]).unwrap();
        assert!((report.auc - 0.5).abs() < 1e-12, "auc = {}", report.auc);
        assert_eq!(report.roc.len(), 2);
        assert_eq!(report.tpr_at_low_fpr, 0.0);
    }

    #[test]
    fn roc_is_monotone_and_anchored() {
        let report =
            evaluate_scores(&[3.0, 1.0, 4.0, 1.0, 5.0], &[2.0, 7.0, 1.0, 8.0, 2.0]).unwrap();
        assert_eq!(report.roc[0].fpr, 0.0);
        assert_eq!(report.roc[0].tpr, 0.0);
        let last = report.roc.last().unwrap();
        assert_eq!(last.fpr, 1.0);
        assert_eq!(last.tpr, 1.0);
        for pair in report.roc.windows(2) {
            assert!(pair[1].fpr >= pair[0].fpr);
            assert!(pair[1].tpr >= pair[0].tpr);
        }
    }

    #[test]
    fn input_order_is_irrelevant() {
        let a = evaluate_scores(&[3.0, 1.0, 2.0], &[0.5, 2.5]).unwrap();
        let b = evaluate_scores(&[1.0, 2.0, 3.0], &[2.5, 0.5]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn poisoned_inputs_are_rejected() {
        assert_eq!(
            evaluate_scores(&[], &[1.0]),
            Err(EvalError::EmptyPopulation("target"))
        );
        assert_eq!(
            evaluate_scores(&[1.0], &[]),
            Err(EvalError::EmptyPopulation("decoy"))
        );
        assert_eq!(
            evaluate_scores(&[1.0, f64::NAN], &[1.0]),
            Err(EvalError::NonFiniteScore {
                population: "target",
                index: 1
            })
        );
        assert_eq!(
            evaluate_scores(&[1.0], &[f64::INFINITY]),
            Err(EvalError::NonFiniteScore {
                population: "decoy",
                index: 0
            })
        );
    }

    #[test]
    fn epsilon_ceiling_grows_with_population() {
        assert!(epsilon_ceiling(10, 10) < epsilon_ceiling(10, 100));
        assert!(epsilon_ceiling(10, 10) < epsilon_ceiling(100, 10));
        assert!(epsilon_ceiling(1000, 1000).is_finite());
    }

    #[test]
    fn unseen_rows_score_zero() {
        let inter = TargetIntersection {
            master_row: 3,
            candidate_rows: Vec::new(),
            feasible: Vec::new(),
            centroid_hint: Vec::new(),
            sources_seen: 0,
        };
        assert_eq!(identifiability_score(&inter, 100), 0.0);
    }
}
