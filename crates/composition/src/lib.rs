//! # fred-composition — multi-release composition attacks
//!
//! The paper's threat model fuses *one* sanitized release with harvested
//! web data. Its natural escalation — Ganta, Kasiviswanathan & Smith,
//! "Composition Attacks and Auxiliary Information in Data Privacy" — is
//! an adversary holding *several* independently k-anonymized releases of
//! overlapping populations, cross-referencing them against each other
//! **and** the web harvest. Each release is safe in isolation; their
//! composition is not.
//!
//! * [`scenario`] — splits one population into `R` overlapping
//!   sub-populations and anonymizes each independently through the
//!   existing `fred-anon` pipeline (per-source seeds and QI styles);
//! * [`intersect`] — the intersection engine: per-target candidate
//!   bitsets and quasi-identifier feasible boxes intersected across the
//!   releases, which are *streamed* via [`fred_anon::Release::chunks`]
//!   (exact bitset reference + parallel batched path, property-pinned);
//! * [`fuse`] — folds the intersection posterior together with the
//!   web-harvest evidence through any [`fred_attack::FusionSystem`],
//!   yielding a [`CompositionOutcome`] with per-record disclosure gain;
//! * [`sweep`] — [`composition_sweep`]: `ks × releases` at a fixed
//!   overlap, the subsystem's evaluation axis (wired into
//!   `repro --compose`);
//! * [`defense`] — the countermeasure axis: [`DefensePolicy`]
//!   (coordinated core partitions, capped source overlap, widening
//!   calibrated against the composed intersection), threaded through the
//!   scenario generator and swept side by side with the attack by
//!   [`defense_sweep`] (`repro --compose --defend`).
//!
//! ## Example
//!
//! ```
//! use fred_anon::Mdav;
//! use fred_attack::{FuzzyFusion, FuzzyFusionConfig};
//! use fred_composition::{compose_attack, CompositionConfig, ScenarioConfig};
//! use fred_synth::{customer_table, generate_population, CustomerConfig, PopulationConfig};
//! use fred_web::{build_corpus, CorpusConfig};
//!
//! let people = generate_population(&PopulationConfig { size: 60, ..Default::default() });
//! let table = customer_table(&people, &CustomerConfig::default());
//! let web = build_corpus(&people, &CorpusConfig::default());
//! let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).unwrap();
//!
//! let outcome = compose_attack(
//!     &table,
//!     &web,
//!     &Mdav::new(),
//!     &fusion,
//!     &CompositionConfig {
//!         scenario: ScenarioConfig { releases: 3, k: 4, ..ScenarioConfig::default() },
//!         ..CompositionConfig::default()
//!     },
//! )
//! .unwrap();
//! // Three releases leave each target with fewer consistent identities
//! // than the k = 4 a single release guarantees.
//! assert!(outcome.mean_candidates < 2.0 * 4.0);
//! ```

#![warn(missing_docs)]

pub mod defense;
pub mod error;
pub mod fuse;
pub mod intersect;
pub mod scenario;
pub mod sweep;

pub use defense::DefensePolicy;
pub use error::{CompositionError, Result};
pub use fuse::{
    compose_attack, compose_attack_tolerant, fused_table, CompositionConfig, CompositionOutcome,
    CompositionRecord,
};
pub use intersect::{
    candidate_counts, intersect_releases, intersect_releases_sequential,
    intersect_releases_sharded, intersect_releases_tolerant, TargetIntersection,
};
pub use scenario::{core_targets, generate_scenario, CompositionScenario, ScenarioConfig, Source};
pub use sweep::{
    composition_sweep, defense_sweep, CompositionSweepConfig, CompositionSweepReport,
    CompositionSweepRow, DefenseSweepReport, DefenseSweepRow,
};
