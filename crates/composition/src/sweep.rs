//! The composition sweep: disclosure gain measured over
//! `ks × releases` at a fixed overlap — the new evaluation axis this
//! subsystem adds next to the paper's per-`k` sweep.
//!
//! For each `k` the sweep evaluates the single-release world (`R = 1`,
//! the paper's setting) and every configured release count, all against
//! one shared web harvest (identifiers are invariant across cells). The
//! headline series is per-record disclosure gain versus `R = 1` at the
//! same `k`: privacy that survives one release collapses under
//! composition.

use fred_anon::{Anonymizer, QiStyle};
use fred_attack::{harvest_auxiliary, FusionSystem, HarvestConfig};
use fred_data::Table;
use fred_web::SearchEngine;
use rayon::prelude::*;

use crate::defense::DefensePolicy;
use crate::error::{CompositionError, Result};
use crate::fuse::{evaluate_sources, target_truth, targets_release};
use crate::scenario::ScenarioConfig;

/// Configuration of a composition sweep.
#[derive(Debug, Clone)]
pub struct CompositionSweepConfig {
    /// Anonymization levels to sweep.
    pub ks: Vec<usize>,
    /// Release counts to sweep (an `R = 1` baseline is always evaluated
    /// per `k`, whether or not it is listed).
    pub releases: Vec<usize>,
    /// Fraction of the population shared by every source.
    pub overlap: f64,
    /// Fraction of the non-core rows each source additionally samples
    /// (see [`ScenarioConfig::extras`]).
    pub extras: f64,
    /// Seed for the population split.
    pub seed: u64,
    /// Per-source quasi-identifier styles (cycled).
    pub styles: Vec<QiStyle>,
    /// Harvesting configuration.
    pub harvest: HarvestConfig,
    /// Row-chunk size for streaming releases.
    pub chunk_rows: usize,
    /// Adversary QI-universe knowledge (see
    /// [`crate::CompositionConfig::qi_range`]).
    pub qi_range: (f64, f64),
    /// Adversary sensitive-range knowledge (see
    /// [`crate::CompositionConfig::income_range`]).
    pub income_range: (f64, f64),
    /// Coordination defense applied to every generated scenario (`None`
    /// = the undefended attack sweep).
    pub defense: Option<DefensePolicy>,
}

impl Default for CompositionSweepConfig {
    fn default() -> Self {
        CompositionSweepConfig {
            ks: vec![5],
            releases: vec![1, 2, 3],
            overlap: 0.5,
            extras: 0.5,
            seed: 0xC0DE,
            styles: vec![QiStyle::Range],
            harvest: HarvestConfig::default(),
            chunk_rows: 1024,
            qi_range: (1.0, 10.0),
            income_range: (40_000.0, 160_000.0),
            defense: None,
        }
    }
}

/// One `(k, R)` cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionSweepRow {
    /// Anonymization level.
    pub k: usize,
    /// Number of composed releases.
    pub releases: usize,
    /// Mean effective anonymity (`|∩ classes|`) across targets.
    pub mean_candidates: f64,
    /// Mean feasible-interval width across targets (QI units).
    pub mean_feasible_width: f64,
    /// Mean width of the implied feasible sensitive-value range.
    pub mean_income_width: f64,
    /// `(P ∘ P̂)` after composing the releases.
    pub dissim_composed: f64,
    /// Per-record disclosure gain versus `R = 1` at the same `k`: the
    /// mean sensitive-range width each target lost to composition.
    /// Structurally non-decreasing in `R` — source `s` is identical in
    /// every scenario that contains it, so feasible sets only shrink as
    /// releases accumulate.
    pub disclosure_gain: f64,
    /// Estimate-side gain versus `R = 1` at the same `k`
    /// (`dissim(R=1) − dissim(R)`, the paper's `G` along this axis).
    pub estimate_gain: f64,
    /// Fraction of targets with harvested auxiliary evidence.
    pub aux_coverage: f64,
}

/// The sweep output, ordered by `(k, releases)` ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionSweepReport {
    rows: Vec<CompositionSweepRow>,
}

impl CompositionSweepReport {
    /// All rows, `(k, releases)` ascending.
    pub fn rows(&self) -> &[CompositionSweepRow] {
        &self.rows
    }

    /// Row for a specific `(k, releases)` cell.
    pub fn row_for(&self, k: usize, releases: usize) -> Option<&CompositionSweepRow> {
        self.rows
            .iter()
            .find(|r| r.k == k && r.releases == releases)
    }

    /// Disclosure-gain series over `releases` at one `k`.
    pub fn gain_series(&self, k: usize) -> Vec<(usize, f64)> {
        self.rows
            .iter()
            .filter(|r| r.k == k)
            .map(|r| (r.releases, r.disclosure_gain))
            .collect()
    }

    /// Renders the report as an aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let mut out = String::from(
            "   k    R   mean |cand|   feas width   feas income       disclosure gain          est gain  aux-cov\n",
        );
        out.push_str(&"-".repeat(100));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{:4} {:4}  {:>11.2}  {:>11.3}  {:>12.0}  {:>20.1}  {:>16.4e}  {:>7.2}\n",
                r.k,
                r.releases,
                r.mean_candidates,
                r.mean_feasible_width,
                r.mean_income_width,
                r.disclosure_gain,
                r.estimate_gain,
                r.aux_coverage
            ));
        }
        out
    }

    /// Serializes the report as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "k,releases,mean_candidates,mean_feasible_width,mean_income_width,dissim_composed,disclosure_gain,estimate_gain,aux_coverage\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                r.k,
                r.releases,
                r.mean_candidates,
                r.mean_feasible_width,
                r.mean_income_width,
                r.dissim_composed,
                r.disclosure_gain,
                r.estimate_gain,
                r.aux_coverage
            ));
        }
        out
    }
}

/// The shared per-sweep setup: the target core plus its one web harvest
/// and ground truth. The core depends only on `(overlap, seed)` and no
/// defense policy touches its membership, so one context serves every
/// `(k, R, policy)` cell — [`defense_sweep`] reuses the context its
/// undefended reference sweep built instead of re-harvesting per run.
struct SweepContext {
    targets: Vec<usize>,
    harvest: fred_attack::Harvest,
    truth: Vec<f64>,
}

fn sweep_context(
    table: &Table,
    web: &SearchEngine,
    config: &CompositionSweepConfig,
) -> Result<SweepContext> {
    // The split is k- and R-invariant; probe it via the split alone (no
    // throwaway anonymization), validated at the smallest swept k.
    let k_probe = *config.ks.iter().min().expect("ks non-empty");
    let probe = ScenarioConfig {
        releases: 1,
        overlap: config.overlap,
        extras: config.extras,
        k: k_probe,
        seed: config.seed,
        styles: config.styles.clone(),
        defense: None,
    };
    let targets = crate::scenario::core_targets(table.len(), &probe)?;
    let release = targets_release(table, &targets)?;
    let harvest = harvest_auxiliary(&release, web, &config.harvest)?;
    let truth = target_truth(table, &targets)?;
    Ok(SweepContext {
        targets,
        harvest,
        truth,
    })
}

fn validate_sweep_config(config: &CompositionSweepConfig) -> Result<()> {
    if config.ks.is_empty() || config.releases.is_empty() {
        return Err(CompositionError::InvalidConfig(
            "ks and releases must be non-empty".into(),
        ));
    }
    if config.releases.contains(&0) {
        return Err(CompositionError::InvalidConfig(
            "releases must be >= 1".into(),
        ));
    }
    Ok(())
}

/// Runs the composition sweep.
///
/// The harvest runs once: the shared target core — and therefore the
/// identifier set the web search sees — depends only on `(overlap,
/// seed)`, not on `k` or `R`. Cells are independent given the harvest and
/// evaluate in parallel, collected in `(k, releases)` order.
pub fn composition_sweep(
    table: &Table,
    web: &SearchEngine,
    anonymizer: &dyn Anonymizer,
    fusion: &dyn FusionSystem,
    config: &CompositionSweepConfig,
) -> Result<CompositionSweepReport> {
    validate_sweep_config(config)?;
    let ctx = sweep_context(table, web, config)?;
    composition_sweep_with_context(table, anonymizer, fusion, config, &ctx)
}

fn composition_sweep_with_context(
    table: &Table,
    anonymizer: &dyn Anonymizer,
    fusion: &dyn FusionSystem,
    config: &CompositionSweepConfig,
    ctx: &SweepContext,
) -> Result<CompositionSweepReport> {
    let SweepContext {
        targets,
        harvest,
        truth,
    } = ctx;
    let scenario_for = |k: usize, releases: usize| ScenarioConfig {
        releases,
        overlap: config.overlap,
        extras: config.extras,
        k,
        seed: config.seed,
        styles: config.styles.clone(),
        defense: config.defense.clone(),
    };
    let mut ks = config.ks.clone();
    ks.sort_unstable();
    ks.dedup();
    let mut r_values = config.releases.clone();
    r_values.sort_unstable();
    r_values.dedup();

    // Source construction is R-invariant, so each k needs exactly one
    // scenario at the largest release count; every cell — including the
    // always-evaluated R = 1 baseline — is a prefix of its sources. The
    // per-k work fans out in parallel; cells are pure given the shared
    // harvest. The one exception is CalibratedWiden, which is
    // calibrated against its own release count (at R = 3 it widens more
    // than at R = 2), so its cells generate per R; the other policies'
    // constructions are R-invariant like the undefended one.
    let r_max = *r_values.iter().max().expect("releases non-empty");
    let mut r_cells = r_values.clone();
    if !r_cells.contains(&1) {
        r_cells.insert(0, 1);
    }
    let per_r_generation = matches!(config.defense, Some(DefensePolicy::CalibratedWiden { .. }));
    let evaluated: Vec<((usize, usize), crate::fuse::CellEval)> = ks
        .clone()
        .into_par_iter()
        .map(
            |k| -> Result<Vec<((usize, usize), crate::fuse::CellEval)>> {
                let shared_scenario = if per_r_generation {
                    None
                } else {
                    let scenario = crate::scenario::generate_scenario(
                        table,
                        anonymizer,
                        &scenario_for(k, r_max),
                    )?;
                    debug_assert_eq!(&scenario.targets, targets);
                    Some(scenario)
                };
                r_cells
                    .iter()
                    .map(|&r| {
                        let cell_scenario;
                        let sources = match &shared_scenario {
                            Some(scenario) => &scenario.sources[..r],
                            None => {
                                cell_scenario = crate::scenario::generate_scenario(
                                    table,
                                    anonymizer,
                                    &scenario_for(k, r),
                                )?;
                                debug_assert_eq!(&cell_scenario.targets, targets);
                                &cell_scenario.sources[..]
                            }
                        };
                        let eval = evaluate_sources(
                            table,
                            fusion,
                            harvest,
                            truth,
                            sources,
                            targets,
                            config.chunk_rows,
                            config.qi_range,
                            config.income_range,
                        )?;
                        Ok(((k, r), eval))
                    })
                    .collect()
            },
        )
        .collect::<Result<Vec<Vec<_>>>>()?
        .into_iter()
        .flatten()
        .collect();

    let cell_at = |k: usize, r: usize| -> &crate::fuse::CellEval {
        evaluated
            .iter()
            .find(|((ck, cr), _)| *ck == k && *cr == r)
            .map(|(_, e)| e)
            .expect("cell evaluated")
    };
    let mut rows = Vec::new();
    for &k in &ks {
        let baseline = cell_at(k, 1);
        for &r in &r_values {
            let eval = cell_at(k, r);
            rows.push(CompositionSweepRow {
                k,
                releases: r,
                mean_candidates: eval.mean_candidates,
                mean_feasible_width: eval.mean_feasible_width,
                mean_income_width: eval.mean_income_width,
                dissim_composed: eval.dissim,
                disclosure_gain: baseline.mean_income_width - eval.mean_income_width,
                estimate_gain: baseline.dissim - eval.dissim,
                aux_coverage: harvest.coverage(),
            });
        }
    }
    Ok(CompositionSweepReport { rows })
}

/// One `(policy, k, R)` cell of a defense sweep: the attack's residual
/// disclosure under the policy, side by side with the undefended gain
/// and the utility price of the coordination.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenseSweepRow {
    /// Stable policy label ([`DefensePolicy::label`]).
    pub policy: String,
    /// Anonymization level.
    pub k: usize,
    /// Number of composed releases.
    pub releases: usize,
    /// Residual disclosure at this `R`, measured from the **undefended
    /// single release** as the common yardstick: how many dollars of the
    /// sensitive range a standard lone release leaves feasible the
    /// defended composition still eliminates. Negative means the
    /// defended composition reveals *less* than even one undefended
    /// release would (the policy over-delivers); at `R = 1` it is
    /// exactly `-utility_cost`. Comparable to `undefended_gain` by
    /// construction — both gains share the same baseline — so
    /// `residual_gain < undefended_gain` iff the defended adversary ends
    /// up with a wider feasible range than the undefended one.
    pub residual_gain: f64,
    /// The undefended sweep's disclosure gain at the same `(k, R)` — the
    /// number the policy is up against.
    pub undefended_gain: f64,
    /// Mean effective anonymity (`|∩ classes|`) under the defense.
    pub mean_candidates: f64,
    /// Utility price of the policy: the defended first release's mean
    /// implied sensitive-range width minus the undefended one's, in
    /// sensitive units. Positive when coordination widened what a single
    /// release reveals; `CalibratedWiden` pays it only at the `R` that
    /// forced the widening.
    pub utility_cost: f64,
    /// Mean feasible-interval width after composition (QI units).
    pub mean_feasible_width: f64,
}

/// The defense sweep output, ordered `(policy-as-given, k, releases)`.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenseSweepReport {
    rows: Vec<DefenseSweepRow>,
}

impl DefenseSweepReport {
    /// All rows, in `(policy-as-given, k, releases)` order.
    pub fn rows(&self) -> &[DefenseSweepRow] {
        &self.rows
    }

    /// Rows of one policy, `(k, releases)` ascending.
    pub fn rows_for(&self, policy_label: &str) -> Vec<&DefenseSweepRow> {
        self.rows
            .iter()
            .filter(|r| r.policy == policy_label)
            .collect()
    }

    /// Renders the report as an aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let mut out = String::from(
            "  policy                  k    R    residual gain  undefended gain   mean |cand|  utility cost\n",
        );
        out.push_str(&"-".repeat(96));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<22} {:>3} {:>4}  {:>14.1}  {:>15.1}  {:>12.2}  {:>12.1}\n",
                r.policy,
                r.k,
                r.releases,
                r.residual_gain,
                r.undefended_gain,
                r.mean_candidates,
                r.utility_cost
            ));
        }
        out
    }
}

/// Sweeps every policy over `ks × releases` next to the undefended
/// attack: one undefended [`composition_sweep`] supplies the reference
/// gains, then each policy's scenario is generated *per release count*
/// (a coordination defense is calibrated against the releases actually
/// out there — [`DefensePolicy::CalibratedWiden`] at `R = 3` widens more
/// than at `R = 2`) and attacked with the same intersection engine,
/// fusion system and shared web harvest. Residual and undefended gains
/// are measured from the *same* baseline — the undefended single
/// release — so the two columns compare the adversary's final feasible
/// range directly; a widening policy cannot look good merely by
/// inflating its own baseline (its wide published boxes would inflate a
/// within-policy gain, not this one).
pub fn defense_sweep(
    table: &Table,
    web: &SearchEngine,
    anonymizer: &dyn Anonymizer,
    fusion: &dyn FusionSystem,
    config: &CompositionSweepConfig,
    policies: &[DefensePolicy],
) -> Result<DefenseSweepReport> {
    if policies.is_empty() {
        return Err(CompositionError::InvalidConfig(
            "defense sweep needs at least one policy".into(),
        ));
    }
    let undefended_config = CompositionSweepConfig {
        defense: None,
        ..config.clone()
    };
    validate_sweep_config(&undefended_config)?;
    // One context — core, harvest, truth — serves the undefended
    // reference and every defended cell: the core depends only on
    // (overlap, seed) and no policy touches its membership.
    let ctx = sweep_context(table, web, &undefended_config)?;
    let undefended =
        composition_sweep_with_context(table, anonymizer, fusion, &undefended_config, &ctx)?;
    // Undefended single-release width per k, recoverable from any of the
    // k's rows: gain is measured against the R = 1 cell, so
    // `mean_income_width + disclosure_gain` is that baseline width.
    let undefended_base = |k: usize| -> f64 {
        undefended
            .rows()
            .iter()
            .find(|r| r.k == k)
            .map(|r| r.mean_income_width + r.disclosure_gain)
            .expect("undefended sweep covers every swept k")
    };

    let scenario_for = |k: usize, releases: usize, policy: &DefensePolicy| ScenarioConfig {
        releases,
        overlap: config.overlap,
        extras: config.extras,
        k,
        seed: config.seed,
        styles: config.styles.clone(),
        defense: Some(policy.clone()),
    };
    let mut ks = config.ks.clone();
    ks.sort_unstable();
    ks.dedup();
    let mut r_values = config.releases.clone();
    r_values.sort_unstable();
    r_values.dedup();
    let r_max = *r_values.iter().max().expect("releases non-empty");

    let mut rows = Vec::new();
    for policy in policies {
        // CalibratedWiden is calibrated against its own release count,
        // so its cells generate per R; the other policies' source
        // constructions are R-invariant (shared core partition keyed to
        // the seed, capped extras keyed to (s, seed)), so one max-R
        // scenario per k serves every cell as a prefix — exactly like
        // the undefended sweep.
        let per_r_generation = matches!(policy, DefensePolicy::CalibratedWiden { .. });
        let evaluated: Vec<Vec<DefenseSweepRow>> = ks
            .clone()
            .into_par_iter()
            .map(|k| -> Result<Vec<DefenseSweepRow>> {
                let evaluate = |sources: &[crate::scenario::Source]| {
                    evaluate_sources(
                        table,
                        fusion,
                        &ctx.harvest,
                        &ctx.truth,
                        sources,
                        &ctx.targets,
                        config.chunk_rows,
                        config.qi_range,
                        config.income_range,
                    )
                };
                let shared_scenario = if per_r_generation {
                    None
                } else {
                    let scenario = crate::scenario::generate_scenario(
                        table,
                        anonymizer,
                        &scenario_for(k, r_max, policy),
                    )?;
                    debug_assert_eq!(scenario.targets, ctx.targets);
                    Some(scenario)
                };
                let shared_base = match &shared_scenario {
                    Some(scenario) => Some(evaluate(&scenario.sources[..1])?),
                    None => None,
                };
                r_values
                    .iter()
                    .map(|&r| -> Result<DefenseSweepRow> {
                        let cell_scenario;
                        let cell_base;
                        let (sources, base) = match (&shared_scenario, &shared_base) {
                            (Some(scenario), Some(base)) => (&scenario.sources[..r], base),
                            _ => {
                                cell_scenario = crate::scenario::generate_scenario(
                                    table,
                                    anonymizer,
                                    &scenario_for(k, r, policy),
                                )?;
                                debug_assert_eq!(cell_scenario.targets, ctx.targets);
                                cell_base = evaluate(&cell_scenario.sources[..1])?;
                                (&cell_scenario.sources[..], &cell_base)
                            }
                        };
                        let composed = if r == 1 {
                            None
                        } else {
                            Some(evaluate(sources)?)
                        };
                        let composed = composed.as_ref().unwrap_or(base);
                        let undefended_row = undefended
                            .row_for(k, r)
                            .expect("undefended sweep covers every (k, R) cell");
                        Ok(DefenseSweepRow {
                            policy: policy.label(),
                            k,
                            releases: r,
                            residual_gain: undefended_base(k) - composed.mean_income_width,
                            undefended_gain: undefended_row.disclosure_gain,
                            mean_candidates: composed.mean_candidates,
                            utility_cost: base.mean_income_width - undefended_base(k),
                            mean_feasible_width: composed.mean_feasible_width,
                        })
                    })
                    .collect()
            })
            .collect::<Result<Vec<_>>>()?;
        rows.extend(evaluated.into_iter().flatten());
    }
    Ok(DefenseSweepReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_anon::Mdav;
    use fred_attack::{FuzzyFusion, FuzzyFusionConfig};
    use fred_synth::{customer_table, generate_population, CustomerConfig, PopulationConfig};
    use fred_web::{build_corpus, CorpusConfig, NameNoise};

    fn world(n: usize) -> (Table, SearchEngine) {
        let people = generate_population(&PopulationConfig {
            size: n,
            web_presence_rate: 0.95,
            seed: 44,
            ..PopulationConfig::default()
        });
        let table = customer_table(&people, &CustomerConfig::default());
        let web = build_corpus(
            &people,
            &CorpusConfig {
                noise: NameNoise::none(),
                pages_per_person: (2, 3),
                ..CorpusConfig::default()
            },
        );
        (table, web)
    }

    #[test]
    fn sweep_produces_a_row_per_cell() {
        let (table, web) = world(60);
        let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).unwrap();
        let report = composition_sweep(
            &table,
            &web,
            &Mdav::new(),
            &fusion,
            &CompositionSweepConfig {
                ks: vec![4, 2],
                releases: vec![2, 1],
                ..CompositionSweepConfig::default()
            },
        )
        .unwrap();
        let cells: Vec<(usize, usize)> = report.rows().iter().map(|r| (r.k, r.releases)).collect();
        assert_eq!(cells, vec![(2, 1), (2, 2), (4, 1), (4, 2)]);
        for row in report.rows() {
            if row.releases == 1 {
                assert_eq!(row.disclosure_gain, 0.0);
            }
            assert!(row.mean_candidates >= 1.0);
        }
        assert!(report.row_for(2, 2).is_some());
        assert!(report.row_for(9, 1).is_none());
    }

    #[test]
    fn baseline_is_computed_even_when_not_listed() {
        let (table, web) = world(50);
        let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).unwrap();
        let report = composition_sweep(
            &table,
            &web,
            &Mdav::new(),
            &fusion,
            &CompositionSweepConfig {
                ks: vec![3],
                releases: vec![2, 3],
                ..CompositionSweepConfig::default()
            },
        )
        .unwrap();
        // Only the listed cells appear, but gains are measured vs R = 1.
        let cells: Vec<(usize, usize)> = report.rows().iter().map(|r| (r.k, r.releases)).collect();
        assert_eq!(cells, vec![(3, 2), (3, 3)]);
    }

    #[test]
    fn renders_ascii_and_csv() {
        let (table, web) = world(40);
        let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).unwrap();
        let report = composition_sweep(
            &table,
            &web,
            &Mdav::new(),
            &fusion,
            &CompositionSweepConfig {
                ks: vec![3],
                releases: vec![1, 2],
                ..CompositionSweepConfig::default()
            },
        )
        .unwrap();
        assert!(report.to_ascii().contains("disclosure gain"));
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("k,releases,"));
    }

    #[test]
    fn defense_sweep_reports_per_policy_rows() {
        let (table, web) = world(80);
        let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).unwrap();
        let k = 4;
        let config = CompositionSweepConfig {
            ks: vec![k],
            releases: vec![1, 2, 3],
            ..CompositionSweepConfig::default()
        };
        let policies = DefensePolicy::default_set(k);
        let report =
            defense_sweep(&table, &web, &Mdav::new(), &fusion, &config, &policies).unwrap();
        assert_eq!(report.rows().len(), 3 * 3);
        for policy in &policies {
            let rows = report.rows_for(&policy.label());
            assert_eq!(rows.len(), 3);
            assert_eq!(
                rows.iter().map(|r| r.releases).collect::<Vec<_>>(),
                vec![1, 2, 3]
            );
            // R = 1: composition adds nothing, so the residual is
            // exactly the (negated) utility price of the wider publish.
            assert_eq!(rows[0].residual_gain, -rows[0].utility_cost);
            assert_eq!(rows[0].undefended_gain, 0.0);
            for row in &rows {
                assert!(row.residual_gain.is_finite() && row.utility_cost.is_finite());
                assert!(row.mean_candidates >= 1.0);
            }
        }
        // Widening only relaxes the undefended partitions, so the
        // calibrated adversary can never end up knowing more than the
        // undefended one: residual stays at or below the undefended
        // gain at every R (for the other policies this is the bench
        // world's gate, not a structural theorem).
        for row in report.rows_for(&format!("calibrated_widen_k{k}")) {
            assert!(row.residual_gain <= row.undefended_gain + 1e-9, "{row:?}");
        }
        // Coordinated seeds compose zero extra disclosure: the residual
        // is flat in R (every release repeats the same core classes).
        let coordinated = report.rows_for("coordinated_seeds");
        for row in &coordinated {
            assert_eq!(row.residual_gain, coordinated[0].residual_gain, "{row:?}");
            assert!(row.mean_candidates >= k as f64);
        }
        // Calibrated widening holds the candidate floor at every R.
        for row in report.rows_for(&format!("calibrated_widen_k{k}")) {
            assert!(row.mean_candidates >= k as f64, "{row:?}");
        }
        // The undefended reference is the attack sweep's own number.
        let undefended = composition_sweep(&table, &web, &Mdav::new(), &fusion, &config).unwrap();
        for row in report.rows() {
            assert_eq!(
                row.undefended_gain,
                undefended
                    .row_for(row.k, row.releases)
                    .unwrap()
                    .disclosure_gain
            );
        }
        let ascii = report.to_ascii();
        assert!(ascii.contains("residual gain"));
        assert!(ascii.contains("coordinated_seeds"));
    }

    #[test]
    fn defended_sweep_threads_the_policy_through_the_config() {
        let (table, web) = world(60);
        let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).unwrap();
        let report = composition_sweep(
            &table,
            &web,
            &Mdav::new(),
            &fusion,
            &CompositionSweepConfig {
                ks: vec![3],
                releases: vec![1, 2, 3],
                defense: Some(DefensePolicy::CoordinatedSeeds),
                ..CompositionSweepConfig::default()
            },
        )
        .unwrap();
        // Under coordinated seeds the composed world never narrows below
        // its own single release: gain pins to zero at every R.
        for row in report.rows() {
            assert_eq!(row.disclosure_gain, 0.0, "{row:?}");
            assert!(row.mean_candidates >= 3.0);
        }
    }

    #[test]
    fn defense_sweep_rejects_empty_policies() {
        let (table, web) = world(30);
        let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).unwrap();
        assert!(defense_sweep(
            &table,
            &web,
            &Mdav::new(),
            &fusion,
            &CompositionSweepConfig::default(),
            &[],
        )
        .is_err());
    }

    #[test]
    fn invalid_configs_rejected() {
        let (table, web) = world(30);
        let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).unwrap();
        for config in [
            CompositionSweepConfig {
                ks: vec![],
                ..CompositionSweepConfig::default()
            },
            CompositionSweepConfig {
                releases: vec![],
                ..CompositionSweepConfig::default()
            },
            CompositionSweepConfig {
                releases: vec![0, 2],
                ..CompositionSweepConfig::default()
            },
        ] {
            assert!(composition_sweep(&table, &web, &Mdav::new(), &fusion, &config).is_err());
        }
    }
}
