//! The composition sweep: disclosure gain measured over
//! `ks × releases` at a fixed overlap — the new evaluation axis this
//! subsystem adds next to the paper's per-`k` sweep.
//!
//! For each `k` the sweep evaluates the single-release world (`R = 1`,
//! the paper's setting) and every configured release count, all against
//! one shared web harvest (identifiers are invariant across cells). The
//! headline series is per-record disclosure gain versus `R = 1` at the
//! same `k`: privacy that survives one release collapses under
//! composition.

use fred_anon::{Anonymizer, QiStyle};
use fred_attack::{harvest_auxiliary, FusionSystem, HarvestConfig};
use fred_data::Table;
use fred_web::SearchEngine;
use rayon::prelude::*;

use crate::error::{CompositionError, Result};
use crate::fuse::{evaluate_sources, target_truth, targets_release};
use crate::scenario::ScenarioConfig;

/// Configuration of a composition sweep.
#[derive(Debug, Clone)]
pub struct CompositionSweepConfig {
    /// Anonymization levels to sweep.
    pub ks: Vec<usize>,
    /// Release counts to sweep (an `R = 1` baseline is always evaluated
    /// per `k`, whether or not it is listed).
    pub releases: Vec<usize>,
    /// Fraction of the population shared by every source.
    pub overlap: f64,
    /// Fraction of the non-core rows each source additionally samples
    /// (see [`ScenarioConfig::extras`]).
    pub extras: f64,
    /// Seed for the population split.
    pub seed: u64,
    /// Per-source quasi-identifier styles (cycled).
    pub styles: Vec<QiStyle>,
    /// Harvesting configuration.
    pub harvest: HarvestConfig,
    /// Row-chunk size for streaming releases.
    pub chunk_rows: usize,
    /// Adversary QI-universe knowledge (see
    /// [`crate::CompositionConfig::qi_range`]).
    pub qi_range: (f64, f64),
    /// Adversary sensitive-range knowledge (see
    /// [`crate::CompositionConfig::income_range`]).
    pub income_range: (f64, f64),
}

impl Default for CompositionSweepConfig {
    fn default() -> Self {
        CompositionSweepConfig {
            ks: vec![5],
            releases: vec![1, 2, 3],
            overlap: 0.5,
            extras: 0.5,
            seed: 0xC0DE,
            styles: vec![QiStyle::Range],
            harvest: HarvestConfig::default(),
            chunk_rows: 1024,
            qi_range: (1.0, 10.0),
            income_range: (40_000.0, 160_000.0),
        }
    }
}

/// One `(k, R)` cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionSweepRow {
    /// Anonymization level.
    pub k: usize,
    /// Number of composed releases.
    pub releases: usize,
    /// Mean effective anonymity (`|∩ classes|`) across targets.
    pub mean_candidates: f64,
    /// Mean feasible-interval width across targets (QI units).
    pub mean_feasible_width: f64,
    /// Mean width of the implied feasible sensitive-value range.
    pub mean_income_width: f64,
    /// `(P ∘ P̂)` after composing the releases.
    pub dissim_composed: f64,
    /// Per-record disclosure gain versus `R = 1` at the same `k`: the
    /// mean sensitive-range width each target lost to composition.
    /// Structurally non-decreasing in `R` — source `s` is identical in
    /// every scenario that contains it, so feasible sets only shrink as
    /// releases accumulate.
    pub disclosure_gain: f64,
    /// Estimate-side gain versus `R = 1` at the same `k`
    /// (`dissim(R=1) − dissim(R)`, the paper's `G` along this axis).
    pub estimate_gain: f64,
    /// Fraction of targets with harvested auxiliary evidence.
    pub aux_coverage: f64,
}

/// The sweep output, ordered by `(k, releases)` ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositionSweepReport {
    rows: Vec<CompositionSweepRow>,
}

impl CompositionSweepReport {
    /// All rows, `(k, releases)` ascending.
    pub fn rows(&self) -> &[CompositionSweepRow] {
        &self.rows
    }

    /// Row for a specific `(k, releases)` cell.
    pub fn row_for(&self, k: usize, releases: usize) -> Option<&CompositionSweepRow> {
        self.rows
            .iter()
            .find(|r| r.k == k && r.releases == releases)
    }

    /// Disclosure-gain series over `releases` at one `k`.
    pub fn gain_series(&self, k: usize) -> Vec<(usize, f64)> {
        self.rows
            .iter()
            .filter(|r| r.k == k)
            .map(|r| (r.releases, r.disclosure_gain))
            .collect()
    }

    /// Renders the report as an aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let mut out = String::from(
            "   k    R   mean |cand|   feas width   feas income       disclosure gain          est gain  aux-cov\n",
        );
        out.push_str(&"-".repeat(100));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&format!(
                "{:4} {:4}  {:>11.2}  {:>11.3}  {:>12.0}  {:>20.1}  {:>16.4e}  {:>7.2}\n",
                r.k,
                r.releases,
                r.mean_candidates,
                r.mean_feasible_width,
                r.mean_income_width,
                r.disclosure_gain,
                r.estimate_gain,
                r.aux_coverage
            ));
        }
        out
    }

    /// Serializes the report as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "k,releases,mean_candidates,mean_feasible_width,mean_income_width,dissim_composed,disclosure_gain,estimate_gain,aux_coverage\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                r.k,
                r.releases,
                r.mean_candidates,
                r.mean_feasible_width,
                r.mean_income_width,
                r.dissim_composed,
                r.disclosure_gain,
                r.estimate_gain,
                r.aux_coverage
            ));
        }
        out
    }
}

/// Runs the composition sweep.
///
/// The harvest runs once: the shared target core — and therefore the
/// identifier set the web search sees — depends only on `(overlap,
/// seed)`, not on `k` or `R`. Cells are independent given the harvest and
/// evaluate in parallel, collected in `(k, releases)` order.
pub fn composition_sweep(
    table: &Table,
    web: &SearchEngine,
    anonymizer: &dyn Anonymizer,
    fusion: &dyn FusionSystem,
    config: &CompositionSweepConfig,
) -> Result<CompositionSweepReport> {
    if config.ks.is_empty() || config.releases.is_empty() {
        return Err(CompositionError::InvalidConfig(
            "ks and releases must be non-empty".into(),
        ));
    }
    if config.releases.contains(&0) {
        return Err(CompositionError::InvalidConfig(
            "releases must be >= 1".into(),
        ));
    }
    let scenario_for = |k: usize, releases: usize| ScenarioConfig {
        releases,
        overlap: config.overlap,
        extras: config.extras,
        k,
        seed: config.seed,
        styles: config.styles.clone(),
    };
    // The split is k- and R-invariant; probe it via the split alone (no
    // throwaway anonymization), validated at the smallest swept k.
    let k_probe = *config.ks.iter().min().expect("ks non-empty");
    let targets = crate::scenario::core_targets(table.len(), &scenario_for(k_probe, 1))?;
    let release = targets_release(table, &targets)?;
    let harvest = harvest_auxiliary(&release, web, &config.harvest)?;
    let truth = target_truth(table, &targets)?;

    let mut ks = config.ks.clone();
    ks.sort_unstable();
    ks.dedup();
    let mut r_values = config.releases.clone();
    r_values.sort_unstable();
    r_values.dedup();

    // Source construction is R-invariant, so each k needs exactly one
    // scenario at the largest release count; every cell — including the
    // always-evaluated R = 1 baseline — is a prefix of its sources. The
    // per-k work fans out in parallel; cells are pure given the shared
    // harvest.
    let r_max = *r_values.iter().max().expect("releases non-empty");
    let mut r_cells = r_values.clone();
    if !r_cells.contains(&1) {
        r_cells.insert(0, 1);
    }
    let evaluated: Vec<((usize, usize), crate::fuse::CellEval)> = ks
        .clone()
        .into_par_iter()
        .map(
            |k| -> Result<Vec<((usize, usize), crate::fuse::CellEval)>> {
                let scenario =
                    crate::scenario::generate_scenario(table, anonymizer, &scenario_for(k, r_max))?;
                debug_assert_eq!(scenario.targets, targets);
                r_cells
                    .iter()
                    .map(|&r| {
                        let eval = evaluate_sources(
                            table,
                            fusion,
                            &harvest,
                            &truth,
                            &scenario.sources[..r],
                            &targets,
                            config.chunk_rows,
                            config.qi_range,
                            config.income_range,
                        )?;
                        Ok(((k, r), eval))
                    })
                    .collect()
            },
        )
        .collect::<Result<Vec<Vec<_>>>>()?
        .into_iter()
        .flatten()
        .collect();

    let cell_at = |k: usize, r: usize| -> &crate::fuse::CellEval {
        evaluated
            .iter()
            .find(|((ck, cr), _)| *ck == k && *cr == r)
            .map(|(_, e)| e)
            .expect("cell evaluated")
    };
    let mut rows = Vec::new();
    for &k in &ks {
        let baseline = cell_at(k, 1);
        for &r in &r_values {
            let eval = cell_at(k, r);
            rows.push(CompositionSweepRow {
                k,
                releases: r,
                mean_candidates: eval.mean_candidates,
                mean_feasible_width: eval.mean_feasible_width,
                mean_income_width: eval.mean_income_width,
                dissim_composed: eval.dissim,
                disclosure_gain: baseline.mean_income_width - eval.mean_income_width,
                estimate_gain: baseline.dissim - eval.dissim,
                aux_coverage: harvest.coverage(),
            });
        }
    }
    Ok(CompositionSweepReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_anon::Mdav;
    use fred_attack::{FuzzyFusion, FuzzyFusionConfig};
    use fred_synth::{customer_table, generate_population, CustomerConfig, PopulationConfig};
    use fred_web::{build_corpus, CorpusConfig, NameNoise};

    fn world(n: usize) -> (Table, SearchEngine) {
        let people = generate_population(&PopulationConfig {
            size: n,
            web_presence_rate: 0.95,
            seed: 44,
            ..PopulationConfig::default()
        });
        let table = customer_table(&people, &CustomerConfig::default());
        let web = build_corpus(
            &people,
            &CorpusConfig {
                noise: NameNoise::none(),
                pages_per_person: (2, 3),
                ..CorpusConfig::default()
            },
        );
        (table, web)
    }

    #[test]
    fn sweep_produces_a_row_per_cell() {
        let (table, web) = world(60);
        let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).unwrap();
        let report = composition_sweep(
            &table,
            &web,
            &Mdav::new(),
            &fusion,
            &CompositionSweepConfig {
                ks: vec![4, 2],
                releases: vec![2, 1],
                ..CompositionSweepConfig::default()
            },
        )
        .unwrap();
        let cells: Vec<(usize, usize)> = report.rows().iter().map(|r| (r.k, r.releases)).collect();
        assert_eq!(cells, vec![(2, 1), (2, 2), (4, 1), (4, 2)]);
        for row in report.rows() {
            if row.releases == 1 {
                assert_eq!(row.disclosure_gain, 0.0);
            }
            assert!(row.mean_candidates >= 1.0);
        }
        assert!(report.row_for(2, 2).is_some());
        assert!(report.row_for(9, 1).is_none());
    }

    #[test]
    fn baseline_is_computed_even_when_not_listed() {
        let (table, web) = world(50);
        let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).unwrap();
        let report = composition_sweep(
            &table,
            &web,
            &Mdav::new(),
            &fusion,
            &CompositionSweepConfig {
                ks: vec![3],
                releases: vec![2, 3],
                ..CompositionSweepConfig::default()
            },
        )
        .unwrap();
        // Only the listed cells appear, but gains are measured vs R = 1.
        let cells: Vec<(usize, usize)> = report.rows().iter().map(|r| (r.k, r.releases)).collect();
        assert_eq!(cells, vec![(3, 2), (3, 3)]);
    }

    #[test]
    fn renders_ascii_and_csv() {
        let (table, web) = world(40);
        let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).unwrap();
        let report = composition_sweep(
            &table,
            &web,
            &Mdav::new(),
            &fusion,
            &CompositionSweepConfig {
                ks: vec![3],
                releases: vec![1, 2],
                ..CompositionSweepConfig::default()
            },
        )
        .unwrap();
        assert!(report.to_ascii().contains("disclosure gain"));
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("k,releases,"));
    }

    #[test]
    fn invalid_configs_rejected() {
        let (table, web) = world(30);
        let fusion = FuzzyFusion::new(FuzzyFusionConfig::default()).unwrap();
        for config in [
            CompositionSweepConfig {
                ks: vec![],
                ..CompositionSweepConfig::default()
            },
            CompositionSweepConfig {
                releases: vec![],
                ..CompositionSweepConfig::default()
            },
            CompositionSweepConfig {
                releases: vec![0, 2],
                ..CompositionSweepConfig::default()
            },
        ] {
            assert!(composition_sweep(&table, &web, &Mdav::new(), &fusion, &config).is_err());
        }
    }
}
