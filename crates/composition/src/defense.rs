//! The defense axis: countermeasures a *coordinating* set of curators can
//! deploy against the composition attack, swept with the same harness
//! that measures the attack.
//!
//! The attack works because `R` independently anonymized releases of
//! overlapping populations impose `R` independent constraint sets on the
//! shared individuals; their intersection is tighter than any one of
//! them. Every policy here removes some of that independence:
//!
//! * [`DefensePolicy::CoordinatedSeeds`] — all curators partition the
//!   shared core **once**, from one agreed partition seed, and reuse
//!   those classes verbatim; each curator still anonymizes its private
//!   extras on its own. A core target's class is then identical in every
//!   release, the intersection *is* the single-release class, and the
//!   composed disclosure gain is exactly zero.
//! * [`DefensePolicy::OverlapCap`] — the scenario generator pins the
//!   pairwise record overlap of any two sources **outside the core** at
//!   `max_shared_fraction` of their extras: the shared part is one
//!   designated common pool (the closed form of resampling until the cap
//!   holds), the remainder per-curator disjoint slices. A cap of `0.0`
//!   makes sources disjoint outside the core — every non-core person
//!   appears in at most one release, so composition cannot touch them at
//!   all. Note the measured trade-off on the always-shared core: *low*
//!   caps decorrelate the releases' class geometries and can expose the
//!   core **more**, while high caps make the geometries near-identical
//!   and leave the intersection nothing to cut (see README "Defenses").
//! * [`DefensePolicy::CalibratedWiden`] — post-partition widening: after
//!   every curator has partitioned, classes are iteratively merged with
//!   their nearest neighbor class (widening the published feasible
//!   boxes) until the streamed intersection provably keeps
//!   `|∩ classes| ≥ target_k` for every core target. This is noise
//!   calibrated against the *composition*, not against any single
//!   release — a single release at `target_k = k` needs no widening at
//!   all.
//!
//! Policies are threaded through [`crate::ScenarioConfig::defense`]; the
//! harness ([`crate::defense_sweep`], `repro --compose --defend`) reports
//! each policy's *residual* disclosure gain next to the undefended gain
//! plus the utility price of the widened boxes.

use std::collections::HashMap;

use fred_anon::{Anonymizer, Partition};
use fred_data::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::{CompositionError, Result};
use crate::intersect::master_class_bits;
use crate::scenario::{shuffle, Source};

/// A coordinated-release countermeasure against composition attacks.
#[derive(Debug, Clone, PartialEq)]
pub enum DefensePolicy {
    /// Every curator reuses one shared partition of the core (same
    /// partition seed), so intersecting a core target's classes across
    /// releases returns the class itself — never fewer than `k` rows —
    /// and composes zero disclosure gain.
    CoordinatedSeeds,
    /// Pairwise record overlap outside the core is pinned at this
    /// fraction of each source's extras via one designated shared pool
    /// (`0.0` = fully disjoint outside the core, `1.0` = one common
    /// extras population).
    OverlapCap {
        /// Fraction in `[0, 1]` of each source's extras that any two
        /// sources may share.
        max_shared_fraction: f64,
    },
    /// Classes are merged (feasible boxes widened) until the streamed
    /// intersection keeps at least this many candidates for every core
    /// target, at every release count.
    CalibratedWiden {
        /// Effective-anonymity floor the composition must not breach.
        target_k: usize,
    },
}

impl DefensePolicy {
    /// Stable snake-case label used in reports, JSON baselines and the
    /// compare gate (`calibrated_widen_*` rows carry the candidate-floor
    /// gate).
    pub fn label(&self) -> String {
        match self {
            DefensePolicy::CoordinatedSeeds => "coordinated_seeds".to_owned(),
            DefensePolicy::OverlapCap {
                max_shared_fraction,
            } => format!("overlap_cap_{max_shared_fraction:.2}"),
            DefensePolicy::CalibratedWiden { target_k } => {
                format!("calibrated_widen_k{target_k}")
            }
        }
    }

    /// The policy set `repro --defend all` sweeps at anonymization level
    /// `k`: coordinated seeds, the overlap cap at its measured sweet spot
    /// (`0.9` — see the module docs for why *low* caps can backfire on
    /// the core), and widening calibrated to the promise `k` made.
    pub fn default_set(k: usize) -> Vec<DefensePolicy> {
        vec![
            DefensePolicy::CoordinatedSeeds,
            DefensePolicy::OverlapCap {
                max_shared_fraction: 0.9,
            },
            DefensePolicy::CalibratedWiden { target_k: k },
        ]
    }

    /// Validates the policy against a scenario's core size (the maximum
    /// effective anonymity any calibration can guarantee is the shared
    /// core itself).
    pub(crate) fn validate(&self, core_size: usize) -> Result<()> {
        match *self {
            DefensePolicy::CoordinatedSeeds => Ok(()),
            DefensePolicy::OverlapCap {
                max_shared_fraction,
            } => {
                if !(0.0..=1.0).contains(&max_shared_fraction) {
                    return Err(CompositionError::InvalidConfig(format!(
                        "overlap cap {max_shared_fraction} outside [0, 1]"
                    )));
                }
                Ok(())
            }
            DefensePolicy::CalibratedWiden { target_k } => {
                if target_k == 0 {
                    return Err(CompositionError::InvalidConfig(
                        "calibrated widening needs target_k >= 1".into(),
                    ));
                }
                if target_k > core_size {
                    return Err(CompositionError::InvalidConfig(format!(
                        "calibrated widening to {target_k} exceeds the shared core of \
                         {core_size} rows (no widening can conjure candidates beyond it)"
                    )));
                }
                Ok(())
            }
        }
    }
}

/// Per-source extras under [`DefensePolicy::OverlapCap`]: one seeded
/// shuffle of the non-core pool, a designated shared prefix of
/// `round(cap · extras_per_source)` rows common to every source, and
/// per-source disjoint slices of the remainder (truncated when the pool
/// runs out — a curator that cannot fill its quota without breaching the
/// cap publishes fewer rows). Construction depends only on `(s, seed)`,
/// never on the release count, so sweep cells over `R` stay comparable.
pub(crate) fn overlap_cap_extras(
    rest: &[usize],
    extras_per_source: usize,
    max_shared_fraction: f64,
    releases: usize,
    seed: u64,
) -> Vec<Vec<usize>> {
    let mut pool = rest.to_vec();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0E1A_9CA9_05EE_D001);
    shuffle(&mut pool, &mut rng);
    let shared = ((extras_per_source as f64) * max_shared_fraction).round() as usize;
    let shared = shared.min(extras_per_source).min(pool.len());
    let own = extras_per_source - shared;
    (0..releases)
        .map(|s| {
            let mut extras = pool[..shared].to_vec();
            let lo = (shared + s * own).min(pool.len());
            let hi = (lo + own).min(pool.len());
            extras.extend(pool[lo..hi].iter().copied());
            extras
        })
        .collect()
}

/// Builds one source's partition under [`DefensePolicy::CoordinatedSeeds`]:
/// the shared core classes (given in master-row ids) mapped into the
/// source's local row space, plus the curator's own anonymization of its
/// extras. Every class is either a shared core class or an extras-only
/// class, so the partition satisfies `k` whenever both parts do.
pub(crate) fn coordinated_partition(
    core_classes_global: &[Vec<usize>],
    rows: &[usize],
    sub_table: &Table,
    anonymizer: &dyn Anonymizer,
    k: usize,
) -> Result<Partition> {
    let local_of: HashMap<usize, usize> = rows.iter().enumerate().map(|(l, &g)| (g, l)).collect();
    let mut in_core = vec![false; rows.len()];
    let mut classes: Vec<Vec<usize>> = Vec::with_capacity(core_classes_global.len());
    for class in core_classes_global {
        let local: Vec<usize> = class
            .iter()
            .map(|g| {
                local_of.get(g).copied().ok_or_else(|| {
                    CompositionError::InvalidConfig(format!(
                        "coordinated core row {g} missing from a source"
                    ))
                })
            })
            .collect::<Result<_>>()?;
        for &l in &local {
            in_core[l] = true;
        }
        classes.push(local);
    }
    let extras_local: Vec<usize> = (0..rows.len()).filter(|&l| !in_core[l]).collect();
    if !extras_local.is_empty() {
        let extra_rows: Vec<_> = extras_local
            .iter()
            .map(|&l| sub_table.rows()[l].clone())
            .collect();
        let extra_table = Table::with_rows(sub_table.schema().clone(), extra_rows)?;
        let extra_partition = anonymizer.partition(&extra_table, k)?;
        classes.extend(
            extra_partition
                .classes()
                .iter()
                .map(|cl| cl.iter().map(|&i| extras_local[i]).collect::<Vec<_>>()),
        );
    }
    Partition::new(classes, rows.len()).map_err(Into::into)
}

/// Union-find root with path halving.
fn find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

/// One source's candidate geometry (see
/// [`crate::intersect::master_class_bits`] — the calibration never needs
/// the published summaries, only the partition-derived bitsets).
struct ClassBits {
    class_of_master: Vec<u32>,
    class_bits: Vec<Vec<u64>>,
}

fn class_bits_of(source: &Source, n_master: usize) -> ClassBits {
    let (class_of_master, class_bits) = master_class_bits(source, n_master);
    ClassBits {
        class_of_master,
        class_bits,
    }
}

/// Set master rows of `bits`.
fn iter_bits(bits: &[u64]) -> impl Iterator<Item = usize> + '_ {
    bits.iter().enumerate().flat_map(|(wi, &word)| {
        let mut w = word;
        std::iter::from_fn(move || {
            if w == 0 {
                return None;
            }
            let b = w.trailing_zeros() as usize;
            w &= w - 1;
            Some(wi * 64 + b)
        })
    })
}

/// [`DefensePolicy::CalibratedWiden`] applied in place: walks the core
/// targets and, while one still has fewer than `target_k` candidates,
/// performs **one** targeted merge at a time — in the source (and with
/// the neighbor class) that unblocks the most candidate rows, i.e. rows
/// every *other* release already allows but this source's class
/// excludes — re-measuring the target after every merge against the
/// live merged state. Merging only ever grows classes, so `k`-anonymity
/// is preserved, published feasible boxes only widen and candidate sets
/// only grow; growth is monotone, so once a target reaches the floor no
/// later merge can sink it back, one pass suffices, and in the limit
/// every source is one class whose intersection contains the whole core
/// — the loop provably terminates with `|∩ classes| ≥ target_k` for
/// every target (the scenario validation pins `target_k ≤ core size`).
/// The merge-measure-merge discipline keeps the widening near the
/// minimum the floor needs instead of flattening whole releases.
///
/// Returns the number of class merges performed (the widening budget the
/// calibration spent).
pub(crate) fn calibrate_widen(
    sources: &mut [Source],
    targets: &[usize],
    n_master: usize,
    target_k: usize,
) -> Result<usize> {
    let words = n_master.div_ceil(64);
    let digests: Vec<ClassBits> = sources.iter().map(|s| class_bits_of(s, n_master)).collect();
    let mut parents: Vec<Vec<usize>> = sources
        .iter()
        .map(|s| (0..s.partition.len()).collect())
        .collect();
    // Live candidate bitset per class root (meaningful at root indices
    // only); a union ORs the absorbed root into the surviving one.
    let mut root_bits: Vec<Vec<Vec<u64>>> = digests.iter().map(|d| d.class_bits.clone()).collect();
    let total_classes: usize = sources.iter().map(|s| s.partition.len()).sum();
    let mut merges = 0usize;
    let mut cand = vec![0u64; words];
    let mut others = vec![0u64; words];

    for &t in targets {
        loop {
            // Candidates of t under the current merged state.
            let mut seen = 0usize;
            for (s, digest) in digests.iter().enumerate() {
                let class = digest.class_of_master[t];
                if class == u32::MAX {
                    continue;
                }
                let root = find(&mut parents[s], class as usize);
                if seen == 0 {
                    cand.copy_from_slice(&root_bits[s][root]);
                } else {
                    for (w, &src) in cand.iter_mut().zip(&root_bits[s][root]) {
                        *w &= src;
                    }
                }
                seen += 1;
            }
            if seen == 0 {
                // Core targets sit in every source; an absent target has
                // no classes to widen.
                break;
            }
            if cand.iter().map(|w| w.count_ones() as usize).sum::<usize>() >= target_k {
                break;
            }
            // Best (rows unblocked, source, neighbor root): rows every
            // other release allows that sit in one mergeable class of
            // this source. Ties resolve to the lowest (source, root), so
            // calibration is deterministic.
            let mut best: Option<(usize, usize, usize)> = None;
            for (s, digest) in digests.iter().enumerate() {
                let class = digest.class_of_master[t];
                if class == u32::MAX {
                    continue;
                }
                let own_root = find(&mut parents[s], class as usize);
                others.iter_mut().for_each(|w| *w = !0u64);
                for (s2, other) in digests.iter().enumerate() {
                    if s2 == s {
                        continue;
                    }
                    let c2 = other.class_of_master[t];
                    if c2 == u32::MAX {
                        continue;
                    }
                    let r2 = find(&mut parents[s2], c2 as usize);
                    for (w, &src) in others.iter_mut().zip(&root_bits[s2][r2]) {
                        *w &= src;
                    }
                }
                // Clear the padding bits past n_master: with no other
                // source to AND against (a lone release, or a target
                // present in one source only) the all-ones seed would
                // survive into ghost rows beyond the table.
                let tail = n_master % 64;
                if tail != 0 {
                    if let Some(last) = others.last_mut() {
                        *last &= (1u64 << tail) - 1;
                    }
                }
                let mut tally: HashMap<usize, usize> = HashMap::new();
                for row in iter_bits(&others) {
                    let rc = digest.class_of_master[row];
                    if rc == u32::MAX {
                        continue;
                    }
                    let root = find(&mut parents[s], rc as usize);
                    if root != own_root {
                        *tally.entry(root).or_insert(0) += 1;
                    }
                }
                for (&root, &count) in &tally {
                    if best.is_none_or(|(bc, bs, br)| {
                        count > bc || (count == bc && (s, root) < (bs, br))
                    }) {
                        best = Some((count, s, root));
                    }
                }
            }
            let chosen = best.map(|(_, s, root)| (s, root)).or_else(|| {
                // No single-source blocker (every missing row is blocked
                // by two or more releases): fall back to the first
                // source with something left to merge and take its
                // lowest other root — progress over precision, the next
                // iteration re-measures.
                (0..sources.len()).find_map(|s| {
                    let class = digests[s].class_of_master[t];
                    if class == u32::MAX {
                        return None;
                    }
                    let own_root = find(&mut parents[s], class as usize);
                    (0..parents[s].len())
                        .find(|&c| find(&mut parents[s], c) != own_root)
                        .map(|root| (s, root))
                })
            });
            let Some((s, neighbor)) = chosen else {
                // Cannot happen when target_k <= core size (validated):
                // with every source single-class the intersection holds
                // the whole core. Bail loudly rather than loop forever
                // on a violated precondition.
                return Err(CompositionError::InvalidConfig(format!(
                    "calibration stalled below target_k = {target_k} with nothing left to merge"
                )));
            };
            let a = find(&mut parents[s], digests[s].class_of_master[t] as usize);
            let b = find(&mut parents[s], neighbor);
            debug_assert_ne!(a, b, "merge candidates are distinct roots");
            let (lo, hi) = (a.min(b), a.max(b));
            parents[s][hi] = lo;
            let (low_slice, high_slice) = root_bits[s].split_at_mut(hi);
            for (w, &src) in low_slice[lo].iter_mut().zip(&high_slice[0]) {
                *w |= src;
            }
            merges += 1;
            assert!(
                merges <= total_classes,
                "calibration exceeded its merge budget (internal invariant broken)"
            );
        }
    }
    for (source, parent) in sources.iter_mut().zip(&mut parents) {
        let n_classes = source.partition.len();
        if (0..n_classes).all(|c| parent[c] == c) {
            continue;
        }
        // Rebuild: member classes concatenate in ascending original
        // index under their root, roots stay in ascending order.
        let mut grouped: Vec<Vec<usize>> = vec![Vec::new(); n_classes];
        for c in 0..n_classes {
            let root = find(parent, c);
            grouped[root].extend(source.partition.classes()[c].iter().copied());
        }
        let classes: Vec<Vec<usize>> = grouped.into_iter().filter(|g| !g.is_empty()).collect();
        source.partition = Partition::new(classes, source.global_rows.len())?;
    }
    Ok(merges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(DefensePolicy::CoordinatedSeeds.label(), "coordinated_seeds");
        assert_eq!(
            DefensePolicy::OverlapCap {
                max_shared_fraction: 0.9
            }
            .label(),
            "overlap_cap_0.90"
        );
        assert_eq!(
            DefensePolicy::CalibratedWiden { target_k: 5 }.label(),
            "calibrated_widen_k5"
        );
    }

    #[test]
    fn default_set_has_three_policies_calibrated_to_k() {
        let set = DefensePolicy::default_set(7);
        assert_eq!(set.len(), 3);
        assert!(set.contains(&DefensePolicy::CalibratedWiden { target_k: 7 }));
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(DefensePolicy::OverlapCap {
            max_shared_fraction: 1.5
        }
        .validate(10)
        .is_err());
        assert!(DefensePolicy::CalibratedWiden { target_k: 0 }
            .validate(10)
            .is_err());
        assert!(DefensePolicy::CalibratedWiden { target_k: 11 }
            .validate(10)
            .is_err());
        assert!(DefensePolicy::CalibratedWiden { target_k: 10 }
            .validate(10)
            .is_ok());
        assert!(DefensePolicy::CoordinatedSeeds.validate(1).is_ok());
    }

    #[test]
    fn overlap_cap_extras_respects_the_cap_pairwise() {
        let rest: Vec<usize> = (0..40).collect();
        for cap in [0.0f64, 0.25, 0.5, 1.0] {
            let per = overlap_cap_extras(&rest, 10, cap, 3, 99);
            let shared = ((10.0 * cap).round()) as usize;
            for (i, a) in per.iter().enumerate() {
                assert!(a.len() <= 10);
                for b in per.iter().skip(i + 1) {
                    let overlap = a.iter().filter(|x| b.contains(x)).count();
                    assert!(overlap <= shared, "cap {cap}: overlap {overlap} > {shared}");
                }
            }
        }
        // Cap 0 on a tight pool: disjoint, truncated when exhausted.
        let rest: Vec<usize> = (0..12).collect();
        let per = overlap_cap_extras(&rest, 6, 0.0, 3, 7);
        assert_eq!(per[0].len(), 6);
        assert_eq!(per[1].len(), 6);
        assert!(per[2].is_empty(), "pool exhausted -> empty extras");
    }
}
