//! The intersection engine: cross-referencing a target's equivalence
//! classes across independently anonymized releases.
//!
//! Releases retain identifiers (the enterprise requirement the paper's
//! attack rests on), so the adversary can locate a target's row in every
//! release. Each release then constrains the target twice over:
//!
//! * **candidate set** — the identities sharing the target's equivalence
//!   class. One release guarantees at least `k` of them; intersecting the
//!   classes across releases shrinks the set toward the target alone
//!   (Ganta, Kasiviswanathan & Smith's composition collapse). Candidate
//!   sets are master-row bitsets, so an intersection is a word-wise AND.
//! * **feasible box** — interval-style quasi-identifier summaries bound
//!   the target's true attribute vector; intersecting the boxes narrows
//!   the range every estimate is drawn from. Centroid-style summaries are
//!   points, not bounds, and contribute a hint instead.
//!
//! Releases are **streamed** through [`fred_anon::Release::chunks`]; no
//! release table is ever materialized whole. Two paths compute the same
//! per-target result: [`intersect_releases_sequential`], the plain
//! reference, and [`intersect_releases`], the parallel batched path with
//! per-worker bitset scratch — pinned bit-identical by property test.

use fred_anon::Release;
use fred_data::{Interval, ShardPlan, Value};
use fred_faults::{key2, key3, salt, Degradation, FaultPlan, InputDefect};
use rayon::prelude::*;
use std::time::Instant;

/// Per-shard sub-span emitted inside the sharded intersection loop.
const INTERSECT_SHARD_SPAN: &str = "intersect.shard";
/// Per-shard latency histogram fed by the sharded intersection loop.
const INTERSECT_SHARD_MS: &str = "intersect.shard_ms";

use crate::error::{CompositionError, Result};
use crate::scenario::Source;

/// One class's constraint on one quasi-identifier cell.
#[derive(Debug, Clone, Copy, PartialEq)]
enum CellCon {
    /// Interval summary: the member's true value lies inside.
    Bound(Interval),
    /// Centroid summary: a point estimate, not a bound.
    Point(f64),
    /// No numeric constraint (categorical or suppressed summary).
    Free,
}

impl CellCon {
    fn from_value(v: &Value) -> CellCon {
        // Matches variants directly: `Value::as_interval` views scalars
        // as degenerate intervals, which would promote a centroid (a
        // point *estimate*) into a hard — and wrong — bound.
        match v {
            Value::Interval(iv) => CellCon::Bound(*iv),
            Value::Float(x) => CellCon::Point(*x),
            Value::Int(i) => CellCon::Point(*i as f64),
            _ => CellCon::Free,
        }
    }
}

/// Everything the intersection needs from one source, extracted in a
/// single streamed pass over its (never materialized) release.
struct SourceDigest {
    /// Class index per master row (`u32::MAX` when absent).
    class_of_master: Vec<u32>,
    /// Per class: candidate bitset over master rows.
    class_bits: Vec<Vec<u64>>,
    /// Per class, per quasi-identifier: the published constraint.
    class_cons: Vec<Vec<CellCon>>,
}

/// One source's candidate geometry, derived from the partition alone:
/// `class_of_master[g]` is the class index of master row `g`
/// (`u32::MAX` when absent from the source) and the per-class bitsets
/// cover master rows. Shared by the digest below and the defense
/// calibration loop, so the bitset encoding (word indexing, sentinel)
/// lives in exactly one place.
pub(crate) fn master_class_bits(source: &Source, n_master: usize) -> (Vec<u32>, Vec<Vec<u64>>) {
    let class_of_local = source.partition.class_of_rows();
    let words = n_master.div_ceil(64);
    let mut class_bits = vec![vec![0u64; words]; source.partition.len()];
    let mut class_of_master = vec![u32::MAX; n_master];
    for (local, &g) in source.global_rows.iter().enumerate() {
        let class = class_of_local[local];
        class_bits[class][g >> 6] |= 1u64 << (g & 63);
        class_of_master[g] = class as u32;
    }
    (class_of_master, class_bits)
}

/// Streams one source's release and collects each class's published
/// constraint vector (the first row of a class carries the whole class's
/// summary). The memory-heavy candidate bitsets are *not* built here, so
/// the sharded engine can reuse this pass while keeping per-shard bitset
/// peaks.
fn class_constraints(
    source: &Source,
    qi_cols: &[usize],
    chunk_rows: usize,
) -> Result<Vec<Vec<CellCon>>> {
    let class_of_local = source.partition.class_of_rows();
    let n_classes = source.partition.len();
    let mut class_cons: Vec<Vec<CellCon>> = vec![Vec::new(); n_classes];
    let mut filled = vec![false; n_classes];
    let mut lo = 0usize;
    for chunk in Release::chunks(&source.table, &source.partition, source.style, chunk_rows) {
        let chunk = chunk?;
        for (i, row) in chunk.rows().iter().enumerate() {
            let class = class_of_local[lo + i];
            if !filled[class] {
                filled[class] = true;
                class_cons[class] = qi_cols
                    .iter()
                    .map(|&c| CellCon::from_value(&row[c]))
                    .collect();
            }
        }
        lo += chunk.len();
    }
    Ok(class_cons)
}

fn digest_source(
    source: &Source,
    n_master: usize,
    qi_cols: &[usize],
    chunk_rows: usize,
) -> Result<SourceDigest> {
    let (class_of_master, class_bits) = master_class_bits(source, n_master);
    let class_cons = class_constraints(source, qi_cols, chunk_rows)?;
    Ok(SourceDigest {
        class_of_master,
        class_bits,
        class_cons,
    })
}

/// Applies the plan's chosen corruption flavor to one published
/// constraint: either NaN garbage (detected and imputed downstream) or
/// finite out-of-range inflation (harmless by construction — the
/// intersection always keeps the tighter bound, so an inflated interval
/// only loosens what this source contributes).
fn corrupt_con(con: CellCon, plan: &FaultPlan, site: u64) -> CellCon {
    if plan.pick(salt::CELL_FLAVOR, site, 2) == 0 {
        CellCon::Bound(Interval::point(f64::NAN))
    } else {
        match con {
            CellCon::Bound(iv) => {
                let pad = 1e3 * (iv.width() + 1.0);
                CellCon::Bound(Interval::new(iv.lo() - pad, iv.hi() + pad).expect("finite pad"))
            }
            CellCon::Point(x) => CellCon::Point(x + 1e9),
            CellCon::Free => CellCon::Free,
        }
    }
}

/// Validates a constraint read from a possibly-corrupt release cell:
/// non-finite bounds and points are defects; everything else passes.
fn checked_con(con: CellCon) -> std::result::Result<CellCon, InputDefect> {
    match con {
        CellCon::Bound(iv) if !(iv.lo().is_finite() && iv.hi().is_finite()) => {
            Err(InputDefect::NonFiniteValue)
        }
        CellCon::Point(x) if !x.is_finite() => Err(InputDefect::NonFiniteValue),
        ok => Ok(ok),
    }
}

/// [`digest_source`] under a fault plan: release rows can go missing,
/// class-summary cells can arrive NaN (imputed as unconstrained and
/// counted) or inflated out-of-range (kept — narrowing makes it
/// harmless), and streamed chunks can arrive truncated (only their first
/// half is readable; a class whose every readable row was lost keeps no
/// constraint). All skip-and-count into `deg`; under a zero-rate plan
/// the digest is bit-identical to the strict one.
fn digest_source_tolerant(
    source: &Source,
    source_idx: usize,
    n_master: usize,
    qi_cols: &[usize],
    chunk_rows: usize,
    plan: &FaultPlan,
    deg: &mut Degradation,
) -> Result<SourceDigest> {
    let class_of_local = source.partition.class_of_rows();
    let n_classes = source.partition.len();
    let words = n_master.div_ceil(64);
    let mut class_bits = vec![vec![0u64; words]; n_classes];
    let mut class_of_master = vec![u32::MAX; n_master];
    let mut dropped_local = vec![false; source.global_rows.len()];
    for (local, &g) in source.global_rows.iter().enumerate() {
        if plan.targets_row(g)
            || plan.decide(plan.row_drop, salt::RELEASE_ROW_DROP, key2(source_idx, g))
        {
            // The row never arrived: it constrains nothing and cannot
            // appear in any candidate set of this source.
            dropped_local[local] = true;
            deg.record(InputDefect::MissingRow);
            continue;
        }
        let class = class_of_local[local];
        class_bits[class][g >> 6] |= 1u64 << (g & 63);
        class_of_master[g] = class as u32;
    }
    let mut class_cons: Vec<Vec<CellCon>> = vec![Vec::new(); n_classes];
    let mut filled = vec![false; n_classes];
    let mut lo = 0usize;
    for (chunk_idx, chunk) in
        Release::chunks(&source.table, &source.partition, source.style, chunk_rows).enumerate()
    {
        let chunk = chunk?;
        let take = if plan.decide(
            plan.chunk_truncate,
            salt::CHUNK_TRUNCATE,
            key2(source_idx, chunk_idx),
        ) {
            deg.record(InputDefect::TruncatedChunk);
            chunk.len() / 2
        } else {
            chunk.len()
        };
        for (i, row) in chunk.rows().iter().take(take).enumerate() {
            let local = lo + i;
            if dropped_local[local] {
                continue;
            }
            let class = class_of_local[local];
            if !filled[class] {
                filled[class] = true;
                class_cons[class] = qi_cols
                    .iter()
                    .enumerate()
                    .map(|(qi, &c)| {
                        let mut con = CellCon::from_value(&row[c]);
                        let site = key3(source_idx, class, qi);
                        if plan.decide(plan.cell_corrupt, salt::CELL_CORRUPT, site) {
                            con = corrupt_con(con, plan, site);
                        }
                        match checked_con(con) {
                            Ok(con) => con,
                            Err(defect) => {
                                deg.record(defect);
                                CellCon::Free
                            }
                        }
                    })
                    .collect();
            }
        }
        lo += chunk.len();
    }
    // A class whose every row fell in truncated tails or dropped rows
    // never published a readable summary: its constraint vector stays
    // empty, which `fold_source` treats as all-Free — count the imputed
    // fields so the report reflects the loss.
    let unfilled = filled.iter().filter(|&&f| !f).count();
    for _ in 0..unfilled * qi_cols.len() {
        deg.record(InputDefect::MissingField);
    }
    Ok(SourceDigest {
        class_of_master,
        class_bits,
        class_cons,
    })
}

/// What the composition of all releases pins down about one target.
#[derive(Debug, Clone, PartialEq)]
pub struct TargetIntersection {
    /// Master-table row of the target.
    pub master_row: usize,
    /// Master rows still consistent with every release's class of the
    /// target (ascending). Its length is the target's *effective*
    /// anonymity under composition — `>= k` for one release, collapsing
    /// toward 1 as releases accumulate.
    pub candidate_rows: Vec<u32>,
    /// Per-QI feasible interval (`None` = unconstrained by any release).
    pub feasible: Vec<Option<Interval>>,
    /// Per-QI mean of centroid observations, for sources publishing
    /// points instead of ranges.
    pub centroid_hint: Vec<Option<f64>>,
    /// Number of releases that contained the target.
    pub sources_seen: usize,
}

impl TargetIntersection {
    /// Effective anonymity: `|∩ classes|`.
    pub fn candidates(&self) -> usize {
        self.candidate_rows.len()
    }

    /// Mean width of the constrained QIs' feasible intervals; `None`
    /// when no release bounded any QI.
    pub fn mean_feasible_width(&self) -> Option<f64> {
        let widths: Vec<f64> = self
            .feasible
            .iter()
            .flatten()
            .map(Interval::width)
            .collect();
        if widths.is_empty() {
            None
        } else {
            Some(widths.iter().sum::<f64>() / widths.len() as f64)
        }
    }
}

/// Narrows `cur` by `next`. Disjoint constraints cannot arise from
/// consistent releases (each interval contains the target's true value);
/// if a synthetic scenario produces them anyway, the adversary keeps the
/// tighter of the two.
fn narrow(cur: Interval, next: Interval) -> Interval {
    cur.intersect(&next)
        .unwrap_or(if next.width() < cur.width() {
            next
        } else {
            cur
        })
}

/// Ascending master rows set in `bits`.
fn extract_candidates(bits: &[u64]) -> Vec<u32> {
    let mut out = Vec::new();
    for (wi, &word) in bits.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            let b = w.trailing_zeros();
            out.push((wi as u32) * 64 + b);
            w &= w - 1;
        }
    }
    out
}

/// Folds one source's class data into the running per-target state.
/// Shared by both engine paths so the constraint arithmetic (and thus the
/// float sequence) is identical by construction; what the property tests
/// pin is the surrounding machinery — bitset scratch reuse and parallel
/// chunking versus the naive fresh-allocation loop.
#[allow(clippy::too_many_arguments)]
fn fold_source(
    digest: &SourceDigest,
    class: usize,
    bits: &mut [u64],
    first: bool,
    feasible: &mut [Option<Interval>],
    centroid_sum: &mut [f64],
    centroid_n: &mut [usize],
) {
    if first {
        bits.copy_from_slice(&digest.class_bits[class]);
    } else {
        for (w, &src) in bits.iter_mut().zip(&digest.class_bits[class]) {
            *w &= src;
        }
    }
    fold_cons(
        &digest.class_cons[class],
        feasible,
        centroid_sum,
        centroid_n,
    );
}

/// The constraint half of [`fold_source`], shared with the sharded
/// engine so the box-narrowing float sequence is identical by
/// construction in every path.
fn fold_cons(
    cons: &[CellCon],
    feasible: &mut [Option<Interval>],
    centroid_sum: &mut [f64],
    centroid_n: &mut [usize],
) {
    for (qi, con) in cons.iter().enumerate() {
        match *con {
            CellCon::Bound(iv) => {
                feasible[qi] = Some(match feasible[qi] {
                    None => iv,
                    Some(cur) => narrow(cur, iv),
                });
            }
            CellCon::Point(x) => {
                centroid_sum[qi] += x;
                centroid_n[qi] += 1;
            }
            CellCon::Free => {}
        }
    }
}

fn intersect_target(
    target: usize,
    digests: &[SourceDigest],
    qi_len: usize,
    bits: &mut [u64],
) -> TargetIntersection {
    let mut feasible: Vec<Option<Interval>> = vec![None; qi_len];
    let mut centroid_sum = vec![0.0f64; qi_len];
    let mut centroid_n = vec![0usize; qi_len];
    let mut seen = 0usize;
    for digest in digests {
        let class = digest.class_of_master[target];
        if class == u32::MAX {
            continue;
        }
        fold_source(
            digest,
            class as usize,
            bits,
            seen == 0,
            &mut feasible,
            &mut centroid_sum,
            &mut centroid_n,
        );
        seen += 1;
    }
    let candidate_rows = if seen == 0 {
        Vec::new()
    } else {
        extract_candidates(bits)
    };
    TargetIntersection {
        master_row: target,
        candidate_rows,
        feasible,
        centroid_hint: (0..qi_len)
            .map(|qi| {
                if centroid_n[qi] > 0 {
                    Some(centroid_sum[qi] / centroid_n[qi] as f64)
                } else {
                    None
                }
            })
            .collect(),
        sources_seen: seen,
    }
}

fn digests_for(
    sources: &[Source],
    n_master: usize,
    chunk_rows: usize,
) -> Result<(Vec<SourceDigest>, usize)> {
    let first = sources.first().ok_or_else(|| {
        CompositionError::InvalidConfig("intersection needs at least one source".into())
    })?;
    let qi_cols = first.table.quasi_identifier_columns();
    let digests = sources
        .iter()
        .map(|s| digest_source(s, n_master, &qi_cols, chunk_rows))
        .collect::<Result<Vec<_>>>()?;
    Ok((digests, qi_cols.len()))
}

/// The parallel batched intersection engine: digests every source in one
/// streamed pass each, then fans the per-target intersections across
/// worker threads, each reusing one bitset scratch for its whole chunk.
/// Output is index-aligned with `targets` and bit-identical to
/// [`intersect_releases_sequential`] (pinned by property test).
pub fn intersect_releases(
    sources: &[Source],
    targets: &[usize],
    n_master: usize,
    chunk_rows: usize,
) -> Result<Vec<TargetIntersection>> {
    let (digests, qi_len) = digests_for(sources, n_master, chunk_rows)?;
    let words = n_master.div_ceil(64);
    Ok(targets
        .to_vec()
        .into_par_iter()
        .map_init(
            || vec![0u64; words],
            |bits, target| intersect_target(target, &digests, qi_len, bits),
        )
        .collect())
}

/// One source's class map alone (`u32::MAX` for absent master rows) —
/// the cheap O(n) half of [`master_class_bits`], without the full-width
/// candidate bitsets the sharded engine exists to avoid.
fn class_of_master_only(source: &Source, n_master: usize) -> Vec<u32> {
    let class_of_local = source.partition.class_of_rows();
    let mut class_of_master = vec![u32::MAX; n_master];
    for (local, &g) in source.global_rows.iter().enumerate() {
        class_of_master[g] = class_of_local[local] as u32;
    }
    class_of_master
}

/// The shard-streamed intersection engine: candidate bitsets are built
/// and intersected one master-row range at a time, so the peak bitset
/// footprint is `classes × range_words` per source instead of
/// `classes × n/64` — the term that dominates memory at 100k rows. Per
/// shard, every source's range-restricted class bitsets are rebuilt from
/// the partition map, every target's classes are ANDed over that range,
/// and the in-range candidates are appended; ranges are contiguous and
/// ascending ([`ShardPlan::row_ranges`]), so the concatenation is the
/// same ascending candidate list the full-width engine extracts.
/// Feasible boxes and centroid hints fold the streamed class constraints
/// once per target in source order — the exact float sequence of
/// [`fold_source`] — so the result is bit-identical to
/// [`intersect_releases`] for every shard plan (pinned by property
/// test). Each shard runs under an `intersect.shard` span and feeds the
/// `intersect.shard_ms` histogram.
pub fn intersect_releases_sharded(
    sources: &[Source],
    targets: &[usize],
    n_master: usize,
    chunk_rows: usize,
    plan: &ShardPlan,
) -> Result<Vec<TargetIntersection>> {
    let first = sources.first().ok_or_else(|| {
        CompositionError::InvalidConfig("intersection needs at least one source".into())
    })?;
    let qi_cols = first.table.quasi_identifier_columns();
    let qi_len = qi_cols.len();
    let class_of_master: Vec<Vec<u32>> = sources
        .iter()
        .map(|s| class_of_master_only(s, n_master))
        .collect();
    let class_cons: Vec<Vec<Vec<CellCon>>> = sources
        .iter()
        .map(|s| class_constraints(s, &qi_cols, chunk_rows))
        .collect::<Result<Vec<_>>>()?;

    let mut candidates: Vec<Vec<u32>> = vec![Vec::new(); targets.len()];
    for range in plan.row_ranges(n_master) {
        let _span = fred_obs::span(INTERSECT_SHARD_SPAN);
        let started = Instant::now();
        let word_lo = range.start >> 6;
        let words = range.end.div_ceil(64) - word_lo;
        // Range-restricted per-class bitsets: only rows inside the range
        // set bits, so boundary words shared with the neighbouring shard
        // cannot leak rows across ranges.
        let shard_bits: Vec<Vec<Vec<u64>>> = sources
            .iter()
            .enumerate()
            .map(|(si, source)| {
                let mut bits = vec![vec![0u64; words]; source.partition.len()];
                for g in range.clone() {
                    let class = class_of_master[si][g];
                    if class != u32::MAX {
                        bits[class as usize][(g >> 6) - word_lo] |= 1u64 << (g & 63);
                    }
                }
                bits
            })
            .collect();
        let mut scratch = vec![0u64; words];
        for (ti, &target) in targets.iter().enumerate() {
            let mut seen = 0usize;
            for (si, map) in class_of_master.iter().enumerate() {
                let class = map[target];
                if class == u32::MAX {
                    continue;
                }
                let src = &shard_bits[si][class as usize];
                if seen == 0 {
                    scratch.copy_from_slice(src);
                } else {
                    for (w, &s) in scratch.iter_mut().zip(src) {
                        *w &= s;
                    }
                }
                seen += 1;
            }
            if seen == 0 {
                continue;
            }
            for (wi, &word) in scratch.iter().enumerate() {
                let mut w = word;
                while w != 0 {
                    let b = w.trailing_zeros();
                    candidates[ti].push(((word_lo + wi) as u32) * 64 + b);
                    w &= w - 1;
                }
            }
        }
        fred_obs::observe_ms(INTERSECT_SHARD_MS, started.elapsed().as_secs_f64() * 1e3);
    }

    // Boxes and hints are range-independent: fold once per target in
    // source order, the same sequence the full-width engine runs.
    Ok(targets
        .iter()
        .enumerate()
        .map(|(ti, &target)| {
            let mut feasible: Vec<Option<Interval>> = vec![None; qi_len];
            let mut centroid_sum = vec![0.0f64; qi_len];
            let mut centroid_n = vec![0usize; qi_len];
            let mut seen = 0usize;
            for (si, map) in class_of_master.iter().enumerate() {
                let class = map[target];
                if class == u32::MAX {
                    continue;
                }
                fold_cons(
                    &class_cons[si][class as usize],
                    &mut feasible,
                    &mut centroid_sum,
                    &mut centroid_n,
                );
                seen += 1;
            }
            TargetIntersection {
                master_row: target,
                candidate_rows: std::mem::take(&mut candidates[ti]),
                feasible,
                centroid_hint: (0..qi_len)
                    .map(|qi| {
                        if centroid_n[qi] > 0 {
                            Some(centroid_sum[qi] / centroid_n[qi] as f64)
                        } else {
                            None
                        }
                    })
                    .collect(),
                sources_seen: seen,
            }
        })
        .collect())
}

/// Fault-tolerant [`intersect_releases`]: digests every source under the
/// plan's release-level faults (missing rows, corrupt QI cells,
/// truncated chunks) with skip-and-count semantics, then runs the same
/// parallel per-target intersection. Defects are recorded straight into
/// the caller's `deg` — a [muted](Degradation::muted) report keeps a
/// shadow pass off the observability counters. A target dropped from
/// every source degrades to an empty candidate set with no feasible box
/// — downstream fusion reads that as fully unconstrained — and under a
/// zero-rate plan the result is bit-identical to [`intersect_releases`]
/// with a clean report (pinned by property test).
pub fn intersect_releases_tolerant(
    sources: &[Source],
    targets: &[usize],
    n_master: usize,
    chunk_rows: usize,
    plan: &FaultPlan,
    deg: &mut Degradation,
) -> Result<Vec<TargetIntersection>> {
    let first = sources.first().ok_or_else(|| {
        CompositionError::InvalidConfig("intersection needs at least one source".into())
    })?;
    let qi_cols = first.table.quasi_identifier_columns();
    let digests = sources
        .iter()
        .enumerate()
        .map(|(idx, s)| digest_source_tolerant(s, idx, n_master, &qi_cols, chunk_rows, plan, deg))
        .collect::<Result<Vec<_>>>()?;
    let words = n_master.div_ceil(64);
    let inters = targets
        .to_vec()
        .into_par_iter()
        .map_init(
            || vec![0u64; words],
            |bits, target| intersect_target(target, &digests, qi_cols.len(), bits),
        )
        .collect();
    Ok(inters)
}

/// Per-target effective anonymity `|∩ classes|` alone — the number the
/// [`crate::DefensePolicy::CalibratedWiden`] calibration loop measures
/// after every widening round. Runs the same streamed digests as the
/// full engine but skips all box arithmetic; index-aligned with
/// `targets`, `0` for a target no source contains. Like the full
/// engines, the result is invariant in `chunk_rows`.
pub fn candidate_counts(
    sources: &[Source],
    targets: &[usize],
    n_master: usize,
    chunk_rows: usize,
) -> Result<Vec<usize>> {
    let (digests, _) = digests_for(sources, n_master, chunk_rows)?;
    let words = n_master.div_ceil(64);
    let mut bits = vec![0u64; words];
    Ok(targets
        .iter()
        .map(|&target| {
            let mut seen = 0usize;
            for digest in &digests {
                let class = digest.class_of_master[target];
                if class == u32::MAX {
                    continue;
                }
                if seen == 0 {
                    bits.copy_from_slice(&digest.class_bits[class as usize]);
                } else {
                    for (w, &src) in bits.iter_mut().zip(&digest.class_bits[class as usize]) {
                        *w &= src;
                    }
                }
                seen += 1;
            }
            if seen == 0 {
                0
            } else {
                bits.iter().map(|w| w.count_ones() as usize).sum()
            }
        })
        .collect())
}

/// The plain one-target-at-a-time reference: same digests, fresh bitset
/// per target, no worker threads. Kept public for equivalence property
/// tests.
pub fn intersect_releases_sequential(
    sources: &[Source],
    targets: &[usize],
    n_master: usize,
    chunk_rows: usize,
) -> Result<Vec<TargetIntersection>> {
    let (digests, qi_len) = digests_for(sources, n_master, chunk_rows)?;
    let words = n_master.div_ceil(64);
    Ok(targets
        .iter()
        .map(|&target| {
            let mut bits = vec![0u64; words];
            intersect_target(target, &digests, qi_len, &mut bits)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{generate_scenario, ScenarioConfig};
    use fred_anon::{Mdav, QiStyle};
    use fred_data::Table;
    use fred_synth::{customer_table, generate_population, CustomerConfig, PopulationConfig};

    fn master(n: usize, seed: u64) -> Table {
        let people = generate_population(&PopulationConfig {
            size: n,
            seed,
            ..PopulationConfig::default()
        });
        customer_table(&people, &CustomerConfig::default())
    }

    fn scenario(n: usize, releases: usize, k: usize) -> (Table, crate::CompositionScenario) {
        let table = master(n, 21);
        let s = generate_scenario(
            &table,
            &Mdav::new(),
            &ScenarioConfig {
                releases,
                k,
                ..ScenarioConfig::default()
            },
        )
        .unwrap();
        (table, s)
    }

    #[test]
    fn single_release_candidates_are_the_equivalence_class() {
        let (table, s) = scenario(60, 1, 4);
        let inters = intersect_releases(&s.sources, &s.targets, table.len(), 16).unwrap();
        for inter in &inters {
            // One release: the candidate set is exactly the k-anonymous
            // class, mapped to master rows.
            assert!(inter.candidates() >= 4, "{inter:?}");
            assert!(inter
                .candidate_rows
                .iter()
                .any(|&c| c as usize == inter.master_row));
            assert_eq!(inter.sources_seen, 1);
        }
    }

    #[test]
    fn candidates_shrink_with_more_releases() {
        let table = master(80, 3);
        let mean_candidates = |releases: usize| -> f64 {
            let s = generate_scenario(
                &table,
                &Mdav::new(),
                &ScenarioConfig {
                    releases,
                    k: 5,
                    ..ScenarioConfig::default()
                },
            )
            .unwrap();
            let inters = intersect_releases(&s.sources, &s.targets, table.len(), 32).unwrap();
            inters.iter().map(|i| i.candidates() as f64).sum::<f64>() / inters.len() as f64
        };
        let one = mean_candidates(1);
        let two = mean_candidates(2);
        let three = mean_candidates(3);
        assert!(one >= 5.0);
        assert!(two < one, "R=2 {two} !< R=1 {one}");
        // By R = 3 the candidate sets are already near-singleton at this
        // scale, so the tail of the curve may plateau — but never rise.
        assert!(three <= two, "R=3 {three} > R=2 {two}");
        assert!(three < one / 2.0, "composition barely collapsed: {three}");
    }

    #[test]
    fn target_always_survives_its_own_intersection() {
        let (table, s) = scenario(70, 3, 4);
        for inter in intersect_releases(&s.sources, &s.targets, table.len(), 8).unwrap() {
            assert!(
                inter
                    .candidate_rows
                    .iter()
                    .any(|&c| c as usize == inter.master_row),
                "target {} fell out of its own candidate set",
                inter.master_row
            );
            assert!(inter.candidates() >= 1);
            assert_eq!(inter.sources_seen, 3);
        }
    }

    #[test]
    fn feasible_boxes_contain_the_truth_and_shrink() {
        let (table, s) = scenario(60, 3, 5);
        let qi_cols = table.quasi_identifier_columns();
        let all = intersect_releases(&s.sources, &s.targets, table.len(), 16).unwrap();
        let one = intersect_releases(&s.sources[..1], &s.targets, table.len(), 16).unwrap();
        let mut shrunk = 0usize;
        for (ia, io) in all.iter().zip(&one) {
            for (qi, &c) in qi_cols.iter().enumerate() {
                let truth = table.rows()[ia.master_row][c].as_f64().unwrap();
                let box_all = ia.feasible[qi].expect("range style bounds every QI");
                let box_one = io.feasible[qi].expect("range style bounds every QI");
                assert!(box_all.contains(truth), "truth outside composed box");
                assert!(box_one.contains(truth), "truth outside single box");
                assert!(
                    box_all.width() <= box_one.width() + 1e-12,
                    "composition widened a box"
                );
                if box_all.width() < box_one.width() - 1e-12 {
                    shrunk += 1;
                }
            }
        }
        assert!(shrunk > 0, "composition never narrowed any box");
    }

    #[test]
    fn centroid_sources_contribute_hints_not_bounds() {
        let table = master(50, 9);
        let s = generate_scenario(
            &table,
            &Mdav::new(),
            &ScenarioConfig {
                releases: 2,
                k: 4,
                styles: vec![QiStyle::Centroid],
                ..ScenarioConfig::default()
            },
        )
        .unwrap();
        for inter in intersect_releases(&s.sources, &s.targets, table.len(), 16).unwrap() {
            assert!(inter.feasible.iter().all(Option::is_none));
            assert!(inter.centroid_hint.iter().all(Option::is_some));
            assert!(inter.mean_feasible_width().is_none());
        }
    }

    #[test]
    fn parallel_engine_equals_sequential_reference() {
        let (table, s) = scenario(90, 3, 4);
        let fast = intersect_releases(&s.sources, &s.targets, table.len(), 16).unwrap();
        let reference =
            intersect_releases_sequential(&s.sources, &s.targets, table.len(), 16).unwrap();
        assert_eq!(fast, reference);
    }

    #[test]
    fn sharded_engine_equals_full_width_engine() {
        let (table, s) = scenario(90, 3, 4);
        let full = intersect_releases(&s.sources, &s.targets, table.len(), 16).unwrap();
        for shards in [1usize, 2, 3, 5, 8, 64] {
            for seed in [0u64, 17] {
                let plan = ShardPlan::new(shards, seed);
                let sharded =
                    intersect_releases_sharded(&s.sources, &s.targets, table.len(), 16, &plan)
                        .unwrap();
                assert_eq!(sharded, full, "shards={shards} seed={seed}");
            }
        }
    }

    #[test]
    fn sharded_engine_handles_centroid_styles() {
        let table = master(50, 9);
        let s = generate_scenario(
            &table,
            &Mdav::new(),
            &ScenarioConfig {
                releases: 2,
                k: 4,
                styles: vec![QiStyle::Centroid, QiStyle::Range],
                ..ScenarioConfig::default()
            },
        )
        .unwrap();
        let full = intersect_releases(&s.sources, &s.targets, table.len(), 16).unwrap();
        let sharded = intersect_releases_sharded(
            &s.sources,
            &s.targets,
            table.len(),
            16,
            &ShardPlan::new(4, 3),
        )
        .unwrap();
        assert_eq!(sharded, full);
    }

    #[test]
    fn sharded_engine_is_chunk_invariant() {
        let (table, s) = scenario(60, 2, 4);
        let plan = ShardPlan::new(3, 1);
        let baseline =
            intersect_releases_sharded(&s.sources, &s.targets, table.len(), 7, &plan).unwrap();
        for chunk_rows in [1usize, 13, 1024] {
            assert_eq!(
                intersect_releases_sharded(&s.sources, &s.targets, table.len(), chunk_rows, &plan)
                    .unwrap(),
                baseline,
                "chunk_rows={chunk_rows}"
            );
        }
    }

    #[test]
    fn chunk_size_does_not_change_the_result() {
        let (table, s) = scenario(60, 2, 4);
        let baseline = intersect_releases(&s.sources, &s.targets, table.len(), 7).unwrap();
        for chunk_rows in [1usize, 13, 1024] {
            let other =
                intersect_releases(&s.sources, &s.targets, table.len(), chunk_rows).unwrap();
            assert_eq!(other, baseline, "chunk_rows={chunk_rows}");
        }
    }

    #[test]
    fn candidate_counts_match_the_full_engine() {
        let (table, s) = scenario(70, 3, 4);
        let counts = candidate_counts(&s.sources, &s.targets, table.len(), 16).unwrap();
        let full = intersect_releases(&s.sources, &s.targets, table.len(), 16).unwrap();
        assert_eq!(counts.len(), full.len());
        for (c, inter) in counts.iter().zip(&full) {
            assert_eq!(*c, inter.candidates());
        }
        // Chunking cannot change the counts.
        for chunk_rows in [1usize, 13, 1024] {
            assert_eq!(
                candidate_counts(&s.sources, &s.targets, table.len(), chunk_rows).unwrap(),
                counts
            );
        }
    }

    #[test]
    fn tolerant_intersection_with_zero_rate_plan_is_bit_identical() {
        let (table, s) = scenario(70, 3, 4);
        let strict = intersect_releases(&s.sources, &s.targets, table.len(), 16).unwrap();
        let mut deg = Degradation::default();
        let tolerant = intersect_releases_tolerant(
            &s.sources,
            &s.targets,
            table.len(),
            16,
            &FaultPlan::none(),
            &mut deg,
        )
        .unwrap();
        assert_eq!(tolerant, strict);
        assert!(deg.is_clean(), "{deg}");
    }

    #[test]
    fn tolerant_intersection_survives_every_release_fault_at_once() {
        let (table, s) = scenario(80, 3, 5);
        let plan = FaultPlan::uniform(31, 0.2);
        let mut deg = Degradation::default();
        let inters =
            intersect_releases_tolerant(&s.sources, &s.targets, table.len(), 16, &plan, &mut deg)
                .unwrap();
        assert_eq!(inters.len(), s.targets.len());
        assert!(
            deg.rows_skipped > 0 || deg.fields_imputed > 0 || deg.chunks_truncated > 0,
            "nothing fired at 20%: {deg}"
        );
        for inter in &inters {
            // Degraded, never poisoned: every surviving box is finite.
            for iv in inter.feasible.iter().flatten() {
                assert!(iv.lo().is_finite() && iv.hi().is_finite(), "{inter:?}");
            }
            for hint in inter.centroid_hint.iter().flatten() {
                assert!(hint.is_finite());
            }
        }
        // Determinism: the same plan degrades identically.
        let mut deg_again = Degradation::default();
        let again = intersect_releases_tolerant(
            &s.sources,
            &s.targets,
            table.len(),
            16,
            &plan,
            &mut deg_again,
        )
        .unwrap();
        assert_eq!(again, inters);
        assert_eq!(deg_again, deg);
    }

    #[test]
    fn dropped_release_rows_leave_targets_unseen_not_poisoned() {
        let (table, s) = scenario(60, 2, 4);
        let plan = FaultPlan {
            row_drop: 0.5,
            ..FaultPlan::uniform(33, 0.0)
        };
        let mut deg = Degradation::default();
        let inters =
            intersect_releases_tolerant(&s.sources, &s.targets, table.len(), 16, &plan, &mut deg)
                .unwrap();
        assert!(deg.rows_skipped > 0);
        // With half the rows gone some targets see fewer sources; a
        // fully-dropped target has no candidates and no box, and a
        // surviving one has candidate sets no larger than the full run.
        let strict = intersect_releases(&s.sources, &s.targets, table.len(), 16).unwrap();
        for (t, f) in inters.iter().zip(&strict) {
            assert!(t.sources_seen <= f.sources_seen);
            if t.sources_seen == 0 {
                assert_eq!(t.candidates(), 0);
                assert!(t.feasible.iter().all(Option::is_none));
            }
        }
    }

    #[test]
    fn corrupt_cells_impute_instead_of_propagating_nan() {
        let (table, s) = scenario(60, 2, 4);
        let plan = FaultPlan {
            cell_corrupt: 1.0,
            ..FaultPlan::uniform(35, 0.0)
        };
        let mut deg = Degradation::default();
        let inters =
            intersect_releases_tolerant(&s.sources, &s.targets, table.len(), 16, &plan, &mut deg)
                .unwrap();
        // Every class summary cell was corrupted: roughly half NaN
        // (imputed and counted), half inflated (kept, finite).
        assert!(deg.fields_imputed > 0, "{deg}");
        for inter in &inters {
            for iv in inter.feasible.iter().flatten() {
                assert!(iv.lo().is_finite() && iv.hi().is_finite());
            }
        }
    }

    #[test]
    fn no_sources_errors() {
        assert!(matches!(
            intersect_releases(&[], &[0], 10, 8),
            Err(CompositionError::InvalidConfig(_))
        ));
    }
}
