//! Scenario generation: one private population published as several
//! independently k-anonymized releases of overlapping sub-populations.
//!
//! This is the setting of Ganta, Kasiviswanathan & Smith's composition
//! attacks: each curator (hospital, bank, registry) sees its own slice of
//! the population plus a shared core — the people who show up everywhere
//! — and publishes its own k-anonymized release, each safe in isolation.
//! The intersection engine then demonstrates that the *composition* of
//! the releases is not.

use fred_anon::{Anonymizer, Partition, QiStyle};
use fred_data::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

use crate::defense::{self, DefensePolicy};
use crate::error::{CompositionError, Result};

/// Configuration of a multi-release scenario.
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    /// Number of independently anonymized releases `R`.
    pub releases: usize,
    /// Fraction of the population shared by *every* source (the target
    /// core).
    pub overlap: f64,
    /// Fraction of the *non-core* rows each source additionally holds,
    /// sampled independently per source (two curators may share some of
    /// them, like two hospitals sharing walk-in patients). Keeping this
    /// fixed makes source size — and therefore per-release class
    /// coarseness — invariant in `R`: adding a release only adds
    /// constraints, it never substitutes coarser ones.
    pub extras: f64,
    /// Anonymization level each curator applies.
    pub k: usize,
    /// Seed for the population split and the per-source row shuffles.
    pub seed: u64,
    /// Per-source quasi-identifier styles, cycled when there are more
    /// sources than entries. Defaults to ranges everywhere (the paper's
    /// Table III presentation).
    pub styles: Vec<QiStyle>,
    /// Coordination defense the curators deploy against composition
    /// (`None` = the undefended scenario the attack sweeps measure).
    pub defense: Option<DefensePolicy>,
}

impl Default for ScenarioConfig {
    fn default() -> Self {
        ScenarioConfig {
            releases: 3,
            overlap: 0.5,
            extras: 0.5,
            k: 5,
            seed: 0xC0DE,
            styles: vec![QiStyle::Range],
            defense: None,
        }
    }
}

/// One curator's slice of the world: the private sub-table, the partition
/// its anonymizer produced, and the mapping back to master rows. The
/// anonymized release itself is never materialized — consumers stream it
/// through [`fred_anon::Release::chunks`].
#[derive(Debug, Clone)]
pub struct Source {
    /// Master-table row id of each sub-table row (release row `i`
    /// describes master row `global_rows[i]`).
    pub global_rows: Vec<usize>,
    /// The curator's private sub-table (sensitive attribute present).
    pub table: Table,
    /// Equivalence classes over the sub-table rows.
    pub partition: Partition,
    /// Anonymization level used.
    pub k: usize,
    /// Quasi-identifier publication style.
    pub style: QiStyle,
}

/// A generated multi-release world.
#[derive(Debug, Clone)]
pub struct CompositionScenario {
    /// Master rows present in *every* source (ascending) — the identities
    /// the composition attack targets.
    pub targets: Vec<usize>,
    /// The independently anonymized sources.
    pub sources: Vec<Source>,
}

/// Seeded Fisher-Yates shuffle (also used by the defense's capped
/// extras construction, so the two stay bit-identical by construction).
pub(crate) fn shuffle(rows: &mut [usize], rng: &mut StdRng) {
    for i in (1..rows.len()).rev() {
        let j = rng.gen_range(0..=i);
        rows.swap(i, j);
    }
}

/// The validated core/rest split behind [`generate_scenario`]: depends
/// only on `(n, overlap, seed)` (plus `k` for feasibility), never on the
/// release count. Returns `(core, rest)` in shuffled order.
fn split(n: usize, config: &ScenarioConfig) -> Result<(Vec<usize>, Vec<usize>)> {
    if config.releases == 0 {
        return Err(CompositionError::InvalidConfig(
            "releases must be >= 1".into(),
        ));
    }
    if !(0.0..=1.0).contains(&config.overlap) {
        return Err(CompositionError::InvalidConfig(format!(
            "overlap {} outside [0, 1]",
            config.overlap
        )));
    }
    if !(0.0..=1.0).contains(&config.extras) {
        return Err(CompositionError::InvalidConfig(format!(
            "extras {} outside [0, 1]",
            config.extras
        )));
    }
    if config.styles.is_empty() {
        return Err(CompositionError::InvalidConfig(
            "styles must not be empty".into(),
        ));
    }
    let core_size = ((n as f64) * config.overlap).round() as usize;
    let core_size = core_size.clamp(1, n);
    if core_size < config.k {
        return Err(CompositionError::InvalidConfig(format!(
            "core of {core_size} rows cannot be {k}-anonymized (need overlap*rows >= k)",
            k = config.k
        )));
    }
    if let Some(defense) = &config.defense {
        defense.validate(core_size)?;
    }
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    shuffle(&mut order, &mut rng);
    let rest = order.split_off(core_size);
    Ok((order, rest))
}

/// The master rows every source will share (ascending) — the composition
/// targets. Identifiers (and therefore the web harvest) depend only on
/// this set, so callers can compute it without anonymizing anything.
pub fn core_targets(n: usize, config: &ScenarioConfig) -> Result<Vec<usize>> {
    let (mut core, _) = split(n, config)?;
    core.sort_unstable();
    Ok(core)
}

/// Splits `table` into `config.releases` overlapping sub-populations and
/// anonymizes each independently.
///
/// The split is deterministic in `config.seed`: a seeded shuffle picks the
/// shared core (`overlap` fraction of the rows, identical for every `R`,
/// so sweeps over `R` compare the same target set); each source then
/// draws its own `extras` sample of the remaining rows and shuffles its
/// row order with a per-source seed — each curator assembled its table
/// independently, so neither membership nor row order leaks across
/// releases, and every source has the same size regardless of how many
/// releases exist.
///
/// Sources are *mutually independent* (each one's RNG stream is seeded
/// from `(seed, s)` alone), so their construction — including the
/// per-source MDAV run, the dominant cost at enterprise scale — fans out
/// across the worker pool. Results are collected in source order, so the
/// scenario is bit-identical regardless of thread count.
///
/// When [`ScenarioConfig::defense`] is set, the curators coordinate:
/// [`DefensePolicy::OverlapCap`] replaces the independent extras samples
/// with a capped shared pool, [`DefensePolicy::CoordinatedSeeds`]
/// replaces the per-source core clustering with one shared core
/// partition (each curator still anonymizes its extras alone, and drops
/// them entirely when it holds fewer than `k`), and
/// [`DefensePolicy::CalibratedWiden`] post-processes the generated
/// partitions until the streamed intersection keeps every core target at
/// `target_k` candidates. The target core — and therefore the harvest —
/// is identical to the undefended scenario's by construction.
pub fn generate_scenario(
    table: &Table,
    anonymizer: &dyn Anonymizer,
    config: &ScenarioConfig,
) -> Result<CompositionScenario> {
    let (core, rest) = split(table.len(), config)?;
    let extras_per_source = ((rest.len() as f64) * config.extras).round() as usize;

    let mut targets: Vec<usize> = core.clone();
    targets.sort_unstable();

    // OverlapCap pre-computes every source's extras from one capped
    // shared pool; the other paths sample per source below.
    let capped_extras: Option<Vec<Vec<usize>>> = match &config.defense {
        Some(DefensePolicy::OverlapCap {
            max_shared_fraction,
        }) => Some(defense::overlap_cap_extras(
            &rest,
            extras_per_source,
            *max_shared_fraction,
            config.releases,
            config.seed,
        )),
        _ => None,
    };
    // CoordinatedSeeds partitions the shared core exactly once (the
    // "shared partition seed"); classes are kept in master-row ids and
    // mapped into each source's local rows.
    let coordinated_core: Option<Vec<Vec<usize>>> = match &config.defense {
        Some(DefensePolicy::CoordinatedSeeds) => {
            let core_rows: Vec<_> = core.iter().map(|&r| table.rows()[r].clone()).collect();
            let core_table = Table::with_rows(table.schema().clone(), core_rows)?;
            let partition = anonymizer.partition(&core_table, config.k)?;
            Some(
                partition
                    .classes()
                    .iter()
                    .map(|class| class.iter().map(|&i| core[i]).collect())
                    .collect(),
            )
        }
        _ => None,
    };

    let mut sources: Vec<Source> = (0..config.releases)
        .into_par_iter()
        .map(|s| -> Result<Source> {
            // `s + 1`: with a bare `s` the first source's stream would
            // equal the split's (the multiplier zeroes out), replaying
            // the core selection instead of sampling independently.
            let mut source_rng = StdRng::seed_from_u64(
                config.seed ^ (s as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let mut extras: Vec<usize> = match &capped_extras {
                Some(per_source) => per_source[s].clone(),
                None => {
                    let mut pool: Vec<usize> = rest.to_vec();
                    shuffle(&mut pool, &mut source_rng);
                    pool.truncate(extras_per_source);
                    pool
                }
            };
            if coordinated_core.is_some() && extras.len() < config.k {
                // A coordinating curator anonymizes its extras on its
                // own; too few to protect means none get published.
                extras.clear();
            }
            let mut rows: Vec<usize> = core.to_vec();
            rows.extend(extras);
            shuffle(&mut rows, &mut source_rng);
            let sub_rows = rows
                .iter()
                .map(|&r| table.rows()[r].clone())
                .collect::<Vec<_>>();
            let sub_table = Table::with_rows(table.schema().clone(), sub_rows)?;
            let partition = match &coordinated_core {
                Some(core_classes) => defense::coordinated_partition(
                    core_classes,
                    &rows,
                    &sub_table,
                    anonymizer,
                    config.k,
                )?,
                None => anonymizer.partition(&sub_table, config.k)?,
            };
            Ok(Source {
                global_rows: rows,
                table: sub_table,
                partition,
                k: config.k,
                style: config.styles[s % config.styles.len()],
            })
        })
        .collect::<Result<Vec<_>>>()?;
    if let Some(DefensePolicy::CalibratedWiden { target_k }) = config.defense {
        defense::calibrate_widen(&mut sources, &targets, table.len(), target_k)?;
    }
    Ok(CompositionScenario { targets, sources })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fred_anon::Mdav;
    use fred_synth::{customer_table, generate_population, CustomerConfig, PopulationConfig};

    fn master(n: usize) -> Table {
        let people = generate_population(&PopulationConfig {
            size: n,
            seed: 7,
            ..PopulationConfig::default()
        });
        customer_table(&people, &CustomerConfig::default())
    }

    #[test]
    fn split_shares_the_core_and_samples_extras() {
        let table = master(60);
        let config = ScenarioConfig {
            releases: 3,
            overlap: 0.5,
            extras: 0.5,
            k: 3,
            ..ScenarioConfig::default()
        };
        let scenario = generate_scenario(&table, &Mdav::new(), &config).unwrap();
        assert_eq!(scenario.sources.len(), 3);
        assert_eq!(scenario.targets.len(), 30);
        for source in &scenario.sources {
            // Every target appears in every source; sources are all the
            // same size (core + extras), independent of R.
            for &t in &scenario.targets {
                assert!(source.global_rows.contains(&t));
            }
            assert_eq!(source.global_rows.len(), 30 + 15);
            assert!(source.partition.satisfies_k(3));
            assert_eq!(source.table.len(), source.global_rows.len());
            // No duplicate rows within one source.
            let distinct: std::collections::HashSet<_> = source.global_rows.iter().collect();
            assert_eq!(distinct.len(), source.global_rows.len());
        }
        // Independent sampling: the extras of at least two sources differ.
        let extras_of = |s: &Source| -> std::collections::BTreeSet<usize> {
            s.global_rows
                .iter()
                .copied()
                .filter(|g| !scenario.targets.contains(g))
                .collect()
        };
        assert_ne!(
            extras_of(&scenario.sources[0]),
            extras_of(&scenario.sources[1])
        );
    }

    #[test]
    fn sub_tables_carry_master_rows() {
        let table = master(40);
        let scenario = generate_scenario(&table, &Mdav::new(), &ScenarioConfig::default()).unwrap();
        for source in &scenario.sources {
            for (local, &global) in source.global_rows.iter().enumerate() {
                assert_eq!(source.table.rows()[local], table.rows()[global]);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let table = master(50);
        let config = ScenarioConfig::default();
        let a = generate_scenario(&table, &Mdav::new(), &config).unwrap();
        let b = generate_scenario(&table, &Mdav::new(), &config).unwrap();
        assert_eq!(a.targets, b.targets);
        for (sa, sb) in a.sources.iter().zip(&b.sources) {
            assert_eq!(sa.global_rows, sb.global_rows);
            assert_eq!(sa.partition, sb.partition);
        }
    }

    #[test]
    fn core_is_invariant_in_release_count() {
        let table = master(50);
        let base = ScenarioConfig {
            overlap: 0.4,
            ..ScenarioConfig::default()
        };
        let targets: Vec<Vec<usize>> = [1usize, 2, 4]
            .iter()
            .map(|&r| {
                generate_scenario(
                    &table,
                    &Mdav::new(),
                    &ScenarioConfig {
                        releases: r,
                        ..base.clone()
                    },
                )
                .unwrap()
                .targets
            })
            .collect();
        assert_eq!(targets[0], targets[1]);
        assert_eq!(targets[1], targets[2]);
    }

    #[test]
    fn coordinated_seeds_share_one_core_partition() {
        let table = master(60);
        let config = ScenarioConfig {
            releases: 3,
            k: 3,
            defense: Some(DefensePolicy::CoordinatedSeeds),
            ..ScenarioConfig::default()
        };
        let scenario = generate_scenario(&table, &Mdav::new(), &config).unwrap();
        // Every source's core classes, mapped back to master rows, are
        // the same family of sets.
        let core_classes_of = |s: &Source| -> std::collections::BTreeSet<Vec<usize>> {
            s.partition
                .classes()
                .iter()
                .filter(|class| {
                    class
                        .iter()
                        .all(|&l| scenario.targets.contains(&s.global_rows[l]))
                })
                .map(|class| {
                    let mut global: Vec<usize> = class.iter().map(|&l| s.global_rows[l]).collect();
                    global.sort_unstable();
                    global
                })
                .collect()
        };
        let first = core_classes_of(&scenario.sources[0]);
        assert!(!first.is_empty());
        for source in &scenario.sources {
            assert!(source.partition.satisfies_k(3));
            assert_eq!(core_classes_of(source), first);
            // No class mixes core and extras rows.
            for class in source.partition.classes() {
                let in_core = class
                    .iter()
                    .filter(|&&l| scenario.targets.contains(&source.global_rows[l]))
                    .count();
                assert!(in_core == 0 || in_core == class.len());
            }
        }
        // The undefended target core is preserved.
        let undefended = generate_scenario(
            &table,
            &Mdav::new(),
            &ScenarioConfig {
                defense: None,
                ..config.clone()
            },
        )
        .unwrap();
        assert_eq!(scenario.targets, undefended.targets);
    }

    #[test]
    fn overlap_cap_zero_makes_sources_disjoint_outside_the_core() {
        let table = master(80);
        let config = ScenarioConfig {
            releases: 3,
            overlap: 0.4,
            k: 4,
            defense: Some(DefensePolicy::OverlapCap {
                max_shared_fraction: 0.0,
            }),
            ..ScenarioConfig::default()
        };
        let scenario = generate_scenario(&table, &Mdav::new(), &config).unwrap();
        let extras_of = |s: &Source| -> std::collections::BTreeSet<usize> {
            s.global_rows
                .iter()
                .copied()
                .filter(|g| !scenario.targets.contains(g))
                .collect()
        };
        for (i, a) in scenario.sources.iter().enumerate() {
            assert!(a.partition.satisfies_k(4));
            for b in scenario.sources.iter().skip(i + 1) {
                assert!(
                    extras_of(a).intersection(&extras_of(b)).next().is_none(),
                    "sources {i} share non-core rows under a zero cap"
                );
            }
        }
    }

    #[test]
    fn calibrated_widen_holds_the_candidate_floor() {
        let table = master(60);
        let target_k = 4;
        let config = ScenarioConfig {
            releases: 3,
            k: 4,
            defense: Some(DefensePolicy::CalibratedWiden { target_k }),
            ..ScenarioConfig::default()
        };
        let scenario = generate_scenario(&table, &Mdav::new(), &config).unwrap();
        let counts = crate::intersect::candidate_counts(
            &scenario.sources,
            &scenario.targets,
            table.len(),
            64,
        )
        .unwrap();
        assert!(counts.iter().all(|&c| c >= target_k), "{counts:?}");
        for source in &scenario.sources {
            assert!(
                source.partition.satisfies_k(4),
                "widening broke k-anonymity"
            );
        }
    }

    #[test]
    fn calibrated_widen_handles_a_lone_release_with_a_higher_floor() {
        // Regression: with a single release (or a target present in one
        // source only) there is no other source to AND the unblock scan
        // against, and the all-ones scratch used to leak ghost rows past
        // the table — an out-of-bounds panic. A floor above k forces the
        // calibration to actually widen at R = 1.
        let table = master(60);
        let target_k = 5;
        let config = ScenarioConfig {
            releases: 1,
            k: 2,
            defense: Some(DefensePolicy::CalibratedWiden { target_k }),
            ..ScenarioConfig::default()
        };
        let scenario = generate_scenario(&table, &Mdav::new(), &config).unwrap();
        let counts = crate::intersect::candidate_counts(
            &scenario.sources,
            &scenario.targets,
            table.len(),
            64,
        )
        .unwrap();
        assert!(counts.iter().all(|&c| c >= target_k), "{counts:?}");
        assert!(scenario.sources[0].partition.satisfies_k(2));
    }

    #[test]
    fn invalid_defense_configs_rejected() {
        let table = master(40);
        for defense in [
            DefensePolicy::OverlapCap {
                max_shared_fraction: -0.1,
            },
            DefensePolicy::CalibratedWiden { target_k: 0 },
            DefensePolicy::CalibratedWiden { target_k: 1000 },
        ] {
            let config = ScenarioConfig {
                defense: Some(defense),
                ..ScenarioConfig::default()
            };
            assert!(
                matches!(
                    generate_scenario(&table, &Mdav::new(), &config),
                    Err(CompositionError::InvalidConfig(_))
                ),
                "{config:?}"
            );
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let table = master(20);
        for config in [
            ScenarioConfig {
                releases: 0,
                ..ScenarioConfig::default()
            },
            ScenarioConfig {
                overlap: 1.5,
                ..ScenarioConfig::default()
            },
            ScenarioConfig {
                overlap: 0.05,
                k: 5,
                ..ScenarioConfig::default()
            },
            ScenarioConfig {
                styles: vec![],
                ..ScenarioConfig::default()
            },
        ] {
            assert!(
                matches!(
                    generate_scenario(&table, &Mdav::new(), &config),
                    Err(CompositionError::InvalidConfig(_))
                ),
                "{config:?}"
            );
        }
    }
}
